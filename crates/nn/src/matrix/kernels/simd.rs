//! AVX2+FMA backend and the one-time runtime dispatch that selects it.
//!
//! ## Dispatch
//!
//! [`backend`] resolves the process-wide [`KernelBackend`] exactly once
//! (cached in an atomic, `OnceLock`-style): scalar when
//! `GEOMANCY_FORCE_SCALAR` is set to anything but `0`/empty, otherwise
//! AVX2+FMA iff `is_x86_feature_detected!` reports both features. On
//! non-x86-64 targets the intrinsics below are compiled out entirely and
//! the backend is always [`KernelBackend::Scalar`].
//!
//! ## Safety argument
//!
//! Every intrinsics function is `unsafe fn` with
//! `#[target_feature(enable = "avx2", enable = "fma")]`; the only callers
//! are the dispatched wrappers in the parent module, which reach a SIMD arm
//! strictly after [`backend`] returned [`KernelBackend::Avx2Fma`] — which
//! itself requires the feature detection (or [`force_backend`], which
//! re-checks) to have passed. So the CPU-feature precondition holds on
//! every call. The memory precondition is plain slice validity: all
//! pointer arithmetic stays inside the slice bounds the safe wrappers
//! already asserted (`while j + 4 <= n` guards every 4-lane access, with
//! scalar tails for the remainder), and unaligned loads/stores
//! (`_mm256_loadu_pd`/`_mm256_storeu_pd`) are used throughout so no
//! alignment precondition exists.
//!
//! ## Numerical contract
//!
//! `_mm256_fmadd_pd` skips the intermediate rounding of a separate
//! multiply-add and the lane split reassociates reductions, so SIMD
//! results differ from scalar by normal rounding noise — bounded well
//! under the 1e-12 relative tolerance the equivalence proptests enforce.
//! Transcendentals (sigmoid's `exp`, tanh) are never vectorized: both
//! backends call the identical scalar `f64` routines, so activations are
//! bit-identical and only polynomial arithmetic differs.

use std::sync::atomic::{AtomicU8, Ordering};

use crate::activation::Activation;

/// Which implementation family the dispatched kernels route to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KernelBackend {
    /// Portable blocked/unrolled scalar loops ([`super::scalar`]).
    Scalar,
    /// Explicit 4×f64 AVX2 lanes with FMA (x86-64 only).
    Avx2Fma,
}

impl KernelBackend {
    /// Stable machine-readable name, as surfaced in bench metadata and the
    /// serve layer's metrics (`"scalar"` / `"avx2_fma"`).
    pub fn name(self) -> &'static str {
        match self {
            KernelBackend::Scalar => "scalar",
            KernelBackend::Avx2Fma => "avx2_fma",
        }
    }
}

const UNRESOLVED: u8 = 0;
const SCALAR: u8 = 1;
const AVX2_FMA: u8 = 2;

/// Cached dispatch decision; resolved at most once per process (benign
/// race: concurrent first calls all store the same detection result).
static BACKEND: AtomicU8 = AtomicU8::new(UNRESOLVED);

/// The active kernel backend (detection runs on first call, then cached).
pub fn backend() -> KernelBackend {
    match BACKEND.load(Ordering::Relaxed) {
        SCALAR => KernelBackend::Scalar,
        AVX2_FMA => KernelBackend::Avx2Fma,
        _ => {
            let b = detect();
            BACKEND.store(code(b), Ordering::Relaxed);
            b
        }
    }
}

/// [`backend`]'s stable name (`"scalar"` / `"avx2_fma"`), for logs,
/// metrics and bench metadata.
pub fn backend_name() -> &'static str {
    backend().name()
}

/// Overrides the dispatched backend for the rest of the process (or until
/// called again). Returns `false` — leaving the current choice untouched —
/// when [`KernelBackend::Avx2Fma`] is requested on a host without
/// AVX2+FMA, so the unsafe arms stay unreachable on unsupported CPUs.
///
/// Intended for single-threaded benchmark drivers that measure both
/// backends in one process. Tests must not call it: they run concurrently
/// within one process and would race on the process-global choice — pin a
/// backend by calling [`super::scalar`] directly instead.
pub fn force_backend(b: KernelBackend) -> bool {
    if b == KernelBackend::Avx2Fma && !avx2_fma_supported() {
        return false;
    }
    BACKEND.store(code(b), Ordering::Relaxed);
    true
}

fn code(b: KernelBackend) -> u8 {
    match b {
        KernelBackend::Scalar => SCALAR,
        KernelBackend::Avx2Fma => AVX2_FMA,
    }
}

fn detect() -> KernelBackend {
    if force_scalar_env() {
        return KernelBackend::Scalar;
    }
    if avx2_fma_supported() {
        KernelBackend::Avx2Fma
    } else {
        KernelBackend::Scalar
    }
}

/// `GEOMANCY_FORCE_SCALAR` set to anything but empty/`0` pins the scalar
/// backend regardless of host capability.
fn force_scalar_env() -> bool {
    std::env::var("GEOMANCY_FORCE_SCALAR")
        .map(|v| !v.is_empty() && v != "0")
        .unwrap_or(false)
}

/// Host capability, independent of the env override.
fn avx2_fma_supported() -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        std::arch::is_x86_feature_detected!("avx2") && std::arch::is_x86_feature_detected!("fma")
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        false
    }
}

#[cfg(target_arch = "x86_64")]
pub(super) use x86::*;

#[cfg(target_arch = "x86_64")]
mod x86 {
    use core::arch::x86_64::*;

    use super::super::KC;
    use super::Activation;

    /// Horizontal sum of a 4-lane f64 vector.
    ///
    /// # Safety
    ///
    /// Requires AVX2 (callers are `target_feature(avx2, fma)` functions).
    #[inline]
    #[target_feature(enable = "avx2", enable = "fma")]
    unsafe fn hsum(v: __m256d) -> f64 {
        let lo = _mm256_castpd256_pd128(v);
        let hi = _mm256_extractf128_pd::<1>(v);
        let pair = _mm_add_pd(lo, hi);
        let swapped = _mm_unpackhi_pd(pair, pair);
        _mm_cvtsd_f64(_mm_add_sd(pair, swapped))
    }

    /// Vectorized [`Activation::derivative_from_output`]: the derivative of
    /// every supported activation is polynomial in the activated output
    /// (ReLU: `y > 0`, sigmoid: `y(1-y)`, tanh: `1-y²`, linear: `1`), so
    /// all four vectorize without touching a transcendental. Each arm
    /// mirrors the scalar formula's operation order exactly.
    ///
    /// # Safety
    ///
    /// Requires AVX2+FMA.
    #[inline]
    #[target_feature(enable = "avx2", enable = "fma")]
    unsafe fn act_derivative_v(act: Activation, y: __m256d) -> __m256d {
        let one = _mm256_set1_pd(1.0);
        match act {
            // `y > 0.0` is false for NaN under _CMP_GT_OQ, matching the
            // scalar `if y > 0.0` branch.
            Activation::ReLU => {
                _mm256_and_pd(_mm256_cmp_pd::<_CMP_GT_OQ>(y, _mm256_setzero_pd()), one)
            }
            Activation::Linear => one,
            Activation::Sigmoid => _mm256_mul_pd(y, _mm256_sub_pd(one, y)),
            Activation::Tanh => _mm256_sub_pd(one, _mm256_mul_pd(y, y)),
        }
    }

    /// Shared blocked-matmul body, SIMD mirror of
    /// [`super::super::scalar::panel_acc`]: `out[m x n] += A_window · b`
    /// where the `p`-th shared-dim element of out-row `i`'s A operand is
    /// `ad[i*stride + off + p*astep]` (`astep = 1` walks a contiguous A
    /// row; `astep = p_cols` walks a column, which is how `aᵀ·b` reuses
    /// this body). Same [`KC`] shared-dim tiling; the output row is
    /// register-blocked 32/16/4 columns wide (8/4/1 vector accumulators
    /// held across the whole panel), so each shared-dim step issues one
    /// broadcast plus independent `_mm256_fmadd_pd` chains instead of
    /// reloading the output row per k group.
    ///
    /// # Safety
    ///
    /// Requires AVX2+FMA, and the caller-validated shape contract:
    /// `ad` holds at least `(m-1)*stride + off + (k-1)*astep + 1`
    /// elements, `bd` at least `k*n`, `od` at least `m*n`.
    #[allow(clippy::too_many_arguments)] // raw-slice mirror of the scalar body
    #[target_feature(enable = "avx2", enable = "fma")]
    pub(in super::super) unsafe fn matmul_panel_acc(
        m: usize,
        k: usize,
        n: usize,
        ad: &[f64],
        stride: usize,
        off: usize,
        astep: usize,
        bd: &[f64],
        od: &mut [f64],
    ) {
        if k < 4 {
            // mul+add instead of FMA so rounding matches the scalar
            // backend bit-for-bit — the sparse/dense regression test pins
            // that k<4 products are exactly the naive reference on every
            // backend. FMA would skip the intermediate product rounding.
            matmul_panel_acc_short_k(m, k, n, ad, stride, off, astep, bd, od);
            return;
        }
        let ap = ad.as_ptr();
        let bp = bd.as_ptr();
        let op = od.as_mut_ptr();
        let mut kb = 0;
        while kb < k {
            let kend = (kb + KC).min(k);
            for i in 0..m {
                let arow = ap.add(i * stride + off);
                let orow = op.add(i * n);
                let mut j = 0;
                while j + 32 <= n {
                    let oj = orow.add(j);
                    let mut acc0 = _mm256_loadu_pd(oj);
                    let mut acc1 = _mm256_loadu_pd(oj.add(4));
                    let mut acc2 = _mm256_loadu_pd(oj.add(8));
                    let mut acc3 = _mm256_loadu_pd(oj.add(12));
                    let mut acc4 = _mm256_loadu_pd(oj.add(16));
                    let mut acc5 = _mm256_loadu_pd(oj.add(20));
                    let mut acc6 = _mm256_loadu_pd(oj.add(24));
                    let mut acc7 = _mm256_loadu_pd(oj.add(28));
                    for p in kb..kend {
                        let av = _mm256_set1_pd(*arow.add(p * astep));
                        let bj = bp.add(p * n + j);
                        acc0 = _mm256_fmadd_pd(av, _mm256_loadu_pd(bj), acc0);
                        acc1 = _mm256_fmadd_pd(av, _mm256_loadu_pd(bj.add(4)), acc1);
                        acc2 = _mm256_fmadd_pd(av, _mm256_loadu_pd(bj.add(8)), acc2);
                        acc3 = _mm256_fmadd_pd(av, _mm256_loadu_pd(bj.add(12)), acc3);
                        acc4 = _mm256_fmadd_pd(av, _mm256_loadu_pd(bj.add(16)), acc4);
                        acc5 = _mm256_fmadd_pd(av, _mm256_loadu_pd(bj.add(20)), acc5);
                        acc6 = _mm256_fmadd_pd(av, _mm256_loadu_pd(bj.add(24)), acc6);
                        acc7 = _mm256_fmadd_pd(av, _mm256_loadu_pd(bj.add(28)), acc7);
                    }
                    _mm256_storeu_pd(oj, acc0);
                    _mm256_storeu_pd(oj.add(4), acc1);
                    _mm256_storeu_pd(oj.add(8), acc2);
                    _mm256_storeu_pd(oj.add(12), acc3);
                    _mm256_storeu_pd(oj.add(16), acc4);
                    _mm256_storeu_pd(oj.add(20), acc5);
                    _mm256_storeu_pd(oj.add(24), acc6);
                    _mm256_storeu_pd(oj.add(28), acc7);
                    j += 32;
                }
                while j + 16 <= n {
                    let oj = orow.add(j);
                    let mut acc0 = _mm256_loadu_pd(oj);
                    let mut acc1 = _mm256_loadu_pd(oj.add(4));
                    let mut acc2 = _mm256_loadu_pd(oj.add(8));
                    let mut acc3 = _mm256_loadu_pd(oj.add(12));
                    for p in kb..kend {
                        let av = _mm256_set1_pd(*arow.add(p * astep));
                        let bj = bp.add(p * n + j);
                        acc0 = _mm256_fmadd_pd(av, _mm256_loadu_pd(bj), acc0);
                        acc1 = _mm256_fmadd_pd(av, _mm256_loadu_pd(bj.add(4)), acc1);
                        acc2 = _mm256_fmadd_pd(av, _mm256_loadu_pd(bj.add(8)), acc2);
                        acc3 = _mm256_fmadd_pd(av, _mm256_loadu_pd(bj.add(12)), acc3);
                    }
                    _mm256_storeu_pd(oj, acc0);
                    _mm256_storeu_pd(oj.add(4), acc1);
                    _mm256_storeu_pd(oj.add(8), acc2);
                    _mm256_storeu_pd(oj.add(12), acc3);
                    j += 16;
                }
                while j + 4 <= n {
                    let oj = orow.add(j);
                    let mut acc = _mm256_loadu_pd(oj);
                    for p in kb..kend {
                        let av = _mm256_set1_pd(*arow.add(p * astep));
                        acc = _mm256_fmadd_pd(av, _mm256_loadu_pd(bp.add(p * n + j)), acc);
                    }
                    _mm256_storeu_pd(oj, acc);
                    j += 4;
                }
                while j < n {
                    let mut sum = *orow.add(j);
                    for p in kb..kend {
                        sum = (*arow.add(p * astep)).mul_add(*bp.add(p * n + j), sum);
                    }
                    *orow.add(j) = sum;
                    j += 1;
                }
            }
            kb = kend;
        }
    }

    /// `k < 4` fallback for [`matmul_panel_acc`]: vector mul+add (no FMA)
    /// in the exact per-k accumulation order of the scalar backend, so
    /// short-shared-dim products stay bitwise identical to the reference.
    ///
    /// # Safety
    ///
    /// Same contract as [`matmul_panel_acc`].
    #[allow(clippy::too_many_arguments)]
    #[target_feature(enable = "avx2", enable = "fma")]
    unsafe fn matmul_panel_acc_short_k(
        m: usize,
        k: usize,
        n: usize,
        ad: &[f64],
        stride: usize,
        off: usize,
        astep: usize,
        bd: &[f64],
        od: &mut [f64],
    ) {
        let ap = ad.as_ptr();
        let bp = bd.as_ptr();
        let op = od.as_mut_ptr();
        for i in 0..m {
            let arow = ap.add(i * stride + off);
            let orow = op.add(i * n);
            for p in 0..k {
                let s = *arow.add(p * astep);
                let av = _mm256_set1_pd(s);
                let brow = bp.add(p * n);
                let mut j = 0;
                while j + 4 <= n {
                    let acc = _mm256_add_pd(
                        _mm256_loadu_pd(orow.add(j)),
                        _mm256_mul_pd(av, _mm256_loadu_pd(brow.add(j))),
                    );
                    _mm256_storeu_pd(orow.add(j), acc);
                    j += 4;
                }
                while j < n {
                    *orow.add(j) += s * *brow.add(j);
                    j += 1;
                }
            }
        }
    }

    /// `out[p x n] += aᵀ · b`, reusing the register-blocked panel body:
    /// out-row `pi` reads A's column `pi` (`ad[pi + i*p]`, so `stride = 1`,
    /// `astep = p`), with the batch dimension `m` as the shared dimension.
    ///
    /// # Safety
    ///
    /// Requires AVX2+FMA; `ad` at least `m*p`, `bd` at least `m*n`, `od`
    /// at least `p*n`.
    #[target_feature(enable = "avx2", enable = "fma")]
    pub(in super::super) unsafe fn matmul_at_b_acc(
        m: usize,
        p: usize,
        n: usize,
        ad: &[f64],
        bd: &[f64],
        od: &mut [f64],
    ) {
        matmul_panel_acc(p, m, n, ad, 1, 0, p, bd, od);
    }

    /// `out[m x q] += a · bᵀ` as row-dot products: two independent 4-lane
    /// FMA accumulators (8 elements per iteration) with a horizontal
    /// reduction and scalar tail per output element.
    ///
    /// # Safety
    ///
    /// Requires AVX2+FMA; `ad` at least `m*k`, `bd` at least `q*k`, `od`
    /// at least `m*q`.
    #[target_feature(enable = "avx2", enable = "fma")]
    pub(in super::super) unsafe fn matmul_a_bt_acc(
        m: usize,
        k: usize,
        q: usize,
        ad: &[f64],
        bd: &[f64],
        od: &mut [f64],
    ) {
        let ap = ad.as_ptr();
        let bp = bd.as_ptr();
        let op = od.as_mut_ptr();
        for i in 0..m {
            let arow = ap.add(i * k);
            let orow = op.add(i * q);
            for r in 0..q {
                let brow = bp.add(r * k);
                let mut acc0 = _mm256_setzero_pd();
                let mut acc1 = _mm256_setzero_pd();
                let mut p = 0;
                while p + 8 <= k {
                    acc0 = _mm256_fmadd_pd(
                        _mm256_loadu_pd(arow.add(p)),
                        _mm256_loadu_pd(brow.add(p)),
                        acc0,
                    );
                    acc1 = _mm256_fmadd_pd(
                        _mm256_loadu_pd(arow.add(p + 4)),
                        _mm256_loadu_pd(brow.add(p + 4)),
                        acc1,
                    );
                    p += 8;
                }
                if p + 4 <= k {
                    acc0 = _mm256_fmadd_pd(
                        _mm256_loadu_pd(arow.add(p)),
                        _mm256_loadu_pd(brow.add(p)),
                        acc0,
                    );
                    p += 4;
                }
                let mut s = hsum(_mm256_add_pd(acc0, acc1));
                while p < k {
                    s += *arow.add(p) * *brow.add(p);
                    p += 1;
                }
                *orow.add(r) += s;
            }
        }
    }

    /// `out[1 x n] += column sums of a[rows x n]`, 4 columns per lane.
    ///
    /// # Safety
    ///
    /// Requires AVX2+FMA; `ad` at least `rows*n`, `od` at least `n`.
    #[target_feature(enable = "avx2", enable = "fma")]
    pub(in super::super) unsafe fn sum_rows_acc(rows: usize, n: usize, ad: &[f64], od: &mut [f64]) {
        let ap = ad.as_ptr();
        let op = od.as_mut_ptr();
        for r in 0..rows {
            let row = ap.add(r * n);
            let mut j = 0;
            while j + 4 <= n {
                let acc = _mm256_add_pd(_mm256_loadu_pd(op.add(j)), _mm256_loadu_pd(row.add(j)));
                _mm256_storeu_pd(op.add(j), acc);
                j += 4;
            }
            while j < n {
                *op.add(j) += *row.add(j);
                j += 1;
            }
        }
    }

    /// In-place ReLU: `v = max(v, 0)` (`_mm256_max_pd(v, 0)` returns the
    /// second operand for NaN inputs, matching `f64::max(v, 0.0)`).
    ///
    /// # Safety
    ///
    /// Requires AVX2+FMA.
    #[target_feature(enable = "avx2", enable = "fma")]
    pub(in super::super) unsafe fn relu(data: &mut [f64]) {
        let zero = _mm256_setzero_pd();
        let n = data.len();
        let p = data.as_mut_ptr();
        let mut j = 0;
        while j + 4 <= n {
            _mm256_storeu_pd(p.add(j), _mm256_max_pd(_mm256_loadu_pd(p.add(j)), zero));
            j += 4;
        }
        while j < n {
            *p.add(j) = (*p.add(j)).max(0.0);
            j += 1;
        }
    }

    /// Out-of-place ReLU: `dst = max(src, 0)`.
    ///
    /// # Safety
    ///
    /// Requires AVX2+FMA; `src` and `dst` must have equal lengths.
    #[target_feature(enable = "avx2", enable = "fma")]
    pub(in super::super) unsafe fn relu_to(src: &[f64], dst: &mut [f64]) {
        let zero = _mm256_setzero_pd();
        let n = src.len();
        let (sp, dp) = (src.as_ptr(), dst.as_mut_ptr());
        let mut j = 0;
        while j + 4 <= n {
            _mm256_storeu_pd(dp.add(j), _mm256_max_pd(_mm256_loadu_pd(sp.add(j)), zero));
            j += 4;
        }
        while j < n {
            *dp.add(j) = (*sp.add(j)).max(0.0);
            j += 1;
        }
    }

    /// `out = g ⊙ act'(y)` with the derivative computed on lanes.
    ///
    /// # Safety
    ///
    /// Requires AVX2+FMA; all slices must have equal lengths.
    #[target_feature(enable = "avx2", enable = "fma")]
    pub(in super::super) unsafe fn hadamard_act_derivative(
        g: &[f64],
        y: &[f64],
        act: Activation,
        out: &mut [f64],
    ) {
        let n = out.len();
        let (gp, yp, op) = (g.as_ptr(), y.as_ptr(), out.as_mut_ptr());
        let mut j = 0;
        while j + 4 <= n {
            let d = act_derivative_v(act, _mm256_loadu_pd(yp.add(j)));
            _mm256_storeu_pd(op.add(j), _mm256_mul_pd(_mm256_loadu_pd(gp.add(j)), d));
            j += 4;
        }
        while j < n {
            *op.add(j) = *gp.add(j) * act.derivative_from_output(*yp.add(j));
            j += 1;
        }
    }

    /// `out = a ⊙ b`.
    ///
    /// # Safety
    ///
    /// Requires AVX2+FMA; all slices must have equal lengths.
    #[target_feature(enable = "avx2", enable = "fma")]
    pub(in super::super) unsafe fn hadamard(a: &[f64], b: &[f64], out: &mut [f64]) {
        let n = out.len();
        let (ap, bp, op) = (a.as_ptr(), b.as_ptr(), out.as_mut_ptr());
        let mut j = 0;
        while j + 4 <= n {
            _mm256_storeu_pd(
                op.add(j),
                _mm256_mul_pd(_mm256_loadu_pd(ap.add(j)), _mm256_loadu_pd(bp.add(j))),
            );
            j += 4;
        }
        while j < n {
            *op.add(j) = *ap.add(j) * *bp.add(j);
            j += 1;
        }
    }

    /// `out = a ⊙ b + c ⊙ d` (one multiply, one FMA per lane group).
    ///
    /// # Safety
    ///
    /// Requires AVX2+FMA; all slices must have equal lengths.
    #[target_feature(enable = "avx2", enable = "fma")]
    pub(in super::super) unsafe fn mul_add_mul(
        a: &[f64],
        b: &[f64],
        c: &[f64],
        d: &[f64],
        out: &mut [f64],
    ) {
        let n = out.len();
        let (ap, bp, cp, dp, op) = (
            a.as_ptr(),
            b.as_ptr(),
            c.as_ptr(),
            d.as_ptr(),
            out.as_mut_ptr(),
        );
        let mut j = 0;
        while j + 4 <= n {
            let ab = _mm256_mul_pd(_mm256_loadu_pd(ap.add(j)), _mm256_loadu_pd(bp.add(j)));
            let r = _mm256_fmadd_pd(_mm256_loadu_pd(cp.add(j)), _mm256_loadu_pd(dp.add(j)), ab);
            _mm256_storeu_pd(op.add(j), r);
            j += 4;
        }
        while j < n {
            *op.add(j) = *ap.add(j) * *bp.add(j) + *cp.add(j) * *dp.add(j);
            j += 1;
        }
    }

    /// `out = (1 - t) ⊙ a + t ⊙ b`.
    ///
    /// # Safety
    ///
    /// Requires AVX2+FMA; all slices must have equal lengths.
    #[target_feature(enable = "avx2", enable = "fma")]
    pub(in super::super) unsafe fn convex_combine(
        t: &[f64],
        a: &[f64],
        b: &[f64],
        out: &mut [f64],
    ) {
        let one = _mm256_set1_pd(1.0);
        let n = out.len();
        let (tp, ap, bp, op) = (t.as_ptr(), a.as_ptr(), b.as_ptr(), out.as_mut_ptr());
        let mut j = 0;
        while j + 4 <= n {
            let tv = _mm256_loadu_pd(tp.add(j));
            let keep = _mm256_mul_pd(_mm256_sub_pd(one, tv), _mm256_loadu_pd(ap.add(j)));
            let r = _mm256_fmadd_pd(tv, _mm256_loadu_pd(bp.add(j)), keep);
            _mm256_storeu_pd(op.add(j), r);
            j += 4;
        }
        while j < n {
            *op.add(j) = (1.0 - *tp.add(j)) * *ap.add(j) + *tp.add(j) * *bp.add(j);
            j += 1;
        }
    }

    /// Fused LSTM backward element-wise pass (equations in the parent
    /// module's `lstm_backward_elementwise` docs); all derivative math is
    /// polynomial, so the whole pass runs on lanes.
    ///
    /// # Safety
    ///
    /// Requires AVX2+FMA; every slice must have `dh.len()` elements.
    #[allow(clippy::too_many_arguments)] // the LSTM cell's full cached state
    #[target_feature(enable = "avx2", enable = "fma")]
    pub(in super::super) unsafe fn lstm_backward_elementwise(
        dh: &[f64],
        dc: &[f64],
        a: &[f64],
        o: &[f64],
        i: &[f64],
        f: &[f64],
        g: &[f64],
        c_prev: &[f64],
        act: Activation,
        dz_i: &mut [f64],
        dz_f: &mut [f64],
        dz_o: &mut [f64],
        dz_g: &mut [f64],
        dc_prev: &mut [f64],
    ) {
        let sig = Activation::Sigmoid;
        let n = dh.len();
        let (dhp, dcp_in) = (dh.as_ptr(), dc.as_ptr());
        let (ap, op_, ip, fp, gp, cpp) = (
            a.as_ptr(),
            o.as_ptr(),
            i.as_ptr(),
            f.as_ptr(),
            g.as_ptr(),
            c_prev.as_ptr(),
        );
        let (zip, zfp, zop, zgp, dcpp) = (
            dz_i.as_mut_ptr(),
            dz_f.as_mut_ptr(),
            dz_o.as_mut_ptr(),
            dz_g.as_mut_ptr(),
            dc_prev.as_mut_ptr(),
        );
        let mut j = 0;
        while j + 4 <= n {
            let dhv = _mm256_loadu_pd(dhp.add(j));
            let av = _mm256_loadu_pd(ap.add(j));
            let ov = _mm256_loadu_pd(op_.add(j));
            let iv = _mm256_loadu_pd(ip.add(j));
            let fv = _mm256_loadu_pd(fp.add(j));
            let gv = _mm256_loadu_pd(gp.add(j));
            let cpv = _mm256_loadu_pd(cpp.add(j));
            // dc_total = dc + dh·o·act'(a)
            let dho = _mm256_mul_pd(dhv, ov);
            let dc_total = _mm256_fmadd_pd(
                dho,
                act_derivative_v(act, av),
                _mm256_loadu_pd(dcp_in.add(j)),
            );
            let dha = _mm256_mul_pd(dhv, av);
            _mm256_storeu_pd(zop.add(j), _mm256_mul_pd(dha, act_derivative_v(sig, ov)));
            let dcc = _mm256_mul_pd(dc_total, cpv);
            _mm256_storeu_pd(zfp.add(j), _mm256_mul_pd(dcc, act_derivative_v(sig, fv)));
            let dcg = _mm256_mul_pd(dc_total, gv);
            _mm256_storeu_pd(zip.add(j), _mm256_mul_pd(dcg, act_derivative_v(sig, iv)));
            let dci = _mm256_mul_pd(dc_total, iv);
            _mm256_storeu_pd(zgp.add(j), _mm256_mul_pd(dci, act_derivative_v(act, gv)));
            _mm256_storeu_pd(dcpp.add(j), _mm256_mul_pd(dc_total, fv));
            j += 4;
        }
        while j < n {
            let dc_total =
                *dcp_in.add(j) + *dhp.add(j) * *op_.add(j) * act.derivative_from_output(*ap.add(j));
            *zop.add(j) = *dhp.add(j) * *ap.add(j) * sig.derivative_from_output(*op_.add(j));
            *zfp.add(j) = dc_total * *cpp.add(j) * sig.derivative_from_output(*fp.add(j));
            *zip.add(j) = dc_total * *gp.add(j) * sig.derivative_from_output(*ip.add(j));
            *zgp.add(j) = dc_total * *ip.add(j) * act.derivative_from_output(*gp.add(j));
            *dcpp.add(j) = dc_total * *fp.add(j);
            j += 1;
        }
    }

    /// Fused GRU update-gate backward pass (equations in the parent
    /// module's `gru_backward_gates` docs).
    ///
    /// # Safety
    ///
    /// Requires AVX2+FMA; every slice must have `dh.len()` elements.
    #[allow(clippy::too_many_arguments)] // the GRU cell's full cached state
    #[target_feature(enable = "avx2", enable = "fma")]
    pub(in super::super) unsafe fn gru_backward_gates(
        dh: &[f64],
        z: &[f64],
        cand: &[f64],
        h_prev: &[f64],
        act: Activation,
        dz_pre: &mut [f64],
        dcand_pre: &mut [f64],
        dh_prev: &mut [f64],
    ) {
        let sig = Activation::Sigmoid;
        let one = _mm256_set1_pd(1.0);
        let n = dh.len();
        let (dhp, zp, cp, hpp) = (dh.as_ptr(), z.as_ptr(), cand.as_ptr(), h_prev.as_ptr());
        let (dzp, dcp, dhpp) = (
            dz_pre.as_mut_ptr(),
            dcand_pre.as_mut_ptr(),
            dh_prev.as_mut_ptr(),
        );
        let mut j = 0;
        while j + 4 <= n {
            let dhv = _mm256_loadu_pd(dhp.add(j));
            let zv = _mm256_loadu_pd(zp.add(j));
            let cv = _mm256_loadu_pd(cp.add(j));
            let hpv = _mm256_loadu_pd(hpp.add(j));
            let diff = _mm256_mul_pd(dhv, _mm256_sub_pd(cv, hpv));
            _mm256_storeu_pd(dzp.add(j), _mm256_mul_pd(diff, act_derivative_v(sig, zv)));
            let dhz = _mm256_mul_pd(dhv, zv);
            _mm256_storeu_pd(dcp.add(j), _mm256_mul_pd(dhz, act_derivative_v(act, cv)));
            _mm256_storeu_pd(dhpp.add(j), _mm256_mul_pd(dhv, _mm256_sub_pd(one, zv)));
            j += 4;
        }
        while j < n {
            *dzp.add(j) =
                *dhp.add(j) * (*cp.add(j) - *hpp.add(j)) * sig.derivative_from_output(*zp.add(j));
            *dcp.add(j) = *dhp.add(j) * *zp.add(j) * act.derivative_from_output(*cp.add(j));
            *dhpp.add(j) = *dhp.add(j) * (1.0 - *zp.add(j));
            j += 1;
        }
    }

    /// Fused GRU reset-gate backward pass (equations in the parent
    /// module's `gru_backward_reset` docs); `dh_prev` accumulates.
    ///
    /// # Safety
    ///
    /// Requires AVX2+FMA; every slice must have `d_rh.len()` elements.
    #[target_feature(enable = "avx2", enable = "fma")]
    pub(in super::super) unsafe fn gru_backward_reset(
        d_rh: &[f64],
        r: &[f64],
        h_prev: &[f64],
        dr_pre: &mut [f64],
        dh_prev: &mut [f64],
        rh: &mut [f64],
    ) {
        let sig = Activation::Sigmoid;
        let n = d_rh.len();
        let (dp, rp, hpp) = (d_rh.as_ptr(), r.as_ptr(), h_prev.as_ptr());
        let (drp, dhpp, rhp) = (dr_pre.as_mut_ptr(), dh_prev.as_mut_ptr(), rh.as_mut_ptr());
        let mut j = 0;
        while j + 4 <= n {
            let dv = _mm256_loadu_pd(dp.add(j));
            let rv = _mm256_loadu_pd(rp.add(j));
            let hpv = _mm256_loadu_pd(hpp.add(j));
            let dhpv = _mm256_mul_pd(dv, hpv);
            _mm256_storeu_pd(drp.add(j), _mm256_mul_pd(dhpv, act_derivative_v(sig, rv)));
            let acc = _mm256_fmadd_pd(dv, rv, _mm256_loadu_pd(dhpp.add(j)));
            _mm256_storeu_pd(dhpp.add(j), acc);
            _mm256_storeu_pd(rhp.add(j), _mm256_mul_pd(rv, hpv));
            j += 4;
        }
        while j < n {
            *drp.add(j) = *dp.add(j) * *hpp.add(j) * sig.derivative_from_output(*rp.add(j));
            *dhpp.add(j) += *dp.add(j) * *rp.add(j);
            *rhp.add(j) = *rp.add(j) * *hpp.add(j);
            j += 1;
        }
    }
}
