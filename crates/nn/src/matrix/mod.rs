//! Dense row-major matrix used throughout the network implementation.
//!
//! The matrix is deliberately minimal: it supports exactly the operations
//! backpropagation needs (matrix product, transpose, element-wise maps and
//! zips, row broadcasts and column reductions) with validated shapes.
//!
//! The hot-path compute lives in [`kernels`]: blocked, transpose-aware
//! matrix-product routines that write into caller-provided buffers, so the
//! training loop performs no per-batch allocations. [`MatrixView`] provides
//! borrowed row-range views so callers can feed sub-batches to the kernels
//! without copying. [`kernels::reference`] keeps the original naive
//! implementations around as the oracle for equivalence tests and "before"
//! benchmarks.

use std::fmt;
use std::ops::Range;

use serde::{Deserialize, Serialize};

/// A row-major `rows x cols` matrix of `f64`.
///
/// # Examples
///
/// ```
/// use geomancy_nn::matrix::Matrix;
///
/// let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
/// let b = Matrix::identity(2);
/// assert_eq!(a.dot(&b), a);
/// ```
#[derive(Debug, Default, Clone, PartialEq, Serialize, Deserialize)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

/// A borrowed view of a contiguous row range of a [`Matrix`].
///
/// Views let the training loop and the placement engine hand sub-batches to
/// the [`kernels`] without materializing copies (`slice_rows` clones its
/// range; `view_rows` does not).
#[derive(Debug, Clone, Copy)]
pub struct MatrixView<'a> {
    rows: usize,
    cols: usize,
    data: &'a [f64],
}

impl<'a> MatrixView<'a> {
    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)` pair.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the view holds no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// The viewed row-major buffer.
    pub fn as_slice(&self) -> &'a [f64] {
        self.data
    }

    /// The `r`-th row as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `r >= self.rows()`.
    pub fn row(&self, r: usize) -> &'a [f64] {
        assert!(
            r < self.rows,
            "row {r} out of bounds for {} rows",
            self.rows
        );
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// A sub-view of rows `range.start..range.end`.
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds or reversed.
    pub fn view_rows(&self, range: Range<usize>) -> MatrixView<'a> {
        assert!(
            range.start <= range.end && range.end <= self.rows,
            "row range out of bounds"
        );
        MatrixView {
            rows: range.end - range.start,
            cols: self.cols,
            data: &self.data[range.start * self.cols..range.end * self.cols],
        }
    }

    /// Materializes the view as an owned [`Matrix`].
    pub fn to_matrix(&self) -> Matrix {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.to_vec(),
        }
    }
}

impl std::ops::Index<(usize, usize)> for MatrixView<'_> {
    type Output = f64;

    fn index(&self, (r, c): (usize, usize)) -> &f64 {
        assert!(
            r < self.rows && c < self.cols,
            "index ({r},{c}) out of bounds"
        );
        &self.data[r * self.cols + c]
    }
}

impl<'a> From<&'a Matrix> for MatrixView<'a> {
    fn from(m: &'a Matrix) -> Self {
        m.view()
    }
}

impl Matrix {
    /// Creates a `rows x cols` matrix filled with zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates a `rows x cols` matrix where every element is `value`.
    pub fn filled(rows: usize, cols: usize, value: f64) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![value; rows * cols],
        }
    }

    /// Creates the `n x n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Creates a matrix from a flat row-major buffer.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "buffer length {} does not match shape {}x{}",
            data.len(),
            rows,
            cols
        );
        Matrix { rows, cols, data }
    }

    /// Creates a matrix from a slice of row slices.
    ///
    /// # Panics
    ///
    /// Panics if the rows have inconsistent lengths or `rows` is empty.
    pub fn from_rows(rows: &[&[f64]]) -> Self {
        assert!(!rows.is_empty(), "matrix must have at least one row");
        let cols = rows[0].len();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for (i, row) in rows.iter().enumerate() {
            assert_eq!(
                row.len(),
                cols,
                "row {i} has length {} != {cols}",
                row.len()
            );
            data.extend_from_slice(row);
        }
        Matrix {
            rows: rows.len(),
            cols,
            data,
        }
    }

    /// Creates a `1 x n` row vector.
    pub fn row_vector(values: &[f64]) -> Self {
        Matrix::from_vec(1, values.len(), values.to_vec())
    }

    /// Creates an `n x 1` column vector.
    pub fn column_vector(values: &[f64]) -> Self {
        Matrix::from_vec(values.len(), 1, values.to_vec())
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)` pair.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the matrix holds no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Immutable view of the underlying row-major buffer.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutable view of the underlying row-major buffer.
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// The `r`-th row as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `r >= self.rows()`.
    pub fn row(&self, r: usize) -> &[f64] {
        assert!(
            r < self.rows,
            "row {r} out of bounds for {} rows",
            self.rows
        );
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Copies the values of row `r` from `values`.
    ///
    /// # Panics
    ///
    /// Panics if `r` is out of bounds or `values.len() != self.cols()`.
    pub fn set_row(&mut self, r: usize, values: &[f64]) {
        assert!(
            r < self.rows,
            "row {r} out of bounds for {} rows",
            self.rows
        );
        assert_eq!(values.len(), self.cols, "row width mismatch");
        self.data[r * self.cols..(r + 1) * self.cols].copy_from_slice(values);
    }

    /// A borrowed view of the whole matrix.
    pub fn view(&self) -> MatrixView<'_> {
        MatrixView {
            rows: self.rows,
            cols: self.cols,
            data: &self.data,
        }
    }

    /// A borrowed view of rows `range.start..range.end` (no copy; compare
    /// [`Matrix::slice_rows`], which clones the range).
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds or reversed.
    pub fn view_rows(&self, range: Range<usize>) -> MatrixView<'_> {
        self.view().view_rows(range)
    }

    /// Reshapes the matrix in place to `rows x cols`, reusing the existing
    /// allocation whenever the capacity suffices. Newly exposed elements are
    /// zero; surviving elements keep their (now meaningless) values — this is
    /// a buffer-management primitive for the [`kernels`], which overwrite
    /// their output entirely.
    pub fn resize(&mut self, rows: usize, cols: usize) {
        self.rows = rows;
        self.cols = cols;
        self.data.resize(rows * cols, 0.0);
    }

    /// Sets every element to `value`.
    pub fn fill(&mut self, value: f64) {
        self.data.fill(value);
    }

    /// Makes `self` an exact copy of `src`, reusing the allocation when
    /// possible.
    pub fn copy_from(&mut self, src: MatrixView<'_>) {
        self.resize(src.rows(), src.cols());
        self.data.copy_from_slice(src.as_slice());
    }

    /// Matrix product `self * other`.
    ///
    /// Delegates to [`kernels::matmul_acc`]; unlike the original scalar
    /// triple loop there is no data-dependent skip of zero elements, so
    /// sparse and dense inputs take the identical code path (and the loop
    /// body stays branch-free and vectorizable).
    ///
    /// # Panics
    ///
    /// Panics if `self.cols() != other.rows()`.
    pub fn dot(&self, other: &Matrix) -> Matrix {
        assert_eq!(
            self.cols, other.rows,
            "shape mismatch for dot: {}x{} * {}x{}",
            self.rows, self.cols, other.rows, other.cols
        );
        let mut out = Matrix::zeros(self.rows, other.cols);
        kernels::matmul_acc(self.view(), other, &mut out);
        out
    }

    /// Transposed copy of the matrix.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                out.data[j * self.rows + i] = self.data[i * self.cols + j];
            }
        }
        out
    }

    /// Element-wise application of `f`, returning a new matrix.
    pub fn map(&self, f: impl Fn(f64) -> f64) -> Matrix {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&x| f(x)).collect(),
        }
    }

    /// Element-wise in-place application of `f`.
    pub fn map_inplace(&mut self, f: impl Fn(f64) -> f64) {
        for x in &mut self.data {
            *x = f(*x);
        }
    }

    /// Element-wise combination `f(self[i], other[i])`, returning a new matrix.
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn zip(&self, other: &Matrix, f: impl Fn(f64, f64) -> f64) -> Matrix {
        self.assert_same_shape(other, "zip");
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(&other.data)
                .map(|(&a, &b)| f(a, b))
                .collect(),
        }
    }

    /// Element-wise sum.
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn add(&self, other: &Matrix) -> Matrix {
        self.zip(other, |a, b| a + b)
    }

    /// Element-wise difference `self - other`.
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn sub(&self, other: &Matrix) -> Matrix {
        self.zip(other, |a, b| a - b)
    }

    /// Element-wise (Hadamard) product.
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn hadamard(&self, other: &Matrix) -> Matrix {
        self.zip(other, |a, b| a * b)
    }

    /// In-place element-wise accumulation `self += other`.
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn add_assign(&mut self, other: &Matrix) {
        self.assert_same_shape(other, "add_assign");
        for (a, &b) in self.data.iter_mut().zip(&other.data) {
            *a += b;
        }
    }

    /// Scalar multiple of the matrix.
    pub fn scale(&self, s: f64) -> Matrix {
        self.map(|x| x * s)
    }

    /// Adds a `1 x cols` row vector to every row (bias broadcast).
    ///
    /// # Panics
    ///
    /// Panics if `bias` is not `1 x self.cols()`.
    pub fn add_row_broadcast(&self, bias: &Matrix) -> Matrix {
        assert_eq!(bias.rows, 1, "broadcast source must be a row vector");
        assert_eq!(bias.cols, self.cols, "broadcast width mismatch");
        let mut out = self.clone();
        for i in 0..out.rows {
            for j in 0..out.cols {
                out.data[i * out.cols + j] += bias.data[j];
            }
        }
        out
    }

    /// Sums every row into a single `1 x cols` row vector (bias gradient).
    pub fn sum_rows(&self) -> Matrix {
        let mut out = Matrix::zeros(1, self.cols);
        for i in 0..self.rows {
            for j in 0..self.cols {
                out.data[j] += self.data[i * self.cols + j];
            }
        }
        out
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f64 {
        self.data.iter().sum()
    }

    /// Arithmetic mean of all elements; `0.0` for an empty matrix.
    pub fn mean(&self) -> f64 {
        if self.data.is_empty() {
            0.0
        } else {
            self.sum() / self.data.len() as f64
        }
    }

    /// Largest absolute value in the matrix; `0.0` for an empty matrix.
    pub fn max_abs(&self) -> f64 {
        self.data.iter().fold(0.0_f64, |m, &x| m.max(x.abs()))
    }

    /// Clamps every element to `[-limit, limit]` in place (gradient clipping).
    ///
    /// # Panics
    ///
    /// Panics if `limit` is not positive.
    pub fn clip_inplace(&mut self, limit: f64) {
        assert!(limit > 0.0, "clip limit must be positive");
        for x in &mut self.data {
            *x = x.clamp(-limit, limit);
        }
    }

    /// Returns the sub-matrix made of rows `range.start..range.end`.
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds or reversed.
    pub fn slice_rows(&self, range: std::ops::Range<usize>) -> Matrix {
        assert!(
            range.start <= range.end && range.end <= self.rows,
            "row range out of bounds"
        );
        Matrix {
            rows: range.end - range.start,
            cols: self.cols,
            data: self.data[range.start * self.cols..range.end * self.cols].to_vec(),
        }
    }

    /// Returns the sub-matrix made of columns `range.start..range.end`.
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds or reversed.
    pub fn slice_cols(&self, range: std::ops::Range<usize>) -> Matrix {
        assert!(
            range.start <= range.end && range.end <= self.cols,
            "column range out of bounds"
        );
        let w = range.end - range.start;
        let mut data = Vec::with_capacity(self.rows * w);
        for i in 0..self.rows {
            data.extend_from_slice(
                &self.data[i * self.cols + range.start..i * self.cols + range.end],
            );
        }
        Matrix {
            rows: self.rows,
            cols: w,
            data,
        }
    }

    /// Stacks `self` on top of `other`.
    ///
    /// # Panics
    ///
    /// Panics if the column counts differ.
    pub fn vstack(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.cols, "vstack width mismatch");
        let mut data = self.data.clone();
        data.extend_from_slice(&other.data);
        Matrix {
            rows: self.rows + other.rows,
            cols: self.cols,
            data,
        }
    }

    /// Whether any element is NaN or infinite.
    pub fn has_non_finite(&self) -> bool {
        self.data.iter().any(|x| !x.is_finite())
    }

    fn assert_same_shape(&self, other: &Matrix, op: &str) {
        assert_eq!(
            (self.rows, self.cols),
            (other.rows, other.cols),
            "shape mismatch for {op}: {}x{} vs {}x{}",
            self.rows,
            self.cols,
            other.rows,
            other.cols
        );
    }
}

impl std::ops::Index<(usize, usize)> for Matrix {
    type Output = f64;

    fn index(&self, (r, c): (usize, usize)) -> &f64 {
        assert!(
            r < self.rows && c < self.cols,
            "index ({r},{c}) out of bounds"
        );
        &self.data[r * self.cols + c]
    }
}

impl std::ops::IndexMut<(usize, usize)> for Matrix {
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f64 {
        assert!(
            r < self.rows && c < self.cols,
            "index ({r},{c}) out of bounds"
        );
        &mut self.data[r * self.cols + c]
    }
}

impl fmt::Display for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        for i in 0..self.rows.min(8) {
            write!(f, "  [")?;
            for j in 0..self.cols.min(8) {
                write!(f, "{:10.4}", self[(i, j)])?;
                if j + 1 < self.cols.min(8) {
                    write!(f, ", ")?;
                }
            }
            if self.cols > 8 {
                write!(f, ", …")?;
            }
            writeln!(f, "]")?;
        }
        if self.rows > 8 {
            writeln!(f, "  …")?;
        }
        write!(f, "]")
    }
}

pub mod kernels;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_has_right_shape_and_values() {
        let m = Matrix::zeros(3, 4);
        assert_eq!(m.shape(), (3, 4));
        assert!(m.as_slice().iter().all(|&x| x == 0.0));
    }

    #[test]
    fn identity_dot_is_noop() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        assert_eq!(a.dot(&Matrix::identity(3)), a);
    }

    #[test]
    fn dot_known_product() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Matrix::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]);
        let c = a.dot(&b);
        assert_eq!(c, Matrix::from_rows(&[&[19.0, 22.0], &[43.0, 50.0]]));
    }

    #[test]
    #[should_panic(expected = "shape mismatch for dot")]
    fn dot_shape_mismatch_panics() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        let _ = a.dot(&b);
    }

    #[test]
    fn transpose_round_trips() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        assert_eq!(a.transpose().transpose(), a);
        assert_eq!(a.transpose().shape(), (3, 2));
        assert_eq!(a.transpose()[(2, 1)], 6.0);
    }

    #[test]
    fn add_sub_hadamard() {
        let a = Matrix::from_rows(&[&[1.0, 2.0]]);
        let b = Matrix::from_rows(&[&[3.0, 5.0]]);
        assert_eq!(a.add(&b), Matrix::from_rows(&[&[4.0, 7.0]]));
        assert_eq!(b.sub(&a), Matrix::from_rows(&[&[2.0, 3.0]]));
        assert_eq!(a.hadamard(&b), Matrix::from_rows(&[&[3.0, 10.0]]));
    }

    #[test]
    fn row_broadcast_adds_bias_to_each_row() {
        let x = Matrix::from_rows(&[&[1.0, 1.0], &[2.0, 2.0]]);
        let b = Matrix::row_vector(&[10.0, 20.0]);
        let y = x.add_row_broadcast(&b);
        assert_eq!(y, Matrix::from_rows(&[&[11.0, 21.0], &[12.0, 22.0]]));
    }

    #[test]
    fn sum_rows_collapses_to_row_vector() {
        let x = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        assert_eq!(x.sum_rows(), Matrix::row_vector(&[4.0, 6.0]));
    }

    #[test]
    fn slice_rows_and_cols() {
        let x = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0], &[7.0, 8.0, 9.0]]);
        assert_eq!(x.slice_rows(1..3).row(0), &[4.0, 5.0, 6.0]);
        assert_eq!(
            x.slice_cols(1..2),
            Matrix::from_rows(&[&[2.0], &[5.0], &[8.0]])
        );
    }

    #[test]
    fn vstack_concatenates() {
        let a = Matrix::from_rows(&[&[1.0, 2.0]]);
        let b = Matrix::from_rows(&[&[3.0, 4.0]]);
        let s = a.vstack(&b);
        assert_eq!(s.shape(), (2, 2));
        assert_eq!(s.row(1), &[3.0, 4.0]);
    }

    #[test]
    fn clip_bounds_values() {
        let mut x = Matrix::from_rows(&[&[-5.0, 0.5, 9.0]]);
        x.clip_inplace(1.0);
        assert_eq!(x, Matrix::from_rows(&[&[-1.0, 0.5, 1.0]]));
    }

    #[test]
    fn mean_and_max_abs() {
        let x = Matrix::from_rows(&[&[-4.0, 2.0, 2.0]]);
        assert!((x.mean() - 0.0).abs() < 1e-12);
        assert_eq!(x.max_abs(), 4.0);
    }

    #[test]
    fn non_finite_detection() {
        let mut x = Matrix::zeros(1, 2);
        assert!(!x.has_non_finite());
        x[(0, 1)] = f64::NAN;
        assert!(x.has_non_finite());
    }

    #[test]
    fn display_never_empty() {
        let s = format!("{}", Matrix::zeros(1, 1));
        assert!(!s.is_empty());
    }
}
