//! Evaluation metrics matching those reported in the paper's Tables II–III.

use crate::matrix::Matrix;

/// Mean ± standard deviation of the absolute relative error, in percent —
/// the accuracy metric of Tables II and III.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RelativeError {
    /// Mean absolute relative error, percent.
    pub mean: f64,
    /// Population standard deviation of the absolute relative error, percent.
    pub std_dev: f64,
    /// Mean *signed* relative error, percent. Its sign tells whether the model
    /// under- (positive) or over-predicts (negative), used by the paper's
    /// prediction-adjustment formula (§V-G).
    pub signed_mean: f64,
}

impl RelativeError {
    /// Computes the absolute relative error statistics between predictions
    /// and targets, in percent.
    ///
    /// Targets with magnitude below `1e-12` are skipped to avoid division by
    /// zero (the paper predicts throughput, which is strictly positive).
    ///
    /// # Panics
    ///
    /// Panics if shapes differ or no usable target remains.
    pub fn compute(prediction: &Matrix, target: &Matrix) -> Self {
        assert_eq!(prediction.shape(), target.shape(), "metric shape mismatch");
        let mut abs_errors = Vec::with_capacity(prediction.len());
        let mut signed_sum = 0.0;
        for (&p, &t) in prediction.as_slice().iter().zip(target.as_slice()) {
            if t.abs() < 1e-12 {
                continue;
            }
            let rel = (t - p) / t;
            abs_errors.push(rel.abs() * 100.0);
            signed_sum += rel * 100.0;
        }
        assert!(!abs_errors.is_empty(), "no non-zero targets to evaluate");
        let n = abs_errors.len() as f64;
        let mean = abs_errors.iter().sum::<f64>() / n;
        let var = abs_errors
            .iter()
            .map(|e| (e - mean) * (e - mean))
            .sum::<f64>()
            / n;
        RelativeError {
            mean,
            std_dev: var.sqrt(),
            signed_mean: signed_sum / n,
        }
    }

    /// Accuracy in percent, as the paper quotes it (`100 - mean error`),
    /// clamped at zero.
    pub fn accuracy(&self) -> f64 {
        (100.0 - self.mean).max(0.0)
    }
}

impl std::fmt::Display for RelativeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:.2} ± {:.2} %", self.mean, self.std_dev)
    }
}

/// Detects the paper's "Diverged" condition: a model that "completely failed
/// to capture the mean and variation of the target value, usually resulting
/// in the same prediction happening over and over again".
///
/// A model is considered diverged when its predictions are (a) numerically
/// non-finite, (b) essentially constant while targets vary, or (c) wildly off
/// scale (mean error above `300 %`).
pub fn is_diverged(prediction: &Matrix, target: &Matrix) -> bool {
    if prediction.has_non_finite() {
        return true;
    }
    let pred_std = std_dev(prediction.as_slice());
    let target_std = std_dev(target.as_slice());
    if target_std > 1e-9 && pred_std < 1e-3 * target_std {
        return true;
    }
    let err = RelativeError::compute(prediction, target);
    err.mean > 300.0
}

fn std_dev(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let n = xs.len() as f64;
    let mean = xs.iter().sum::<f64>() / n;
    (xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_prediction_has_zero_error() {
        let t = Matrix::row_vector(&[1.0, 2.0, 3.0]);
        let e = RelativeError::compute(&t, &t);
        assert_eq!(e.mean, 0.0);
        assert_eq!(e.std_dev, 0.0);
        assert_eq!(e.accuracy(), 100.0);
    }

    #[test]
    fn known_error_values() {
        let p = Matrix::row_vector(&[0.9, 1.1]);
        let t = Matrix::row_vector(&[1.0, 1.0]);
        let e = RelativeError::compute(&p, &t);
        assert!((e.mean - 10.0).abs() < 1e-9);
        assert!(e.std_dev.abs() < 1e-9);
        // Under by 10% then over by 10% → signed mean 0.
        assert!(e.signed_mean.abs() < 1e-9);
    }

    #[test]
    fn signed_mean_positive_when_underpredicting() {
        let p = Matrix::row_vector(&[0.5, 0.5]);
        let t = Matrix::row_vector(&[1.0, 1.0]);
        let e = RelativeError::compute(&p, &t);
        assert!(e.signed_mean > 0.0);
    }

    #[test]
    fn zero_targets_skipped() {
        let p = Matrix::row_vector(&[5.0, 1.0]);
        let t = Matrix::row_vector(&[0.0, 1.0]);
        let e = RelativeError::compute(&p, &t);
        assert_eq!(e.mean, 0.0);
    }

    #[test]
    fn constant_prediction_on_varying_target_diverges() {
        let p = Matrix::row_vector(&[2.0, 2.0, 2.0, 2.0]);
        let t = Matrix::row_vector(&[1.0, 5.0, 2.0, 8.0]);
        assert!(is_diverged(&p, &t));
    }

    #[test]
    fn tracking_prediction_does_not_diverge() {
        let p = Matrix::row_vector(&[1.1, 4.9, 2.2, 7.8]);
        let t = Matrix::row_vector(&[1.0, 5.0, 2.0, 8.0]);
        assert!(!is_diverged(&p, &t));
    }

    #[test]
    fn nan_prediction_diverges() {
        let p = Matrix::row_vector(&[f64::NAN, 1.0]);
        let t = Matrix::row_vector(&[1.0, 1.0]);
        assert!(is_diverged(&p, &t));
    }

    #[test]
    fn display_format() {
        let e = RelativeError {
            mean: 18.88,
            std_dev: 16.92,
            signed_mean: 2.0,
        };
        assert_eq!(e.to_string(), "18.88 ± 16.92 %");
    }
}
