//! Sequential container composing layers into a trainable network.

use crate::layers::Layer;
use crate::loss::Loss;
use crate::matrix::Matrix;
use crate::optimizer::Optimizer;

/// A feed-forward stack of layers trained with backpropagation.
///
/// # Examples
///
/// ```
/// use geomancy_nn::activation::Activation;
/// use geomancy_nn::init::seeded_rng;
/// use geomancy_nn::layers::Dense;
/// use geomancy_nn::loss::Loss;
/// use geomancy_nn::matrix::Matrix;
/// use geomancy_nn::network::Sequential;
/// use geomancy_nn::optimizer::Sgd;
///
/// let mut rng = seeded_rng(1);
/// let mut net = Sequential::new();
/// net.push(Dense::new(2, 8, Activation::ReLU, &mut rng));
/// net.push(Dense::new(8, 1, Activation::Linear, &mut rng));
///
/// let x = Matrix::from_rows(&[&[0.0, 0.0], &[1.0, 1.0]]);
/// let y = Matrix::from_rows(&[&[0.0], &[2.0]]);
/// let mut opt = Sgd::new(0.05);
/// for _ in 0..200 {
///     net.train_batch(&x, &y, Loss::MeanSquaredError, &mut opt);
/// }
/// let loss = Loss::MeanSquaredError.compute(&net.predict(&x), &y);
/// assert!(loss < 0.05);
/// ```
#[derive(Default)]
pub struct Sequential {
    layers: Vec<Box<dyn Layer>>,
}

impl std::fmt::Debug for Sequential {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Sequential")
            .field("architecture", &self.describe())
            .field("param_count", &self.param_count())
            .finish()
    }
}

impl Sequential {
    /// Creates an empty network.
    pub fn new() -> Self {
        Sequential { layers: Vec::new() }
    }

    /// Appends a layer to the end of the stack.
    ///
    /// # Panics
    ///
    /// Panics if the layer's input width does not match the previous layer's
    /// output width.
    pub fn push(&mut self, layer: impl Layer + 'static) {
        if let Some(last) = self.layers.last() {
            assert_eq!(
                last.output_size(),
                layer.input_size(),
                "layer input {} does not match previous output {}",
                layer.input_size(),
                last.output_size()
            );
        }
        self.layers.push(Box::new(layer));
    }

    /// Number of layers.
    pub fn len(&self) -> usize {
        self.layers.len()
    }

    /// Whether the network has no layers.
    pub fn is_empty(&self) -> bool {
        self.layers.is_empty()
    }

    /// Width of an input row; `None` for an empty network.
    pub fn input_size(&self) -> Option<usize> {
        self.layers.first().map(|l| l.input_size())
    }

    /// Width of an output row; `None` for an empty network.
    pub fn output_size(&self) -> Option<usize> {
        self.layers.last().map(|l| l.output_size())
    }

    /// Runs a forward pass (also caching intermediates for a backward pass).
    ///
    /// # Panics
    ///
    /// Panics if the network is empty or the input width is wrong.
    pub fn predict(&mut self, input: &Matrix) -> Matrix {
        assert!(!self.layers.is_empty(), "cannot predict with an empty network");
        let mut out = input.clone();
        for layer in &mut self.layers {
            out = layer.forward(&out);
        }
        out
    }

    /// Runs one forward/backward/update cycle over a batch and returns the
    /// batch loss *before* the update.
    ///
    /// # Panics
    ///
    /// Panics if the network is empty or shapes are inconsistent.
    pub fn train_batch(
        &mut self,
        input: &Matrix,
        target: &Matrix,
        loss: Loss,
        optimizer: &mut dyn Optimizer,
    ) -> f64 {
        let prediction = self.predict(input);
        let loss_value = loss.compute(&prediction, target);
        let mut grad = loss.gradient(&prediction, target);
        for layer in self.layers.iter_mut().rev() {
            grad = layer.backward(&grad);
        }
        let mut params: Vec<&mut crate::param::Param> = self
            .layers
            .iter_mut()
            .flat_map(|l| l.params_mut())
            .collect();
        optimizer.step(&mut params);
        loss_value
    }

    /// Computes loss and gradients without applying an optimizer step.
    ///
    /// Gradients accumulate into the layers' parameters; callers that only
    /// want the loss should follow with [`Sequential::zero_grad`]. Exposed
    /// for gradient-checking tests and custom training loops.
    pub fn backward_only(&mut self, input: &Matrix, target: &Matrix, loss: Loss) -> f64 {
        let prediction = self.predict(input);
        let loss_value = loss.compute(&prediction, target);
        let mut grad = loss.gradient(&prediction, target);
        for layer in self.layers.iter_mut().rev() {
            grad = layer.backward(&grad);
        }
        loss_value
    }

    /// Clears all accumulated gradients.
    pub fn zero_grad(&mut self) {
        for layer in &mut self.layers {
            layer.zero_grad();
        }
    }

    /// Total number of trainable scalars.
    pub fn param_count(&self) -> usize {
        self.layers.iter().map(|l| l.param_count()).sum()
    }

    /// Mutable access to every parameter, layer by layer.
    pub fn params_mut(&mut self) -> Vec<&mut crate::param::Param> {
        self.layers.iter_mut().flat_map(|l| l.params_mut()).collect()
    }

    /// Architecture description in the paper's Table I notation, e.g.
    /// `"96 (Dense) ReLU, 48 (Dense) ReLU, 1 (Dense) Linear"`.
    pub fn describe(&self) -> String {
        self.layers
            .iter()
            .map(|l| l.describe())
            .collect::<Vec<_>>()
            .join(", ")
    }

    /// Snapshot of all parameter values (for persistence or rollback).
    pub fn export_weights(&self) -> Vec<Matrix> {
        self.layers
            .iter()
            .flat_map(|l| l.params())
            .map(|p| p.value.clone())
            .collect()
    }

    /// Restores parameter values from [`Sequential::export_weights`] output.
    ///
    /// # Panics
    ///
    /// Panics if the snapshot length or any shape does not match.
    pub fn import_weights(&mut self, weights: &[Matrix]) {
        let mut params = self.params_mut();
        assert_eq!(params.len(), weights.len(), "weight snapshot length mismatch");
        for (p, w) in params.iter_mut().zip(weights) {
            assert_eq!(p.value.shape(), w.shape(), "weight snapshot shape mismatch");
            p.value = w.clone();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::activation::Activation;
    use crate::init::seeded_rng;
    use crate::layers::Dense;
    use crate::optimizer::Sgd;

    fn two_layer() -> Sequential {
        let mut rng = seeded_rng(7);
        let mut net = Sequential::new();
        net.push(Dense::new(3, 4, Activation::ReLU, &mut rng));
        net.push(Dense::new(4, 1, Activation::Linear, &mut rng));
        net
    }

    #[test]
    fn predict_shape() {
        let mut net = two_layer();
        let y = net.predict(&Matrix::zeros(5, 3));
        assert_eq!(y.shape(), (5, 1));
        assert_eq!(net.input_size(), Some(3));
        assert_eq!(net.output_size(), Some(1));
    }

    #[test]
    #[should_panic(expected = "does not match previous output")]
    fn mismatched_layers_panic() {
        let mut rng = seeded_rng(0);
        let mut net = Sequential::new();
        net.push(Dense::new(3, 4, Activation::ReLU, &mut rng));
        net.push(Dense::new(5, 1, Activation::Linear, &mut rng));
    }

    #[test]
    fn training_reduces_loss() {
        let mut net = two_layer();
        let x = Matrix::from_rows(&[&[0.0, 0.0, 0.0], &[1.0, 0.0, 0.0], &[0.0, 1.0, 0.0]]);
        let y = Matrix::from_rows(&[&[0.0], &[1.0], &[2.0]]);
        let mut opt = Sgd::new(0.05);
        let first = net.train_batch(&x, &y, Loss::MeanSquaredError, &mut opt);
        let mut last = first;
        for _ in 0..300 {
            last = net.train_batch(&x, &y, Loss::MeanSquaredError, &mut opt);
        }
        assert!(last < first * 0.1, "loss {last} did not drop from {first}");
    }

    #[test]
    fn export_import_round_trips() {
        let mut net = two_layer();
        let x = Matrix::filled(1, 3, 0.5);
        let before = net.predict(&x);
        let snapshot = net.export_weights();
        // Perturb.
        let mut opt = Sgd::new(0.5);
        let y = Matrix::filled(1, 1, 10.0);
        net.train_batch(&x, &y, Loss::MeanSquaredError, &mut opt);
        assert_ne!(net.predict(&x), before);
        net.import_weights(&snapshot);
        assert_eq!(net.predict(&x), before);
    }

    #[test]
    fn describe_lists_layers_in_order() {
        let net = two_layer();
        assert_eq!(net.describe(), "4 (Dense) ReLU, 1 (Dense) Linear");
    }

    #[test]
    fn debug_is_nonempty() {
        assert!(!format!("{:?}", two_layer()).is_empty());
    }
}
