//! Sequential container composing layers into a trainable network.

use crate::layers::Layer;
use crate::loss::Loss;
use crate::matrix::{Matrix, MatrixView};
use crate::optimizer::Optimizer;

/// Minimum batch rows before [`Sequential::predict`] fans out across
/// threads.
///
/// The vendored `rayon` shim dispatches onto a persistent worker pool
/// (~1 µs per task), so even modest batches — a few coalesced placement
/// queries — amortize the dispatch. Below this row count the per-chunk
/// buffer setup still outweighs the win and batches stay on the serial
/// in-arena path.
pub const PARALLEL_MIN_ROWS: usize = 32;

/// A feed-forward stack of layers trained with backpropagation.
///
/// The network owns a scratch arena (per-layer activation buffers and a
/// gradient ping-pong pair) that is reused across batches: after the first
/// batch, [`Sequential::train_batch`], [`Sequential::train_batch_view`] and
/// [`Sequential::predict_ref`] perform no per-call heap allocation.
///
/// # Examples
///
/// ```
/// use geomancy_nn::activation::Activation;
/// use geomancy_nn::init::seeded_rng;
/// use geomancy_nn::layers::Dense;
/// use geomancy_nn::loss::Loss;
/// use geomancy_nn::matrix::Matrix;
/// use geomancy_nn::network::Sequential;
/// use geomancy_nn::optimizer::Sgd;
///
/// let mut rng = seeded_rng(1);
/// let mut net = Sequential::new();
/// net.push(Dense::new(2, 8, Activation::ReLU, &mut rng));
/// net.push(Dense::new(8, 1, Activation::Linear, &mut rng));
///
/// let x = Matrix::from_rows(&[&[0.0, 0.0], &[1.0, 1.0]]);
/// let y = Matrix::from_rows(&[&[0.0], &[2.0]]);
/// let mut opt = Sgd::new(0.05);
/// for _ in 0..200 {
///     net.train_batch(&x, &y, Loss::MeanSquaredError, &mut opt);
/// }
/// let loss = Loss::MeanSquaredError.compute(&net.predict(&x), &y);
/// assert!(loss < 0.05);
/// ```
#[derive(Default)]
pub struct Sequential {
    layers: Vec<Box<dyn Layer>>,
    /// Activation arena: `acts[i]` holds layer `i`'s output, reused across
    /// batches.
    acts: Vec<Matrix>,
    /// Gradient ping-pong buffers for the backward pass.
    grad_a: Matrix,
    grad_b: Matrix,
    /// Number of parameter tensors across all layers (cached so the
    /// optimizer protocol never collects them into a `Vec`).
    n_param_tensors: usize,
}

impl std::fmt::Debug for Sequential {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Sequential")
            .field("architecture", &self.describe())
            .field("param_count", &self.param_count())
            .finish()
    }
}

impl Sequential {
    /// Creates an empty network.
    pub fn new() -> Self {
        Sequential::default()
    }

    /// Appends a layer to the end of the stack.
    ///
    /// # Panics
    ///
    /// Panics if the layer's input width does not match the previous layer's
    /// output width.
    pub fn push(&mut self, layer: impl Layer + 'static) {
        if let Some(last) = self.layers.last() {
            assert_eq!(
                last.output_size(),
                layer.input_size(),
                "layer input {} does not match previous output {}",
                layer.input_size(),
                last.output_size()
            );
        }
        self.n_param_tensors += layer.params().len();
        self.layers.push(Box::new(layer));
        self.acts.push(Matrix::default());
    }

    /// Number of layers.
    pub fn len(&self) -> usize {
        self.layers.len()
    }

    /// Whether the network has no layers.
    pub fn is_empty(&self) -> bool {
        self.layers.is_empty()
    }

    /// Width of an input row; `None` for an empty network.
    pub fn input_size(&self) -> Option<usize> {
        self.layers.first().map(|l| l.input_size())
    }

    /// Width of an output row; `None` for an empty network.
    pub fn output_size(&self) -> Option<usize> {
        self.layers.last().map(|l| l.output_size())
    }

    /// Serial forward pass through the activation arena, caching layer
    /// intermediates for a backward pass.
    fn forward_all(&mut self, input: MatrixView<'_>) {
        assert!(
            !self.layers.is_empty(),
            "cannot predict with an empty network"
        );
        for (i, layer) in self.layers.iter_mut().enumerate() {
            if i == 0 {
                layer.forward_into(input, &mut self.acts[0]);
            } else {
                let (prev, cur) = self.acts.split_at_mut(i);
                layer.forward_into(prev[i - 1].view(), &mut cur[0]);
            }
        }
    }

    /// Runs a forward pass and returns a borrow of the output held in the
    /// network's reusable activation arena — the zero-copy, zero-allocation
    /// variant of [`Sequential::predict`]. Also caches intermediates for a
    /// backward pass.
    ///
    /// # Panics
    ///
    /// Panics if the network is empty or the input width is wrong.
    pub fn predict_ref(&mut self, input: MatrixView<'_>) -> &Matrix {
        self.forward_all(input);
        &self.acts[self.layers.len() - 1]
    }

    /// Runs a forward pass and returns the output.
    ///
    /// Batches of at least [`PARALLEL_MIN_ROWS`] rows are split across
    /// threads using the stateless inference path (which does not populate
    /// the backward caches); smaller batches run serially through the arena
    /// like [`Sequential::predict_ref`].
    ///
    /// # Panics
    ///
    /// Panics if the network is empty or the input width is wrong.
    pub fn predict(&mut self, input: &Matrix) -> Matrix {
        let mut out = Matrix::default();
        self.predict_into(input.view(), &mut out);
        out
    }

    /// Forward pass written into a caller-owned buffer — the batched-query
    /// entry point of the serving layer. `out` is resized to
    /// `input.rows() x output_size`; with a warm buffer the serial path
    /// performs no allocation, and batches of at least
    /// [`PARALLEL_MIN_ROWS`] rows fan out across the worker pool exactly
    /// like [`Sequential::predict`].
    ///
    /// # Panics
    ///
    /// Panics if the network is empty or the input width is wrong.
    pub fn predict_into(&mut self, input: MatrixView<'_>, out: &mut Matrix) {
        assert!(
            !self.layers.is_empty(),
            "cannot predict with an empty network"
        );
        if input.rows() >= PARALLEL_MIN_ROWS && rayon::current_num_threads() > 1 {
            self.predict_parallel_into(input, out);
        } else {
            self.forward_all(input);
            let last = &self.acts[self.layers.len() - 1];
            out.resize(last.rows(), last.cols());
            out.as_mut_slice().copy_from_slice(last.as_slice());
        }
    }

    /// Row-parallel stateless forward: the batch is split into contiguous
    /// row chunks, each processed by one pool task with its own ping-pong
    /// buffers via [`Layer::forward_inference_into`].
    fn predict_parallel_into(&self, input: MatrixView<'_>, out: &mut Matrix) {
        let out_cols = self
            .output_size()
            .expect("cannot predict with an empty network");
        let rows = input.rows();
        out.resize(rows, out_cols);
        let n_chunks = rayon::current_num_threads().clamp(1, rows);
        let chunk_rows = rows.div_ceil(n_chunks);
        let layers = &self.layers;
        rayon::scope(|s| {
            for (ci, out_chunk) in out
                .as_mut_slice()
                .chunks_mut(chunk_rows * out_cols.max(1))
                .enumerate()
            {
                let start = ci * chunk_rows;
                // A zero-width output degenerates chunks_mut; fall back to
                // the row arithmetic in that case.
                let chunk_len = out_chunk
                    .len()
                    .checked_div(out_cols)
                    .unwrap_or_else(|| chunk_rows.min(rows - start));
                let input_chunk = input.view_rows(start..start + chunk_len);
                s.spawn(move |_| {
                    let mut cur = Matrix::default();
                    let mut next = Matrix::default();
                    let mut scratch = Matrix::default();
                    layers[0].forward_inference_into(input_chunk, &mut scratch, &mut cur);
                    for layer in &layers[1..] {
                        layer.forward_inference_into(cur.view(), &mut scratch, &mut next);
                        std::mem::swap(&mut cur, &mut next);
                    }
                    out_chunk.copy_from_slice(cur.as_slice());
                });
            }
        });
    }

    /// Runs one forward/backward/update cycle over a batch and returns the
    /// batch loss *before* the update.
    ///
    /// # Panics
    ///
    /// Panics if the network is empty or shapes are inconsistent.
    pub fn train_batch(
        &mut self,
        input: &Matrix,
        target: &Matrix,
        loss: Loss,
        optimizer: &mut dyn Optimizer,
    ) -> f64 {
        self.train_batch_view(input.view(), target.view(), loss, optimizer)
    }

    /// [`Sequential::train_batch`] over borrowed views — the epoch-loop hot
    /// path. Batches sliced out of a larger matrix with
    /// [`Matrix::view_rows`] train without being copied, and the whole
    /// cycle (forward, loss, backward, optimizer step) reuses the network's
    /// scratch arena: zero heap allocations per call in steady state.
    ///
    /// # Panics
    ///
    /// Panics if the network is empty or shapes are inconsistent.
    pub fn train_batch_view(
        &mut self,
        input: MatrixView<'_>,
        target: MatrixView<'_>,
        loss: Loss,
        optimizer: &mut dyn Optimizer,
    ) -> f64 {
        let loss_value = self.backward_only_view(input, target, loss);
        optimizer.begin_step(self.n_param_tensors);
        let mut index = 0;
        for layer in self.layers.iter_mut() {
            layer.for_each_param_mut(&mut |p| {
                optimizer.step_param(index, p);
                index += 1;
            });
        }
        loss_value
    }

    /// Computes loss and gradients without applying an optimizer step.
    ///
    /// Gradients accumulate into the layers' parameters; callers that only
    /// want the loss should follow with [`Sequential::zero_grad`]. Exposed
    /// for gradient-checking tests and custom training loops.
    pub fn backward_only(&mut self, input: &Matrix, target: &Matrix, loss: Loss) -> f64 {
        self.backward_only_view(input.view(), target.view(), loss)
    }

    /// [`Sequential::backward_only`] over borrowed views.
    pub fn backward_only_view(
        &mut self,
        input: MatrixView<'_>,
        target: MatrixView<'_>,
        loss: Loss,
    ) -> f64 {
        self.forward_all(input);
        let last = self.layers.len() - 1;
        let loss_value = loss.compute_view(self.acts[last].view(), target);
        let Sequential {
            layers,
            acts,
            grad_a,
            grad_b,
            ..
        } = self;
        loss.gradient_into(acts[last].view(), target, grad_a);
        for layer in layers.iter_mut().rev() {
            layer.backward_into(grad_a, grad_b);
            std::mem::swap(grad_a, grad_b);
        }
        loss_value
    }

    /// Clears all accumulated gradients.
    pub fn zero_grad(&mut self) {
        for layer in &mut self.layers {
            layer.zero_grad();
        }
    }

    /// Total number of trainable scalars.
    pub fn param_count(&self) -> usize {
        self.layers.iter().map(|l| l.param_count()).sum()
    }

    /// Mutable access to every parameter, layer by layer.
    pub fn params_mut(&mut self) -> Vec<&mut crate::param::Param> {
        self.layers
            .iter_mut()
            .flat_map(|l| l.params_mut())
            .collect()
    }

    /// Architecture description in the paper's Table I notation, e.g.
    /// `"96 (Dense) ReLU, 48 (Dense) ReLU, 1 (Dense) Linear"`.
    pub fn describe(&self) -> String {
        self.layers
            .iter()
            .map(|l| l.describe())
            .collect::<Vec<_>>()
            .join(", ")
    }

    /// Snapshot of all parameter values (for persistence or rollback).
    pub fn export_weights(&self) -> Vec<Matrix> {
        self.layers
            .iter()
            .flat_map(|l| l.params())
            .map(|p| p.value.clone())
            .collect()
    }

    /// Restores parameter values from [`Sequential::export_weights`] output.
    ///
    /// # Panics
    ///
    /// Panics if the snapshot length or any shape does not match.
    pub fn import_weights(&mut self, weights: &[Matrix]) {
        let mut params = self.params_mut();
        assert_eq!(
            params.len(),
            weights.len(),
            "weight snapshot length mismatch"
        );
        for (p, w) in params.iter_mut().zip(weights) {
            assert_eq!(p.value.shape(), w.shape(), "weight snapshot shape mismatch");
            p.value = w.clone();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::activation::Activation;
    use crate::init::seeded_rng;
    use crate::layers::Dense;
    use crate::optimizer::Sgd;

    fn two_layer() -> Sequential {
        let mut rng = seeded_rng(7);
        let mut net = Sequential::new();
        net.push(Dense::new(3, 4, Activation::ReLU, &mut rng));
        net.push(Dense::new(4, 1, Activation::Linear, &mut rng));
        net
    }

    #[test]
    fn predict_shape() {
        let mut net = two_layer();
        let y = net.predict(&Matrix::zeros(5, 3));
        assert_eq!(y.shape(), (5, 1));
        assert_eq!(net.input_size(), Some(3));
        assert_eq!(net.output_size(), Some(1));
    }

    #[test]
    #[should_panic(expected = "does not match previous output")]
    fn mismatched_layers_panic() {
        let mut rng = seeded_rng(0);
        let mut net = Sequential::new();
        net.push(Dense::new(3, 4, Activation::ReLU, &mut rng));
        net.push(Dense::new(5, 1, Activation::Linear, &mut rng));
    }

    #[test]
    fn training_reduces_loss() {
        let mut net = two_layer();
        let x = Matrix::from_rows(&[&[0.0, 0.0, 0.0], &[1.0, 0.0, 0.0], &[0.0, 1.0, 0.0]]);
        let y = Matrix::from_rows(&[&[0.0], &[1.0], &[2.0]]);
        let mut opt = Sgd::new(0.05);
        let first = net.train_batch(&x, &y, Loss::MeanSquaredError, &mut opt);
        let mut last = first;
        for _ in 0..300 {
            last = net.train_batch(&x, &y, Loss::MeanSquaredError, &mut opt);
        }
        assert!(last < first * 0.1, "loss {last} did not drop from {first}");
    }

    #[test]
    fn train_batch_view_matches_train_batch() {
        let x = Matrix::from_rows(&[&[0.0, 0.0, 0.0], &[1.0, 0.0, 0.0], &[0.0, 1.0, 0.0]]);
        let y = Matrix::from_rows(&[&[0.0], &[1.0], &[2.0]]);
        let mut net_a = two_layer();
        let mut net_b = two_layer();
        let mut opt_a = Sgd::new(0.05);
        let mut opt_b = Sgd::new(0.05);
        for _ in 0..20 {
            let la = net_a.train_batch(&x, &y, Loss::MeanSquaredError, &mut opt_a);
            let lb = net_b.train_batch_view(x.view(), y.view(), Loss::MeanSquaredError, &mut opt_b);
            assert_eq!(la, lb);
        }
        assert_eq!(net_a.export_weights(), net_b.export_weights());
    }

    #[test]
    fn predict_ref_matches_predict() {
        let mut net = two_layer();
        let x = Matrix::from_rows(&[&[0.5, -0.25, 1.0], &[0.0, 2.0, -1.0]]);
        let expected = net.predict(&x);
        assert_eq!(net.predict_ref(x.view()), &expected);
    }

    #[test]
    fn parallel_predict_matches_serial() {
        // 2x PARALLEL_MIN_ROWS rows forces the parallel path (when more than
        // one thread is available); the serial arena path is the reference.
        let mut net = two_layer();
        let rows = 2 * PARALLEL_MIN_ROWS;
        let mut x = Matrix::zeros(rows, 3);
        for r in 0..rows {
            for c in 0..3 {
                x[(r, c)] = (r * 3 + c) as f64 * 0.01 - 2.0;
            }
        }
        let parallel = net.predict(&x);
        net.forward_all(x.view());
        let serial = net.acts[net.layers.len() - 1].clone();
        assert_eq!(parallel, serial);
    }

    #[test]
    fn predict_into_matches_predict() {
        let mut net = two_layer();
        // Reused output buffer, deliberately wrong-sized, across both the
        // serial (small) and parallel (large) paths.
        let mut out = Matrix::zeros(1, 7);
        for rows in [3, 2 * PARALLEL_MIN_ROWS] {
            let mut x = Matrix::zeros(rows, 3);
            for r in 0..rows {
                for c in 0..3 {
                    x[(r, c)] = (r * 3 + c) as f64 * 0.01 - 2.0;
                }
            }
            let expected = net.predict(&x);
            net.predict_into(x.view(), &mut out);
            assert_eq!(out, expected);
        }
    }

    #[test]
    fn export_import_round_trips() {
        let mut net = two_layer();
        let x = Matrix::filled(1, 3, 0.5);
        let before = net.predict(&x);
        let snapshot = net.export_weights();
        // Perturb.
        let mut opt = Sgd::new(0.5);
        let y = Matrix::filled(1, 1, 10.0);
        net.train_batch(&x, &y, Loss::MeanSquaredError, &mut opt);
        assert_ne!(net.predict(&x), before);
        net.import_weights(&snapshot);
        assert_eq!(net.predict(&x), before);
    }

    #[test]
    fn describe_lists_layers_in_order() {
        let net = two_layer();
        assert_eq!(net.describe(), "4 (Dense) ReLU, 1 (Dense) Linear");
    }

    #[test]
    fn debug_is_nonempty() {
        assert!(!format!("{:?}", two_layer()).is_empty());
    }
}
