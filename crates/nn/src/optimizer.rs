//! Gradient-descent optimizers.
//!
//! The paper trains every Table I model with standard gradient descent and
//! notes that Adam gave *worse* relative error on their data — both are
//! provided so the comparison can be reproduced.

use crate::param::Param;

/// An optimization algorithm that updates parameters from accumulated
/// gradients.
///
/// Implementations assume they are stepped with the same parameter list (same
/// order, same shapes) on every call, which `Sequential` guarantees.
pub trait Optimizer: Send {
    /// Applies one update step to `params` and clears their gradients.
    fn step(&mut self, params: &mut [&mut Param]);

    /// The configured learning rate.
    fn learning_rate(&self) -> f64;
}

/// Plain stochastic gradient descent with optional gradient clipping.
#[derive(Debug, Clone)]
pub struct Sgd {
    learning_rate: f64,
    clip: Option<f64>,
}

impl Sgd {
    /// Creates an SGD optimizer.
    ///
    /// # Panics
    ///
    /// Panics if `learning_rate` is not positive.
    pub fn new(learning_rate: f64) -> Self {
        assert!(learning_rate > 0.0, "learning rate must be positive");
        Sgd {
            learning_rate,
            clip: Some(1.0),
        }
    }

    /// Sets (or disables, with `None`) per-element gradient clipping.
    pub fn with_clip(mut self, clip: Option<f64>) -> Self {
        self.clip = clip;
        self
    }
}

impl Optimizer for Sgd {
    fn step(&mut self, params: &mut [&mut Param]) {
        for p in params.iter_mut() {
            let mut g = p.grad.clone();
            if let Some(c) = self.clip {
                g.clip_inplace(c);
            }
            let update = g.scale(-self.learning_rate);
            p.value.add_assign(&update);
            p.zero_grad();
        }
    }

    fn learning_rate(&self) -> f64 {
        self.learning_rate
    }
}

/// Adam optimizer (Kingma & Ba) with bias correction.
#[derive(Debug, Clone)]
pub struct Adam {
    learning_rate: f64,
    beta1: f64,
    beta2: f64,
    epsilon: f64,
    t: u64,
    /// First/second moment estimates per parameter, lazily initialized on the
    /// first step (flattened to match each parameter's buffer).
    moments: Vec<(Vec<f64>, Vec<f64>)>,
}

impl Adam {
    /// Creates an Adam optimizer with standard betas (0.9, 0.999).
    ///
    /// # Panics
    ///
    /// Panics if `learning_rate` is not positive.
    pub fn new(learning_rate: f64) -> Self {
        assert!(learning_rate > 0.0, "learning rate must be positive");
        Adam {
            learning_rate,
            beta1: 0.9,
            beta2: 0.999,
            epsilon: 1e-8,
            t: 0,
            moments: Vec::new(),
        }
    }
}

impl Optimizer for Adam {
    fn step(&mut self, params: &mut [&mut Param]) {
        if self.moments.is_empty() {
            self.moments = params
                .iter()
                .map(|p| (vec![0.0; p.len()], vec![0.0; p.len()]))
                .collect();
        }
        assert_eq!(
            self.moments.len(),
            params.len(),
            "optimizer stepped with a different parameter list"
        );
        self.t += 1;
        let bc1 = 1.0 - self.beta1.powi(self.t as i32);
        let bc2 = 1.0 - self.beta2.powi(self.t as i32);
        for (p, (m, v)) in params.iter_mut().zip(&mut self.moments) {
            assert_eq!(p.len(), m.len(), "parameter shape changed between steps");
            let values = p.value.as_mut_slice();
            let grads = p.grad.as_slice();
            for i in 0..values.len() {
                let g = grads[i];
                m[i] = self.beta1 * m[i] + (1.0 - self.beta1) * g;
                v[i] = self.beta2 * v[i] + (1.0 - self.beta2) * g * g;
                let m_hat = m[i] / bc1;
                let v_hat = v[i] / bc2;
                values[i] -= self.learning_rate * m_hat / (v_hat.sqrt() + self.epsilon);
            }
            p.zero_grad();
        }
    }

    fn learning_rate(&self) -> f64 {
        self.learning_rate
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::Matrix;

    fn param_with_grad(value: f64, grad: f64) -> Param {
        let mut p = Param::new(Matrix::filled(1, 1, value), "p");
        p.grad = Matrix::filled(1, 1, grad);
        p
    }

    #[test]
    fn sgd_moves_against_gradient() {
        let mut p = param_with_grad(1.0, 0.5);
        let mut opt = Sgd::new(0.1).with_clip(None);
        opt.step(&mut [&mut p]);
        assert!((p.value.as_slice()[0] - 0.95).abs() < 1e-12);
        assert_eq!(p.grad.as_slice()[0], 0.0);
    }

    #[test]
    fn sgd_clips_large_gradients() {
        let mut p = param_with_grad(0.0, 100.0);
        let mut opt = Sgd::new(0.1); // default clip 1.0
        opt.step(&mut [&mut p]);
        assert!((p.value.as_slice()[0] + 0.1).abs() < 1e-12);
    }

    #[test]
    fn adam_first_step_is_learning_rate_sized() {
        let mut p = param_with_grad(0.0, 0.3);
        let mut opt = Adam::new(0.01);
        opt.step(&mut [&mut p]);
        // With bias correction the first step is ≈ lr in the gradient direction.
        assert!((p.value.as_slice()[0] + 0.01).abs() < 1e-6);
    }

    #[test]
    fn adam_converges_on_quadratic() {
        // Minimize f(x) = (x - 3)^2 by feeding gradient 2(x-3).
        let mut p = Param::new(Matrix::filled(1, 1, 0.0), "x");
        let mut opt = Adam::new(0.1);
        for _ in 0..500 {
            let x = p.value.as_slice()[0];
            p.grad = Matrix::filled(1, 1, 2.0 * (x - 3.0));
            opt.step(&mut [&mut p]);
        }
        assert!((p.value.as_slice()[0] - 3.0).abs() < 0.05);
    }

    #[test]
    fn sgd_converges_on_quadratic() {
        let mut p = Param::new(Matrix::filled(1, 1, 10.0), "x");
        let mut opt = Sgd::new(0.1).with_clip(None);
        for _ in 0..200 {
            let x = p.value.as_slice()[0];
            p.grad = Matrix::filled(1, 1, 2.0 * (x - 3.0));
            opt.step(&mut [&mut p]);
        }
        assert!((p.value.as_slice()[0] - 3.0).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "learning rate must be positive")]
    fn zero_learning_rate_panics() {
        let _ = Sgd::new(0.0);
    }
}
