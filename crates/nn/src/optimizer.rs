//! Gradient-descent optimizers.
//!
//! The paper trains every Table I model with standard gradient descent and
//! notes that Adam gave *worse* relative error on their data — both are
//! provided so the comparison can be reproduced.

use crate::param::Param;

/// An optimization algorithm that updates parameters from accumulated
/// gradients.
///
/// Implementations assume they are stepped with the same parameter list (same
/// order, same shapes) on every call, which `Sequential` guarantees.
///
/// The allocation-free protocol is [`Optimizer::begin_step`] once per batch
/// followed by [`Optimizer::step_param`] for each parameter in order —
/// `Sequential` drives it without collecting parameters into a `Vec`.
/// [`Optimizer::step`] wraps that protocol for slice-based callers.
pub trait Optimizer: Send {
    /// Applies one update step to `params` and clears their gradients.
    fn step(&mut self, params: &mut [&mut Param]) {
        self.begin_step(params.len());
        for (i, p) in params.iter_mut().enumerate() {
            self.step_param(i, p);
        }
    }

    /// Opens an update step over `param_count` parameters.
    ///
    /// # Panics
    ///
    /// Implementations with per-parameter state panic if `param_count`
    /// differs from previous steps.
    fn begin_step(&mut self, param_count: usize) {
        let _ = param_count;
    }

    /// Updates the parameter at position `index` of the (stable) parameter
    /// ordering and clears its gradient, allocating nothing.
    fn step_param(&mut self, index: usize, param: &mut Param);

    /// The configured learning rate.
    fn learning_rate(&self) -> f64;
}

/// Plain stochastic gradient descent with optional gradient clipping.
#[derive(Debug, Clone)]
pub struct Sgd {
    learning_rate: f64,
    clip: Option<f64>,
}

impl Sgd {
    /// Creates an SGD optimizer.
    ///
    /// # Panics
    ///
    /// Panics if `learning_rate` is not positive.
    pub fn new(learning_rate: f64) -> Self {
        assert!(learning_rate > 0.0, "learning rate must be positive");
        Sgd {
            learning_rate,
            clip: Some(1.0),
        }
    }

    /// Sets (or disables, with `None`) per-element gradient clipping.
    pub fn with_clip(mut self, clip: Option<f64>) -> Self {
        self.clip = clip;
        self
    }
}

impl Optimizer for Sgd {
    fn step_param(&mut self, _index: usize, param: &mut Param) {
        // Clip, update and re-zero in one in-place pass — the old path
        // cloned the gradient and built a scaled update matrix per step.
        let lr = self.learning_rate;
        let clip = self.clip;
        let Param { value, grad, .. } = param;
        for (v, g) in value.as_mut_slice().iter_mut().zip(grad.as_mut_slice()) {
            let gv = match clip {
                Some(c) => g.clamp(-c, c),
                None => *g,
            };
            *v -= lr * gv;
            *g = 0.0;
        }
    }

    fn learning_rate(&self) -> f64 {
        self.learning_rate
    }
}

/// Adam optimizer (Kingma & Ba) with bias correction.
#[derive(Debug, Clone)]
pub struct Adam {
    learning_rate: f64,
    beta1: f64,
    beta2: f64,
    epsilon: f64,
    t: u64,
    /// First/second moment estimates per parameter, lazily initialized on the
    /// first step (flattened to match each parameter's buffer).
    moments: Vec<(Vec<f64>, Vec<f64>)>,
}

impl Adam {
    /// Creates an Adam optimizer with standard betas (0.9, 0.999).
    ///
    /// # Panics
    ///
    /// Panics if `learning_rate` is not positive.
    pub fn new(learning_rate: f64) -> Self {
        assert!(learning_rate > 0.0, "learning rate must be positive");
        Adam {
            learning_rate,
            beta1: 0.9,
            beta2: 0.999,
            epsilon: 1e-8,
            t: 0,
            moments: Vec::new(),
        }
    }
}

impl Optimizer for Adam {
    fn begin_step(&mut self, param_count: usize) {
        if !self.moments.is_empty() {
            assert_eq!(
                self.moments.len(),
                param_count,
                "optimizer stepped with a different parameter list"
            );
        }
        self.t += 1;
    }

    fn step_param(&mut self, index: usize, param: &mut Param) {
        // Moment buffers are keyed by parameter position and grown lazily on
        // the first step; afterwards every call is allocation-free.
        while self.moments.len() <= index {
            self.moments.push((Vec::new(), Vec::new()));
        }
        let (m, v) = &mut self.moments[index];
        if m.is_empty() {
            m.resize(param.len(), 0.0);
            v.resize(param.len(), 0.0);
        }
        assert_eq!(
            param.len(),
            m.len(),
            "parameter shape changed between steps"
        );
        let bc1 = 1.0 - self.beta1.powi(self.t as i32);
        let bc2 = 1.0 - self.beta2.powi(self.t as i32);
        let values = param.value.as_mut_slice();
        let grads = param.grad.as_mut_slice();
        for i in 0..values.len() {
            let g = grads[i];
            m[i] = self.beta1 * m[i] + (1.0 - self.beta1) * g;
            v[i] = self.beta2 * v[i] + (1.0 - self.beta2) * g * g;
            let m_hat = m[i] / bc1;
            let v_hat = v[i] / bc2;
            values[i] -= self.learning_rate * m_hat / (v_hat.sqrt() + self.epsilon);
            grads[i] = 0.0;
        }
    }

    fn learning_rate(&self) -> f64 {
        self.learning_rate
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::Matrix;

    fn param_with_grad(value: f64, grad: f64) -> Param {
        let mut p = Param::new(Matrix::filled(1, 1, value), "p");
        p.grad = Matrix::filled(1, 1, grad);
        p
    }

    #[test]
    fn sgd_moves_against_gradient() {
        let mut p = param_with_grad(1.0, 0.5);
        let mut opt = Sgd::new(0.1).with_clip(None);
        opt.step(&mut [&mut p]);
        assert!((p.value.as_slice()[0] - 0.95).abs() < 1e-12);
        assert_eq!(p.grad.as_slice()[0], 0.0);
    }

    #[test]
    fn sgd_clips_large_gradients() {
        let mut p = param_with_grad(0.0, 100.0);
        let mut opt = Sgd::new(0.1); // default clip 1.0
        opt.step(&mut [&mut p]);
        assert!((p.value.as_slice()[0] + 0.1).abs() < 1e-12);
    }

    #[test]
    fn adam_first_step_is_learning_rate_sized() {
        let mut p = param_with_grad(0.0, 0.3);
        let mut opt = Adam::new(0.01);
        opt.step(&mut [&mut p]);
        // With bias correction the first step is ≈ lr in the gradient direction.
        assert!((p.value.as_slice()[0] + 0.01).abs() < 1e-6);
    }

    #[test]
    fn adam_converges_on_quadratic() {
        // Minimize f(x) = (x - 3)^2 by feeding gradient 2(x-3).
        let mut p = Param::new(Matrix::filled(1, 1, 0.0), "x");
        let mut opt = Adam::new(0.1);
        for _ in 0..500 {
            let x = p.value.as_slice()[0];
            p.grad = Matrix::filled(1, 1, 2.0 * (x - 3.0));
            opt.step(&mut [&mut p]);
        }
        assert!((p.value.as_slice()[0] - 3.0).abs() < 0.05);
    }

    #[test]
    fn sgd_converges_on_quadratic() {
        let mut p = Param::new(Matrix::filled(1, 1, 10.0), "x");
        let mut opt = Sgd::new(0.1).with_clip(None);
        for _ in 0..200 {
            let x = p.value.as_slice()[0];
            p.grad = Matrix::filled(1, 1, 2.0 * (x - 3.0));
            opt.step(&mut [&mut p]);
        }
        assert!((p.value.as_slice()[0] - 3.0).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "learning rate must be positive")]
    fn zero_learning_rate_panics() {
        let _ = Sgd::new(0.0);
    }
}
