//! Trainable parameter: a value matrix paired with its gradient accumulator.

use serde::{Deserialize, Serialize};

use crate::matrix::Matrix;

/// A single trainable tensor (weight matrix or bias vector).
///
/// Layers accumulate gradients into [`Param::grad`] during the backward pass;
/// optimizers then consume the pair and reset the gradient via
/// [`Param::zero_grad`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Param {
    /// Current parameter values.
    pub value: Matrix,
    /// Gradient of the loss with respect to `value`, accumulated over a batch.
    pub grad: Matrix,
    /// Stable diagnostic name, e.g. `"dense.w"`.
    pub name: String,
}

impl Param {
    /// Creates a parameter with a zeroed gradient of matching shape.
    pub fn new(value: Matrix, name: impl Into<String>) -> Self {
        let grad = Matrix::zeros(value.rows(), value.cols());
        Param {
            value,
            grad,
            name: name.into(),
        }
    }

    /// Number of scalar values in the parameter.
    pub fn len(&self) -> usize {
        self.value.len()
    }

    /// Whether the parameter holds no values.
    pub fn is_empty(&self) -> bool {
        self.value.is_empty()
    }

    /// Resets the accumulated gradient to zero in place (the gradient
    /// buffer's allocation is kept, so per-batch zeroing is free of heap
    /// traffic).
    pub fn zero_grad(&mut self) {
        self.grad.fill(0.0);
    }

    /// Accumulates `g` into the gradient.
    ///
    /// # Panics
    ///
    /// Panics if `g` has a different shape than the parameter.
    pub fn accumulate(&mut self, g: &Matrix) {
        self.grad.add_assign(g);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_param_has_zero_grad() {
        let p = Param::new(Matrix::filled(2, 3, 1.5), "w");
        assert_eq!(p.grad, Matrix::zeros(2, 3));
        assert_eq!(p.len(), 6);
        assert_eq!(p.name, "w");
    }

    #[test]
    fn accumulate_and_zero() {
        let mut p = Param::new(Matrix::zeros(1, 2), "b");
        p.accumulate(&Matrix::row_vector(&[1.0, 2.0]));
        p.accumulate(&Matrix::row_vector(&[1.0, 2.0]));
        assert_eq!(p.grad, Matrix::row_vector(&[2.0, 4.0]));
        p.zero_grad();
        assert_eq!(p.grad, Matrix::zeros(1, 2));
    }
}
