//! Declarative network specifications with JSON persistence.
//!
//! A [`NetworkSpec`] is the serializable source of truth for an
//! architecture; building it yields a [`Sequential`] network, and a trained
//! network's weights can be checkpointed alongside the spec and restored
//! later — so a deployment can keep its learned model across restarts.

use rand::rngs::StdRng;
use serde::{Deserialize, Serialize};

use crate::activation::Activation;
use crate::layers::{Dense, Gru, Lstm, SimpleRnn};
use crate::matrix::Matrix;
use crate::network::Sequential;

/// One layer of a declarative architecture.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum LayerSpec {
    /// Fully connected layer.
    Dense {
        /// Input width.
        input: usize,
        /// Output width.
        output: usize,
        /// Activation function.
        activation: Activation,
    },
    /// Elman RNN over a flattened window.
    SimpleRnn {
        /// Features per timestep.
        features: usize,
        /// Hidden units.
        hidden: usize,
        /// Window length.
        timesteps: usize,
        /// Activation function.
        activation: Activation,
    },
    /// LSTM over a flattened window.
    Lstm {
        /// Features per timestep.
        features: usize,
        /// Hidden units.
        hidden: usize,
        /// Window length.
        timesteps: usize,
        /// Candidate/cell activation.
        activation: Activation,
    },
    /// GRU over a flattened window.
    Gru {
        /// Features per timestep.
        features: usize,
        /// Hidden units.
        hidden: usize,
        /// Window length.
        timesteps: usize,
        /// Candidate activation.
        activation: Activation,
    },
}

/// A serializable network architecture.
///
/// # Examples
///
/// ```
/// use geomancy_nn::activation::Activation;
/// use geomancy_nn::init::seeded_rng;
/// use geomancy_nn::spec::{LayerSpec, NetworkSpec};
///
/// let spec = NetworkSpec::new(vec![
///     LayerSpec::Dense { input: 6, output: 12, activation: Activation::ReLU },
///     LayerSpec::Dense { input: 12, output: 1, activation: Activation::Linear },
/// ]);
/// let mut rng = seeded_rng(0);
/// let net = spec.build(&mut rng);
/// assert_eq!(net.input_size(), Some(6));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct NetworkSpec {
    layers: Vec<LayerSpec>,
}

/// A spec plus trained weights: everything needed to restore a model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Checkpoint {
    /// Architecture.
    pub spec: NetworkSpec,
    /// Parameter values in [`Sequential::export_weights`] order.
    pub weights: Vec<Matrix>,
}

impl NetworkSpec {
    /// Creates a spec from a layer list.
    ///
    /// # Panics
    ///
    /// Panics if `layers` is empty or adjacent widths are inconsistent.
    pub fn new(layers: Vec<LayerSpec>) -> Self {
        assert!(!layers.is_empty(), "a network needs at least one layer");
        for pair in layers.windows(2) {
            assert_eq!(
                output_size(&pair[0]),
                input_size(&pair[1]),
                "layer widths are inconsistent"
            );
        }
        NetworkSpec { layers }
    }

    /// The layer list.
    pub fn layers(&self) -> &[LayerSpec] {
        &self.layers
    }

    /// Builds a freshly initialized network.
    pub fn build(&self, rng: &mut StdRng) -> Sequential {
        let mut net = Sequential::new();
        for layer in &self.layers {
            match *layer {
                LayerSpec::Dense {
                    input,
                    output,
                    activation,
                } => net.push(Dense::new(input, output, activation, rng)),
                LayerSpec::SimpleRnn {
                    features,
                    hidden,
                    timesteps,
                    activation,
                } => net.push(SimpleRnn::new(features, hidden, timesteps, activation, rng)),
                LayerSpec::Lstm {
                    features,
                    hidden,
                    timesteps,
                    activation,
                } => net.push(Lstm::new(features, hidden, timesteps, activation, rng)),
                LayerSpec::Gru {
                    features,
                    hidden,
                    timesteps,
                    activation,
                } => net.push(Gru::new(features, hidden, timesteps, activation, rng)),
            }
        }
        net
    }

    /// Captures a trained network's weights as a restorable checkpoint.
    ///
    /// # Panics
    ///
    /// Panics if `net` was not built from this spec (weight shapes differ).
    pub fn checkpoint(&self, net: &Sequential) -> Checkpoint {
        let weights = net.export_weights();
        // Validate shape compatibility by rebuilding a skeleton.
        let mut rng = crate::init::seeded_rng(0);
        let skeleton = self.build(&mut rng);
        let expected = skeleton.export_weights();
        assert_eq!(
            expected.len(),
            weights.len(),
            "checkpoint layer-count mismatch"
        );
        for (e, w) in expected.iter().zip(&weights) {
            assert_eq!(e.shape(), w.shape(), "checkpoint weight-shape mismatch");
        }
        Checkpoint {
            spec: self.clone(),
            weights,
        }
    }
}

impl Checkpoint {
    /// Restores the trained network.
    pub fn restore(&self) -> Sequential {
        let mut rng = crate::init::seeded_rng(0);
        let mut net = self.spec.build(&mut rng);
        net.import_weights(&self.weights);
        net
    }

    /// Serializes to JSON.
    ///
    /// # Errors
    ///
    /// Returns a `serde_json::Error` if serialization fails.
    pub fn to_json(&self) -> Result<String, serde_json::Error> {
        serde_json::to_string(self)
    }

    /// Parses from JSON.
    ///
    /// # Errors
    ///
    /// Returns a `serde_json::Error` on malformed input.
    pub fn from_json(json: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(json)
    }
}

fn input_size(layer: &LayerSpec) -> usize {
    match *layer {
        LayerSpec::Dense { input, .. } => input,
        LayerSpec::SimpleRnn {
            features,
            timesteps,
            ..
        }
        | LayerSpec::Lstm {
            features,
            timesteps,
            ..
        }
        | LayerSpec::Gru {
            features,
            timesteps,
            ..
        } => features * timesteps,
    }
}

fn output_size(layer: &LayerSpec) -> usize {
    match *layer {
        LayerSpec::Dense { output, .. } => output,
        LayerSpec::SimpleRnn { hidden, .. }
        | LayerSpec::Lstm { hidden, .. }
        | LayerSpec::Gru { hidden, .. } => hidden,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::init::seeded_rng;
    use crate::loss::Loss;
    use crate::optimizer::Sgd;

    fn spec() -> NetworkSpec {
        NetworkSpec::new(vec![
            LayerSpec::Dense {
                input: 3,
                output: 8,
                activation: Activation::ReLU,
            },
            LayerSpec::Dense {
                input: 8,
                output: 1,
                activation: Activation::Linear,
            },
        ])
    }

    #[test]
    fn build_matches_spec_shape() {
        let mut rng = seeded_rng(1);
        let net = spec().build(&mut rng);
        assert_eq!(net.input_size(), Some(3));
        assert_eq!(net.output_size(), Some(1));
        assert_eq!(net.len(), 2);
    }

    #[test]
    #[should_panic(expected = "widths are inconsistent")]
    fn inconsistent_widths_panic() {
        let _ = NetworkSpec::new(vec![
            LayerSpec::Dense {
                input: 3,
                output: 8,
                activation: Activation::ReLU,
            },
            LayerSpec::Dense {
                input: 9,
                output: 1,
                activation: Activation::Linear,
            },
        ]);
    }

    #[test]
    fn checkpoint_round_trips_trained_weights() {
        let s = spec();
        let mut rng = seeded_rng(2);
        let mut net = s.build(&mut rng);
        // Train a little so weights are non-trivial.
        let x = Matrix::from_rows(&[&[0.1, 0.2, 0.3], &[0.9, 0.8, 0.7]]);
        let y = Matrix::from_rows(&[&[1.0], &[0.0]]);
        let mut opt = Sgd::new(0.05);
        for _ in 0..50 {
            net.train_batch(&x, &y, Loss::MeanSquaredError, &mut opt);
        }
        let before = net.predict(&x);

        let checkpoint = s.checkpoint(&net);
        let json = checkpoint.to_json().unwrap();
        let mut restored = Checkpoint::from_json(&json).unwrap().restore();
        // JSON float round-trips are exact for f64 in serde_json only up to
        // shortest-representation printing; allow last-bit slack.
        let after = restored.predict(&x);
        for (a, b) in after.as_slice().iter().zip(before.as_slice()) {
            assert!((a - b).abs() < 1e-12, "restored {a} vs original {b}");
        }
    }

    #[test]
    fn recurrent_specs_build() {
        let s = NetworkSpec::new(vec![
            LayerSpec::Gru {
                features: 2,
                hidden: 4,
                timesteps: 3,
                activation: Activation::Tanh,
            },
            LayerSpec::Dense {
                input: 4,
                output: 1,
                activation: Activation::Linear,
            },
        ]);
        let mut rng = seeded_rng(3);
        let mut net = s.build(&mut rng);
        assert_eq!(net.input_size(), Some(6));
        let out = net.predict(&Matrix::zeros(2, 6));
        assert_eq!(out.shape(), (2, 1));
    }

    #[test]
    #[should_panic(expected = "layer-count mismatch")]
    fn checkpoint_of_foreign_network_panics() {
        let mut rng = seeded_rng(4);
        let other = NetworkSpec::new(vec![LayerSpec::Dense {
            input: 5,
            output: 1,
            activation: Activation::Linear,
        }])
        .build(&mut rng);
        let _ = spec().checkpoint(&other);
    }
}
