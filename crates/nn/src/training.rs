//! Training harness: the 60/20/20 split, epoch loop, and timing used to
//! produce the paper's Tables II and III.

use std::time::{Duration, Instant};

use crate::loss::Loss;
use crate::matrix::Matrix;
use crate::metrics::{is_diverged, RelativeError};
use crate::network::Sequential;
use crate::optimizer::Optimizer;

/// A dataset partitioned the way the paper trains every model: "the training
/// set of data is represented by 60% of the available data. The next 20% …
/// is used in validation. The final 20% … is used as a test set."
#[derive(Debug, Clone)]
pub struct DataSplit {
    /// Training inputs/targets (first 60 %).
    pub train: (Matrix, Matrix),
    /// Validation inputs/targets (next 20 %).
    pub validation: (Matrix, Matrix),
    /// Test inputs/targets (final 20 %).
    pub test: (Matrix, Matrix),
}

impl DataSplit {
    /// Splits `(inputs, targets)` into 60/20/20 contiguous partitions.
    ///
    /// The partitions are contiguous (not shuffled) because the data is a
    /// time series: shuffling would leak future accesses into training.
    ///
    /// # Panics
    ///
    /// Panics if the row counts differ or fewer than 5 rows are provided.
    pub fn split_60_20_20(inputs: Matrix, targets: Matrix) -> Self {
        assert_eq!(inputs.rows(), targets.rows(), "input/target row mismatch");
        assert!(inputs.rows() >= 5, "need at least 5 rows to split 60/20/20");
        let n = inputs.rows();
        let train_end = n * 60 / 100;
        let val_end = n * 80 / 100;
        DataSplit {
            train: (
                inputs.slice_rows(0..train_end),
                targets.slice_rows(0..train_end),
            ),
            validation: (
                inputs.slice_rows(train_end..val_end),
                targets.slice_rows(train_end..val_end),
            ),
            test: (
                inputs.slice_rows(val_end..n),
                targets.slice_rows(val_end..n),
            ),
        }
    }

    /// Total number of rows across all partitions.
    pub fn len(&self) -> usize {
        self.train.0.rows() + self.validation.0.rows() + self.test.0.rows()
    }

    /// Whether the split holds no rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Configuration of one training run.
#[derive(Debug, Clone)]
pub struct TrainConfig {
    /// Number of passes over the training partition (paper: 200).
    pub epochs: usize,
    /// Mini-batch size; the full partition is used when larger than it.
    pub batch_size: usize,
    /// Loss minimized during training.
    pub loss: Loss,
    /// Stop early when validation loss fails to improve for this many epochs
    /// (`None` disables early stopping, matching the paper's fixed 200).
    pub patience: Option<usize>,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig {
            epochs: 200,
            batch_size: 64,
            loss: Loss::MeanSquaredError,
            patience: None,
        }
    }
}

/// Outcome of a training run, mirroring the columns of Table II.
#[derive(Debug, Clone)]
pub struct TrainReport {
    /// Wall-clock time spent in the epoch loop.
    pub training_time: Duration,
    /// Wall-clock time of a single full-test-set prediction pass.
    pub prediction_time: Duration,
    /// Loss on the training partition per epoch.
    pub epoch_losses: Vec<f64>,
    /// Validation loss after the final epoch.
    pub validation_loss: f64,
    /// Absolute relative error statistics on the held-out test partition.
    pub test_error: RelativeError,
    /// Whether the model hit the paper's "Diverged" condition on the test set.
    pub diverged: bool,
    /// Number of epochs actually run (differs from config under early stop).
    pub epochs_run: usize,
}

impl TrainReport {
    /// Table II-style row: `MARE ± σ` or `Diverged`.
    pub fn error_cell(&self) -> String {
        if self.diverged {
            "Diverged".to_string()
        } else {
            self.test_error.to_string()
        }
    }
}

/// Trains `network` on `split.train`, validating each epoch, then evaluates
/// on `split.test`, reproducing the paper's per-model measurement protocol.
///
/// # Panics
///
/// Panics if the network is empty or shapes are inconsistent with the split.
pub fn train(
    network: &mut Sequential,
    optimizer: &mut dyn Optimizer,
    split: &DataSplit,
    config: &TrainConfig,
) -> TrainReport {
    let (train_x, train_y) = &split.train;
    let (val_x, val_y) = &split.validation;
    let (test_x, test_y) = &split.test;
    assert!(train_x.rows() > 0, "empty training partition");

    let mut epoch_losses = Vec::with_capacity(config.epochs);
    let mut best_val = f64::INFINITY;
    let mut stale = 0usize;
    let mut epochs_run = 0usize;
    let start = Instant::now();
    for _ in 0..config.epochs {
        epochs_run += 1;
        let mut epoch_loss = 0.0;
        let mut batches = 0usize;
        let bs = config.batch_size.max(1);
        let mut row = 0;
        while row < train_x.rows() {
            let end = (row + bs).min(train_x.rows());
            // Borrowed row-range views: the batch trains in place, no copy.
            epoch_loss += network.train_batch_view(
                train_x.view_rows(row..end),
                train_y.view_rows(row..end),
                config.loss,
                optimizer,
            );
            batches += 1;
            row = end;
        }
        epoch_losses.push(epoch_loss / batches.max(1) as f64);
        if let Some(patience) = config.patience {
            let val_loss = config
                .loss
                .compute_view(network.predict_ref(val_x.view()).view(), val_y.view());
            if val_loss + 1e-12 < best_val {
                best_val = val_loss;
                stale = 0;
            } else {
                stale += 1;
                if stale >= patience {
                    break;
                }
            }
        }
    }
    let training_time = start.elapsed();
    network.zero_grad();

    let validation_loss = config
        .loss
        .compute_view(network.predict_ref(val_x.view()).view(), val_y.view());

    let pred_start = Instant::now();
    let test_pred = network.predict(test_x);
    let prediction_time = pred_start.elapsed();

    let diverged = is_diverged(&test_pred, test_y);
    let test_error = RelativeError::compute(&test_pred, test_y);
    TrainReport {
        training_time,
        prediction_time,
        epoch_losses,
        validation_loss,
        test_error,
        diverged,
        epochs_run,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::activation::Activation;
    use crate::init::seeded_rng;
    use crate::layers::Dense;
    use crate::optimizer::Sgd;

    fn linear_dataset(n: usize) -> (Matrix, Matrix) {
        // y = 2*a + 3*b with a, b in [0, 1].
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for i in 0..n {
            let a = (i % 10) as f64 / 10.0;
            let b = (i % 7) as f64 / 7.0;
            xs.extend_from_slice(&[a, b]);
            ys.push(2.0 * a + 3.0 * b + 0.5);
        }
        (Matrix::from_vec(n, 2, xs), Matrix::from_vec(n, 1, ys))
    }

    #[test]
    fn split_proportions() {
        let (x, y) = linear_dataset(100);
        let split = DataSplit::split_60_20_20(x, y);
        assert_eq!(split.train.0.rows(), 60);
        assert_eq!(split.validation.0.rows(), 20);
        assert_eq!(split.test.0.rows(), 20);
        assert_eq!(split.len(), 100);
    }

    #[test]
    fn split_partitions_are_disjoint_and_ordered() {
        let (x, y) = linear_dataset(10);
        let split = DataSplit::split_60_20_20(x.clone(), y);
        assert_eq!(split.train.0.row(0), x.row(0));
        assert_eq!(split.validation.0.row(0), x.row(6));
        assert_eq!(split.test.0.row(0), x.row(8));
    }

    #[test]
    #[should_panic(expected = "at least 5 rows")]
    fn tiny_split_panics() {
        let (x, y) = linear_dataset(3);
        let _ = DataSplit::split_60_20_20(x, y);
    }

    #[test]
    fn train_learns_linear_function() {
        let (x, y) = linear_dataset(200);
        let split = DataSplit::split_60_20_20(x, y);
        let mut rng = seeded_rng(11);
        let mut net = Sequential::new();
        net.push(Dense::new(2, 16, Activation::ReLU, &mut rng));
        net.push(Dense::new(16, 1, Activation::Linear, &mut rng));
        let mut opt = Sgd::new(0.05);
        let report = train(
            &mut net,
            &mut opt,
            &split,
            &TrainConfig {
                epochs: 150,
                ..TrainConfig::default()
            },
        );
        assert!(!report.diverged);
        assert!(
            report.test_error.mean < 10.0,
            "test MARE too high: {}",
            report.test_error
        );
        assert_eq!(report.epochs_run, 150);
        let first = report.epoch_losses.first().copied().unwrap();
        let last = report.epoch_losses.last().copied().unwrap();
        assert!(last < first);
    }

    #[test]
    fn early_stopping_halts_before_epoch_budget() {
        let (x, y) = linear_dataset(100);
        let split = DataSplit::split_60_20_20(x, y);
        let mut rng = seeded_rng(12);
        let mut net = Sequential::new();
        net.push(Dense::new(2, 4, Activation::Linear, &mut rng));
        net.push(Dense::new(4, 1, Activation::Linear, &mut rng));
        let mut opt = Sgd::new(0.05);
        let report = train(
            &mut net,
            &mut opt,
            &split,
            &TrainConfig {
                epochs: 5000,
                patience: Some(5),
                ..TrainConfig::default()
            },
        );
        assert!(report.epochs_run < 5000);
    }

    #[test]
    fn error_cell_formats_divergence() {
        let report = TrainReport {
            training_time: Duration::from_secs(1),
            prediction_time: Duration::from_millis(5),
            epoch_losses: vec![1.0],
            validation_loss: 1.0,
            test_error: RelativeError {
                mean: 400.0,
                std_dev: 10.0,
                signed_mean: 0.0,
            },
            diverged: true,
            epochs_run: 1,
        };
        assert_eq!(report.error_cell(), "Diverged");
    }
}
