//! Numerical gradient checking for every layer type.
//!
//! For each architecture we compare the analytic gradient produced by
//! backpropagation against a central-difference estimate for a sample of
//! parameters. This validates the hand-rolled BPTT in the recurrent layers.

use geomancy_nn::activation::Activation;
use geomancy_nn::init::seeded_rng;
use geomancy_nn::layers::{Dense, Gru, Lstm, SimpleRnn};
use geomancy_nn::loss::Loss;
use geomancy_nn::matrix::Matrix;
use geomancy_nn::network::Sequential;

const EPS: f64 = 1e-5;
const TOL: f64 = 1e-4;

/// Compares analytic vs numeric gradients for every parameter of `net`.
fn check_gradients(net: &mut Sequential, x: &Matrix, y: &Matrix) {
    net.zero_grad();
    let _ = net.backward_only(x, y, Loss::MeanSquaredError);
    // Snapshot analytic gradients.
    let analytic: Vec<Vec<f64>> = net
        .params_mut()
        .iter()
        .map(|p| p.grad.as_slice().to_vec())
        .collect();
    let param_count = analytic.len();
    for pi in 0..param_count {
        let n_elems = analytic[pi].len();
        // Sample up to 6 elements per parameter to keep the test fast.
        let stride = (n_elems / 6).max(1);
        for ei in (0..n_elems).step_by(stride) {
            let numeric = {
                let mut params = net.params_mut();
                params[pi].value.as_mut_slice()[ei] += EPS;
                drop(params);
                let plus = net.backward_only(x, y, Loss::MeanSquaredError);
                net.zero_grad();
                let mut params = net.params_mut();
                params[pi].value.as_mut_slice()[ei] -= 2.0 * EPS;
                drop(params);
                let minus = net.backward_only(x, y, Loss::MeanSquaredError);
                net.zero_grad();
                let mut params = net.params_mut();
                params[pi].value.as_mut_slice()[ei] += EPS;
                drop(params);
                (plus - minus) / (2.0 * EPS)
            };
            let a = analytic[pi][ei];
            let denom = a.abs().max(numeric.abs()).max(1.0);
            assert!(
                (a - numeric).abs() / denom < TOL,
                "param {pi} elem {ei}: analytic {a} vs numeric {numeric}"
            );
        }
    }
}

fn smooth_input(rows: usize, cols: usize) -> Matrix {
    let data = (0..rows * cols)
        .map(|i| ((i as f64) * 0.37).sin() * 0.5)
        .collect();
    Matrix::from_vec(rows, cols, data)
}

fn target(rows: usize) -> Matrix {
    let data = (0..rows).map(|i| 0.3 + 0.1 * i as f64).collect();
    Matrix::from_vec(rows, 1, data)
}

#[test]
fn dense_gradients_match_numeric() {
    let mut rng = seeded_rng(100);
    let mut net = Sequential::new();
    net.push(Dense::new(4, 5, Activation::Tanh, &mut rng));
    net.push(Dense::new(5, 1, Activation::Linear, &mut rng));
    check_gradients(&mut net, &smooth_input(3, 4), &target(3));
}

#[test]
fn dense_relu_gradients_match_numeric() {
    let mut rng = seeded_rng(101);
    let mut net = Sequential::new();
    net.push(Dense::new(4, 6, Activation::ReLU, &mut rng));
    net.push(Dense::new(6, 1, Activation::Linear, &mut rng));
    // Shift inputs away from ReLU kinks so central differences are valid.
    let x = smooth_input(3, 4).map(|v| v + 0.75);
    check_gradients(&mut net, &x, &target(3));
}

#[test]
fn simple_rnn_gradients_match_numeric() {
    let mut rng = seeded_rng(102);
    let mut net = Sequential::new();
    net.push(SimpleRnn::new(3, 4, 3, Activation::Tanh, &mut rng));
    net.push(Dense::new(4, 1, Activation::Linear, &mut rng));
    check_gradients(&mut net, &smooth_input(2, 9), &target(2));
}

#[test]
fn lstm_gradients_match_numeric() {
    let mut rng = seeded_rng(103);
    let mut net = Sequential::new();
    net.push(Lstm::new(3, 4, 3, Activation::Tanh, &mut rng));
    net.push(Dense::new(4, 1, Activation::Linear, &mut rng));
    check_gradients(&mut net, &smooth_input(2, 9), &target(2));
}

#[test]
fn gru_gradients_match_numeric() {
    let mut rng = seeded_rng(104);
    let mut net = Sequential::new();
    net.push(Gru::new(3, 4, 3, Activation::Tanh, &mut rng));
    net.push(Dense::new(4, 1, Activation::Linear, &mut rng));
    check_gradients(&mut net, &smooth_input(2, 9), &target(2));
}

#[test]
fn stacked_recurrent_dense_gradients_match_numeric() {
    // Mirrors model 17's shape: GRU, wide dense, narrow dense, linear head.
    let mut rng = seeded_rng(105);
    let mut net = Sequential::new();
    net.push(Gru::new(2, 3, 2, Activation::Tanh, &mut rng));
    net.push(Dense::new(3, 8, Activation::Tanh, &mut rng));
    net.push(Dense::new(8, 3, Activation::Tanh, &mut rng));
    net.push(Dense::new(3, 1, Activation::Linear, &mut rng));
    check_gradients(&mut net, &smooth_input(2, 4), &target(2));
}
