//! Property-based equivalence tests: the cache-blocked, fused kernels in
//! [`geomancy_nn::matrix::kernels`] must agree with the retained naive
//! reference implementations across random shapes — including shapes that
//! are not multiples of the blocking factor or the 4-wide unroll, and the
//! transpose-operand variants used by backpropagation.
//!
//! Every kernel with a SIMD variant is exercised **three-way**: the naive
//! `reference` oracle, the pinned portable backend (`kernels::scalar::*`),
//! and the dispatched entry point (`kernels::*` — AVX2+FMA on capable
//! hosts, scalar elsewhere or under `GEOMANCY_FORCE_SCALAR=1`; the CI
//! matrix runs this suite both ways so both arms are covered). Tests never
//! call `force_backend` — they run concurrently in one process and would
//! race on the global dispatch choice.
//!
//! The blocked kernels reassociate floating-point accumulation (4-way
//! k-unroll inside 32-wide k-panels) and the SIMD backend adds FMA and
//! 4-lane splits, so equality is asserted to a 1e-12 *relative* tolerance
//! rather than bitwise.

use geomancy_nn::activation::Activation;
use geomancy_nn::matrix::{kernels, Matrix};
use proptest::prelude::*;

/// Strategy: a matrix of the given shape with values in [-10, 10].
fn matrix(rows: usize, cols: usize) -> impl Strategy<Value = Matrix> {
    proptest::collection::vec(-10.0..10.0f64, rows * cols)
        .prop_map(move |data| Matrix::from_vec(rows, cols, data))
}

/// Strategy: a matrix pair (m×k, k×n) with every dimension drawn from
/// 1..=40 so shapes cross the 32-wide k-panel and 4-wide unroll boundaries.
fn matmul_operands() -> impl Strategy<Value = (Matrix, Matrix)> {
    (1usize..=40, 1usize..=40, 1usize..=40).prop_flat_map(|(m, k, n)| (matrix(m, k), matrix(k, n)))
}

/// Asserts element-wise agreement to a 1e-12 relative tolerance.
fn assert_close(got: &Matrix, want: &Matrix) -> Result<(), TestCaseError> {
    prop_assert_eq!(got.shape(), want.shape());
    for (g, w) in got.as_slice().iter().zip(want.as_slice()) {
        let scale = w.abs().max(1.0);
        prop_assert!(
            (g - w).abs() <= 1e-12 * scale,
            "kernel {} vs reference {}",
            g,
            w
        );
    }
    Ok(())
}

/// Strategy: a pair of same-shape matrices for element-wise kernels, with
/// widths crossing the 4-lane boundary.
fn elementwise_pair() -> impl Strategy<Value = (Matrix, Matrix)> {
    (1usize..=8, 1usize..=19).prop_flat_map(|(m, n)| (matrix(m, n), matrix(m, n)))
}

proptest! {
    #[test]
    fn blocked_matmul_matches_reference((a, b) in matmul_operands()) {
        let want = kernels::reference::matmul(&a, &b);
        let mut out = Matrix::default();
        kernels::matmul_into(a.view(), &b, &mut out);
        assert_close(&out, &want)?;
        let mut scalar_out = Matrix::default();
        kernels::scalar::matmul_into(a.view(), &b, &mut scalar_out);
        assert_close(&scalar_out, &want)?;
    }

    #[test]
    fn dot_matches_reference((a, b) in matmul_operands()) {
        assert_close(&a.dot(&b), &kernels::reference::matmul(&a, &b))?;
    }

    #[test]
    fn at_b_kernel_matches_transposed_reference((a, b) in matmul_operands()) {
        // out += aᵀ·a-shaped: reuse a (m×k) against c (m×n) so aᵀ·c is k×n.
        let c = b; // rename for clarity below
        let m = a.rows();
        let c = Matrix::from_vec(m, c.cols().clamp(1, 8), {
            let n = c.cols().clamp(1, 8);
            c.as_slice().iter().cycle().take(m * n).copied().collect()
        });
        let want = kernels::reference::matmul_at_b(&a, &c);
        let mut out = Matrix::zeros(a.cols(), c.cols());
        kernels::matmul_at_b_acc(a.view(), c.view(), &mut out);
        assert_close(&out, &want)?;
        let mut scalar_out = Matrix::zeros(a.cols(), c.cols());
        kernels::scalar::matmul_at_b_acc(a.view(), c.view(), &mut scalar_out);
        assert_close(&scalar_out, &want)?;
    }

    #[test]
    fn a_bt_kernel_matches_transposed_reference((a, b) in matmul_operands()) {
        // a (m×k) · bᵀ where b is n×k: reshape b's data to n×k.
        let n = b.cols();
        let bt = Matrix::from_vec(n, a.cols(), {
            b.as_slice().iter().cycle().take(n * a.cols()).copied().collect()
        });
        let want = kernels::reference::matmul_a_bt(&a, &bt);
        let mut out = Matrix::default();
        kernels::matmul_a_bt_into(a.view(), &bt, &mut out);
        assert_close(&out, &want)?;
        let mut scalar_out = Matrix::default();
        kernels::scalar::matmul_a_bt_into(a.view(), &bt, &mut scalar_out);
        assert_close(&scalar_out, &want)?;
    }

    #[test]
    fn fused_dense_forward_matches_reference(
        (x, w) in matmul_operands(),
        act_idx in 0usize..4,
    ) {
        let act = [
            Activation::ReLU,
            Activation::Sigmoid,
            Activation::Tanh,
            Activation::Linear,
        ][act_idx];
        let bias = Matrix::filled(1, w.cols(), 0.25);
        let want = kernels::reference::dense_forward(&x, &w, &bias, act);
        let mut out = Matrix::default();
        kernels::matmul_bias_act_into(x.view(), &w, &bias, act, &mut out);
        assert_close(&out, &want)?;
        let mut scalar_out = Matrix::default();
        kernels::scalar::matmul_bias_act_into(x.view(), &w, &bias, act, &mut scalar_out);
        assert_close(&scalar_out, &want)?;
    }

    #[test]
    fn column_window_matmul_matches_sliced_reference(
        (a, b) in matmul_operands(),
        lo in 0usize..40,
        hi in 1usize..=40,
    ) {
        // A strided column window of `a` against `b`-shaped weights must
        // equal slicing the columns out first and multiplying densely.
        let lo = lo % a.cols();
        let hi = lo + 1 + (hi - 1) % (a.cols() - lo);
        let cols = hi - lo;
        let w = Matrix::from_vec(cols, b.cols(), {
            b.as_slice().iter().cycle().take(cols * b.cols()).copied().collect()
        });
        let sliced = a.slice_cols(lo..hi);
        let want = kernels::reference::matmul(&sliced, &w);
        let mut out = Matrix::zeros(a.rows(), w.cols());
        kernels::matmul_cols_acc(a.view(), lo..hi, &w, &mut out);
        assert_close(&out, &want)?;
        let mut scalar_out = Matrix::zeros(a.rows(), w.cols());
        kernels::scalar::matmul_cols_acc(a.view(), lo..hi, &w, &mut scalar_out);
        assert_close(&scalar_out, &want)?;
    }

    #[test]
    fn accumulating_kernels_add_onto_existing_output((a, b) in matmul_operands()) {
        // matmul_acc must accumulate, not overwrite: seeding the output with
        // the product once and accumulating again doubles it.
        let base = kernels::reference::matmul(&a, &b);
        let mut out = base.clone();
        kernels::matmul_acc(a.view(), &b, &mut out);
        assert_close(&out, &base.scale(2.0))?;
    }

    #[test]
    fn activation_derivative_fusion_matches_composition(
        g in matrix(5, 7),
        y in matrix(5, 7),
        act_idx in 0usize..3,
    ) {
        let act = [Activation::ReLU, Activation::Sigmoid, Activation::Tanh][act_idx];
        // Sigmoid/Tanh derivatives are computed from the *output*, so map
        // the random values into each activation's range first.
        let y = y.map(|v| act.apply_scalar(v));
        let mut out = Matrix::default();
        kernels::hadamard_act_derivative_into(&g, &y, act, &mut out);
        let expected = g.hadamard(&y.map(|v| act.derivative_from_output(v)));
        assert_close(&out, &expected)?;
        let mut scalar_out = Matrix::default();
        kernels::scalar::hadamard_act_derivative_into(&g, &y, act, &mut scalar_out);
        assert_close(&scalar_out, &expected)?;
    }

    #[test]
    fn sum_rows_three_way(m in (1usize..=13, 1usize..=19).prop_flat_map(|(r, c)| matrix(r, c))) {
        let mut want = Matrix::zeros(1, m.cols());
        for r in 0..m.rows() {
            for c in 0..m.cols() {
                want[(0, c)] += m[(r, c)];
            }
        }
        let mut out = Matrix::zeros(1, m.cols());
        kernels::sum_rows_acc(&m, &mut out);
        assert_close(&out, &want)?;
        let mut scalar_out = Matrix::zeros(1, m.cols());
        kernels::scalar::sum_rows_acc(&m, &mut scalar_out);
        assert_close(&scalar_out, &want)?;
    }

    #[test]
    fn hadamard_three_way((a, b) in elementwise_pair()) {
        let want = a.hadamard(&b);
        let mut out = Matrix::default();
        kernels::hadamard_into(&a, &b, &mut out);
        assert_close(&out, &want)?;
        let mut scalar_out = Matrix::default();
        kernels::scalar::hadamard_into(&a, &b, &mut scalar_out);
        assert_close(&scalar_out, &want)?;
    }

    #[test]
    fn mul_add_mul_three_way(
        (a, b) in elementwise_pair(),
        seed in -5.0..5.0f64,
    ) {
        let c = a.map(|v| v + seed);
        let d = b.map(|v| v - seed);
        let mut want = Matrix::zeros(a.rows(), a.cols());
        for i in 0..want.as_slice().len() {
            want.as_mut_slice()[i] = a.as_slice()[i] * b.as_slice()[i]
                + c.as_slice()[i] * d.as_slice()[i];
        }
        let mut out = Matrix::default();
        kernels::mul_add_mul_into(&a, &b, &c, &d, &mut out);
        assert_close(&out, &want)?;
        let mut scalar_out = Matrix::default();
        kernels::scalar::mul_add_mul_into(&a, &b, &c, &d, &mut scalar_out);
        assert_close(&scalar_out, &want)?;
    }

    #[test]
    fn convex_combine_three_way((a, b) in elementwise_pair()) {
        // Map the first operand into [0, 1] so it reads as a gate.
        let t = a.map(|v| Activation::Sigmoid.apply_scalar(v));
        let mut want = Matrix::zeros(a.rows(), a.cols());
        for i in 0..want.as_slice().len() {
            want.as_mut_slice()[i] = (1.0 - t.as_slice()[i]) * a.as_slice()[i]
                + t.as_slice()[i] * b.as_slice()[i];
        }
        let mut out = Matrix::default();
        kernels::convex_combine_into(&t, &a, &b, &mut out);
        assert_close(&out, &want)?;
        let mut scalar_out = Matrix::default();
        kernels::scalar::convex_combine_into(&t, &a, &b, &mut scalar_out);
        assert_close(&scalar_out, &want)?;
    }

    #[test]
    fn act_into_three_way(
        (a, _) in elementwise_pair(),
        act_idx in 0usize..4,
    ) {
        let act = [
            Activation::ReLU,
            Activation::Sigmoid,
            Activation::Tanh,
            Activation::Linear,
        ][act_idx];
        let want = act.apply(&a);
        let mut out = Matrix::default();
        kernels::act_into(&a, act, &mut out);
        assert_close(&out, &want)?;
        let mut scalar_out = Matrix::default();
        kernels::scalar::act_into(&a, act, &mut scalar_out);
        assert_close(&scalar_out, &want)?;
    }

    #[test]
    fn lstm_backward_elementwise_three_way(
        (dh, dc) in elementwise_pair(),
        act_idx in 0usize..3,
    ) {
        let act = [Activation::ReLU, Activation::Sigmoid, Activation::Tanh][act_idx];
        // Gate caches live in their activations' ranges.
        let sig = Activation::Sigmoid;
        let a = dh.map(|v| act.apply_scalar(v * 0.7));
        let o = dc.map(|v| sig.apply_scalar(v));
        let i = dh.map(|v| sig.apply_scalar(-v));
        let f = dc.map(|v| sig.apply_scalar(v * 0.3));
        let g = dh.map(|v| act.apply_scalar(-v * 0.5));
        let c_prev = dc.map(|v| v * 0.9);
        let (rows, cols) = dh.shape();
        let mut want = [Matrix::zeros(rows, cols), Matrix::zeros(rows, cols),
                        Matrix::zeros(rows, cols), Matrix::zeros(rows, cols),
                        Matrix::zeros(rows, cols)];
        for p in 0..rows * cols {
            let dc_total = dc.as_slice()[p]
                + dh.as_slice()[p] * o.as_slice()[p] * act.derivative_from_output(a.as_slice()[p]);
            want[2].as_mut_slice()[p] = dh.as_slice()[p] * a.as_slice()[p]
                * sig.derivative_from_output(o.as_slice()[p]);
            want[1].as_mut_slice()[p] = dc_total * c_prev.as_slice()[p]
                * sig.derivative_from_output(f.as_slice()[p]);
            want[0].as_mut_slice()[p] = dc_total * g.as_slice()[p]
                * sig.derivative_from_output(i.as_slice()[p]);
            want[3].as_mut_slice()[p] = dc_total * i.as_slice()[p]
                * act.derivative_from_output(g.as_slice()[p]);
            want[4].as_mut_slice()[p] = dc_total * f.as_slice()[p];
        }
        for run in 0..2 {
            let mut dz_i = Matrix::default();
            let mut dz_f = Matrix::default();
            let mut dz_o = Matrix::default();
            let mut dz_g = Matrix::default();
            let mut dc_prev = Matrix::default();
            if run == 0 {
                kernels::lstm_backward_elementwise(
                    &dh, &dc, &a, &o, &i, &f, &g, &c_prev, act,
                    &mut dz_i, &mut dz_f, &mut dz_o, &mut dz_g, &mut dc_prev,
                );
            } else {
                kernels::scalar::lstm_backward_elementwise(
                    &dh, &dc, &a, &o, &i, &f, &g, &c_prev, act,
                    &mut dz_i, &mut dz_f, &mut dz_o, &mut dz_g, &mut dc_prev,
                );
            }
            for (got, want) in [&dz_i, &dz_f, &dz_o, &dz_g, &dc_prev]
                .into_iter()
                .zip([&want[0], &want[1], &want[2], &want[3], &want[4]])
            {
                assert_close(got, want)?;
            }
        }
    }

    #[test]
    fn gru_backward_gates_three_way((dh, raw) in elementwise_pair()) {
        let act = Activation::Tanh;
        let sig = Activation::Sigmoid;
        let z = raw.map(|v| sig.apply_scalar(v));
        let cand = raw.map(|v| act.apply_scalar(-v));
        let h_prev = dh.map(|v| v * 0.8);
        let (rows, cols) = dh.shape();
        let mut want = [Matrix::zeros(rows, cols), Matrix::zeros(rows, cols),
                        Matrix::zeros(rows, cols)];
        for p in 0..rows * cols {
            want[0].as_mut_slice()[p] = dh.as_slice()[p]
                * (cand.as_slice()[p] - h_prev.as_slice()[p])
                * sig.derivative_from_output(z.as_slice()[p]);
            want[1].as_mut_slice()[p] = dh.as_slice()[p] * z.as_slice()[p]
                * act.derivative_from_output(cand.as_slice()[p]);
            want[2].as_mut_slice()[p] = dh.as_slice()[p] * (1.0 - z.as_slice()[p]);
        }
        for run in 0..2 {
            let mut dz_pre = Matrix::default();
            let mut dcand_pre = Matrix::default();
            let mut dh_prev = Matrix::default();
            if run == 0 {
                kernels::gru_backward_gates(
                    &dh, &z, &cand, &h_prev, act,
                    &mut dz_pre, &mut dcand_pre, &mut dh_prev,
                );
            } else {
                kernels::scalar::gru_backward_gates(
                    &dh, &z, &cand, &h_prev, act,
                    &mut dz_pre, &mut dcand_pre, &mut dh_prev,
                );
            }
            assert_close(&dz_pre, &want[0])?;
            assert_close(&dcand_pre, &want[1])?;
            assert_close(&dh_prev, &want[2])?;
        }
    }

    #[test]
    fn gru_backward_reset_three_way((d_rh, raw) in elementwise_pair()) {
        let sig = Activation::Sigmoid;
        let r = raw.map(|v| sig.apply_scalar(v));
        let h_prev = d_rh.map(|v| v * 0.6);
        let seed = raw.map(|v| v * 0.1);
        let (rows, cols) = d_rh.shape();
        let mut want = [Matrix::zeros(rows, cols), seed.clone(), Matrix::zeros(rows, cols)];
        for p in 0..rows * cols {
            want[0].as_mut_slice()[p] = d_rh.as_slice()[p] * h_prev.as_slice()[p]
                * sig.derivative_from_output(r.as_slice()[p]);
            want[1].as_mut_slice()[p] += d_rh.as_slice()[p] * r.as_slice()[p];
            want[2].as_mut_slice()[p] = r.as_slice()[p] * h_prev.as_slice()[p];
        }
        for run in 0..2 {
            let mut dr_pre = Matrix::default();
            let mut dh_prev = seed.clone();
            let mut rh = Matrix::default();
            if run == 0 {
                kernels::gru_backward_reset(&d_rh, &r, &h_prev, &mut dr_pre, &mut dh_prev, &mut rh);
            } else {
                kernels::scalar::gru_backward_reset(
                    &d_rh, &r, &h_prev, &mut dr_pre, &mut dh_prev, &mut rh,
                );
            }
            assert_close(&dr_pre, &want[0])?;
            assert_close(&dh_prev, &want[1])?;
            assert_close(&rh, &want[2])?;
        }
    }
}

/// The old scalar `dot` skipped `a == 0.0` elements to "exploit sparsity",
/// which costs a branch per inner-loop iteration on dense data. The blocked
/// kernel removed the branch; this regression test pins that sparse and
/// dense inputs flow through the identical code path and produce identical
/// results.
#[test]
fn sparse_and_dense_dot_agree() {
    fn pseudo(i: usize, mul: usize, add: usize, m: usize, div: f64, off: f64) -> f64 {
        ((i * mul + add) % m) as f64 / div - off
    }

    // With inner dimension 3 every k-term falls into the kernel's scalar
    // remainder loop, whose accumulation order matches the naive reference
    // exactly — so agreement here is bitwise, sparse or dense.
    let rows = 17;
    let cols = 9;
    for inner in [1usize, 2, 3] {
        let dense = Matrix::from_vec(
            rows,
            inner,
            (0..rows * inner)
                .map(|i| pseudo(i, 37, 11, 97, 19.0, 2.5))
                .collect(),
        );
        // ~70 % of entries zeroed: the old `dot` skipped these with a branch;
        // the blocked kernel must flow them through the same multiply-add
        // path and land on identical results.
        let sparse = dense.map(|v| {
            if (v.abs() * 19.0) as i64 % 10 < 7 {
                0.0
            } else {
                v
            }
        });
        let b = Matrix::from_vec(
            inner,
            cols,
            (0..inner * cols)
                .map(|i| pseudo(i, 53, 7, 89, 17.0, 2.0))
                .collect(),
        );
        assert_eq!(sparse.dot(&b), kernels::reference::matmul(&sparse, &b));
        assert_eq!(dense.dot(&b), kernels::reference::matmul(&dense, &b));
    }

    // For a wide inner dimension the kernel's 4-way unroll reassociates the
    // sum, so compare to the reference with the 1e-12 relative tolerance —
    // the point stays: sparse input takes no shortcut branch.
    let inner = 47;
    let dense = Matrix::from_vec(
        rows,
        inner,
        (0..rows * inner)
            .map(|i| pseudo(i, 37, 11, 97, 19.0, 2.5))
            .collect(),
    );
    let sparse = dense.map(|v| {
        if (v.abs() * 19.0) as i64 % 10 < 7 {
            0.0
        } else {
            v
        }
    });
    let b = Matrix::from_vec(
        inner,
        cols,
        (0..inner * cols)
            .map(|i| pseudo(i, 53, 7, 89, 17.0, 2.0))
            .collect(),
    );
    for (m, name) in [(&sparse, "sparse"), (&dense, "dense")] {
        let got = m.dot(&b);
        let want = kernels::reference::matmul(m, &b);
        for (g, w) in got.as_slice().iter().zip(want.as_slice()) {
            assert!(
                (g - w).abs() <= 1e-12 * w.abs().max(1.0),
                "{name}: kernel {g} vs reference {w}"
            );
        }
    }
    // A fully-zero operand yields an exactly-zero product.
    let zeros = Matrix::zeros(rows, inner);
    assert!(zeros.dot(&b).as_slice().iter().all(|&v| v == 0.0));
}

/// Panicking variant of `assert_close` for the deterministic unit tests.
fn check_close(got: &Matrix, want: &Matrix, what: &str) {
    assert_eq!(got.shape(), want.shape(), "{what}: shape mismatch");
    for (g, w) in got.as_slice().iter().zip(want.as_slice()) {
        let scale = w.abs().max(1.0);
        assert!(
            (g - w).abs() <= 1e-12 * scale,
            "{what}: kernel {g} vs reference {w}"
        );
    }
}

fn pseudo_matrix(rows: usize, cols: usize, seed: usize) -> Matrix {
    Matrix::from_vec(
        rows,
        cols,
        (0..rows * cols)
            .map(|i| ((i * 37 + seed * 13 + 11) % 97) as f64 / 19.0 - 2.5)
            .collect(),
    )
}

/// Explicit remainder-lane coverage: every n in 1..=9 (odd widths never
/// fill a 4-wide f64 lane) crossed with k values that leave 1-, 2- and
/// 3-element tails in the 4-wide k-unroll and cross the 32-wide k-panel.
#[test]
fn matmul_family_remainder_shapes() {
    for n in [1usize, 2, 3, 4, 5, 6, 7, 8, 9] {
        for k in [1usize, 2, 3, 5, 7, 9, 31, 33] {
            let m = 5;
            let a = pseudo_matrix(m, k, n);
            let b = pseudo_matrix(k, n, k);
            let what = format!("matmul m={m} k={k} n={n}");
            let want = kernels::reference::matmul(&a, &b);
            let mut out = Matrix::default();
            kernels::matmul_into(a.view(), &b, &mut out);
            check_close(&out, &want, &what);
            let mut scalar_out = Matrix::default();
            kernels::scalar::matmul_into(a.view(), &b, &mut scalar_out);
            check_close(&scalar_out, &want, &what);

            // aᵀ·b with the same awkward widths.
            let c = pseudo_matrix(m, n, n + k);
            let want = kernels::reference::matmul_at_b(&a, &c);
            let mut out = Matrix::zeros(k, n);
            kernels::matmul_at_b_acc(a.view(), c.view(), &mut out);
            check_close(&out, &want, &format!("at_b {what}"));
            let mut scalar_out = Matrix::zeros(k, n);
            kernels::scalar::matmul_at_b_acc(a.view(), c.view(), &mut scalar_out);
            check_close(&scalar_out, &want, &format!("at_b {what}"));

            // a·bᵀ: k is the dot length here, so odd k exercises the
            // horizontal-reduction tail.
            let bt = pseudo_matrix(n, k, 3 * n + k);
            let want = kernels::reference::matmul_a_bt(&a, &bt);
            let mut out = Matrix::default();
            kernels::matmul_a_bt_into(a.view(), &bt, &mut out);
            check_close(&out, &want, &format!("a_bt {what}"));
            let mut scalar_out = Matrix::default();
            kernels::scalar::matmul_a_bt_into(a.view(), &bt, &mut scalar_out);
            check_close(&scalar_out, &want, &format!("a_bt {what}"));
        }
    }
}

/// Empty operands (zero rows, zero shared dim, or zero batch) must produce
/// empty or zero outputs without panicking on either backend.
#[test]
fn empty_matrix_cases() {
    // m = 0: empty output.
    let a = Matrix::zeros(0, 4);
    let b = pseudo_matrix(4, 3, 1);
    let mut out = Matrix::default();
    kernels::matmul_into(a.view(), &b, &mut out);
    assert_eq!(out.shape(), (0, 3));
    let mut scalar_out = Matrix::default();
    kernels::scalar::matmul_into(a.view(), &b, &mut scalar_out);
    assert_eq!(scalar_out.shape(), (0, 3));

    // k = 0: a well-defined all-zero product.
    let a = Matrix::zeros(3, 0);
    let b = Matrix::zeros(0, 5);
    let mut out = Matrix::default();
    kernels::matmul_into(a.view(), &b, &mut out);
    assert_eq!(out.shape(), (3, 5));
    assert!(out.as_slice().iter().all(|&v| v == 0.0));

    // Zero-row batch through the transpose kernels and the fused forward.
    let x = Matrix::zeros(0, 4);
    let g = Matrix::zeros(0, 2);
    let mut wgrad = Matrix::zeros(4, 2);
    kernels::matmul_at_b_acc(x.view(), g.view(), &mut wgrad);
    assert!(wgrad.as_slice().iter().all(|&v| v == 0.0));
    let w = pseudo_matrix(4, 2, 2);
    let bias = pseudo_matrix(1, 2, 3);
    let mut out = Matrix::default();
    kernels::matmul_bias_act_into(x.view(), &w, &bias, Activation::ReLU, &mut out);
    assert_eq!(out.shape(), (0, 2));

    // Empty element-wise inputs.
    let e = Matrix::zeros(0, 7);
    let mut out = Matrix::default();
    kernels::hadamard_into(&e, &e, &mut out);
    assert_eq!(out.shape(), (0, 7));
    let mut out = Matrix::default();
    kernels::act_into(&e, Activation::Tanh, &mut out);
    assert_eq!(out.shape(), (0, 7));
    let mut sums = Matrix::zeros(1, 7);
    kernels::sum_rows_acc(&e, &mut sums);
    assert!(sums.as_slice().iter().all(|&v| v == 0.0));
}

/// The dispatch layer resolves to a stable, documented name, and matches
/// the `GEOMANCY_FORCE_SCALAR` override when set (the CI matrix relies on
/// this to pin the portable backend).
#[test]
fn backend_dispatch_is_coherent() {
    let b = kernels::backend();
    let name = kernels::backend_name();
    assert_eq!(name, b.name());
    assert!(
        name == "avx2_fma" || name == "scalar",
        "unknown backend {name}"
    );
    let forced = std::env::var("GEOMANCY_FORCE_SCALAR")
        .map(|v| !v.is_empty() && v != "0")
        .unwrap_or(false);
    if forced {
        assert_eq!(name, "scalar", "GEOMANCY_FORCE_SCALAR must pin scalar");
    }
    #[cfg(not(target_arch = "x86_64"))]
    assert_eq!(name, "scalar");
}
