//! Property-based equivalence tests: the cache-blocked, fused kernels in
//! [`geomancy_nn::matrix::kernels`] must agree with the retained naive
//! reference implementations across random shapes — including shapes that
//! are not multiples of the blocking factor or the 4-wide unroll, and the
//! transpose-operand variants used by backpropagation.
//!
//! The blocked kernels reassociate floating-point accumulation (4-way
//! k-unroll inside 32-wide k-panels), so equality is asserted to a 1e-12
//! *relative* tolerance rather than bitwise.

use geomancy_nn::activation::Activation;
use geomancy_nn::matrix::{kernels, Matrix};
use proptest::prelude::*;

/// Strategy: a matrix of the given shape with values in [-10, 10].
fn matrix(rows: usize, cols: usize) -> impl Strategy<Value = Matrix> {
    proptest::collection::vec(-10.0..10.0f64, rows * cols)
        .prop_map(move |data| Matrix::from_vec(rows, cols, data))
}

/// Strategy: a matrix pair (m×k, k×n) with every dimension drawn from
/// 1..=40 so shapes cross the 32-wide k-panel and 4-wide unroll boundaries.
fn matmul_operands() -> impl Strategy<Value = (Matrix, Matrix)> {
    (1usize..=40, 1usize..=40, 1usize..=40).prop_flat_map(|(m, k, n)| (matrix(m, k), matrix(k, n)))
}

/// Asserts element-wise agreement to a 1e-12 relative tolerance.
fn assert_close(got: &Matrix, want: &Matrix) -> Result<(), TestCaseError> {
    prop_assert_eq!(got.shape(), want.shape());
    for (g, w) in got.as_slice().iter().zip(want.as_slice()) {
        let scale = w.abs().max(1.0);
        prop_assert!(
            (g - w).abs() <= 1e-12 * scale,
            "kernel {} vs reference {}",
            g,
            w
        );
    }
    Ok(())
}

proptest! {
    #[test]
    fn blocked_matmul_matches_reference((a, b) in matmul_operands()) {
        let mut out = Matrix::default();
        kernels::matmul_into(a.view(), &b, &mut out);
        assert_close(&out, &kernels::reference::matmul(&a, &b))?;
    }

    #[test]
    fn dot_matches_reference((a, b) in matmul_operands()) {
        assert_close(&a.dot(&b), &kernels::reference::matmul(&a, &b))?;
    }

    #[test]
    fn at_b_kernel_matches_transposed_reference((a, b) in matmul_operands()) {
        // out += aᵀ·a-shaped: reuse a (m×k) against c (m×n) so aᵀ·c is k×n.
        let c = b; // rename for clarity below
        let m = a.rows();
        let c = Matrix::from_vec(m, c.cols().clamp(1, 8), {
            let n = c.cols().clamp(1, 8);
            c.as_slice().iter().cycle().take(m * n).copied().collect()
        });
        let mut out = Matrix::zeros(a.cols(), c.cols());
        kernels::matmul_at_b_acc(a.view(), c.view(), &mut out);
        assert_close(&out, &kernels::reference::matmul_at_b(&a, &c))?;
    }

    #[test]
    fn a_bt_kernel_matches_transposed_reference((a, b) in matmul_operands()) {
        // a (m×k) · bᵀ where b is n×k: reshape b's data to n×k.
        let n = b.cols();
        let bt = Matrix::from_vec(n, a.cols(), {
            b.as_slice().iter().cycle().take(n * a.cols()).copied().collect()
        });
        let mut out = Matrix::default();
        kernels::matmul_a_bt_into(a.view(), &bt, &mut out);
        assert_close(&out, &kernels::reference::matmul_a_bt(&a, &bt))?;
    }

    #[test]
    fn fused_dense_forward_matches_reference(
        (x, w) in matmul_operands(),
        act_idx in 0usize..4,
    ) {
        let act = [
            Activation::ReLU,
            Activation::Sigmoid,
            Activation::Tanh,
            Activation::Linear,
        ][act_idx];
        let bias = Matrix::filled(1, w.cols(), 0.25);
        let mut out = Matrix::default();
        kernels::matmul_bias_act_into(x.view(), &w, &bias, act, &mut out);
        assert_close(&out, &kernels::reference::dense_forward(&x, &w, &bias, act))?;
    }

    #[test]
    fn column_window_matmul_matches_sliced_reference(
        (a, b) in matmul_operands(),
        lo in 0usize..40,
        hi in 1usize..=40,
    ) {
        // A strided column window of `a` against `b`-shaped weights must
        // equal slicing the columns out first and multiplying densely.
        let lo = lo % a.cols();
        let hi = lo + 1 + (hi - 1) % (a.cols() - lo);
        let cols = hi - lo;
        let w = Matrix::from_vec(cols, b.cols(), {
            b.as_slice().iter().cycle().take(cols * b.cols()).copied().collect()
        });
        let mut out = Matrix::zeros(a.rows(), w.cols());
        kernels::matmul_cols_acc(a.view(), lo..hi, &w, &mut out);
        let sliced = a.slice_cols(lo..hi);
        assert_close(&out, &kernels::reference::matmul(&sliced, &w))?;
    }

    #[test]
    fn accumulating_kernels_add_onto_existing_output((a, b) in matmul_operands()) {
        // matmul_acc must accumulate, not overwrite: seeding the output with
        // the product once and accumulating again doubles it.
        let base = kernels::reference::matmul(&a, &b);
        let mut out = base.clone();
        kernels::matmul_acc(a.view(), &b, &mut out);
        assert_close(&out, &base.scale(2.0))?;
    }

    #[test]
    fn activation_derivative_fusion_matches_composition(
        g in matrix(5, 7),
        y in matrix(5, 7),
        act_idx in 0usize..3,
    ) {
        let act = [Activation::ReLU, Activation::Sigmoid, Activation::Tanh][act_idx];
        // Sigmoid/Tanh derivatives are computed from the *output*, so map
        // the random values into each activation's range first.
        let y = y.map(|v| act.apply_scalar(v));
        let mut out = Matrix::default();
        kernels::hadamard_act_derivative_into(&g, &y, act, &mut out);
        let expected = g.hadamard(&y.map(|v| act.derivative_from_output(v)));
        assert_close(&out, &expected)?;
    }
}

/// The old scalar `dot` skipped `a == 0.0` elements to "exploit sparsity",
/// which costs a branch per inner-loop iteration on dense data. The blocked
/// kernel removed the branch; this regression test pins that sparse and
/// dense inputs flow through the identical code path and produce identical
/// results.
#[test]
fn sparse_and_dense_dot_agree() {
    fn pseudo(i: usize, mul: usize, add: usize, m: usize, div: f64, off: f64) -> f64 {
        ((i * mul + add) % m) as f64 / div - off
    }

    // With inner dimension 3 every k-term falls into the kernel's scalar
    // remainder loop, whose accumulation order matches the naive reference
    // exactly — so agreement here is bitwise, sparse or dense.
    let rows = 17;
    let cols = 9;
    for inner in [1usize, 2, 3] {
        let dense = Matrix::from_vec(
            rows,
            inner,
            (0..rows * inner)
                .map(|i| pseudo(i, 37, 11, 97, 19.0, 2.5))
                .collect(),
        );
        // ~70 % of entries zeroed: the old `dot` skipped these with a branch;
        // the blocked kernel must flow them through the same multiply-add
        // path and land on identical results.
        let sparse = dense.map(|v| {
            if (v.abs() * 19.0) as i64 % 10 < 7 {
                0.0
            } else {
                v
            }
        });
        let b = Matrix::from_vec(
            inner,
            cols,
            (0..inner * cols)
                .map(|i| pseudo(i, 53, 7, 89, 17.0, 2.0))
                .collect(),
        );
        assert_eq!(sparse.dot(&b), kernels::reference::matmul(&sparse, &b));
        assert_eq!(dense.dot(&b), kernels::reference::matmul(&dense, &b));
    }

    // For a wide inner dimension the kernel's 4-way unroll reassociates the
    // sum, so compare to the reference with the 1e-12 relative tolerance —
    // the point stays: sparse input takes no shortcut branch.
    let inner = 47;
    let dense = Matrix::from_vec(
        rows,
        inner,
        (0..rows * inner)
            .map(|i| pseudo(i, 37, 11, 97, 19.0, 2.5))
            .collect(),
    );
    let sparse = dense.map(|v| {
        if (v.abs() * 19.0) as i64 % 10 < 7 {
            0.0
        } else {
            v
        }
    });
    let b = Matrix::from_vec(
        inner,
        cols,
        (0..inner * cols)
            .map(|i| pseudo(i, 53, 7, 89, 17.0, 2.0))
            .collect(),
    );
    for (m, name) in [(&sparse, "sparse"), (&dense, "dense")] {
        let got = m.dot(&b);
        let want = kernels::reference::matmul(m, &b);
        for (g, w) in got.as_slice().iter().zip(want.as_slice()) {
            assert!(
                (g - w).abs() <= 1e-12 * w.abs().max(1.0),
                "{name}: kernel {g} vs reference {w}"
            );
        }
    }
    // A fully-zero operand yields an exactly-zero product.
    let zeros = Matrix::zeros(rows, inner);
    assert!(zeros.dot(&b).as_slice().iter().all(|&v| v == 0.0));
}
