//! Property-based tests of the matrix algebra backing backpropagation.

use geomancy_nn::matrix::Matrix;
use proptest::prelude::*;

/// Strategy: a matrix of the given shape with values in [-10, 10].
fn matrix(rows: usize, cols: usize) -> impl Strategy<Value = Matrix> {
    proptest::collection::vec(-10.0..10.0f64, rows * cols)
        .prop_map(move |data| Matrix::from_vec(rows, cols, data))
}

proptest! {
    #[test]
    fn transpose_is_involutive(m in matrix(4, 7)) {
        prop_assert_eq!(m.transpose().transpose(), m);
    }

    #[test]
    fn identity_is_multiplicative_unit(m in matrix(5, 5)) {
        let i = Matrix::identity(5);
        prop_assert_eq!(m.dot(&i), m.clone());
        prop_assert_eq!(i.dot(&m), m);
    }

    #[test]
    fn addition_commutes(a in matrix(3, 4), b in matrix(3, 4)) {
        prop_assert_eq!(a.add(&b), b.add(&a));
    }

    #[test]
    fn hadamard_commutes(a in matrix(3, 4), b in matrix(3, 4)) {
        prop_assert_eq!(a.hadamard(&b), b.hadamard(&a));
    }

    #[test]
    fn sub_of_self_is_zero(a in matrix(2, 6)) {
        let z = a.sub(&a);
        prop_assert!(z.as_slice().iter().all(|&x| x == 0.0));
    }

    #[test]
    fn dot_distributes_over_addition(a in matrix(3, 4), b in matrix(4, 2), c in matrix(4, 2)) {
        let left = a.dot(&b.add(&c));
        let right = a.dot(&b).add(&a.dot(&c));
        for (l, r) in left.as_slice().iter().zip(right.as_slice()) {
            prop_assert!((l - r).abs() < 1e-9, "{l} vs {r}");
        }
    }

    #[test]
    fn transpose_reverses_dot(a in matrix(3, 4), b in matrix(4, 2)) {
        let lhs = a.dot(&b).transpose();
        let rhs = b.transpose().dot(&a.transpose());
        for (l, r) in lhs.as_slice().iter().zip(rhs.as_slice()) {
            prop_assert!((l - r).abs() < 1e-9);
        }
    }

    #[test]
    fn scale_is_linear(a in matrix(3, 3), s in -5.0..5.0f64) {
        let doubled = a.scale(s).scale(2.0);
        let direct = a.scale(2.0 * s);
        for (l, r) in doubled.as_slice().iter().zip(direct.as_slice()) {
            prop_assert!((l - r).abs() < 1e-9);
        }
    }

    #[test]
    fn sum_rows_preserves_total(a in matrix(4, 5)) {
        prop_assert!((a.sum_rows().sum() - a.sum()).abs() < 1e-9);
    }

    #[test]
    fn clip_bounds_all_elements(mut a in matrix(3, 3), limit in 0.1..5.0f64) {
        a.clip_inplace(limit);
        prop_assert!(a.as_slice().iter().all(|&x| x.abs() <= limit + 1e-12));
    }

    #[test]
    fn slice_rows_then_vstack_round_trips(a in matrix(6, 3), split in 1usize..5) {
        let top = a.slice_rows(0..split);
        let bottom = a.slice_rows(split..6);
        prop_assert_eq!(top.vstack(&bottom), a);
    }

    #[test]
    fn row_broadcast_adds_exactly_bias(a in matrix(3, 4), bias in matrix(1, 4)) {
        let out = a.add_row_broadcast(&bias);
        for r in 0..3 {
            for c in 0..4 {
                prop_assert!((out[(r, c)] - a[(r, c)] - bias[(0, c)]).abs() < 1e-12);
            }
        }
    }
}
