//! Property-based tests of activations, losses, and metrics.

use geomancy_nn::activation::Activation;
use geomancy_nn::loss::Loss;
use geomancy_nn::matrix::Matrix;
use geomancy_nn::metrics::RelativeError;
use proptest::prelude::*;

proptest! {
    #[test]
    fn relu_is_non_negative_and_monotone(a in -100.0..100.0f64, b in -100.0..100.0f64) {
        let r = Activation::ReLU;
        prop_assert!(r.apply_scalar(a) >= 0.0);
        if a <= b {
            prop_assert!(r.apply_scalar(a) <= r.apply_scalar(b));
        }
    }

    #[test]
    fn sigmoid_bounded_and_monotone(a in -50.0..50.0f64, b in -50.0..50.0f64) {
        let s = Activation::Sigmoid;
        let ya = s.apply_scalar(a);
        prop_assert!((0.0..=1.0).contains(&ya));
        if a < b {
            prop_assert!(ya <= s.apply_scalar(b));
        }
    }

    #[test]
    fn tanh_is_odd(x in -20.0..20.0f64) {
        let t = Activation::Tanh;
        prop_assert!((t.apply_scalar(-x) + t.apply_scalar(x)).abs() < 1e-12);
    }

    #[test]
    fn all_derivatives_are_finite_and_bounded(x in -30.0..30.0f64) {
        for act in [Activation::ReLU, Activation::Linear, Activation::Sigmoid, Activation::Tanh] {
            let y = act.apply_scalar(x);
            let d = act.derivative_from_output(y);
            prop_assert!(d.is_finite());
            prop_assert!((0.0..=1.0 + 1e-12).contains(&d), "{act:?} derivative {d}");
        }
    }

    #[test]
    fn mse_is_non_negative_and_zero_iff_equal(
        p in proptest::collection::vec(-100.0..100.0f64, 1..20),
    ) {
        let pred = Matrix::row_vector(&p);
        prop_assert_eq!(Loss::MeanSquaredError.compute(&pred, &pred), 0.0);
        let shifted = pred.map(|x| x + 1.0);
        prop_assert!(Loss::MeanSquaredError.compute(&pred, &shifted) > 0.0);
    }

    #[test]
    fn mse_is_symmetric(
        pairs in proptest::collection::vec((-10.0..10.0f64, -10.0..10.0f64), 1..10),
    ) {
        let p: Vec<f64> = pairs.iter().map(|x| x.0).collect();
        let t: Vec<f64> = pairs.iter().map(|x| x.1).collect();
        let a = Matrix::row_vector(&p);
        let b = Matrix::row_vector(&t);
        let ab = Loss::MeanSquaredError.compute(&a, &b);
        let ba = Loss::MeanSquaredError.compute(&b, &a);
        prop_assert!((ab - ba).abs() < 1e-12);
    }

    #[test]
    fn mae_upper_bounds_are_sane(
        vals in proptest::collection::vec(0.1..100.0f64, 2..20),
        scale in 0.5..2.0f64,
    ) {
        // Scaling predictions by a constant factor yields a relative error
        // of exactly |1 - scale| on every element.
        let target = Matrix::row_vector(&vals);
        let pred = target.scale(scale);
        let err = RelativeError::compute(&pred, &target);
        prop_assert!((err.mean - (1.0 - scale).abs() * 100.0).abs() < 1e-6);
        prop_assert!(err.std_dev < 1e-6);
    }

    #[test]
    fn relative_error_is_scale_invariant(
        vals in proptest::collection::vec(0.1..100.0f64, 2..20),
        factor in 0.1..10.0f64,
    ) {
        // Multiplying both predictions and targets by the same factor must
        // not change relative error — the property that justifies training
        // on max-scaled targets.
        let target = Matrix::row_vector(&vals);
        let pred = target.map(|x| x * 1.1);
        let e1 = RelativeError::compute(&pred, &target);
        let e2 = RelativeError::compute(&pred.scale(factor), &target.scale(factor));
        prop_assert!((e1.mean - e2.mean).abs() < 1e-9);
    }
}
