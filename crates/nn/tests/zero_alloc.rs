//! Steady-state allocation tests: after a warm-up call has sized every
//! scratch buffer, the training and prediction hot paths must perform no
//! heap allocation at all.
//!
//! A counting `#[global_allocator]` wraps the system allocator; the test
//! snapshots the allocation counter around the measured region. Everything
//! runs inside a single `#[test]` so no concurrent test can pollute the
//! counter.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

use geomancy_nn::activation::Activation;
use geomancy_nn::init::seeded_rng;
use geomancy_nn::layers::Dense;
use geomancy_nn::loss::Loss;
use geomancy_nn::matrix::Matrix;
use geomancy_nn::network::Sequential;
use geomancy_nn::optimizer::{Adam, Sgd};

/// Counts every allocation made through the global allocator.
struct CountingAllocator;

static ALLOCATIONS: AtomicUsize = AtomicUsize::new(0);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAllocator = CountingAllocator;

fn allocations() -> usize {
    ALLOCATIONS.load(Ordering::Relaxed)
}

/// The paper's model 1: dense 6 -> 96 -> 48 -> 24 -> 1.
fn model1() -> Sequential {
    let mut rng = seeded_rng(7);
    let mut net = Sequential::new();
    net.push(Dense::new(6, 96, Activation::ReLU, &mut rng));
    net.push(Dense::new(96, 48, Activation::ReLU, &mut rng));
    net.push(Dense::new(48, 24, Activation::ReLU, &mut rng));
    net.push(Dense::new(24, 1, Activation::Linear, &mut rng));
    net
}

fn batch(rows: usize) -> (Matrix, Matrix) {
    let x = Matrix::from_vec(
        rows,
        6,
        (0..rows * 6).map(|i| (i % 13) as f64 / 13.0).collect(),
    );
    let y = Matrix::from_vec(rows, 1, (0..rows).map(|i| (i % 5) as f64 / 5.0).collect());
    (x, y)
}

#[test]
fn steady_state_hot_paths_do_not_allocate() {
    let (x, y) = batch(64);

    // --- train_batch_view with SGD ---
    let mut net = model1();
    let mut opt = Sgd::new(0.01);
    // Warm-up sizes the activation arena, layer scratch and loss gradient.
    net.train_batch_view(x.view(), y.view(), Loss::MeanSquaredError, &mut opt);
    let before = allocations();
    for _ in 0..10 {
        net.train_batch_view(x.view(), y.view(), Loss::MeanSquaredError, &mut opt);
    }
    let sgd_delta = allocations() - before;
    assert_eq!(
        sgd_delta, 0,
        "SGD train_batch_view allocated {sgd_delta} times"
    );

    // --- train_batch_view with Adam (moments are lazily sized once) ---
    let mut net = model1();
    let mut opt = Adam::new(0.001);
    net.train_batch_view(x.view(), y.view(), Loss::MeanSquaredError, &mut opt);
    let before = allocations();
    for _ in 0..10 {
        net.train_batch_view(x.view(), y.view(), Loss::MeanSquaredError, &mut opt);
    }
    let adam_delta = allocations() - before;
    assert_eq!(
        adam_delta, 0,
        "Adam train_batch_view allocated {adam_delta} times"
    );

    // --- predict_ref (serial inference path) ---
    let _ = net.predict_ref(x.view());
    let before = allocations();
    for _ in 0..10 {
        let out = net.predict_ref(x.view());
        assert_eq!(out.rows(), 64);
    }
    let predict_delta = allocations() - before;
    assert_eq!(
        predict_delta, 0,
        "predict_ref allocated {predict_delta} times"
    );

    // --- smaller batch after a larger one: Vec::resize keeps capacity ---
    let (sx, sy) = batch(16);
    net.train_batch_view(sx.view(), sy.view(), Loss::MeanSquaredError, &mut opt);
    let before = allocations();
    for _ in 0..5 {
        net.train_batch_view(sx.view(), sy.view(), Loss::MeanSquaredError, &mut opt);
    }
    let shrink_delta = allocations() - before;
    assert_eq!(
        shrink_delta, 0,
        "shrunken batch allocated {shrink_delta} times"
    );
}
