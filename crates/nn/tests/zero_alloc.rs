//! Steady-state allocation tests: after a warm-up call has sized every
//! scratch buffer, the training and prediction hot paths must perform no
//! heap allocation at all.
//!
//! A counting `#[global_allocator]` wraps the system allocator; the test
//! snapshots the allocation counter around the measured region. Everything
//! runs inside a single `#[test]` so no concurrent test can pollute the
//! counter.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

use geomancy_nn::activation::Activation;
use geomancy_nn::init::seeded_rng;
use geomancy_nn::layers::{Dense, Gru, Lstm, SimpleRnn};
use geomancy_nn::loss::Loss;
use geomancy_nn::matrix::{kernels, Matrix};
use geomancy_nn::network::Sequential;
use geomancy_nn::optimizer::{Adam, Sgd};

/// Counts every allocation made through the global allocator.
struct CountingAllocator;

static ALLOCATIONS: AtomicUsize = AtomicUsize::new(0);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAllocator = CountingAllocator;

fn allocations() -> usize {
    ALLOCATIONS.load(Ordering::Relaxed)
}

/// Asserts `iter` allocates nothing in steady state. The counter is
/// process-global, so a background thread (libtest bookkeeping) can leak
/// the odd allocation into a measured window; retrying distinguishes that
/// noise from a genuinely allocating hot path, which would allocate on
/// every one of its 10 iterations in every attempt.
fn assert_zero_alloc(kind: &str, mut iter: impl FnMut()) {
    let mut last = 0;
    for _ in 0..3 {
        let before = allocations();
        for _ in 0..10 {
            iter();
        }
        last = allocations() - before;
        if last == 0 {
            return;
        }
    }
    panic!("{kind} allocated {last} times in steady state");
}

/// The paper's model 1: dense 6 -> 96 -> 48 -> 24 -> 1.
fn model1() -> Sequential {
    let mut rng = seeded_rng(7);
    let mut net = Sequential::new();
    net.push(Dense::new(6, 96, Activation::ReLU, &mut rng));
    net.push(Dense::new(96, 48, Activation::ReLU, &mut rng));
    net.push(Dense::new(48, 24, Activation::ReLU, &mut rng));
    net.push(Dense::new(24, 1, Activation::Linear, &mut rng));
    net
}

fn batch(rows: usize) -> (Matrix, Matrix) {
    let x = Matrix::from_vec(
        rows,
        6,
        (0..rows * 6).map(|i| (i % 13) as f64 / 13.0).collect(),
    );
    let y = Matrix::from_vec(rows, 1, (0..rows).map(|i| (i % 5) as f64 / 5.0).collect());
    (x, y)
}

#[test]
fn steady_state_hot_paths_do_not_allocate() {
    let (x, y) = batch(64);

    // --- train_batch_view with SGD ---
    let mut net = model1();
    let mut opt = Sgd::new(0.01);
    // Warm-up sizes the activation arena, layer scratch and loss gradient.
    net.train_batch_view(x.view(), y.view(), Loss::MeanSquaredError, &mut opt);
    assert_zero_alloc("SGD train_batch_view", || {
        net.train_batch_view(x.view(), y.view(), Loss::MeanSquaredError, &mut opt);
    });

    // --- train_batch_view with Adam (moments are lazily sized once) ---
    let mut net = model1();
    let mut opt = Adam::new(0.001);
    net.train_batch_view(x.view(), y.view(), Loss::MeanSquaredError, &mut opt);
    assert_zero_alloc("Adam train_batch_view", || {
        net.train_batch_view(x.view(), y.view(), Loss::MeanSquaredError, &mut opt);
    });

    // --- predict_ref (serial inference path) ---
    let _ = net.predict_ref(x.view());
    assert_zero_alloc("predict_ref", || {
        let out = net.predict_ref(x.view());
        assert_eq!(out.rows(), 64);
    });

    // --- smaller batch after a larger one: Vec::resize keeps capacity ---
    let (sx, sy) = batch(16);
    net.train_batch_view(sx.view(), sy.view(), Loss::MeanSquaredError, &mut opt);
    assert_zero_alloc("shrunken-batch train_batch_view", || {
        net.train_batch_view(sx.view(), sy.view(), Loss::MeanSquaredError, &mut opt);
    });

    // --- recurrent training: LSTM, GRU and SimpleRnn forward/backward
    // reuse their per-timestep caches in place after warm-up ---
    let rx = Matrix::from_vec(
        16,
        12,
        (0..16 * 12).map(|i| (i % 11) as f64 / 11.0).collect(),
    );
    let ry = Matrix::from_vec(16, 1, (0..16).map(|i| (i % 3) as f64 / 3.0).collect());
    let recurrent_nets: [(&str, Sequential); 3] = [
        ("LSTM", {
            let mut rng = seeded_rng(11);
            let mut net = Sequential::new();
            net.push(Lstm::new(3, 8, 4, Activation::Tanh, &mut rng));
            net.push(Dense::new(8, 1, Activation::Linear, &mut rng));
            net
        }),
        ("GRU", {
            let mut rng = seeded_rng(12);
            let mut net = Sequential::new();
            net.push(Gru::new(3, 8, 4, Activation::Tanh, &mut rng));
            net.push(Dense::new(8, 1, Activation::Linear, &mut rng));
            net
        }),
        ("SimpleRnn", {
            let mut rng = seeded_rng(13);
            let mut net = Sequential::new();
            net.push(SimpleRnn::new(3, 8, 4, Activation::Tanh, &mut rng));
            net.push(Dense::new(8, 1, Activation::Linear, &mut rng));
            net
        }),
    ];
    for (kind, mut net) in recurrent_nets {
        let mut opt = Sgd::new(0.01);
        net.train_batch_view(rx.view(), ry.view(), Loss::MeanSquaredError, &mut opt);
        assert_zero_alloc(kind, || {
            net.train_batch_view(rx.view(), ry.view(), Loss::MeanSquaredError, &mut opt);
        });
    }

    // --- direct kernel calls on the dispatched backend (SIMD on AVX2/FMA
    // hosts, scalar otherwise): once output buffers are warm, every kernel
    // in the hot family must stay allocation-free. Odd widths keep the
    // SIMD remainder tails on these paths too.
    let a = Matrix::from_vec(
        33,
        7,
        (0..33 * 7).map(|i| (i % 17) as f64 / 17.0 - 0.4).collect(),
    );
    let b = Matrix::from_vec(
        7,
        13,
        (0..7 * 13).map(|i| (i % 19) as f64 / 19.0 - 0.3).collect(),
    );
    let bias = Matrix::from_vec(1, 13, (0..13).map(|i| i as f64 / 13.0).collect());
    let mut out = Matrix::default();
    let mut out2 = Matrix::default();
    let mut out3 = Matrix::default();
    kernels::matmul_into(a.view(), &b, &mut out);
    assert_zero_alloc("kernel matmul_into", || {
        kernels::matmul_into(a.view(), &b, &mut out);
    });
    kernels::matmul_bias_act_into(a.view(), &b, &bias, Activation::ReLU, &mut out);
    assert_zero_alloc("kernel matmul_bias_act_into", || {
        kernels::matmul_bias_act_into(a.view(), &b, &bias, Activation::ReLU, &mut out);
    });
    let g = Matrix::from_vec(
        33,
        13,
        (0..33 * 13).map(|i| (i % 23) as f64 / 23.0 - 0.5).collect(),
    );
    let mut wgrad = Matrix::zeros(7, 13);
    assert_zero_alloc("kernel matmul_at_b_acc", || {
        kernels::matmul_at_b_acc(a.view(), g.view(), &mut wgrad);
    });
    kernels::matmul_a_bt_into(g.view(), &b, &mut out);
    assert_zero_alloc("kernel matmul_a_bt_into", || {
        kernels::matmul_a_bt_into(g.view(), &b, &mut out);
    });
    let mut bias_grad = Matrix::zeros(1, 13);
    assert_zero_alloc("kernel sum_rows_acc", || {
        kernels::sum_rows_acc(&g, &mut bias_grad);
    });
    kernels::hadamard_act_derivative_into(&g, &g, Activation::Tanh, &mut out);
    assert_zero_alloc("kernel hadamard_act_derivative_into", || {
        kernels::hadamard_act_derivative_into(&g, &g, Activation::Tanh, &mut out);
    });
    kernels::hadamard_into(&g, &g, &mut out);
    assert_zero_alloc("kernel hadamard_into", || {
        kernels::hadamard_into(&g, &g, &mut out);
    });
    kernels::mul_add_mul_into(&g, &g, &g, &g, &mut out);
    assert_zero_alloc("kernel mul_add_mul_into", || {
        kernels::mul_add_mul_into(&g, &g, &g, &g, &mut out);
    });
    kernels::convex_combine_into(&g, &g, &g, &mut out);
    assert_zero_alloc("kernel convex_combine_into", || {
        kernels::convex_combine_into(&g, &g, &g, &mut out);
    });
    kernels::act_into(&g, Activation::Sigmoid, &mut out);
    assert_zero_alloc("kernel act_into", || {
        kernels::act_into(&g, Activation::Sigmoid, &mut out);
    });
    kernels::lstm_state_forward(
        &g,
        &g,
        &g,
        &g,
        &g,
        Activation::Tanh,
        &mut out,
        &mut out2,
        &mut out3,
    );
    assert_zero_alloc("kernel lstm_state_forward", || {
        kernels::lstm_state_forward(
            &g,
            &g,
            &g,
            &g,
            &g,
            Activation::Tanh,
            &mut out,
            &mut out2,
            &mut out3,
        );
    });
    let (mut z1, mut z2, mut z3, mut z4, mut z5) = (
        Matrix::default(),
        Matrix::default(),
        Matrix::default(),
        Matrix::default(),
        Matrix::default(),
    );
    kernels::lstm_backward_elementwise(
        &g,
        &g,
        &g,
        &g,
        &g,
        &g,
        &g,
        &g,
        Activation::Tanh,
        &mut z1,
        &mut z2,
        &mut z3,
        &mut z4,
        &mut z5,
    );
    assert_zero_alloc("kernel lstm_backward_elementwise", || {
        kernels::lstm_backward_elementwise(
            &g,
            &g,
            &g,
            &g,
            &g,
            &g,
            &g,
            &g,
            Activation::Tanh,
            &mut z1,
            &mut z2,
            &mut z3,
            &mut z4,
            &mut z5,
        );
    });
    kernels::gru_backward_gates(&g, &g, &g, &g, Activation::Tanh, &mut z1, &mut z2, &mut z3);
    assert_zero_alloc("kernel gru_backward_gates", || {
        kernels::gru_backward_gates(&g, &g, &g, &g, Activation::Tanh, &mut z1, &mut z2, &mut z3);
    });
    z2.resize(g.rows(), g.cols());
    assert_zero_alloc("kernel gru_backward_reset", || {
        kernels::gru_backward_reset(&g, &g, &g, &mut z1, &mut z2, &mut z3);
    });
}
