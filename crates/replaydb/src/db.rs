//! The ReplayDB: an append-only, timestamp-indexed store of performance
//! records (§V-A).
//!
//! The paper backs this with SQLite; the observable contract is an append
//! log with "the X most recent accesses for each of the storage devices"
//! queries and layout-change events "indexed by a timestamp … to show an
//! evolution of the data layout and corresponding performance". This
//! implementation keeps the log in memory with per-device and per-file
//! secondary indexes.

use std::collections::BTreeMap;

use geomancy_sim::record::{AccessRecord, DeviceId, FileId, MovementRecord};
use serde::{Deserialize, Serialize};

/// A stored access record with its ingest timestamp.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StoredRecord {
    /// Simulated microseconds at which the record was ingested.
    pub timestamp_micros: u64,
    /// The access telemetry.
    pub record: AccessRecord,
}

/// A layout change applied by Geomancy, indexed by timestamp.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LayoutEvent {
    /// Simulated microseconds at which the layout was applied.
    pub timestamp_micros: u64,
    /// Access number at which the layout was applied.
    pub at_access: u64,
    /// Files moved by the change.
    pub movements: Vec<MovementRecord>,
}

/// Append-only store of access records and layout events.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct ReplayDb {
    records: Vec<StoredRecord>,
    #[serde(skip)]
    by_device: BTreeMap<DeviceId, Vec<usize>>,
    #[serde(skip)]
    by_file: BTreeMap<FileId, Vec<usize>>,
    layout_events: Vec<LayoutEvent>,
}

impl ReplayDb {
    /// Creates an empty database.
    pub fn new() -> Self {
        ReplayDb::default()
    }

    /// Number of stored access records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether the database holds no records.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Appends one record.
    ///
    /// # Panics
    ///
    /// Panics if `timestamp_micros` is older than the latest stored record
    /// (the log is time-ordered by construction).
    pub fn insert(&mut self, timestamp_micros: u64, record: AccessRecord) {
        if let Some(last) = self.records.last() {
            assert!(
                timestamp_micros >= last.timestamp_micros,
                "records must be inserted in time order"
            );
        }
        let idx = self.records.len();
        self.by_device.entry(record.fsid).or_default().push(idx);
        self.by_file.entry(record.fid).or_default().push(idx);
        self.records.push(StoredRecord {
            timestamp_micros,
            record,
        });
    }

    /// Appends a batch of records sharing one ingest timestamp ("Geomancy
    /// captures groups of accesses as one access to lower the overhead").
    pub fn insert_batch(&mut self, timestamp_micros: u64, records: &[AccessRecord]) {
        for &r in records {
            self.insert(timestamp_micros, r);
        }
    }

    /// Builds one time-ordered database from per-shard snapshots.
    ///
    /// The serving layer shards ingest by file id, so each shard holds a
    /// time-ordered *subset* of the global log; retraining wants the global
    /// view back. Records are merged by `(timestamp_micros, access_number)`
    /// to restore a deterministic total order, and layout events are merged
    /// by timestamp.
    pub fn merged<'a>(shards: impl IntoIterator<Item = &'a ReplayDb>) -> ReplayDb {
        let mut stored: Vec<StoredRecord> = Vec::new();
        let mut events: Vec<LayoutEvent> = Vec::new();
        for shard in shards {
            stored.extend(shard.records.iter().copied());
            events.extend(shard.layout_events.iter().cloned());
        }
        stored.sort_by_key(|s| (s.timestamp_micros, s.record.access_number));
        events.sort_by_key(|e| e.timestamp_micros);
        let mut db = ReplayDb::new();
        for s in stored {
            db.insert(s.timestamp_micros, s.record);
        }
        db.layout_events = events;
        db
    }

    /// Records a layout change.
    pub fn record_layout_event(&mut self, event: LayoutEvent) {
        self.layout_events.push(event);
    }

    /// All layout events, oldest first.
    pub fn layout_events(&self) -> &[LayoutEvent] {
        &self.layout_events
    }

    /// All records, oldest first.
    pub fn records(&self) -> impl Iterator<Item = &StoredRecord> {
        self.records.iter()
    }

    /// The `x` most recent records overall, oldest of them first.
    pub fn recent(&self, x: usize) -> Vec<AccessRecord> {
        let start = self.records.len().saturating_sub(x);
        self.records[start..].iter().map(|s| s.record).collect()
    }

    /// The `x` most recent records for one device, oldest first.
    pub fn recent_for_device(&self, device: DeviceId, x: usize) -> Vec<AccessRecord> {
        match self.by_device.get(&device) {
            None => Vec::new(),
            Some(indexes) => {
                let start = indexes.len().saturating_sub(x);
                indexes[start..]
                    .iter()
                    .map(|&i| self.records[i].record)
                    .collect()
            }
        }
    }

    /// The `x` most recent records for one file, oldest first.
    pub fn recent_for_file(&self, fid: FileId, x: usize) -> Vec<AccessRecord> {
        match self.by_file.get(&fid) {
            None => Vec::new(),
            Some(indexes) => {
                let start = indexes.len().saturating_sub(x);
                indexes[start..]
                    .iter()
                    .map(|&i| self.records[i].record)
                    .collect()
            }
        }
    }

    /// The training-batch query of §V-E: the `x` most recent accesses for
    /// *each* device that has any, keyed by device.
    pub fn recent_per_device(&self, x: usize) -> BTreeMap<DeviceId, Vec<AccessRecord>> {
        self.by_device
            .keys()
            .map(|&d| (d, self.recent_for_device(d, x)))
            .filter(|(_, v)| !v.is_empty())
            .collect()
    }

    /// Devices that have at least one record.
    pub fn devices_seen(&self) -> Vec<DeviceId> {
        self.by_device.keys().copied().collect()
    }

    /// Files that have at least one record.
    pub fn files_seen(&self) -> Vec<FileId> {
        self.by_file.keys().copied().collect()
    }

    /// Mean observed throughput of the most recent `x` accesses on a device;
    /// `None` if the device has no records. Used to rank devices for the
    /// LRU/LFU/MRU baselines.
    pub fn mean_device_throughput(&self, device: DeviceId, x: usize) -> Option<f64> {
        let recent = self.recent_for_device(device, x);
        if recent.is_empty() {
            return None;
        }
        Some(recent.iter().map(|r| r.throughput()).sum::<f64>() / recent.len() as f64)
    }

    /// Count of accesses per file over the `x` most recent records (LFU's
    /// input).
    pub fn access_counts(&self, x: usize) -> BTreeMap<FileId, u64> {
        let mut counts = BTreeMap::new();
        for r in self.recent(x) {
            *counts.entry(r.fid).or_insert(0) += 1;
        }
        counts
    }

    /// Most recent access number per file over the `x` most recent records
    /// (LRU/MRU's input).
    pub fn last_access_numbers(&self, x: usize) -> BTreeMap<FileId, u64> {
        let mut last = BTreeMap::new();
        for r in self.recent(x) {
            last.insert(r.fid, r.access_number);
        }
        last
    }

    /// Records ingested in `[from_micros, to_micros)`, oldest first.
    /// Binary-searches the time-ordered log, so the cost is logarithmic in
    /// the log size plus the result length.
    pub fn range(&self, from_micros: u64, to_micros: u64) -> Vec<AccessRecord> {
        if from_micros >= to_micros {
            return Vec::new();
        }
        let start = self
            .records
            .partition_point(|s| s.timestamp_micros < from_micros);
        let end = self
            .records
            .partition_point(|s| s.timestamp_micros < to_micros);
        self.records[start..end].iter().map(|s| s.record).collect()
    }

    /// Stored records ingested strictly after `after_micros`, oldest
    /// first — the delta query behind incremental retraining. Binary-
    /// searches the time-ordered log, so the cost is logarithmic in the
    /// log size plus the result length. Records sharing the watermark
    /// timestamp are *excluded*; callers that need tie-proof watermarks
    /// (shard batches can share a clamped timestamp) should track record
    /// counts instead and use this only for timestamp-indexed stores.
    pub fn records_since(&self, after_micros: u64) -> Vec<StoredRecord> {
        let start = self
            .records
            .partition_point(|s| s.timestamp_micros <= after_micros);
        self.records[start..].to_vec()
    }

    /// Ingest timestamps of the oldest and newest records, if any.
    pub fn time_span_micros(&self) -> Option<(u64, u64)> {
        match (self.records.first(), self.records.last()) {
            (Some(first), Some(last)) => Some((first.timestamp_micros, last.timestamp_micros)),
            _ => None,
        }
    }

    /// Drops everything but the most recent `keep` records, rebuilding the
    /// indexes. Layout events older than the oldest kept record are dropped
    /// too. Returns the number of records removed.
    ///
    /// The paper's ReplayDB grows without bound; a deployment compacts it
    /// periodically since only "the most recent values" feed retraining.
    pub fn compact(&mut self, keep: usize) -> usize {
        if self.records.len() <= keep {
            return 0;
        }
        let removed = self.records.len() - keep;
        self.records.drain(0..removed);
        let oldest_kept = self
            .records
            .first()
            .map(|s| s.timestamp_micros)
            .unwrap_or(0);
        self.layout_events
            .retain(|e| e.timestamp_micros >= oldest_kept);
        self.rebuild_indexes();
        removed
    }

    /// Approximate resident size of the stored records, in bytes.
    pub fn approximate_bytes(&self) -> usize {
        self.records.len() * std::mem::size_of::<StoredRecord>()
            + self
                .layout_events
                .iter()
                .map(|e| {
                    std::mem::size_of::<LayoutEvent>()
                        + e.movements.len()
                            * std::mem::size_of::<geomancy_sim::record::MovementRecord>()
                })
                .sum::<usize>()
    }

    /// Rebuilds the secondary indexes (needed after deserialization, which
    /// skips them).
    pub fn rebuild_indexes(&mut self) {
        self.by_device.clear();
        self.by_file.clear();
        for (idx, stored) in self.records.iter().enumerate() {
            self.by_device
                .entry(stored.record.fsid)
                .or_default()
                .push(idx);
            self.by_file.entry(stored.record.fid).or_default().push(idx);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(n: u64, fid: u64, dev: u32) -> AccessRecord {
        AccessRecord {
            access_number: n,
            fid: FileId(fid),
            fsid: DeviceId(dev),
            rb: 100 * (n + 1),
            wb: 0,
            ots: n,
            otms: 0,
            cts: n + 1,
            ctms: 0,
        }
    }

    #[test]
    fn insert_and_len() {
        let mut db = ReplayDb::new();
        assert!(db.is_empty());
        db.insert(0, rec(0, 1, 0));
        db.insert(1, rec(1, 2, 1));
        assert_eq!(db.len(), 2);
    }

    #[test]
    #[should_panic(expected = "time order")]
    fn out_of_order_insert_panics() {
        let mut db = ReplayDb::new();
        db.insert(10, rec(0, 1, 0));
        db.insert(5, rec(1, 1, 0));
    }

    #[test]
    fn recent_returns_newest_window_oldest_first() {
        let mut db = ReplayDb::new();
        for n in 0..10 {
            db.insert(n, rec(n, 1, 0));
        }
        let window = db.recent(3);
        assert_eq!(window.len(), 3);
        assert_eq!(window[0].access_number, 7);
        assert_eq!(window[2].access_number, 9);
    }

    #[test]
    fn records_since_is_strictly_after_the_watermark() {
        let mut db = ReplayDb::new();
        for n in 0..10u64 {
            // Two records per timestamp: ties must stay on the *excluded*
            // side of the watermark.
            db.insert(n / 2, rec(n, 1, 0));
        }
        let delta = db.records_since(2);
        assert_eq!(delta.len(), 4);
        assert_eq!(delta[0].timestamp_micros, 3);
        assert_eq!(delta[0].record.access_number, 6);
        assert_eq!(delta.last().unwrap().record.access_number, 9);
        assert!(db.records_since(0).len() == 8);
        assert!(db.records_since(4).is_empty());
        let everything = ReplayDb::new().records_since(0);
        assert!(everything.is_empty());
    }

    #[test]
    fn recent_larger_than_db_returns_everything() {
        let mut db = ReplayDb::new();
        db.insert(0, rec(0, 1, 0));
        assert_eq!(db.recent(100).len(), 1);
    }

    #[test]
    fn per_device_query_filters_and_limits() {
        let mut db = ReplayDb::new();
        for n in 0..6 {
            db.insert(n, rec(n, 1, (n % 2) as u32));
        }
        let dev0 = db.recent_for_device(DeviceId(0), 2);
        assert_eq!(dev0.len(), 2);
        assert!(dev0.iter().all(|r| r.fsid == DeviceId(0)));
        assert_eq!(dev0[1].access_number, 4);
        assert!(db.recent_for_device(DeviceId(9), 5).is_empty());
    }

    #[test]
    fn recent_per_device_batches_all_seen_devices() {
        let mut db = ReplayDb::new();
        for n in 0..9 {
            db.insert(n, rec(n, n, (n % 3) as u32));
        }
        let batch = db.recent_per_device(2);
        assert_eq!(batch.len(), 3);
        for records in batch.values() {
            assert_eq!(records.len(), 2);
        }
    }

    #[test]
    fn per_file_query() {
        let mut db = ReplayDb::new();
        db.insert(0, rec(0, 7, 0));
        db.insert(1, rec(1, 8, 0));
        db.insert(2, rec(2, 7, 1));
        let f7 = db.recent_for_file(FileId(7), 10);
        assert_eq!(f7.len(), 2);
        assert_eq!(f7[1].fsid, DeviceId(1));
    }

    #[test]
    fn mean_device_throughput() {
        let mut db = ReplayDb::new();
        db.insert(0, rec(0, 1, 0)); // 100 B over 1 s
        db.insert(1, rec(1, 1, 0)); // 200 B over 1 s
        let mean = db.mean_device_throughput(DeviceId(0), 10).unwrap();
        assert!((mean - 150.0).abs() < 1e-9);
        assert!(db.mean_device_throughput(DeviceId(5), 10).is_none());
    }

    #[test]
    fn access_counts_and_last_access() {
        let mut db = ReplayDb::new();
        db.insert(0, rec(0, 1, 0));
        db.insert(1, rec(1, 1, 0));
        db.insert(2, rec(2, 2, 0));
        let counts = db.access_counts(10);
        assert_eq!(counts[&FileId(1)], 2);
        assert_eq!(counts[&FileId(2)], 1);
        let last = db.last_access_numbers(10);
        assert_eq!(last[&FileId(1)], 1);
        assert_eq!(last[&FileId(2)], 2);
    }

    #[test]
    fn layout_events_are_recorded() {
        let mut db = ReplayDb::new();
        db.record_layout_event(LayoutEvent {
            timestamp_micros: 5,
            at_access: 100,
            movements: vec![],
        });
        assert_eq!(db.layout_events().len(), 1);
        assert_eq!(db.layout_events()[0].at_access, 100);
    }

    #[test]
    fn range_query_selects_half_open_interval() {
        let mut db = ReplayDb::new();
        for n in 0..10 {
            db.insert(n * 10, rec(n, 1, 0));
        }
        let window = db.range(20, 50); // timestamps 20, 30, 40
        assert_eq!(window.len(), 3);
        assert_eq!(window[0].access_number, 2);
        assert_eq!(window[2].access_number, 4);
        assert!(db.range(50, 20).is_empty());
        assert!(db.range(1000, 2000).is_empty());
        assert_eq!(db.range(0, u64::MAX).len(), 10);
    }

    #[test]
    fn time_span_reports_bounds() {
        let mut db = ReplayDb::new();
        assert_eq!(db.time_span_micros(), None);
        db.insert(5, rec(0, 1, 0));
        db.insert(95, rec(1, 1, 0));
        assert_eq!(db.time_span_micros(), Some((5, 95)));
    }

    #[test]
    fn compact_keeps_the_newest_records() {
        let mut db = ReplayDb::new();
        for n in 0..10 {
            db.insert(n, rec(n, n % 2, 0));
        }
        db.record_layout_event(LayoutEvent {
            timestamp_micros: 2,
            at_access: 2,
            movements: vec![],
        });
        db.record_layout_event(LayoutEvent {
            timestamp_micros: 8,
            at_access: 8,
            movements: vec![],
        });
        let removed = db.compact(4);
        assert_eq!(removed, 6);
        assert_eq!(db.len(), 4);
        assert_eq!(db.recent(10)[0].access_number, 6);
        // The event at ts 2 predates the oldest kept record (ts 6).
        assert_eq!(db.layout_events().len(), 1);
        assert_eq!(db.layout_events()[0].at_access, 8);
        // Indexes still answer queries: kept records 6..=9 have fids
        // 0,1,0,1.
        assert_eq!(db.recent_for_file(FileId(1), 10).len(), 2);
    }

    #[test]
    fn compact_is_a_noop_when_small_enough() {
        let mut db = ReplayDb::new();
        db.insert(0, rec(0, 1, 0));
        assert_eq!(db.compact(10), 0);
        assert_eq!(db.len(), 1);
    }

    #[test]
    fn approximate_bytes_grows_with_records() {
        let mut db = ReplayDb::new();
        let empty = db.approximate_bytes();
        for n in 0..100 {
            db.insert(n, rec(n, 1, 0));
        }
        assert!(db.approximate_bytes() > empty);
    }

    #[test]
    fn rebuild_indexes_restores_queries() {
        let mut db = ReplayDb::new();
        for n in 0..4 {
            db.insert(n, rec(n, 1, 0));
        }
        let mut clone = db.clone();
        clone.by_device.clear();
        clone.by_file.clear();
        assert!(clone.recent_for_device(DeviceId(0), 10).is_empty());
        clone.rebuild_indexes();
        assert_eq!(clone.recent_for_device(DeviceId(0), 10).len(), 4);
    }
}
