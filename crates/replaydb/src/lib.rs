//! # geomancy-replaydb
//!
//! The ReplayDB of the Geomancy reproduction (ISPASS 2020): an append-only,
//! timestamp-indexed store of performance records "located outside the
//! target system", from which the DRL engine requests "the X most recent
//! accesses for each of the storage devices" as training batches.
//!
//! The paper backs this component with SQLite; this crate provides the same
//! query contract over an in-memory log with JSON snapshots ([`persist`]).
//!
//! # Examples
//!
//! ```
//! use geomancy_replaydb::ReplayDb;
//! use geomancy_sim::record::{AccessRecord, DeviceId, FileId};
//!
//! let mut db = ReplayDb::new();
//! db.insert(0, AccessRecord {
//!     access_number: 0,
//!     fid: FileId(1),
//!     fsid: DeviceId(0),
//!     rb: 1024, wb: 0,
//!     ots: 0, otms: 0, cts: 1, ctms: 0,
//! });
//! let batch = db.recent_per_device(100);
//! assert_eq!(batch[&DeviceId(0)].len(), 1);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod db;
pub mod persist;
pub mod wal;

use parking_lot::RwLock;
use std::sync::Arc;

pub use db::{LayoutEvent, ReplayDb, StoredRecord};
pub use persist::{from_json, load, save, to_json, PersistError};
pub use wal::{list_segments, recover, recover_for_append, segment_path, shard_path, WalWriter};

/// A thread-safe handle to a shared ReplayDB, for deployments where the
/// interface daemon and the DRL engine run on separate threads.
pub type SharedReplayDb = Arc<RwLock<ReplayDb>>;

/// Creates an empty shared database.
pub fn shared() -> SharedReplayDb {
    Arc::new(RwLock::new(ReplayDb::new()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use geomancy_sim::record::{AccessRecord, DeviceId, FileId};

    #[test]
    fn shared_db_is_usable_across_threads() {
        let db = shared();
        let writer = db.clone();
        let handle = std::thread::spawn(move || {
            let mut guard = writer.write();
            guard.insert(
                0,
                AccessRecord {
                    access_number: 0,
                    fid: FileId(1),
                    fsid: DeviceId(0),
                    rb: 10,
                    wb: 0,
                    ots: 0,
                    otms: 0,
                    cts: 1,
                    ctms: 0,
                },
            );
        });
        handle.join().unwrap();
        assert_eq!(db.read().len(), 1);
    }
}
