//! JSON persistence for the ReplayDB.
//!
//! The paper's ReplayDB is "a SQLite database located outside the target
//! system"; durability across runs is the property that matters. Snapshots
//! are self-describing JSON so they can be inspected with standard tools.

use std::fs::File;
use std::io::{BufReader, BufWriter, Read, Write};
use std::path::Path;

use crate::db::ReplayDb;

/// Errors raised while saving or loading a snapshot.
#[derive(Debug)]
pub enum PersistError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// Snapshot was not valid JSON for a `ReplayDb`.
    Format(serde_json::Error),
}

impl std::fmt::Display for PersistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PersistError::Io(e) => write!(f, "snapshot i/o failed: {e}"),
            PersistError::Format(e) => write!(f, "snapshot format invalid: {e}"),
        }
    }
}

impl std::error::Error for PersistError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PersistError::Io(e) => Some(e),
            PersistError::Format(e) => Some(e),
        }
    }
}

impl From<std::io::Error> for PersistError {
    fn from(e: std::io::Error) -> Self {
        PersistError::Io(e)
    }
}

impl From<serde_json::Error> for PersistError {
    fn from(e: serde_json::Error) -> Self {
        PersistError::Format(e)
    }
}

/// Serializes the database to a JSON string.
///
/// # Errors
///
/// Returns [`PersistError::Format`] if serialization fails.
pub fn to_json(db: &ReplayDb) -> Result<String, PersistError> {
    Ok(serde_json::to_string(db)?)
}

/// Deserializes a database from JSON and rebuilds its indexes.
///
/// # Errors
///
/// Returns [`PersistError::Format`] on malformed input.
pub fn from_json(json: &str) -> Result<ReplayDb, PersistError> {
    let mut db: ReplayDb = serde_json::from_str(json)?;
    db.rebuild_indexes();
    Ok(db)
}

/// Writes a snapshot to `path`.
///
/// # Errors
///
/// Returns an error on I/O or serialization failure.
pub fn save(db: &ReplayDb, path: impl AsRef<Path>) -> Result<(), PersistError> {
    let file = File::create(path)?;
    let mut writer = BufWriter::new(file);
    serde_json::to_writer(&mut writer, db)?;
    writer.flush()?;
    Ok(())
}

/// Loads a snapshot from `path`, rebuilding indexes.
///
/// # Errors
///
/// Returns an error on I/O or parse failure.
pub fn load(path: impl AsRef<Path>) -> Result<ReplayDb, PersistError> {
    let file = File::open(path)?;
    let mut reader = BufReader::new(file);
    let mut json = String::new();
    reader.read_to_string(&mut json)?;
    from_json(&json)
}

#[cfg(test)]
mod tests {
    use super::*;
    use geomancy_sim::record::{AccessRecord, DeviceId, FileId};

    fn sample_db() -> ReplayDb {
        let mut db = ReplayDb::new();
        for n in 0..5 {
            db.insert(
                n,
                AccessRecord {
                    access_number: n,
                    fid: FileId(n % 2),
                    fsid: DeviceId((n % 3) as u32),
                    rb: 100,
                    wb: 0,
                    ots: n,
                    otms: 1,
                    cts: n + 1,
                    ctms: 2,
                },
            );
        }
        db
    }

    #[test]
    fn json_round_trip_preserves_records_and_queries() {
        let db = sample_db();
        let json = to_json(&db).unwrap();
        let restored = from_json(&json).unwrap();
        assert_eq!(restored.len(), db.len());
        assert_eq!(
            restored.recent_for_device(DeviceId(0), 10),
            db.recent_for_device(DeviceId(0), 10)
        );
        assert_eq!(restored.recent(3), db.recent(3));
    }

    #[test]
    fn file_round_trip() {
        let db = sample_db();
        let dir = std::env::temp_dir().join("geomancy_replaydb_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("snapshot.json");
        save(&db, &path).unwrap();
        let restored = load(&path).unwrap();
        assert_eq!(restored.len(), db.len());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn malformed_json_is_a_format_error() {
        let err = from_json("{not json").unwrap_err();
        assert!(matches!(err, PersistError::Format(_)));
        assert!(err.to_string().contains("format"));
    }

    #[test]
    fn missing_file_is_an_io_error() {
        let err = load("/nonexistent/geomancy/snapshot.json").unwrap_err();
        assert!(matches!(err, PersistError::Io(_)));
    }
}
