//! Write-ahead persistence: an append-only record log on disk.
//!
//! JSON snapshots ([`crate::persist`]) rewrite the whole database; the WAL
//! appends each batch as it arrives — the durability mode a live
//! deployment wants (the paper's SQLite plays this role). One JSON object
//! per line; recovery replays the file and tolerates a truncated tail
//! (a crash mid-append loses at most the final line).

use std::fs::{File, OpenOptions};
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::path::{Path, PathBuf};

/// A replayed WAL: the rebuilt database, how many entries replayed, and
/// where the committed prefix of the file ends.
struct Replayed {
    db: ReplayDb,
    replayed: u64,
    /// Byte offset just past the last committed entry — the length to
    /// truncate the file to before appending to it again (everything
    /// beyond is a torn tail from a crash mid-append).
    committed_bytes: u64,
}

use geomancy_sim::record::AccessRecord;
use serde::{Deserialize, Serialize};

use crate::db::ReplayDb;
use crate::persist::PersistError;

/// One WAL line: a record and its ingest timestamp.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
struct WalEntry {
    t: u64,
    r: AccessRecord,
}

/// An open write-ahead log.
#[derive(Debug)]
pub struct WalWriter {
    path: PathBuf,
    writer: BufWriter<File>,
    appended: u64,
}

impl WalWriter {
    /// Opens (creating or appending to) the log at `path`.
    ///
    /// # Errors
    ///
    /// Returns an I/O error if the file cannot be opened.
    pub fn open(path: impl AsRef<Path>) -> Result<Self, PersistError> {
        let path = path.as_ref().to_path_buf();
        let file = OpenOptions::new().create(true).append(true).open(&path)?;
        Ok(WalWriter {
            path,
            writer: BufWriter::new(file),
            appended: 0,
        })
    }

    /// The log's path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Entries appended through this writer.
    pub fn appended(&self) -> u64 {
        self.appended
    }

    /// Appends one record.
    ///
    /// # Errors
    ///
    /// Returns an I/O or serialization error.
    pub fn append(
        &mut self,
        timestamp_micros: u64,
        record: AccessRecord,
    ) -> Result<(), PersistError> {
        let line = serde_json::to_string(&WalEntry {
            t: timestamp_micros,
            r: record,
        })?;
        self.writer.write_all(line.as_bytes())?;
        self.writer.write_all(b"\n")?;
        self.appended += 1;
        Ok(())
    }

    /// Appends a batch sharing one timestamp.
    ///
    /// # Errors
    ///
    /// Returns an I/O or serialization error.
    pub fn append_batch(
        &mut self,
        timestamp_micros: u64,
        records: &[AccessRecord],
    ) -> Result<(), PersistError> {
        for &r in records {
            self.append(timestamp_micros, r)?;
        }
        Ok(())
    }

    /// Flushes buffered lines to the OS.
    ///
    /// **Durability contract:** this hands the buffered bytes to the
    /// kernel but does *not* fsync — the lines survive a process crash,
    /// but a power loss or kernel panic may still lose them. Callers that
    /// need the stronger guarantee (checkpoint boundaries, segment seals)
    /// must use [`WalWriter::sync`] / [`WalWriter::flush_and_sync`], which
    /// follow the flush with `File::sync_data`.
    ///
    /// # Errors
    ///
    /// Returns an I/O error if the flush fails.
    pub fn flush(&mut self) -> Result<(), PersistError> {
        self.writer.flush()?;
        Ok(())
    }

    /// Flushes buffered lines and fsyncs them to stable storage
    /// (`File::sync_data`) — the durable counterpart of
    /// [`WalWriter::flush`]. The checkpointer calls this before a WAL is
    /// sealed into a segment, so the segment's contents are on disk before
    /// the store ever considers absorbing them.
    ///
    /// # Errors
    ///
    /// Returns an I/O error if the flush or fsync fails.
    pub fn sync(&mut self) -> Result<(), PersistError> {
        self.writer.flush()?;
        self.writer.get_ref().sync_data()?;
        Ok(())
    }

    /// Alias for [`WalWriter::sync`], named for call sites that want the
    /// two-step contract spelled out.
    ///
    /// # Errors
    ///
    /// Returns an I/O error if the flush or fsync fails.
    pub fn flush_and_sync(&mut self) -> Result<(), PersistError> {
        self.sync()
    }

    /// Seals this log into `segment` and starts a fresh, empty log at the
    /// same path: fsync the pending lines ([`WalWriter::sync`]), rename
    /// the file to `segment`, fsync the parent directory so the rename
    /// itself is durable, then reopen a new file. Returns the number of
    /// entries appended through this writer since it was opened or last
    /// sealed.
    ///
    /// The shard actor (the log's single-threaded owner) calls this when
    /// the checkpointer asks for the WAL to rotate; renaming rather than
    /// copying means the sealed segment is byte-identical to the WAL and
    /// replayable with [`recover`].
    ///
    /// # Errors
    ///
    /// Returns an I/O error if the sync, rename, or reopen fails.
    pub fn seal_to(&mut self, segment: impl AsRef<Path>) -> Result<u64, PersistError> {
        self.sync()?;
        std::fs::rename(&self.path, segment.as_ref())?;
        if let Some(dir) = self.path.parent() {
            // Make the rename durable: fsync the directory holding both
            // names. Without this, a crash can roll the rename back and
            // resurrect an already-absorbed segment as the live WAL.
            File::open(dir)?.sync_all()?;
        }
        let file = OpenOptions::new()
            .create(true)
            .append(true)
            .open(&self.path)?;
        self.writer = BufWriter::new(file);
        let sealed = self.appended;
        self.appended = 0;
        Ok(sealed)
    }
}

/// Path of shard `shard`'s WAL inside `dir` (`shard-<i>.wal`).
///
/// The serving layer gives each ingest shard its own append-only log so
/// shards never contend on one file and a crash loses at most one line per
/// shard.
pub fn shard_path(dir: impl AsRef<Path>, shard: usize) -> PathBuf {
    dir.as_ref().join(format!("shard-{shard}.wal"))
}

/// Path of shard `shard`'s sealed WAL segment `seq` inside `dir`
/// (`shard-<i>.seg-<seq>`).
///
/// Segments are WAL files frozen by [`WalWriter::seal_to`]: same format,
/// same recovery. Sequence numbers start at 1 and increase monotonically
/// per shard; the store's manifest records the highest absorbed sequence
/// so recovery can tell an orphaned (already-absorbed) segment from one
/// that still needs replaying.
pub fn segment_path(dir: impl AsRef<Path>, shard: usize, seq: u64) -> PathBuf {
    dir.as_ref().join(format!("shard-{shard}.seg-{seq}"))
}

/// Sealed segments of shard `shard` present in `dir`, as `(seq, path)`
/// pairs sorted by sequence number. Files that do not match the
/// `shard-<i>.seg-<seq>` pattern are ignored.
///
/// # Errors
///
/// Returns an I/O error if the directory cannot be read.
pub fn list_segments(
    dir: impl AsRef<Path>,
    shard: usize,
) -> Result<Vec<(u64, PathBuf)>, PersistError> {
    let prefix = format!("shard-{shard}.seg-");
    let mut out = Vec::new();
    for entry in std::fs::read_dir(dir.as_ref())? {
        let entry = entry?;
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        let Some(seq) = name.strip_prefix(&prefix) else {
            continue;
        };
        if let Ok(seq) = seq.parse::<u64>() {
            out.push((seq, entry.path()));
        }
    }
    out.sort_by_key(|(seq, _)| *seq);
    Ok(out)
}

/// Recovers all `shards` per-shard WALs from `dir` via [`shard_path`].
///
/// A missing shard file recovers as an empty database (a crash before any
/// record reached that shard). Returns one `(ReplayDb, replayed)` pair per
/// shard, in shard order.
///
/// # Errors
///
/// Returns an I/O error, or a format error for corruption before a tail.
pub fn recover_shards(
    dir: impl AsRef<Path>,
    shards: usize,
) -> Result<Vec<(ReplayDb, u64)>, PersistError> {
    let dir = dir.as_ref();
    let mut out = Vec::with_capacity(shards);
    for i in 0..shards {
        let path = shard_path(dir, i);
        if path.exists() {
            out.push(recover(&path)?);
        } else {
            out.push((ReplayDb::new(), 0));
        }
    }
    Ok(out)
}

/// Replays a WAL into a fresh [`ReplayDb`]. An entry is *committed* only
/// if its line is newline-terminated and parses; a malformed or
/// unterminated final line (crash mid-append) is tolerated and dropped,
/// while malformed lines elsewhere are errors. Returns the database and
/// the number of entries replayed.
///
/// To recover a log you intend to keep appending to, use
/// [`recover_for_append`] instead — it also truncates the torn tail so
/// the next append starts on a fresh line.
///
/// # Errors
///
/// Returns an I/O error, or a format error for corruption before the tail.
pub fn recover(path: impl AsRef<Path>) -> Result<(ReplayDb, u64), PersistError> {
    let r = replay(path)?;
    Ok((r.db, r.replayed))
}

/// Recovers like [`recover`], then truncates the log to the end of its
/// committed prefix. Without the truncation, reopening the log in append
/// mode after a torn-tail crash would concatenate the first new entry onto
/// the partial line — producing a malformed line in the *middle* of the
/// file, which a later recovery rightly rejects as corruption.
///
/// # Errors
///
/// Returns an I/O error, or a format error for corruption before the tail.
pub fn recover_for_append(path: impl AsRef<Path>) -> Result<(ReplayDb, u64), PersistError> {
    let path = path.as_ref();
    let r = replay(path)?;
    let file = OpenOptions::new().write(true).open(path)?;
    if file.metadata()?.len() > r.committed_bytes {
        file.set_len(r.committed_bytes)?;
        file.sync_all()?;
    }
    Ok((r.db, r.replayed))
}

/// The shared replay scan behind [`recover`] and [`recover_for_append`].
fn replay(path: impl AsRef<Path>) -> Result<Replayed, PersistError> {
    let file = File::open(path)?;
    let mut reader = BufReader::new(file);
    let mut db = ReplayDb::new();
    let mut replayed = 0u64;
    let mut committed_bytes = 0u64;
    let mut pos = 0u64;
    let mut pending_error: Option<serde_json::Error> = None;
    let mut line = String::new();
    loop {
        line.clear();
        let n = reader.read_line(&mut line)?;
        if n == 0 {
            break;
        }
        pos += n as u64;
        // Only a newline-terminated line is committed: an unterminated
        // final line — even one that happens to parse — is a tail the
        // crash interrupted, so it is dropped rather than replayed (it
        // would be truncated away by `recover_for_append` anyway).
        let terminated = line.ends_with('\n');
        if line.trim().is_empty() {
            continue;
        }
        // A parse failure is only acceptable on the *last* non-empty line.
        if let Some(e) = pending_error.take() {
            return Err(PersistError::Format(e));
        }
        match serde_json::from_str::<WalEntry>(line.trim_end()) {
            Ok(entry) if terminated => {
                db.insert(entry.t, entry.r);
                replayed += 1;
                committed_bytes = pos;
            }
            Ok(_) => {}
            Err(e) => pending_error = Some(e),
        }
    }
    // A trailing partial line is dropped silently (crash tolerance).
    Ok(Replayed {
        db,
        replayed,
        committed_bytes,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use geomancy_sim::record::{DeviceId, FileId};

    fn rec(n: u64) -> AccessRecord {
        AccessRecord {
            access_number: n,
            fid: FileId(n % 3),
            fsid: DeviceId((n % 2) as u32),
            rb: 100 + n,
            wb: 0,
            ots: n,
            otms: 0,
            cts: n + 1,
            ctms: 0,
        }
    }

    fn temp_path(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("geomancy_wal_test");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn append_and_recover_round_trip() {
        let path = temp_path("roundtrip.wal");
        std::fs::remove_file(&path).ok();
        {
            let mut wal = WalWriter::open(&path).unwrap();
            for n in 0..10 {
                wal.append(n, rec(n)).unwrap();
            }
            wal.flush().unwrap();
            assert_eq!(wal.appended(), 10);
        }
        let (db, replayed) = recover(&path).unwrap();
        assert_eq!(replayed, 10);
        assert_eq!(db.len(), 10);
        assert_eq!(db.recent(1)[0].access_number, 9);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn reopening_appends_rather_than_truncates() {
        let path = temp_path("reopen.wal");
        std::fs::remove_file(&path).ok();
        {
            let mut wal = WalWriter::open(&path).unwrap();
            wal.append_batch(0, &[rec(0), rec(1)]).unwrap();
            wal.flush().unwrap();
        }
        {
            let mut wal = WalWriter::open(&path).unwrap();
            wal.append(1, rec(2)).unwrap();
            wal.flush().unwrap();
        }
        let (db, replayed) = recover(&path).unwrap();
        assert_eq!(replayed, 3);
        assert_eq!(db.len(), 3);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn truncated_tail_is_tolerated() {
        let path = temp_path("truncated.wal");
        std::fs::remove_file(&path).ok();
        {
            let mut wal = WalWriter::open(&path).unwrap();
            wal.append(0, rec(0)).unwrap();
            wal.append(1, rec(1)).unwrap();
            wal.flush().unwrap();
        }
        // Simulate a crash mid-append: chop the file mid-line.
        let contents = std::fs::read_to_string(&path).unwrap();
        std::fs::write(&path, &contents[..contents.len() - 20]).unwrap();
        let (db, replayed) = recover(&path).unwrap();
        assert_eq!(replayed, 1);
        assert_eq!(db.len(), 1);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn torn_tail_then_append_recovers_everything() {
        // The crash-restart cycle: a torn tail must not corrupt the line
        // the first post-restart append writes, and the NEXT recovery must
        // see every committed entry plus the new one.
        let path = temp_path("torn_append.wal");
        std::fs::remove_file(&path).ok();
        {
            let mut wal = WalWriter::open(&path).unwrap();
            wal.append(0, rec(0)).unwrap();
            wal.append(1, rec(1)).unwrap();
            wal.flush().unwrap();
        }
        // Crash mid-append: chop the file mid-line.
        let contents = std::fs::read_to_string(&path).unwrap();
        std::fs::write(&path, &contents[..contents.len() - 20]).unwrap();
        // Restart: recover for append, then keep writing.
        let (db, replayed) = recover_for_append(&path).unwrap();
        assert_eq!(replayed, 1);
        assert_eq!(db.len(), 1);
        {
            let mut wal = WalWriter::open(&path).unwrap();
            wal.append(2, rec(2)).unwrap();
            wal.flush().unwrap();
        }
        // Second restart: both the surviving prefix and the post-restart
        // entry replay cleanly (no malformed line mid-file).
        let (db, replayed) = recover(&path).unwrap();
        assert_eq!(replayed, 2);
        assert_eq!(db.len(), 2);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn unterminated_final_line_is_not_committed() {
        // A final line that parses but lacks its newline was interrupted
        // before the terminator landed: it is dropped, not replayed, and
        // recover_for_append trims it so the file stays append-safe.
        let path = temp_path("unterminated.wal");
        std::fs::remove_file(&path).ok();
        {
            let mut wal = WalWriter::open(&path).unwrap();
            wal.append(0, rec(0)).unwrap();
            wal.append(1, rec(1)).unwrap();
            wal.flush().unwrap();
        }
        let contents = std::fs::read_to_string(&path).unwrap();
        std::fs::write(&path, contents.trim_end()).unwrap();
        let (_, replayed) = recover(&path).unwrap();
        assert_eq!(replayed, 1);
        let (_, replayed) = recover_for_append(&path).unwrap();
        assert_eq!(replayed, 1);
        assert!(std::fs::read_to_string(&path).unwrap().ends_with('\n'));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn corruption_before_tail_is_an_error() {
        let path = temp_path("corrupt.wal");
        std::fs::remove_file(&path).ok();
        {
            let mut wal = WalWriter::open(&path).unwrap();
            wal.append(0, rec(0)).unwrap();
            wal.flush().unwrap();
        }
        let mut contents = std::fs::read_to_string(&path).unwrap();
        contents.insert_str(0, "not json at all\n");
        std::fs::write(&path, contents).unwrap();
        assert!(matches!(recover(&path), Err(PersistError::Format(_))));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn shard_wals_recover_independently_and_merge() {
        let dir = std::env::temp_dir().join("geomancy_wal_test_shards");
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        // Shard 0 gets even access numbers, shard 1 odd; shard 2 never
        // receives anything (no file on disk).
        for shard in 0..2u64 {
            let mut wal = WalWriter::open(shard_path(&dir, shard as usize)).unwrap();
            for n in (shard..8).step_by(2) {
                wal.append(n, rec(n)).unwrap();
            }
            wal.flush().unwrap();
        }
        let recovered = recover_shards(&dir, 3).unwrap();
        assert_eq!(recovered.len(), 3);
        assert_eq!(recovered[0].1, 4);
        assert_eq!(recovered[1].1, 4);
        assert_eq!(recovered[2].1, 0);
        assert!(recovered[2].0.is_empty());
        let merged = ReplayDb::merged(recovered.iter().map(|(db, _)| db));
        assert_eq!(merged.len(), 8);
        let numbers: Vec<u64> = merged.records().map(|s| s.record.access_number).collect();
        assert_eq!(numbers, (0..8).collect::<Vec<u64>>());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn sync_makes_lines_recoverable() {
        let path = temp_path("sync.wal");
        std::fs::remove_file(&path).ok();
        let mut wal = WalWriter::open(&path).unwrap();
        wal.append(0, rec(0)).unwrap();
        wal.sync().unwrap();
        // The fsynced line is visible to a concurrent recovery even while
        // the writer stays open.
        let (db, replayed) = recover(&path).unwrap();
        assert_eq!(replayed, 1);
        assert_eq!(db.len(), 1);
        wal.append(1, rec(1)).unwrap();
        wal.flush_and_sync().unwrap();
        let (_, replayed) = recover(&path).unwrap();
        assert_eq!(replayed, 2);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn seal_rotates_to_segment_and_fresh_wal() {
        let dir = std::env::temp_dir().join("geomancy_wal_test_seal");
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        let path = shard_path(&dir, 0);
        let mut wal = WalWriter::open(&path).unwrap();
        wal.append(0, rec(0)).unwrap();
        wal.append(1, rec(1)).unwrap();
        let sealed = wal.seal_to(segment_path(&dir, 0, 1)).unwrap();
        assert_eq!(sealed, 2);
        assert_eq!(wal.appended(), 0);
        // The segment replays both entries; the live WAL is empty and
        // still appendable.
        let (seg_db, seg_n) = recover(segment_path(&dir, 0, 1)).unwrap();
        assert_eq!(seg_n, 2);
        assert_eq!(seg_db.len(), 2);
        wal.append(2, rec(2)).unwrap();
        wal.flush().unwrap();
        let (db, n) = recover(&path).unwrap();
        assert_eq!(n, 1);
        assert_eq!(db.recent(1)[0].access_number, 2);
        // A second seal takes the next sequence number.
        wal.seal_to(segment_path(&dir, 0, 2)).unwrap();
        let segs = list_segments(&dir, 0).unwrap();
        assert_eq!(segs.iter().map(|(s, _)| *s).collect::<Vec<_>>(), [1, 2]);
        // Other shards' segments don't leak into the listing.
        assert!(list_segments(&dir, 1).unwrap().is_empty());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn list_segments_sorts_numerically_not_lexically() {
        let dir = std::env::temp_dir().join("geomancy_wal_test_seglist");
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        for seq in [2u64, 10, 1] {
            std::fs::write(segment_path(&dir, 3, seq), b"").unwrap();
        }
        // Noise the scanner must skip.
        std::fs::write(dir.join("shard-3.wal"), b"").unwrap();
        std::fs::write(dir.join("shard-3.seg-nan"), b"").unwrap();
        let seqs: Vec<u64> = list_segments(&dir, 3)
            .unwrap()
            .into_iter()
            .map(|(s, _)| s)
            .collect();
        assert_eq!(seqs, [1, 2, 10]);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn missing_file_is_io_error() {
        assert!(matches!(
            recover("/nonexistent/geomancy/file.wal"),
            Err(PersistError::Io(_))
        ));
    }
}
