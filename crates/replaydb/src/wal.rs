//! Write-ahead persistence: an append-only record log on disk.
//!
//! JSON snapshots ([`crate::persist`]) rewrite the whole database; the WAL
//! appends each batch as it arrives — the durability mode a live
//! deployment wants (the paper's SQLite plays this role). One JSON object
//! per line; recovery replays the file and tolerates a truncated tail
//! (a crash mid-append loses at most the final line).

use std::fs::{File, OpenOptions};
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::path::{Path, PathBuf};

use geomancy_sim::record::AccessRecord;
use serde::{Deserialize, Serialize};

use crate::db::ReplayDb;
use crate::persist::PersistError;

/// One WAL line: a record and its ingest timestamp.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
struct WalEntry {
    t: u64,
    r: AccessRecord,
}

/// An open write-ahead log.
#[derive(Debug)]
pub struct WalWriter {
    path: PathBuf,
    writer: BufWriter<File>,
    appended: u64,
}

impl WalWriter {
    /// Opens (creating or appending to) the log at `path`.
    ///
    /// # Errors
    ///
    /// Returns an I/O error if the file cannot be opened.
    pub fn open(path: impl AsRef<Path>) -> Result<Self, PersistError> {
        let path = path.as_ref().to_path_buf();
        let file = OpenOptions::new().create(true).append(true).open(&path)?;
        Ok(WalWriter {
            path,
            writer: BufWriter::new(file),
            appended: 0,
        })
    }

    /// The log's path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Entries appended through this writer.
    pub fn appended(&self) -> u64 {
        self.appended
    }

    /// Appends one record.
    ///
    /// # Errors
    ///
    /// Returns an I/O or serialization error.
    pub fn append(
        &mut self,
        timestamp_micros: u64,
        record: AccessRecord,
    ) -> Result<(), PersistError> {
        let line = serde_json::to_string(&WalEntry {
            t: timestamp_micros,
            r: record,
        })?;
        self.writer.write_all(line.as_bytes())?;
        self.writer.write_all(b"\n")?;
        self.appended += 1;
        Ok(())
    }

    /// Appends a batch sharing one timestamp.
    ///
    /// # Errors
    ///
    /// Returns an I/O or serialization error.
    pub fn append_batch(
        &mut self,
        timestamp_micros: u64,
        records: &[AccessRecord],
    ) -> Result<(), PersistError> {
        for &r in records {
            self.append(timestamp_micros, r)?;
        }
        Ok(())
    }

    /// Flushes buffered lines to the OS.
    ///
    /// # Errors
    ///
    /// Returns an I/O error if the flush fails.
    pub fn flush(&mut self) -> Result<(), PersistError> {
        self.writer.flush()?;
        Ok(())
    }
}

/// Path of shard `shard`'s WAL inside `dir` (`shard-<i>.wal`).
///
/// The serving layer gives each ingest shard its own append-only log so
/// shards never contend on one file and a crash loses at most one line per
/// shard.
pub fn shard_path(dir: impl AsRef<Path>, shard: usize) -> PathBuf {
    dir.as_ref().join(format!("shard-{shard}.wal"))
}

/// Recovers all `shards` per-shard WALs from `dir` via [`shard_path`].
///
/// A missing shard file recovers as an empty database (a crash before any
/// record reached that shard). Returns one `(ReplayDb, replayed)` pair per
/// shard, in shard order.
///
/// # Errors
///
/// Returns an I/O error, or a format error for corruption before a tail.
pub fn recover_shards(
    dir: impl AsRef<Path>,
    shards: usize,
) -> Result<Vec<(ReplayDb, u64)>, PersistError> {
    let dir = dir.as_ref();
    let mut out = Vec::with_capacity(shards);
    for i in 0..shards {
        let path = shard_path(dir, i);
        if path.exists() {
            out.push(recover(&path)?);
        } else {
            out.push((ReplayDb::new(), 0));
        }
    }
    Ok(out)
}

/// Replays a WAL into a fresh [`ReplayDb`]. A malformed or truncated final
/// line (crash mid-append) is tolerated; malformed lines elsewhere are
/// errors. Returns the database and the number of entries replayed.
///
/// # Errors
///
/// Returns an I/O error, or a format error for corruption before the tail.
pub fn recover(path: impl AsRef<Path>) -> Result<(ReplayDb, u64), PersistError> {
    let file = File::open(path)?;
    let reader = BufReader::new(file);
    let mut db = ReplayDb::new();
    let mut replayed = 0u64;
    let mut pending_error: Option<serde_json::Error> = None;
    for line in reader.lines() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        // A parse failure is only acceptable on the *last* non-empty line.
        if let Some(e) = pending_error.take() {
            return Err(PersistError::Format(e));
        }
        match serde_json::from_str::<WalEntry>(&line) {
            Ok(entry) => {
                db.insert(entry.t, entry.r);
                replayed += 1;
            }
            Err(e) => pending_error = Some(e),
        }
    }
    // A trailing partial line is dropped silently (crash tolerance).
    Ok((db, replayed))
}

#[cfg(test)]
mod tests {
    use super::*;
    use geomancy_sim::record::{DeviceId, FileId};

    fn rec(n: u64) -> AccessRecord {
        AccessRecord {
            access_number: n,
            fid: FileId(n % 3),
            fsid: DeviceId((n % 2) as u32),
            rb: 100 + n,
            wb: 0,
            ots: n,
            otms: 0,
            cts: n + 1,
            ctms: 0,
        }
    }

    fn temp_path(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("geomancy_wal_test");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn append_and_recover_round_trip() {
        let path = temp_path("roundtrip.wal");
        std::fs::remove_file(&path).ok();
        {
            let mut wal = WalWriter::open(&path).unwrap();
            for n in 0..10 {
                wal.append(n, rec(n)).unwrap();
            }
            wal.flush().unwrap();
            assert_eq!(wal.appended(), 10);
        }
        let (db, replayed) = recover(&path).unwrap();
        assert_eq!(replayed, 10);
        assert_eq!(db.len(), 10);
        assert_eq!(db.recent(1)[0].access_number, 9);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn reopening_appends_rather_than_truncates() {
        let path = temp_path("reopen.wal");
        std::fs::remove_file(&path).ok();
        {
            let mut wal = WalWriter::open(&path).unwrap();
            wal.append_batch(0, &[rec(0), rec(1)]).unwrap();
            wal.flush().unwrap();
        }
        {
            let mut wal = WalWriter::open(&path).unwrap();
            wal.append(1, rec(2)).unwrap();
            wal.flush().unwrap();
        }
        let (db, replayed) = recover(&path).unwrap();
        assert_eq!(replayed, 3);
        assert_eq!(db.len(), 3);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn truncated_tail_is_tolerated() {
        let path = temp_path("truncated.wal");
        std::fs::remove_file(&path).ok();
        {
            let mut wal = WalWriter::open(&path).unwrap();
            wal.append(0, rec(0)).unwrap();
            wal.append(1, rec(1)).unwrap();
            wal.flush().unwrap();
        }
        // Simulate a crash mid-append: chop the file mid-line.
        let contents = std::fs::read_to_string(&path).unwrap();
        std::fs::write(&path, &contents[..contents.len() - 20]).unwrap();
        let (db, replayed) = recover(&path).unwrap();
        assert_eq!(replayed, 1);
        assert_eq!(db.len(), 1);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn corruption_before_tail_is_an_error() {
        let path = temp_path("corrupt.wal");
        std::fs::remove_file(&path).ok();
        {
            let mut wal = WalWriter::open(&path).unwrap();
            wal.append(0, rec(0)).unwrap();
            wal.flush().unwrap();
        }
        let mut contents = std::fs::read_to_string(&path).unwrap();
        contents.insert_str(0, "not json at all\n");
        std::fs::write(&path, contents).unwrap();
        assert!(matches!(recover(&path), Err(PersistError::Format(_))));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn shard_wals_recover_independently_and_merge() {
        let dir = std::env::temp_dir().join("geomancy_wal_test_shards");
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        // Shard 0 gets even access numbers, shard 1 odd; shard 2 never
        // receives anything (no file on disk).
        for shard in 0..2u64 {
            let mut wal = WalWriter::open(shard_path(&dir, shard as usize)).unwrap();
            for n in (shard..8).step_by(2) {
                wal.append(n, rec(n)).unwrap();
            }
            wal.flush().unwrap();
        }
        let recovered = recover_shards(&dir, 3).unwrap();
        assert_eq!(recovered.len(), 3);
        assert_eq!(recovered[0].1, 4);
        assert_eq!(recovered[1].1, 4);
        assert_eq!(recovered[2].1, 0);
        assert!(recovered[2].0.is_empty());
        let merged = ReplayDb::merged(recovered.iter().map(|(db, _)| db));
        assert_eq!(merged.len(), 8);
        let numbers: Vec<u64> = merged.records().map(|s| s.record.access_number).collect();
        assert_eq!(numbers, (0..8).collect::<Vec<u64>>());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn missing_file_is_io_error() {
        assert!(matches!(
            recover("/nonexistent/geomancy/file.wal"),
            Err(PersistError::Io(_))
        ));
    }
}
