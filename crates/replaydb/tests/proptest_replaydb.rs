//! Property-based tests of ReplayDB query invariants.

use geomancy_replaydb::{from_json, to_json, ReplayDb};
use geomancy_sim::record::{AccessRecord, DeviceId, FileId};
use proptest::prelude::*;

/// Strategy: a time-ordered batch of records over a handful of files/devices.
fn records(max: usize) -> impl Strategy<Value = Vec<AccessRecord>> {
    proptest::collection::vec((0u64..6, 0u32..4, 1u64..1_000_000), 1..max).prop_map(|specs| {
        specs
            .into_iter()
            .enumerate()
            .map(|(i, (fid, dev, rb))| AccessRecord {
                access_number: i as u64,
                fid: FileId(fid),
                fsid: DeviceId(dev),
                rb,
                wb: 0,
                ots: i as u64,
                otms: 0,
                cts: i as u64 + 1,
                ctms: 0,
            })
            .collect()
    })
}

fn build(recs: &[AccessRecord]) -> ReplayDb {
    let mut db = ReplayDb::new();
    for (i, &r) in recs.iter().enumerate() {
        db.insert(i as u64, r);
    }
    db
}

proptest! {
    #[test]
    fn recent_never_exceeds_request_or_db_size(recs in records(60), x in 0usize..100) {
        let db = build(&recs);
        let out = db.recent(x);
        prop_assert!(out.len() <= x);
        prop_assert!(out.len() <= db.len());
    }

    #[test]
    fn recent_is_a_suffix_in_order(recs in records(60), x in 1usize..30) {
        let db = build(&recs);
        let out = db.recent(x);
        let expected: Vec<_> = recs[recs.len().saturating_sub(x)..].to_vec();
        prop_assert_eq!(out, expected);
    }

    #[test]
    fn per_device_results_are_filtered_and_ordered(recs in records(60), x in 1usize..30) {
        let db = build(&recs);
        for dev in db.devices_seen() {
            let out = db.recent_for_device(dev, x);
            prop_assert!(out.len() <= x);
            prop_assert!(out.iter().all(|r| r.fsid == dev));
            for w in out.windows(2) {
                prop_assert!(w[0].access_number < w[1].access_number);
            }
        }
    }

    #[test]
    fn per_device_union_covers_everything(recs in records(60)) {
        let db = build(&recs);
        let total: usize = db
            .devices_seen()
            .iter()
            .map(|&d| db.recent_for_device(d, usize::MAX).len())
            .sum();
        prop_assert_eq!(total, db.len());
    }

    #[test]
    fn access_counts_sum_to_window(recs in records(60), x in 1usize..40) {
        let db = build(&recs);
        let counted: u64 = db.access_counts(x).values().sum();
        prop_assert_eq!(counted as usize, db.recent(x).len());
    }

    #[test]
    fn json_round_trip_is_lossless(recs in records(40)) {
        let db = build(&recs);
        let restored = from_json(&to_json(&db).unwrap()).unwrap();
        prop_assert_eq!(restored.len(), db.len());
        prop_assert_eq!(restored.recent(100), db.recent(100));
        for dev in db.devices_seen() {
            prop_assert_eq!(
                restored.recent_for_device(dev, 100),
                db.recent_for_device(dev, 100)
            );
        }
    }

    #[test]
    fn mean_throughput_is_between_min_and_max(recs in records(60)) {
        let db = build(&recs);
        for dev in db.devices_seen() {
            let all = db.recent_for_device(dev, usize::MAX);
            let tps: Vec<f64> = all.iter().map(|r| r.throughput()).collect();
            let mean = db.mean_device_throughput(dev, usize::MAX).unwrap();
            let lo = tps.iter().cloned().fold(f64::INFINITY, f64::min);
            let hi = tps.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            prop_assert!(mean >= lo - 1e-9 && mean <= hi + 1e-9);
        }
    }
}
