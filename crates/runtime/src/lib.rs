//! Cooperative reactor for the Geomancy control plane.
//!
//! One fixed pool of worker threads drives any number of state-machine
//! actors. Each actor owns its state, receives messages through a bounded
//! mailbox, and can arm one-shot timers; the reactor guarantees an actor is
//! only ever run by one worker at a time, so actor code needs no internal
//! locking. This replaces the thread-per-component loops that used to live
//! in `core::daemon`, `core::scheduler`, and all of `serve`.
//!
//! Design points:
//!
//! - **No dependencies.** The reactor sits under every other crate and is
//!   built from `std` primitives only (`Mutex`, `Condvar`, atomics).
//! - **Readiness scheduling.** Senders mark an actor ready; workers pull
//!   ready actors from a shared run queue and drain a bounded budget of
//!   messages per turn so one busy actor cannot starve the rest.
//! - **Timers.** A binary heap keyed by `(deadline, registration order)`
//!   makes firing order deterministic for a single-worker reactor.
//! - **Time is pluggable.** Everything reads a [`TimeSource`]; production
//!   uses [`WallClock`], tests use [`ManualClock`] (or the sim bridge) and
//!   advance time explicitly.
//! - **Graceful shutdown.** `shutdown` closes mailboxes to external
//!   senders, drains every message already queued, runs `on_stop`, and
//!   hands actor state back to the caller via [`StoppedReactor::take`].
//! - **First-class despawn.** [`Reactor::despawn`], [`Addr::retire`], and
//!   [`Ctx::stop_self`] retire one actor without stopping the reactor:
//!   pending timers are cancelled, the mailbox is purged (queued reply
//!   senders drop, so callers get typed errors), `on_stop` runs exactly
//!   once, and the generation-tagged slot is freed for reuse — stale
//!   `Addr`s and handles fail safely instead of addressing the slot's
//!   next occupant.
//! - **Panic containment.** A panicking actor is marked dead and its
//!   mailbox purged (dropping queued reply handles so clients unblock);
//!   the worker and every other actor keep running.

mod mailbox;
mod reactor;
mod time;

pub use mailbox::{Closed, TrySendError};
pub use reactor::{
    Actor, ActorHandle, ActorStats, Addr, Ctx, Reactor, ReactorConfig, ReactorStats, StoppedReactor,
};
pub use time::{ManualClock, TimeSource, WallClock};
