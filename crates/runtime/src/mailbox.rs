//! Bounded per-actor mailboxes.
//!
//! A mailbox has two closing stages: *closed* rejects new sends but keeps
//! the queue intact so the reactor can drain it during graceful shutdown,
//! and *dead* (actor panicked, or reactor fully stopped) additionally
//! purges the queue so queued reply handles drop and blocked clients
//! observe disconnection instead of hanging.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};

/// Error from a non-blocking send.
#[derive(Debug, PartialEq, Eq)]
pub enum TrySendError<M> {
    /// The mailbox was at capacity; the message is handed back.
    Full(M),
    /// The mailbox no longer accepts messages; the message is handed back.
    Closed(M),
}

/// Error from a blocking or control-plane send: the mailbox no longer
/// accepts messages. Carries the rejected message.
#[derive(Debug, PartialEq, Eq)]
pub struct Closed<M>(pub M);

pub(crate) struct Mailbox<M> {
    state: Mutex<State<M>>,
    /// Signalled when capacity frees up or the mailbox closes, to release
    /// blocked senders.
    send_ready: Condvar,
    capacity: usize,
}

struct State<M> {
    queue: VecDeque<M>,
    closed: bool,
    dead: bool,
    max_depth: usize,
}

impl<M> Mailbox<M> {
    pub(crate) fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "mailbox capacity must be at least 1");
        Mailbox {
            state: Mutex::new(State {
                queue: VecDeque::new(),
                closed: false,
                dead: false,
                max_depth: 0,
            }),
            send_ready: Condvar::new(),
            capacity,
        }
    }

    /// Enqueues without blocking; fails on a full or closed mailbox.
    pub(crate) fn try_send(&self, msg: M) -> Result<(), TrySendError<M>> {
        let mut st = self.state.lock().unwrap();
        if st.closed || st.dead {
            return Err(TrySendError::Closed(msg));
        }
        if st.queue.len() >= self.capacity {
            return Err(TrySendError::Full(msg));
        }
        push(&mut st, msg);
        Ok(())
    }

    /// Enqueues, blocking while the mailbox is at capacity.
    pub(crate) fn send(&self, msg: M) -> Result<(), Closed<M>> {
        let mut st = self.state.lock().unwrap();
        loop {
            if st.closed || st.dead {
                return Err(Closed(msg));
            }
            if st.queue.len() < self.capacity {
                push(&mut st, msg);
                return Ok(());
            }
            st = self.send_ready.wait(st).unwrap();
        }
    }

    /// Control-plane enqueue: ignores capacity and the external-close flag
    /// so reactor-internal messages (snapshot replies, drain notices) still
    /// land while shutdown is draining. Fails only on a dead mailbox.
    pub(crate) fn send_now(&self, msg: M) -> Result<(), Closed<M>> {
        let mut st = self.state.lock().unwrap();
        if st.dead {
            return Err(Closed(msg));
        }
        push(&mut st, msg);
        Ok(())
    }

    pub(crate) fn pop(&self) -> Option<M> {
        let mut st = self.state.lock().unwrap();
        let msg = st.queue.pop_front();
        if msg.is_some() {
            // Capacity freed: release one blocked sender.
            self.send_ready.notify_one();
        }
        msg
    }

    pub(crate) fn len(&self) -> usize {
        self.state.lock().unwrap().queue.len()
    }

    pub(crate) fn max_depth(&self) -> usize {
        self.state.lock().unwrap().max_depth
    }

    /// Rejects external senders from now on; queued messages stay for the
    /// drain. Blocked senders wake with [`Closed`].
    pub(crate) fn close(&self) {
        let mut st = self.state.lock().unwrap();
        st.closed = true;
        self.send_ready.notify_all();
    }

    /// Terminal close: rejects everything (even `send_now`) and drops any
    /// queued messages on the caller's thread.
    pub(crate) fn kill(&self) {
        let purged = {
            let mut st = self.state.lock().unwrap();
            st.closed = true;
            st.dead = true;
            self.send_ready.notify_all();
            std::mem::take(&mut st.queue)
        };
        // Dropped outside the lock: these may carry channels or user types
        // with Drop impls that must not run under our mutex.
        drop(purged);
    }
}

fn push<M>(st: &mut State<M>, msg: M) {
    st.queue.push_back(msg);
    st.max_depth = st.max_depth.max(st.queue.len());
}

/// Type-erased mailbox control used by reactor slots.
pub(crate) trait MailboxCtl: Send + Sync {
    fn len(&self) -> usize;
    fn max_depth(&self) -> usize;
    fn close(&self);
    fn kill(&self);
}

impl<M: Send> MailboxCtl for Mailbox<M> {
    fn len(&self) -> usize {
        Mailbox::len(self)
    }

    fn max_depth(&self) -> usize {
        Mailbox::max_depth(self)
    }

    fn close(&self) {
        Mailbox::close(self)
    }

    fn kill(&self) {
        Mailbox::kill(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn bounded_and_fifo() {
        let mb = Mailbox::new(2);
        mb.try_send(1).unwrap();
        mb.try_send(2).unwrap();
        assert_eq!(mb.try_send(3), Err(TrySendError::Full(3)));
        assert_eq!(mb.pop(), Some(1));
        mb.try_send(3).unwrap();
        assert_eq!(mb.pop(), Some(2));
        assert_eq!(mb.pop(), Some(3));
        assert_eq!(mb.pop(), None);
        assert_eq!(mb.max_depth(), 2);
    }

    #[test]
    fn close_keeps_queue_kill_purges_it() {
        let mb = Mailbox::new(4);
        mb.try_send(1).unwrap();
        mb.close();
        assert_eq!(mb.try_send(2), Err(TrySendError::Closed(2)));
        mb.send_now(3).unwrap(); // control plane still lands after close
        assert_eq!(mb.len(), 2);
        mb.kill();
        assert_eq!(mb.len(), 0);
        assert_eq!(mb.send_now(4), Err(Closed(4)));
    }

    #[test]
    fn blocked_sender_wakes_on_close() {
        let mb = Arc::new(Mailbox::new(1));
        mb.try_send(0u32).unwrap();
        let mb2 = Arc::clone(&mb);
        let t = std::thread::spawn(move || mb2.send(1));
        std::thread::sleep(std::time::Duration::from_millis(20));
        mb.close();
        assert_eq!(t.join().unwrap(), Err(Closed(1)));
    }

    #[test]
    fn blocked_sender_wakes_on_pop() {
        let mb = Arc::new(Mailbox::new(1));
        mb.try_send(0u32).unwrap();
        let mb2 = Arc::clone(&mb);
        let t = std::thread::spawn(move || mb2.send(1));
        std::thread::sleep(std::time::Duration::from_millis(20));
        assert_eq!(mb.pop(), Some(0));
        t.join().unwrap().unwrap();
        assert_eq!(mb.pop(), Some(1));
    }
}
