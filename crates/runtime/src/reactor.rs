//! The reactor: a fixed worker pool driving many actors.
//!
//! Locking discipline (deadlock-freedom argument):
//!
//! - `sched` (run queue), `timers` (deadline heap), and `slots` (actor
//!   table) are separate mutexes, never acquired in conflicting order:
//!   every path takes at most one of `timers`/`slots` at a time and only
//!   then `sched`; the one exception, the drain quiescence check, holds
//!   `sched` and reads `slots`/mailbox lengths — and no path locks `sched`
//!   while already holding `slots` or a mailbox lock. The retire path
//!   takes its locks strictly in sequence (mailbox, then `timers`, then
//!   `sched`, then `slots`), never nested.
//! - No reactor lock is ever held across user actor code (`on_msg`,
//!   `on_timer`, `on_start`, `on_stop`), so actors may freely block on
//!   their own channels or I/O without wedging the scheduler.
//!
//! An actor's scheduling state is a small atomic machine:
//! `IDLE → QUEUED → RUNNING (→ RUNNING_DIRTY on concurrent wake) → IDLE`,
//! with `DEAD` terminal after a panic or retire.
//!
//! Actor identity is a generation-tagged slot: `(index, generation)`.
//! Despawn ([`Reactor::despawn`], [`Addr::retire`], [`Ctx::stop_self`])
//! frees the slot for reuse by a later spawn, and every reference that
//! could outlive the actor — run-queue entries, timer-heap entries,
//! `ActorHandle`s — carries the generation, so a stale reference can
//! never address the slot's next occupant: lookups that lose the
//! generation match simply miss. Stale `Addr`s hold the old mailbox
//! (already killed), so their sends fail with typed errors.

use std::any::Any;
use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};
use std::marker::PhantomData;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, Ordering};
use std::sync::{Arc, Condvar, Mutex, Weak};
use std::thread::JoinHandle;
use std::time::Duration;

use crate::mailbox::{Closed, Mailbox, MailboxCtl, TrySendError};
use crate::time::{TimeSource, WallClock};

/// A state machine driven by the reactor.
///
/// The reactor guarantees single-threaded access to `&mut self`: callbacks
/// for one actor never overlap, so no internal synchronization is needed.
/// Callbacks should not block on other actors in the same reactor
/// (use `Addr::send_now` plus a reply message instead); blocking on
/// external channels or I/O is fine.
pub trait Actor: Send + 'static {
    /// Message type delivered to [`Actor::on_msg`].
    type Msg: Send + 'static;

    /// Runs once, before the first message or timer.
    fn on_start(&mut self, _ctx: &mut Ctx<'_>) {}

    /// Handles one mailbox message.
    fn on_msg(&mut self, msg: Self::Msg, ctx: &mut Ctx<'_>);

    /// Handles a timer armed with [`Ctx::set_timer`]. Stale timers are the
    /// actor's concern: tag tokens with a generation and ignore old ones.
    fn on_timer(&mut self, _token: u64, _ctx: &mut Ctx<'_>) {}

    /// Runs exactly once at the end of the actor's life: during graceful
    /// reactor shutdown (after the mailbox has been drained), or on the
    /// finalization turn of a despawn/retire.
    fn on_stop(&mut self, _ctx: &mut Ctx<'_>) {}
}

/// Per-run view the reactor hands to actor callbacks.
pub struct Ctx<'a> {
    core: &'a Core,
    slot: &'a Slot,
    id: usize,
}

impl Ctx<'_> {
    /// Current reactor time in microseconds.
    pub fn now_micros(&self) -> u64 {
        self.core.time.now_micros()
    }

    /// Arms a one-shot timer `delay_micros` from now; `token` comes back
    /// in [`Actor::on_timer`]. Timers sharing a deadline fire in
    /// registration order (deterministic on a single-worker reactor).
    pub fn set_timer(&mut self, delay_micros: u64, token: u64) {
        self.core
            .add_timer(self.id, self.slot.gen, delay_micros, token);
    }

    /// Messages currently waiting in this actor's mailbox.
    pub fn pending_msgs(&self) -> usize {
        self.slot.mailbox.len()
    }

    /// True once graceful shutdown has begun (mailbox closed to external
    /// senders; remaining messages are being drained).
    pub fn stopping(&self) -> bool {
        self.core.draining.load(Ordering::SeqCst)
    }

    /// Retires this actor. After the current callback returns no further
    /// messages or timers are delivered; anything still queued is dropped
    /// (reply senders released, so blocked callers see typed errors);
    /// `on_stop` runs once on a worker and the slot is freed for reuse.
    pub fn stop_self(&mut self) {
        self.core.retire(self.slot, self.id);
    }
}

/// Cheap cloneable handle for sending messages to one actor.
pub struct Addr<M> {
    mailbox: Arc<Mailbox<M>>,
    slot: Weak<Slot>,
    core: Weak<Core>,
    id: usize,
}

impl<M> Clone for Addr<M> {
    fn clone(&self) -> Self {
        Addr {
            mailbox: Arc::clone(&self.mailbox),
            slot: Weak::clone(&self.slot),
            core: Weak::clone(&self.core),
            id: self.id,
        }
    }
}

impl<M> std::fmt::Debug for Addr<M> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Addr").field("id", &self.id).finish()
    }
}

impl<M: Send + 'static> Addr<M> {
    /// Blocking send: waits while the mailbox is full. Fails once the
    /// actor is retired, shut down, or dead.
    pub fn send(&self, msg: M) -> Result<(), Closed<M>> {
        self.mailbox.send(msg)?;
        self.wake();
        Ok(())
    }

    /// Non-blocking send; hands the message back on a full or closed
    /// mailbox so the caller can account the drop.
    pub fn try_send(&self, msg: M) -> Result<(), TrySendError<M>> {
        self.mailbox.try_send(msg)?;
        self.wake();
        Ok(())
    }

    /// Control-plane send: bypasses capacity and still lands during the
    /// shutdown drain. For reactor-internal replies (snapshot parts,
    /// completions) that must not deadlock or be lost mid-drain. Fails
    /// only when the actor is retired, dead, or fully stopped.
    pub fn send_now(&self, msg: M) -> Result<(), Closed<M>> {
        self.mailbox.send_now(msg)?;
        self.wake();
        Ok(())
    }

    /// Retires the target actor (see [`Reactor::despawn`] for semantics).
    /// Returns `true` if this call initiated the retire; `false` if the
    /// actor was already retiring, already gone, or the reactor has shut
    /// down. Safe to call from any thread, including from other actors.
    pub fn retire(&self) -> bool {
        match (self.core.upgrade(), self.slot.upgrade()) {
            (Some(core), Some(slot)) => core.retire(&slot, self.id),
            _ => false,
        }
    }

    /// Messages currently queued (a load gauge; immediately stale).
    pub fn queue_len(&self) -> usize {
        self.mailbox.len()
    }

    fn wake(&self) {
        if let (Some(core), Some(slot)) = (self.core.upgrade(), self.slot.upgrade()) {
            core.schedule_slot(&slot, self.id);
        }
    }
}

/// Typed claim ticket for one actor: despawn it via [`Reactor::despawn`]
/// or extract its state after shutdown via [`StoppedReactor::take`].
/// Carries the actor's generation, so a handle to a retired actor can
/// never claim the slot's next occupant.
pub struct ActorHandle<A> {
    id: usize,
    gen: u64,
    _marker: PhantomData<fn() -> A>,
}

impl<A> std::fmt::Debug for ActorHandle<A> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ActorHandle")
            .field("id", &self.id)
            .field("gen", &self.gen)
            .finish()
    }
}

/// Counters for one actor, sampled by [`Reactor::stats`].
#[derive(Debug, Clone)]
pub struct ActorStats {
    /// Name given at spawn.
    pub name: String,
    /// Messages processed.
    pub processed: u64,
    /// Timers delivered.
    pub timers_fired: u64,
    /// Mailbox depth right now.
    pub queued: usize,
    /// High-water mailbox depth.
    pub max_queued: usize,
    /// True if the actor panicked and was isolated.
    pub dead: bool,
}

/// Point-in-time view of the whole reactor.
#[derive(Debug, Clone)]
pub struct ReactorStats {
    /// Fixed worker pool size.
    pub workers: usize,
    /// Actors currently occupying a slot (spawned and not yet retired;
    /// includes panicked-dead actors, which keep their slot).
    pub live: usize,
    /// Actors spawned over the reactor's lifetime.
    pub spawned_total: u64,
    /// Actors retired (despawned) over the reactor's lifetime.
    pub retired_total: u64,
    /// Slot-table length — the high-water mark of concurrently live
    /// actors. Stays flat under churn when retired slots are reused.
    pub slot_capacity: usize,
    /// One entry per live actor, in slot order.
    pub actors: Vec<ActorStats>,
}

/// Construction parameters for [`Reactor::new`].
pub struct ReactorConfig {
    /// Worker threads; 0 picks `available_parallelism` clamped to [2, 4].
    pub workers: usize,
    /// Thread-name prefix.
    pub name: String,
    /// Clock driving `Ctx::now_micros` and timers.
    pub time: Arc<dyn TimeSource>,
    /// Max messages one actor may drain per scheduling turn before the
    /// worker moves on (fairness bound).
    pub msg_budget: usize,
}

impl Default for ReactorConfig {
    fn default() -> Self {
        ReactorConfig {
            workers: 0,
            name: "reactor".to_string(),
            time: Arc::new(WallClock::new()),
            msg_budget: 64,
        }
    }
}

// Actor scheduling states.
const IDLE: u8 = 0;
const QUEUED: u8 = 1;
const RUNNING: u8 = 2;
const RUNNING_DIRTY: u8 = 3;
const DEAD: u8 = 4;

struct Slot {
    name: String,
    /// Generation this slot occupancy belongs to; tags every external
    /// reference so reuse after retire is unambiguous.
    gen: u64,
    cell: Mutex<Option<Box<dyn AnyActor>>>,
    state: AtomicU8,
    started: AtomicBool,
    /// Set once by the retire path; after this the actor only gets one
    /// final finalization turn (on_stop) and is then freed.
    retiring: AtomicBool,
    /// Timer tokens due for delivery, in firing order.
    fired: Mutex<VecDeque<u64>>,
    mailbox: Arc<dyn MailboxCtl>,
    processed: AtomicU64,
    timers_fired: AtomicU64,
}

/// The actor table: a slab of generation-tagged slots with a free list,
/// so retired slots are reused instead of growing the table forever.
struct Slots {
    entries: Vec<Option<Arc<Slot>>>,
    free: Vec<usize>,
    next_gen: u64,
    spawned: u64,
    retired: u64,
}

struct Sched {
    /// Runnable actors as `(slot index, generation)`; a stale entry whose
    /// generation no longer matches the slot is skipped on pop.
    ready: VecDeque<(usize, u64)>,
    running: usize,
    stopped: bool,
}

/// Heap entry: (deadline µs, registration seq, slot index, generation, token).
type TimerEntry = (u64, u64, usize, u64, u64);

struct Timers {
    heap: BinaryHeap<Reverse<TimerEntry>>,
    seq: u64,
}

struct Core {
    slots: Mutex<Slots>,
    sched: Mutex<Sched>,
    cv: Condvar,
    timers: Mutex<Timers>,
    /// Bumped on every timer insert / clock advance so a worker deciding
    /// how long to sleep can detect a deadline that moved under it.
    timers_gen: AtomicU64,
    draining: AtomicBool,
    time: Arc<dyn TimeSource>,
    msg_budget: usize,
}

enum Step {
    Run(usize, u64),
    Tick,
    Stop,
}

impl Core {
    fn slot(&self, id: usize, gen: u64) -> Option<Arc<Slot>> {
        let slots = self.slots.lock().unwrap();
        match slots.entries.get(id) {
            Some(Some(s)) if s.gen == gen => Some(Arc::clone(s)),
            _ => None,
        }
    }

    /// Marks an actor runnable, enqueueing it at most once.
    fn schedule_slot(&self, slot: &Slot, id: usize) {
        loop {
            match slot.state.load(Ordering::SeqCst) {
                IDLE => {
                    if slot
                        .state
                        .compare_exchange(IDLE, QUEUED, Ordering::SeqCst, Ordering::SeqCst)
                        .is_ok()
                    {
                        let mut sched = self.sched.lock().unwrap();
                        sched.ready.push_back((id, slot.gen));
                        self.cv.notify_one();
                        return;
                    }
                }
                RUNNING => {
                    if slot
                        .state
                        .compare_exchange(
                            RUNNING,
                            RUNNING_DIRTY,
                            Ordering::SeqCst,
                            Ordering::SeqCst,
                        )
                        .is_ok()
                    {
                        return;
                    }
                }
                // Already queued/dirty (will see the new message) or dead.
                _ => return,
            }
        }
    }

    fn add_timer(&self, id: usize, gen: u64, delay_micros: u64, token: u64) {
        let deadline = self.time.now_micros().saturating_add(delay_micros);
        {
            let mut timers = self.timers.lock().unwrap();
            let seq = timers.seq;
            timers.seq += 1;
            timers.heap.push(Reverse((deadline, seq, id, gen, token)));
        }
        self.timers_gen.fetch_add(1, Ordering::SeqCst);
        // Wake a sleeping worker so it recomputes its sleep deadline. The
        // sched lock orders this against a worker between its gen check
        // and its wait.
        let _g = self.sched.lock().unwrap();
        self.cv.notify_all();
    }

    /// Delivers every timer whose deadline has passed. No-op during drain
    /// (pending timers are intentionally discarded at shutdown).
    fn fire_due_timers(&self) {
        if self.draining.load(Ordering::SeqCst) {
            return;
        }
        let now = self.time.now_micros();
        let mut due: Vec<(usize, u64, u64)> = Vec::new();
        {
            let mut timers = self.timers.lock().unwrap();
            while let Some(&Reverse((deadline, _, id, gen, token))) = timers.heap.peek() {
                if deadline > now {
                    break;
                }
                timers.heap.pop();
                due.push((id, gen, token));
            }
        }
        for (id, gen, token) in due {
            let Some(slot) = self.slot(id, gen) else {
                continue; // retired and freed; timer dies with the actor
            };
            if slot.state.load(Ordering::SeqCst) == DEAD || slot.retiring.load(Ordering::SeqCst) {
                continue;
            }
            slot.fired.lock().unwrap().push_back(token);
            self.schedule_slot(&slot, id);
        }
    }

    /// Begins retiring one actor. Idempotent across racing callers; only
    /// the call that flips `retiring` returns true. Teardown ordering:
    /// kill the mailbox (every send path now fails with a typed error and
    /// queued reply senders drop), discard due and pending timers, then
    /// schedule one final worker turn that runs `on_stop` and frees the
    /// slot.
    fn retire(&self, slot: &Slot, id: usize) -> bool {
        if slot.retiring.swap(true, Ordering::SeqCst) {
            return false;
        }
        slot.mailbox.kill();
        slot.fired.lock().unwrap().clear();
        self.cancel_timers(id, slot.gen);
        self.schedule_slot(slot, id);
        if slot.state.load(Ordering::SeqCst) == DEAD {
            // Panicked earlier: no finalization turn will come, reclaim
            // inline. The panic path may race us and also free — both are
            // safe because free_slot is generation-guarded and idempotent.
            self.free_slot(id, slot.gen);
        }
        true
    }

    /// Drops every pending timer belonging to `(id, gen)`.
    fn cancel_timers(&self, id: usize, gen: u64) {
        let mut timers = self.timers.lock().unwrap();
        let entries = std::mem::take(&mut timers.heap).into_vec();
        timers.heap = entries
            .into_iter()
            .filter(|&Reverse((_, _, i, g, _))| i != id || g != gen)
            .collect();
    }

    /// Returns a retired slot to the free list. Generation-guarded and
    /// idempotent: a second call (or a stale caller) is a no-op.
    fn free_slot(&self, id: usize, gen: u64) {
        let mut slots = self.slots.lock().unwrap();
        let occupied = slots
            .entries
            .get(id)
            .and_then(|e| e.as_ref())
            .is_some_and(|s| s.gen == gen);
        if occupied {
            slots.entries[id] = None;
            slots.free.push(id);
            slots.retired += 1;
        }
    }

    /// Terminal turn for a retiring actor: runs `on_stop` exactly once,
    /// marks the slot DEAD, and frees it for reuse. The caller won the
    /// QUEUED→RUNNING CAS, so no other worker holds the cell.
    fn finalize_retire(&self, slot: &Arc<Slot>, id: usize) {
        let cell = slot.cell.lock().unwrap().take();
        if let Some(mut cell) = cell {
            // A panicking on_stop must not take the worker down.
            let _ = catch_unwind(AssertUnwindSafe(|| {
                let mut ctx = Ctx {
                    core: self,
                    slot,
                    id,
                };
                cell.on_stop(&mut ctx);
            }));
        }
        slot.state.store(DEAD, Ordering::SeqCst);
        slot.fired.lock().unwrap().clear();
        self.free_slot(id, slot.gen);
    }

    /// How long a worker may sleep before the next timer is due. `None`
    /// means sleep until notified (no timers, manual clock, or draining).
    fn wait_duration(&self) -> Option<Duration> {
        if !self.time.autonomous() || self.draining.load(Ordering::SeqCst) {
            return None;
        }
        let next = {
            let timers = self.timers.lock().unwrap();
            timers.heap.peek().map(|Reverse(e)| e.0)?
        };
        let now = self.time.now_micros();
        Some(Duration::from_micros(next.saturating_sub(now).max(1)))
    }

    /// True when no actor has pending messages or undelivered timer
    /// tokens. Caller holds `sched` with `running == 0` and an empty run
    /// queue, so nothing can become pending concurrently from inside.
    fn all_quiet(&self) -> bool {
        let slots = self.slots.lock().unwrap();
        slots.entries.iter().flatten().all(|s| {
            s.state.load(Ordering::SeqCst) == DEAD
                || (s.mailbox.len() == 0 && s.fired.lock().unwrap().is_empty())
        })
    }

    fn next_step(&self) -> Step {
        let gen = self.timers_gen.load(Ordering::SeqCst);
        let wait = self.wait_duration();
        let mut sched = self.sched.lock().unwrap();
        if let Some((id, slot_gen)) = sched.ready.pop_front() {
            sched.running += 1;
            return Step::Run(id, slot_gen);
        }
        if sched.stopped {
            return Step::Stop;
        }
        if self.draining.load(Ordering::SeqCst) && sched.running == 0 && self.all_quiet() {
            sched.stopped = true;
            self.cv.notify_all();
            return Step::Stop;
        }
        if self.timers_gen.load(Ordering::SeqCst) != gen {
            // A timer landed (or the clock advanced) after we computed the
            // sleep deadline; recompute instead of oversleeping.
            return Step::Tick;
        }
        match wait {
            Some(d) => {
                let (guard, _) = self.cv.wait_timeout(sched, d).unwrap();
                drop(guard);
            }
            None => {
                let guard = self.cv.wait(sched).unwrap();
                drop(guard);
            }
        }
        Step::Tick
    }

    fn run_actor(self: &Arc<Core>, id: usize, gen: u64) {
        let Some(slot) = self.slot(id, gen) else {
            // Stale run-queue entry for a freed slot (or its reused
            // successor, which the generation check protects).
            self.finish_run();
            return;
        };
        if slot
            .state
            .compare_exchange(QUEUED, RUNNING, Ordering::SeqCst, Ordering::SeqCst)
            .is_err()
        {
            self.finish_run();
            return;
        }
        if slot.retiring.load(Ordering::SeqCst) {
            self.finalize_retire(&slot, id);
            self.finish_run();
            return;
        }
        let cell = slot.cell.lock().unwrap().take();
        let Some(mut cell) = cell else {
            slot.state.store(DEAD, Ordering::SeqCst);
            self.finish_run();
            return;
        };
        let budget = self.msg_budget;
        let result = catch_unwind(AssertUnwindSafe(|| {
            let mut ctx = Ctx {
                core: self,
                slot: &slot,
                id,
            };
            if !slot.started.swap(true, Ordering::SeqCst) {
                cell.on_start(&mut ctx);
            }
            cell.run(budget, &mut ctx)
        }));
        match result {
            Ok(more) => {
                *slot.cell.lock().unwrap() = Some(cell);
                let prev = slot.state.swap(IDLE, Ordering::SeqCst);
                // A retire that landed mid-run (stop_self, or another
                // thread) needs its finalization turn; `prev` catches the
                // common case, the explicit check the IDLE-swap race.
                if more || prev == RUNNING_DIRTY || slot.retiring.load(Ordering::SeqCst) {
                    self.schedule_slot(&slot, id);
                }
            }
            Err(_) => {
                // Contain the panic: isolate this actor, purge its queue so
                // held reply channels drop, keep everyone else running.
                drop(cell);
                slot.state.store(DEAD, Ordering::SeqCst);
                slot.fired.lock().unwrap().clear();
                slot.mailbox.kill();
                if slot.retiring.load(Ordering::SeqCst) {
                    // Retired while panicking: the finalization turn will
                    // see DEAD and skip, so reclaim the slot here.
                    self.free_slot(id, gen);
                }
            }
        }
        self.finish_run();
    }

    fn finish_run(&self) {
        let mut sched = self.sched.lock().unwrap();
        sched.running -= 1;
        if self.draining.load(Ordering::SeqCst) {
            // Let an idle worker re-run the quiescence check.
            self.cv.notify_all();
        }
    }

    fn begin_drain(&self) {
        self.draining.store(true, Ordering::SeqCst);
        let slots: Vec<Arc<Slot>> = {
            let slots = self.slots.lock().unwrap();
            slots.entries.iter().flatten().cloned().collect()
        };
        for s in &slots {
            s.mailbox.close();
        }
        let _g = self.sched.lock().unwrap();
        self.cv.notify_all();
    }

    fn worker(self: Arc<Core>) {
        loop {
            self.fire_due_timers();
            match self.next_step() {
                Step::Run(id, gen) => self.run_actor(id, gen),
                Step::Tick => continue,
                Step::Stop => break,
            }
        }
    }
}

/// Object-safe wrapper so the reactor can hold heterogeneous actors.
trait AnyActor: Send {
    fn on_start(&mut self, ctx: &mut Ctx<'_>);
    /// Delivers pending timers then up to `budget` messages; returns true
    /// if work remains.
    fn run(&mut self, budget: usize, ctx: &mut Ctx<'_>) -> bool;
    fn on_stop(&mut self, ctx: &mut Ctx<'_>);
    fn into_any(self: Box<Self>) -> Box<dyn Any>;
}

struct ActorCell<A: Actor> {
    actor: A,
    mailbox: Arc<Mailbox<A::Msg>>,
}

impl<A: Actor> AnyActor for ActorCell<A> {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        self.actor.on_start(ctx);
    }

    fn run(&mut self, budget: usize, ctx: &mut Ctx<'_>) -> bool {
        let mut processed = 0;
        loop {
            // Timers first: they carry deadlines and must not sit behind a
            // deep mailbox.
            loop {
                let token = ctx.slot.fired.lock().unwrap().pop_front();
                match token {
                    Some(token) => {
                        ctx.slot.timers_fired.fetch_add(1, Ordering::Relaxed);
                        self.actor.on_timer(token, ctx);
                    }
                    None => break,
                }
            }
            if processed >= budget {
                break;
            }
            match self.mailbox.pop() {
                Some(msg) => {
                    processed += 1;
                    ctx.slot.processed.fetch_add(1, Ordering::Relaxed);
                    self.actor.on_msg(msg, ctx);
                }
                None => break,
            }
        }
        self.mailbox.len() > 0 || !ctx.slot.fired.lock().unwrap().is_empty()
    }

    fn on_stop(&mut self, ctx: &mut Ctx<'_>) {
        self.actor.on_stop(ctx);
    }

    fn into_any(self: Box<Self>) -> Box<dyn Any> {
        self
    }
}

/// The running reactor. Dropping it performs a graceful shutdown (drain,
/// `on_stop`, join); call [`Reactor::shutdown`] instead to also reclaim
/// actor state.
pub struct Reactor {
    core: Arc<Core>,
    workers: Vec<JoinHandle<()>>,
}

impl std::fmt::Debug for Reactor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Reactor")
            .field("workers", &self.workers.len())
            .finish()
    }
}

impl Reactor {
    /// Starts the worker pool.
    pub fn new(config: ReactorConfig) -> Self {
        let workers = if config.workers > 0 {
            config.workers
        } else {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(2)
                .clamp(2, 4)
        };
        let core = Arc::new(Core {
            slots: Mutex::new(Slots {
                entries: Vec::new(),
                free: Vec::new(),
                next_gen: 0,
                spawned: 0,
                retired: 0,
            }),
            sched: Mutex::new(Sched {
                ready: VecDeque::new(),
                running: 0,
                stopped: false,
            }),
            cv: Condvar::new(),
            timers: Mutex::new(Timers {
                heap: BinaryHeap::new(),
                seq: 0,
            }),
            timers_gen: AtomicU64::new(0),
            draining: AtomicBool::new(false),
            time: Arc::clone(&config.time),
            msg_budget: config.msg_budget.max(1),
        });
        // A manual clock advancing is equivalent to a timer insert: wake
        // the pool so due timers fire.
        let weak = Arc::downgrade(&core);
        config.time.register_waker(Arc::new(move || {
            if let Some(core) = weak.upgrade() {
                core.timers_gen.fetch_add(1, Ordering::SeqCst);
                let _g = core.sched.lock().unwrap();
                core.cv.notify_all();
            }
        }));
        let handles = (0..workers)
            .map(|i| {
                let core = Arc::clone(&core);
                std::thread::Builder::new()
                    .name(format!("{}-{i}", config.name))
                    .spawn(move || core.worker())
                    .expect("spawn reactor worker")
            })
            .collect();
        Reactor {
            core,
            workers: handles,
        }
    }

    /// Number of worker threads in the pool.
    pub fn worker_count(&self) -> usize {
        self.workers.len()
    }

    /// The reactor's clock.
    pub fn time(&self) -> Arc<dyn TimeSource> {
        Arc::clone(&self.core.time)
    }

    /// Registers an actor with a bounded mailbox and schedules its
    /// `on_start`. Reuses the lowest-numbered retired slot if one is
    /// free. Panics if called after shutdown began.
    pub fn spawn<A: Actor>(
        &self,
        name: &str,
        mailbox_capacity: usize,
        actor: A,
    ) -> (Addr<A::Msg>, ActorHandle<A>) {
        assert!(
            !self.core.draining.load(Ordering::SeqCst),
            "spawn on a shutting-down reactor"
        );
        let mailbox = Arc::new(Mailbox::new(mailbox_capacity));
        let (slot, id, gen) = {
            let mut slots = self.core.slots.lock().unwrap();
            slots.next_gen += 1;
            let gen = slots.next_gen;
            let slot = Arc::new(Slot {
                name: name.to_string(),
                gen,
                cell: Mutex::new(Some(Box::new(ActorCell {
                    actor,
                    mailbox: Arc::clone(&mailbox),
                }))),
                state: AtomicU8::new(IDLE),
                started: AtomicBool::new(false),
                retiring: AtomicBool::new(false),
                fired: Mutex::new(VecDeque::new()),
                mailbox: Arc::clone(&mailbox) as Arc<dyn MailboxCtl>,
                processed: AtomicU64::new(0),
                timers_fired: AtomicU64::new(0),
            });
            let id = match slots.free.pop() {
                Some(i) => {
                    slots.entries[i] = Some(Arc::clone(&slot));
                    i
                }
                None => {
                    slots.entries.push(Some(Arc::clone(&slot)));
                    slots.entries.len() - 1
                }
            };
            slots.spawned += 1;
            (slot, id, gen)
        };
        // Run on_start promptly (it may arm the actor's first timer).
        // Outside the slots lock: schedule_slot takes sched.
        self.core.schedule_slot(&slot, id);
        (
            Addr {
                mailbox,
                slot: Arc::downgrade(&slot),
                core: Arc::downgrade(&self.core),
                id,
            },
            ActorHandle {
                id,
                gen,
                _marker: PhantomData,
            },
        )
    }

    /// Retires the actor behind `handle`: cancels its pending timers,
    /// purges its mailbox (queued reply senders drop, so blocked callers
    /// get typed errors instead of hangs), runs `on_stop` once on a
    /// worker, and frees the slot for reuse by a later spawn. Stale
    /// `Addr`s to the retired actor fail every send with a typed error.
    ///
    /// Returns `false` if the actor was already retired. Consumes the
    /// handle: a despawned actor's state cannot be reclaimed.
    pub fn despawn<A: Actor>(&self, handle: ActorHandle<A>) -> bool {
        match self.core.slot(handle.id, handle.gen) {
            Some(slot) => self.core.retire(&slot, handle.id),
            None => false,
        }
    }

    /// Samples per-actor counters and queue depths.
    pub fn stats(&self) -> ReactorStats {
        let slots = self.core.slots.lock().unwrap();
        let actors: Vec<ActorStats> = slots
            .entries
            .iter()
            .flatten()
            .map(|s| slot_stats(s))
            .collect();
        ReactorStats {
            workers: self.workers.len(),
            live: actors.len(),
            spawned_total: slots.spawned,
            retired_total: slots.retired,
            slot_capacity: slots.entries.len(),
            actors,
        }
    }

    /// Graceful shutdown: rejects new external sends, drains every queued
    /// message, runs `on_stop` per actor in spawn order, joins the pool,
    /// and returns the stopped reactor for state reclamation.
    ///
    /// Timers not yet due are discarded. Messages sent with `send_now`
    /// during the drain (reactor-internal replies) are still delivered.
    pub fn shutdown(mut self) -> StoppedReactor {
        self.shutdown_impl();
        let slots = self.core.slots.lock().unwrap().entries.clone();
        StoppedReactor { slots }
    }

    fn shutdown_impl(&mut self) {
        if self.workers.is_empty() {
            return;
        }
        self.core.begin_drain();
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
        let entries = self.core.slots.lock().unwrap().entries.clone();
        for (id, slot) in entries.iter().enumerate() {
            let Some(slot) = slot else { continue };
            let cell = slot.cell.lock().unwrap().take();
            if let Some(mut cell) = cell {
                let result = catch_unwind(AssertUnwindSafe(|| {
                    let mut ctx = Ctx {
                        core: &self.core,
                        slot,
                        id,
                    };
                    cell.on_stop(&mut ctx);
                }));
                if result.is_err() {
                    slot.state.store(DEAD, Ordering::SeqCst);
                }
                *slot.cell.lock().unwrap() = Some(cell);
            }
            slot.mailbox.kill();
        }
    }
}

impl Drop for Reactor {
    fn drop(&mut self) {
        self.shutdown_impl();
    }
}

fn slot_stats(s: &Slot) -> ActorStats {
    ActorStats {
        name: s.name.clone(),
        processed: s.processed.load(Ordering::Relaxed),
        timers_fired: s.timers_fired.load(Ordering::Relaxed),
        queued: s.mailbox.len(),
        max_queued: s.mailbox.max_depth(),
        dead: s.state.load(Ordering::SeqCst) == DEAD,
    }
}

/// A shut-down reactor holding final actor state.
pub struct StoppedReactor {
    slots: Vec<Option<Arc<Slot>>>,
}

impl StoppedReactor {
    /// Reclaims the actor behind `handle`. Returns `None` if the actor
    /// panicked (its state was destroyed), was despawned before shutdown,
    /// or was already taken.
    pub fn take<A: Actor>(&self, handle: ActorHandle<A>) -> Option<A> {
        let slot = self.slots.get(handle.id)?.as_ref()?;
        if slot.gen != handle.gen {
            return None;
        }
        let cell = slot.cell.lock().unwrap().take()?;
        let cell = cell.into_any().downcast::<ActorCell<A>>().ok()?;
        Some(cell.actor)
    }

    /// Final per-actor counters (live actors only; despawned slots are
    /// gone).
    pub fn stats(&self) -> Vec<ActorStats> {
        self.slots.iter().flatten().map(|s| slot_stats(s)).collect()
    }
}
