//! The reactor: a fixed worker pool driving many actors.
//!
//! Locking discipline (deadlock-freedom argument):
//!
//! - `sched` (run queue), `timers` (deadline heap), and `slots` (actor
//!   table) are separate mutexes, never acquired in conflicting order:
//!   every path takes at most one of `timers`/`slots` at a time and only
//!   then `sched`; the one exception, the drain quiescence check, holds
//!   `sched` and reads `slots`/mailbox lengths — and no path locks `sched`
//!   while already holding `slots` or a mailbox lock.
//! - No reactor lock is ever held across user actor code (`on_msg`,
//!   `on_timer`, `on_start`, `on_stop`), so actors may freely block on
//!   their own channels or I/O without wedging the scheduler.
//!
//! An actor's scheduling state is a small atomic machine:
//! `IDLE → QUEUED → RUNNING (→ RUNNING_DIRTY on concurrent wake) → IDLE`,
//! with `DEAD` terminal after a panic. The CAS transitions guarantee an
//! actor is in the run queue at most once and on at most one worker.

use std::any::Any;
use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};
use std::marker::PhantomData;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, Ordering};
use std::sync::{Arc, Condvar, Mutex, Weak};
use std::thread::JoinHandle;
use std::time::Duration;

use crate::mailbox::{Closed, Mailbox, MailboxCtl, TrySendError};
use crate::time::{TimeSource, WallClock};

/// A state machine driven by the reactor.
///
/// The reactor guarantees single-threaded access to `&mut self`: callbacks
/// for one actor never overlap, so no internal synchronization is needed.
/// Callbacks should not block on other actors in the same reactor
/// (use `Addr::send_now` plus a reply message instead); blocking on
/// external channels or I/O is fine.
pub trait Actor: Send + 'static {
    /// Message type delivered to [`Actor::on_msg`].
    type Msg: Send + 'static;

    /// Runs once, before the first message or timer.
    fn on_start(&mut self, _ctx: &mut Ctx<'_>) {}

    /// Handles one mailbox message.
    fn on_msg(&mut self, msg: Self::Msg, ctx: &mut Ctx<'_>);

    /// Handles a timer armed with [`Ctx::set_timer`]. Stale timers are the
    /// actor's concern: tag tokens with a generation and ignore old ones.
    fn on_timer(&mut self, _token: u64, _ctx: &mut Ctx<'_>) {}

    /// Runs during graceful shutdown, after the mailbox has been drained.
    fn on_stop(&mut self, _ctx: &mut Ctx<'_>) {}
}

/// Per-run view the reactor hands to actor callbacks.
pub struct Ctx<'a> {
    core: &'a Core,
    slot: &'a Slot,
    id: usize,
}

impl Ctx<'_> {
    /// Current reactor time in microseconds.
    pub fn now_micros(&self) -> u64 {
        self.core.time.now_micros()
    }

    /// Arms a one-shot timer `delay_micros` from now; `token` comes back
    /// in [`Actor::on_timer`]. Timers sharing a deadline fire in
    /// registration order (deterministic on a single-worker reactor).
    pub fn set_timer(&mut self, delay_micros: u64, token: u64) {
        self.core.add_timer(self.id, delay_micros, token);
    }

    /// Messages currently waiting in this actor's mailbox.
    pub fn pending_msgs(&self) -> usize {
        self.slot.mailbox.len()
    }

    /// True once graceful shutdown has begun (mailbox closed to external
    /// senders; remaining messages are being drained).
    pub fn stopping(&self) -> bool {
        self.core.draining.load(Ordering::SeqCst)
    }
}

/// Cheap cloneable handle for sending messages to one actor.
pub struct Addr<M> {
    mailbox: Arc<Mailbox<M>>,
    slot: Weak<Slot>,
    core: Weak<Core>,
    id: usize,
}

impl<M> Clone for Addr<M> {
    fn clone(&self) -> Self {
        Addr {
            mailbox: Arc::clone(&self.mailbox),
            slot: Weak::clone(&self.slot),
            core: Weak::clone(&self.core),
            id: self.id,
        }
    }
}

impl<M> std::fmt::Debug for Addr<M> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Addr").field("id", &self.id).finish()
    }
}

impl<M: Send + 'static> Addr<M> {
    /// Blocking send: waits while the mailbox is full. Fails once the
    /// actor is shut down or dead.
    pub fn send(&self, msg: M) -> Result<(), Closed<M>> {
        self.mailbox.send(msg)?;
        self.wake();
        Ok(())
    }

    /// Non-blocking send; hands the message back on a full or closed
    /// mailbox so the caller can account the drop.
    pub fn try_send(&self, msg: M) -> Result<(), TrySendError<M>> {
        self.mailbox.try_send(msg)?;
        self.wake();
        Ok(())
    }

    /// Control-plane send: bypasses capacity and still lands during the
    /// shutdown drain. For reactor-internal replies (snapshot parts,
    /// completions) that must not deadlock or be lost mid-drain. Fails
    /// only when the actor is dead or fully stopped.
    pub fn send_now(&self, msg: M) -> Result<(), Closed<M>> {
        self.mailbox.send_now(msg)?;
        self.wake();
        Ok(())
    }

    /// Messages currently queued (a load gauge; immediately stale).
    pub fn queue_len(&self) -> usize {
        self.mailbox.len()
    }

    fn wake(&self) {
        if let (Some(core), Some(slot)) = (self.core.upgrade(), self.slot.upgrade()) {
            core.schedule_slot(&slot, self.id);
        }
    }
}

/// Typed claim ticket for extracting an actor's state after shutdown.
pub struct ActorHandle<A> {
    id: usize,
    _marker: PhantomData<fn() -> A>,
}

impl<A> std::fmt::Debug for ActorHandle<A> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ActorHandle").field("id", &self.id).finish()
    }
}

/// Counters for one actor, sampled by [`Reactor::stats`].
#[derive(Debug, Clone)]
pub struct ActorStats {
    /// Name given at spawn.
    pub name: String,
    /// Messages processed.
    pub processed: u64,
    /// Timers delivered.
    pub timers_fired: u64,
    /// Mailbox depth right now.
    pub queued: usize,
    /// High-water mailbox depth.
    pub max_queued: usize,
    /// True if the actor panicked and was isolated.
    pub dead: bool,
}

/// Point-in-time view of the whole reactor.
#[derive(Debug, Clone)]
pub struct ReactorStats {
    /// Fixed worker pool size.
    pub workers: usize,
    /// One entry per spawned actor, in spawn order.
    pub actors: Vec<ActorStats>,
}

/// Construction parameters for [`Reactor::new`].
pub struct ReactorConfig {
    /// Worker threads; 0 picks `available_parallelism` clamped to [2, 4].
    pub workers: usize,
    /// Thread-name prefix.
    pub name: String,
    /// Clock driving `Ctx::now_micros` and timers.
    pub time: Arc<dyn TimeSource>,
    /// Max messages one actor may drain per scheduling turn before the
    /// worker moves on (fairness bound).
    pub msg_budget: usize,
}

impl Default for ReactorConfig {
    fn default() -> Self {
        ReactorConfig {
            workers: 0,
            name: "reactor".to_string(),
            time: Arc::new(WallClock::new()),
            msg_budget: 64,
        }
    }
}

// Actor scheduling states.
const IDLE: u8 = 0;
const QUEUED: u8 = 1;
const RUNNING: u8 = 2;
const RUNNING_DIRTY: u8 = 3;
const DEAD: u8 = 4;

struct Slot {
    name: String,
    cell: Mutex<Option<Box<dyn AnyActor>>>,
    state: AtomicU8,
    started: AtomicBool,
    /// Timer tokens due for delivery, in firing order.
    fired: Mutex<VecDeque<u64>>,
    mailbox: Arc<dyn MailboxCtl>,
    processed: AtomicU64,
    timers_fired: AtomicU64,
}

struct Sched {
    ready: VecDeque<usize>,
    running: usize,
    stopped: bool,
}

/// Heap entry: (deadline µs, registration seq, actor id, token).
type TimerEntry = (u64, u64, usize, u64);

struct Timers {
    heap: BinaryHeap<Reverse<TimerEntry>>,
    seq: u64,
}

struct Core {
    slots: Mutex<Vec<Arc<Slot>>>,
    sched: Mutex<Sched>,
    cv: Condvar,
    timers: Mutex<Timers>,
    /// Bumped on every timer insert / clock advance so a worker deciding
    /// how long to sleep can detect a deadline that moved under it.
    timers_gen: AtomicU64,
    draining: AtomicBool,
    time: Arc<dyn TimeSource>,
    msg_budget: usize,
}

enum Step {
    Run(usize),
    Tick,
    Stop,
}

impl Core {
    fn slot(&self, id: usize) -> Option<Arc<Slot>> {
        self.slots.lock().unwrap().get(id).cloned()
    }

    /// Marks an actor runnable, enqueueing it at most once.
    fn schedule_slot(&self, slot: &Slot, id: usize) {
        loop {
            match slot.state.load(Ordering::SeqCst) {
                IDLE => {
                    if slot
                        .state
                        .compare_exchange(IDLE, QUEUED, Ordering::SeqCst, Ordering::SeqCst)
                        .is_ok()
                    {
                        let mut sched = self.sched.lock().unwrap();
                        sched.ready.push_back(id);
                        self.cv.notify_one();
                        return;
                    }
                }
                RUNNING => {
                    if slot
                        .state
                        .compare_exchange(
                            RUNNING,
                            RUNNING_DIRTY,
                            Ordering::SeqCst,
                            Ordering::SeqCst,
                        )
                        .is_ok()
                    {
                        return;
                    }
                }
                // Already queued/dirty (will see the new message) or dead.
                _ => return,
            }
        }
    }

    fn add_timer(&self, id: usize, delay_micros: u64, token: u64) {
        let deadline = self.time.now_micros().saturating_add(delay_micros);
        {
            let mut timers = self.timers.lock().unwrap();
            let seq = timers.seq;
            timers.seq += 1;
            timers.heap.push(Reverse((deadline, seq, id, token)));
        }
        self.timers_gen.fetch_add(1, Ordering::SeqCst);
        // Wake a sleeping worker so it recomputes its sleep deadline. The
        // sched lock orders this against a worker between its gen check
        // and its wait.
        let _g = self.sched.lock().unwrap();
        self.cv.notify_all();
    }

    /// Delivers every timer whose deadline has passed. No-op during drain
    /// (pending timers are intentionally discarded at shutdown).
    fn fire_due_timers(&self) {
        if self.draining.load(Ordering::SeqCst) {
            return;
        }
        let now = self.time.now_micros();
        let mut due: Vec<(usize, u64)> = Vec::new();
        {
            let mut timers = self.timers.lock().unwrap();
            while let Some(&Reverse((deadline, _, id, token))) = timers.heap.peek() {
                if deadline > now {
                    break;
                }
                timers.heap.pop();
                due.push((id, token));
            }
        }
        for (id, token) in due {
            let Some(slot) = self.slot(id) else { continue };
            if slot.state.load(Ordering::SeqCst) == DEAD {
                continue;
            }
            slot.fired.lock().unwrap().push_back(token);
            self.schedule_slot(&slot, id);
        }
    }

    /// How long a worker may sleep before the next timer is due. `None`
    /// means sleep until notified (no timers, manual clock, or draining).
    fn wait_duration(&self) -> Option<Duration> {
        if !self.time.autonomous() || self.draining.load(Ordering::SeqCst) {
            return None;
        }
        let next = {
            let timers = self.timers.lock().unwrap();
            timers.heap.peek().map(|Reverse(e)| e.0)?
        };
        let now = self.time.now_micros();
        Some(Duration::from_micros(next.saturating_sub(now).max(1)))
    }

    /// True when no actor has pending messages or undelivered timer
    /// tokens. Caller holds `sched` with `running == 0` and an empty run
    /// queue, so nothing can become pending concurrently from inside.
    fn all_quiet(&self) -> bool {
        let slots = self.slots.lock().unwrap();
        slots.iter().all(|s| {
            s.state.load(Ordering::SeqCst) == DEAD
                || (s.mailbox.len() == 0 && s.fired.lock().unwrap().is_empty())
        })
    }

    fn next_step(&self) -> Step {
        let gen = self.timers_gen.load(Ordering::SeqCst);
        let wait = self.wait_duration();
        let mut sched = self.sched.lock().unwrap();
        if let Some(id) = sched.ready.pop_front() {
            sched.running += 1;
            return Step::Run(id);
        }
        if sched.stopped {
            return Step::Stop;
        }
        if self.draining.load(Ordering::SeqCst) && sched.running == 0 && self.all_quiet() {
            sched.stopped = true;
            self.cv.notify_all();
            return Step::Stop;
        }
        if self.timers_gen.load(Ordering::SeqCst) != gen {
            // A timer landed (or the clock advanced) after we computed the
            // sleep deadline; recompute instead of oversleeping.
            return Step::Tick;
        }
        match wait {
            Some(d) => {
                let (guard, _) = self.cv.wait_timeout(sched, d).unwrap();
                drop(guard);
            }
            None => {
                let guard = self.cv.wait(sched).unwrap();
                drop(guard);
            }
        }
        Step::Tick
    }

    fn run_actor(self: &Arc<Core>, id: usize) {
        let slot = match self.slot(id) {
            Some(s) => s,
            None => {
                self.finish_run();
                return;
            }
        };
        if slot
            .state
            .compare_exchange(QUEUED, RUNNING, Ordering::SeqCst, Ordering::SeqCst)
            .is_err()
        {
            self.finish_run();
            return;
        }
        let cell = slot.cell.lock().unwrap().take();
        let Some(mut cell) = cell else {
            slot.state.store(DEAD, Ordering::SeqCst);
            self.finish_run();
            return;
        };
        let budget = self.msg_budget;
        let result = catch_unwind(AssertUnwindSafe(|| {
            let mut ctx = Ctx {
                core: self,
                slot: &slot,
                id,
            };
            if !slot.started.swap(true, Ordering::SeqCst) {
                cell.on_start(&mut ctx);
            }
            cell.run(budget, &mut ctx)
        }));
        match result {
            Ok(more) => {
                *slot.cell.lock().unwrap() = Some(cell);
                let prev = slot.state.swap(IDLE, Ordering::SeqCst);
                if more || prev == RUNNING_DIRTY {
                    self.schedule_slot(&slot, id);
                }
            }
            Err(_) => {
                // Contain the panic: isolate this actor, purge its queue so
                // held reply channels drop, keep everyone else running.
                drop(cell);
                slot.state.store(DEAD, Ordering::SeqCst);
                slot.fired.lock().unwrap().clear();
                slot.mailbox.kill();
            }
        }
        self.finish_run();
    }

    fn finish_run(&self) {
        let mut sched = self.sched.lock().unwrap();
        sched.running -= 1;
        if self.draining.load(Ordering::SeqCst) {
            // Let an idle worker re-run the quiescence check.
            self.cv.notify_all();
        }
    }

    fn begin_drain(&self) {
        self.draining.store(true, Ordering::SeqCst);
        let slots = self.slots.lock().unwrap().clone();
        for s in &slots {
            s.mailbox.close();
        }
        let _g = self.sched.lock().unwrap();
        self.cv.notify_all();
    }

    fn worker(self: Arc<Core>) {
        loop {
            self.fire_due_timers();
            match self.next_step() {
                Step::Run(id) => self.run_actor(id),
                Step::Tick => continue,
                Step::Stop => break,
            }
        }
    }
}

/// Object-safe wrapper so the reactor can hold heterogeneous actors.
trait AnyActor: Send {
    fn on_start(&mut self, ctx: &mut Ctx<'_>);
    /// Delivers pending timers then up to `budget` messages; returns true
    /// if work remains.
    fn run(&mut self, budget: usize, ctx: &mut Ctx<'_>) -> bool;
    fn on_stop(&mut self, ctx: &mut Ctx<'_>);
    fn into_any(self: Box<Self>) -> Box<dyn Any>;
}

struct ActorCell<A: Actor> {
    actor: A,
    mailbox: Arc<Mailbox<A::Msg>>,
}

impl<A: Actor> AnyActor for ActorCell<A> {
    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        self.actor.on_start(ctx);
    }

    fn run(&mut self, budget: usize, ctx: &mut Ctx<'_>) -> bool {
        let mut processed = 0;
        loop {
            // Timers first: they carry deadlines and must not sit behind a
            // deep mailbox.
            loop {
                let token = ctx.slot.fired.lock().unwrap().pop_front();
                match token {
                    Some(token) => {
                        ctx.slot.timers_fired.fetch_add(1, Ordering::Relaxed);
                        self.actor.on_timer(token, ctx);
                    }
                    None => break,
                }
            }
            if processed >= budget {
                break;
            }
            match self.mailbox.pop() {
                Some(msg) => {
                    processed += 1;
                    ctx.slot.processed.fetch_add(1, Ordering::Relaxed);
                    self.actor.on_msg(msg, ctx);
                }
                None => break,
            }
        }
        self.mailbox.len() > 0 || !ctx.slot.fired.lock().unwrap().is_empty()
    }

    fn on_stop(&mut self, ctx: &mut Ctx<'_>) {
        self.actor.on_stop(ctx);
    }

    fn into_any(self: Box<Self>) -> Box<dyn Any> {
        self
    }
}

/// The running reactor. Dropping it performs a graceful shutdown (drain,
/// `on_stop`, join); call [`Reactor::shutdown`] instead to also reclaim
/// actor state.
pub struct Reactor {
    core: Arc<Core>,
    workers: Vec<JoinHandle<()>>,
}

impl std::fmt::Debug for Reactor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Reactor")
            .field("workers", &self.workers.len())
            .finish()
    }
}

impl Reactor {
    /// Starts the worker pool.
    pub fn new(config: ReactorConfig) -> Self {
        let workers = if config.workers > 0 {
            config.workers
        } else {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(2)
                .clamp(2, 4)
        };
        let core = Arc::new(Core {
            slots: Mutex::new(Vec::new()),
            sched: Mutex::new(Sched {
                ready: VecDeque::new(),
                running: 0,
                stopped: false,
            }),
            cv: Condvar::new(),
            timers: Mutex::new(Timers {
                heap: BinaryHeap::new(),
                seq: 0,
            }),
            timers_gen: AtomicU64::new(0),
            draining: AtomicBool::new(false),
            time: Arc::clone(&config.time),
            msg_budget: config.msg_budget.max(1),
        });
        // A manual clock advancing is equivalent to a timer insert: wake
        // the pool so due timers fire.
        let weak = Arc::downgrade(&core);
        config.time.register_waker(Arc::new(move || {
            if let Some(core) = weak.upgrade() {
                core.timers_gen.fetch_add(1, Ordering::SeqCst);
                let _g = core.sched.lock().unwrap();
                core.cv.notify_all();
            }
        }));
        let handles = (0..workers)
            .map(|i| {
                let core = Arc::clone(&core);
                std::thread::Builder::new()
                    .name(format!("{}-{i}", config.name))
                    .spawn(move || core.worker())
                    .expect("spawn reactor worker")
            })
            .collect();
        Reactor {
            core,
            workers: handles,
        }
    }

    /// Number of worker threads in the pool.
    pub fn worker_count(&self) -> usize {
        self.workers.len()
    }

    /// The reactor's clock.
    pub fn time(&self) -> Arc<dyn TimeSource> {
        Arc::clone(&self.core.time)
    }

    /// Registers an actor with a bounded mailbox and schedules its
    /// `on_start`. Panics if called after shutdown began.
    pub fn spawn<A: Actor>(
        &self,
        name: &str,
        mailbox_capacity: usize,
        actor: A,
    ) -> (Addr<A::Msg>, ActorHandle<A>) {
        assert!(
            !self.core.draining.load(Ordering::SeqCst),
            "spawn on a shutting-down reactor"
        );
        let mailbox = Arc::new(Mailbox::new(mailbox_capacity));
        let slot = Arc::new(Slot {
            name: name.to_string(),
            cell: Mutex::new(Some(Box::new(ActorCell {
                actor,
                mailbox: Arc::clone(&mailbox),
            }))),
            state: AtomicU8::new(IDLE),
            started: AtomicBool::new(false),
            fired: Mutex::new(VecDeque::new()),
            mailbox: Arc::clone(&mailbox) as Arc<dyn MailboxCtl>,
            processed: AtomicU64::new(0),
            timers_fired: AtomicU64::new(0),
        });
        let id = {
            let mut slots = self.core.slots.lock().unwrap();
            slots.push(Arc::clone(&slot));
            slots.len() - 1
        };
        // Run on_start promptly (it may arm the actor's first timer).
        self.core.schedule_slot(&slot, id);
        (
            Addr {
                mailbox,
                slot: Arc::downgrade(&slot),
                core: Arc::downgrade(&self.core),
                id,
            },
            ActorHandle {
                id,
                _marker: PhantomData,
            },
        )
    }

    /// Samples per-actor counters and queue depths.
    pub fn stats(&self) -> ReactorStats {
        let slots = self.core.slots.lock().unwrap().clone();
        ReactorStats {
            workers: self.workers.len(),
            actors: slots.iter().map(|s| slot_stats(s)).collect(),
        }
    }

    /// Graceful shutdown: rejects new external sends, drains every queued
    /// message, runs `on_stop` per actor in spawn order, joins the pool,
    /// and returns the stopped reactor for state reclamation.
    ///
    /// Timers not yet due are discarded. Messages sent with `send_now`
    /// during the drain (reactor-internal replies) are still delivered.
    pub fn shutdown(mut self) -> StoppedReactor {
        self.shutdown_impl();
        let slots = self.core.slots.lock().unwrap().clone();
        StoppedReactor { slots }
    }

    fn shutdown_impl(&mut self) {
        if self.workers.is_empty() {
            return;
        }
        self.core.begin_drain();
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
        let slots = self.core.slots.lock().unwrap().clone();
        for (id, slot) in slots.iter().enumerate() {
            let cell = slot.cell.lock().unwrap().take();
            if let Some(mut cell) = cell {
                let result = catch_unwind(AssertUnwindSafe(|| {
                    let mut ctx = Ctx {
                        core: &self.core,
                        slot,
                        id,
                    };
                    cell.on_stop(&mut ctx);
                }));
                if result.is_err() {
                    slot.state.store(DEAD, Ordering::SeqCst);
                }
                *slot.cell.lock().unwrap() = Some(cell);
            }
            slot.mailbox.kill();
        }
    }
}

impl Drop for Reactor {
    fn drop(&mut self) {
        self.shutdown_impl();
    }
}

fn slot_stats(s: &Slot) -> ActorStats {
    ActorStats {
        name: s.name.clone(),
        processed: s.processed.load(Ordering::Relaxed),
        timers_fired: s.timers_fired.load(Ordering::Relaxed),
        queued: s.mailbox.len(),
        max_queued: s.mailbox.max_depth(),
        dead: s.state.load(Ordering::SeqCst) == DEAD,
    }
}

/// A shut-down reactor holding final actor state.
pub struct StoppedReactor {
    slots: Vec<Arc<Slot>>,
}

impl StoppedReactor {
    /// Reclaims the actor behind `handle`. Returns `None` if the actor
    /// panicked (its state was destroyed) or was already taken.
    pub fn take<A: Actor>(&self, handle: ActorHandle<A>) -> Option<A> {
        let slot = self.slots.get(handle.id)?;
        let cell = slot.cell.lock().unwrap().take()?;
        let cell = cell.into_any().downcast::<ActorCell<A>>().ok()?;
        Some(cell.actor)
    }

    /// Final per-actor counters.
    pub fn stats(&self) -> Vec<ActorStats> {
        self.slots.iter().map(|s| slot_stats(s)).collect()
    }
}
