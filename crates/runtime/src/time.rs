//! Pluggable clocks: the reactor, the serve telemetry path, and the sim
//! all read time through one trait so tests can drive timers by hand.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// A monotonic clock in integer microseconds.
///
/// `autonomous` distinguishes clocks that advance on their own (wall time:
/// the reactor sleeps with a timeout to catch due timers) from clocks that
/// only move when told (manual/sim: the reactor parks until the clock's
/// registered wakers fire).
pub trait TimeSource: Send + Sync {
    /// Current time in microseconds from an arbitrary fixed origin.
    fn now_micros(&self) -> u64;

    /// True if time advances without external `advance` calls.
    fn autonomous(&self) -> bool {
        true
    }

    /// Registers a callback invoked whenever the clock is advanced
    /// externally. Autonomous clocks ignore this.
    fn register_waker(&self, _waker: Arc<dyn Fn() + Send + Sync>) {}
}

/// Real time, measured from construction.
#[derive(Debug)]
pub struct WallClock {
    origin: Instant,
}

impl WallClock {
    /// A wall clock whose origin is now.
    pub fn new() -> Self {
        WallClock {
            origin: Instant::now(),
        }
    }
}

impl Default for WallClock {
    fn default() -> Self {
        WallClock::new()
    }
}

impl TimeSource for WallClock {
    fn now_micros(&self) -> u64 {
        self.origin.elapsed().as_micros() as u64
    }
}

/// A clock that only moves when `advance_micros` is called. Cloning shares
/// the underlying time, so a test can hold one handle while the reactor
/// holds another.
#[derive(Clone, Default)]
pub struct ManualClock {
    inner: Arc<ManualInner>,
}

#[derive(Default)]
struct ManualInner {
    micros: AtomicU64,
    wakers: Mutex<Vec<Arc<dyn Fn() + Send + Sync>>>,
}

impl std::fmt::Debug for ManualClock {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ManualClock")
            .field("micros", &self.inner.micros.load(Ordering::Relaxed))
            .finish()
    }
}

impl ManualClock {
    /// A manual clock starting at zero.
    pub fn new() -> Self {
        ManualClock::default()
    }

    /// Moves time forward and notifies every registered waker.
    pub fn advance_micros(&self, delta: u64) {
        self.inner.micros.fetch_add(delta, Ordering::SeqCst);
        self.wake();
    }

    /// Sets the absolute time; never moves backwards.
    pub fn set_micros(&self, micros: u64) {
        self.inner.micros.fetch_max(micros, Ordering::SeqCst);
        self.wake();
    }

    fn wake(&self) {
        let wakers = self.inner.wakers.lock().unwrap();
        for w in wakers.iter() {
            w();
        }
    }
}

impl TimeSource for ManualClock {
    fn now_micros(&self) -> u64 {
        self.inner.micros.load(Ordering::SeqCst)
    }

    fn autonomous(&self) -> bool {
        false
    }

    fn register_waker(&self, waker: Arc<dyn Fn() + Send + Sync>) {
        self.inner.wakers.lock().unwrap().push(waker);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wall_clock_moves_forward() {
        let c = WallClock::new();
        let a = c.now_micros();
        let b = c.now_micros();
        assert!(b >= a);
        assert!(c.autonomous());
    }

    #[test]
    fn manual_clock_is_explicit_and_shared() {
        let c = ManualClock::new();
        let fired = Arc::new(AtomicU64::new(0));
        let fired2 = Arc::clone(&fired);
        c.register_waker(Arc::new(move || {
            fired2.fetch_add(1, Ordering::SeqCst);
        }));
        assert_eq!(c.now_micros(), 0);
        assert!(!c.autonomous());
        let other = c.clone();
        c.advance_micros(250);
        assert_eq!(other.now_micros(), 250);
        other.set_micros(100); // never goes backwards
        assert_eq!(c.now_micros(), 250);
        other.set_micros(300);
        assert_eq!(c.now_micros(), 300);
        assert_eq!(fired.load(Ordering::SeqCst), 3);
    }
}
