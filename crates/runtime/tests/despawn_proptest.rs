//! Property tests for actor despawn: random interleavings of
//! spawn / send / timer-arm / despawn / clock-advance never panic,
//! never leak a slot, and account for every `on_stop` exactly once —
//! plus a long spawn→despawn cycle proving a single slot is reused
//! thousands of times.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Arc};
use std::time::{Duration, Instant};

use geomancy_runtime::{Actor, Addr, Ctx, ManualClock, Reactor, ReactorConfig};
use proptest::prelude::*;

const DEADLINE: Duration = Duration::from_secs(30);

#[derive(Debug)]
enum NodeMsg {
    // Payload models real message data in flight; handlers ignore it.
    Work(#[allow(dead_code)] u64),
    Arm(u64, u64),
    Ping(mpsc::Sender<()>),
}

/// A minimal actor that counts what happened to it via shared atomics,
/// so the test can audit the whole population after shutdown.
struct Node {
    work: Arc<AtomicU64>,
    timers: Arc<AtomicU64>,
    stops: Arc<AtomicU64>,
}

impl Actor for Node {
    type Msg = NodeMsg;

    fn on_msg(&mut self, msg: NodeMsg, ctx: &mut Ctx<'_>) {
        match msg {
            NodeMsg::Work(_) => {
                self.work.fetch_add(1, Ordering::SeqCst);
            }
            NodeMsg::Arm(delay, token) => ctx.set_timer(delay, token),
            NodeMsg::Ping(tx) => {
                let _ = tx.send(());
            }
        }
    }

    fn on_timer(&mut self, _token: u64, _ctx: &mut Ctx<'_>) {
        self.timers.fetch_add(1, Ordering::SeqCst);
    }

    fn on_stop(&mut self, _ctx: &mut Ctx<'_>) {
        self.stops.fetch_add(1, Ordering::SeqCst);
    }
}

fn manual_reactor(workers: usize, clock: &ManualClock) -> Reactor {
    Reactor::new(ReactorConfig {
        workers,
        name: "despawn-prop".to_string(),
        time: Arc::new(clock.clone()),
        ..ReactorConfig::default()
    })
}

fn wait_until(what: &str, mut ok: impl FnMut() -> bool) {
    let deadline = Instant::now() + DEADLINE;
    while !ok() {
        assert!(Instant::now() < deadline, "timed out waiting for {what}");
        std::thread::yield_now();
    }
}

proptest! {
    /// Ops are `(kind, target, param)` triples decoded below. Whatever
    /// the interleaving: retire succeeds exactly once per actor, sends
    /// to retired actors always fail with a typed error, the reactor's
    /// books balance (`live == spawned - despawned`, every retirement
    /// counted), and after shutdown every actor ever spawned has run
    /// `on_stop` exactly once.
    #[test]
    fn random_interleavings_never_leak(
        workers in 1usize..4,
        ops in proptest::collection::vec((0u64..5, 0u64..16, 1u64..400), 1..80),
    ) {
        let clock = ManualClock::new();
        let reactor = manual_reactor(workers, &clock);
        let work = Arc::new(AtomicU64::new(0));
        let timers = Arc::new(AtomicU64::new(0));
        let stops = Arc::new(AtomicU64::new(0));
        // (addr, retired-by-us) for every actor ever spawned.
        let mut actors: Vec<(Addr<NodeMsg>, bool)> = Vec::new();
        let mut spawned = 0u64;
        let mut despawned = 0u64;

        for (kind, target, param) in ops {
            match kind {
                0 => {
                    let node = Node {
                        work: Arc::clone(&work),
                        timers: Arc::clone(&timers),
                        stops: Arc::clone(&stops),
                    };
                    let (addr, _handle) = reactor.spawn("node", 256, node);
                    actors.push((addr, false));
                    spawned += 1;
                }
                1 | 2 if !actors.is_empty() => {
                    let (addr, retired) = &actors[target as usize % actors.len()];
                    let msg = if kind == 1 {
                        NodeMsg::Work(param)
                    } else {
                        NodeMsg::Arm(param, target)
                    };
                    // Typed error iff the target is retired; a retired
                    // mailbox never silently swallows a message.
                    prop_assert_eq!(addr.send(msg).is_err(), *retired);
                }
                3 if !actors.is_empty() => {
                    let idx = target as usize % actors.len();
                    let (addr, retired) = &mut actors[idx];
                    let initiated = addr.retire();
                    prop_assert_eq!(initiated, !*retired, "retire is once-only");
                    if initiated {
                        *retired = true;
                        despawned += 1;
                    }
                }
                4 => clock.advance_micros(param),
                _ => {} // send/despawn with nothing spawned yet
            }
        }

        // Every initiated retirement must complete (slot freed, counted).
        wait_until("retirements to finalize", || {
            reactor.stats().retired_total == despawned
        });
        let stats = reactor.stats();
        prop_assert_eq!(stats.spawned_total, spawned);
        prop_assert_eq!(stats.live as u64, spawned - despawned);
        prop_assert_eq!(stats.actors.len() as u64, spawned - despawned);

        // Drain delivers everything still queued to the survivors, then
        // stops them; nobody stops twice, nobody is skipped.
        reactor.shutdown();
        prop_assert_eq!(stops.load(Ordering::SeqCst), spawned);
    }
}

/// Thousands of spawn→despawn cycles recycle one physical slot: the slab
/// never grows past a single entry, the books count every cycle, and the
/// reactor still drains cleanly afterwards.
#[test]
fn two_thousand_retire_cycles_reuse_one_slot() {
    const CYCLES: u64 = 2_000;
    let clock = ManualClock::new();
    let reactor = manual_reactor(1, &clock);
    let work = Arc::new(AtomicU64::new(0));
    let timers = Arc::new(AtomicU64::new(0));
    let stops = Arc::new(AtomicU64::new(0));

    for i in 0..CYCLES {
        let node = Node {
            work: Arc::clone(&work),
            timers: Arc::clone(&timers),
            stops: Arc::clone(&stops),
        };
        let (addr, _handle) = reactor.spawn("cycle", 8, node);
        addr.send(NodeMsg::Work(i)).expect("live actor takes work");
        assert!(addr.retire(), "cycle {i}: first retire initiates");
        assert!(!addr.retire(), "cycle {i}: second retire is a no-op");
        // The slot must be reclaimed before the next spawn can reuse it.
        wait_until("slot to free", || reactor.stats().live == 0);
        assert_eq!(
            reactor.stats().slot_capacity,
            1,
            "cycle {i}: slab grew instead of reusing the freed slot"
        );
    }

    let stats = reactor.stats();
    assert_eq!(stats.spawned_total, CYCLES);
    assert_eq!(stats.retired_total, CYCLES);
    assert_eq!(stats.live, 0);
    assert_eq!(
        stops.load(Ordering::SeqCst),
        CYCLES,
        "one on_stop per cycle"
    );
    // Work sent before retire was either processed or purged — but the
    // reactor itself stayed healthy throughout: prove it with a fresh
    // actor round-trip, then a clean drain.
    let probe = Node {
        work: Arc::clone(&work),
        timers: Arc::clone(&timers),
        stops: Arc::clone(&stops),
    };
    let (addr, _handle) = reactor.spawn("probe", 8, probe);
    let (tx, rx) = mpsc::channel();
    addr.send(NodeMsg::Ping(tx)).expect("fresh actor is live");
    rx.recv_timeout(DEADLINE).expect("fresh actor replies");
    let stopped = reactor.shutdown();
    assert_eq!(stops.load(Ordering::SeqCst), CYCLES + 1);
    // Only the probe's slot survives into the stopped reactor; the 2,000
    // retired actors are long gone.
    assert_eq!(stopped.stats().len(), 1);
}
