//! Actor lifecycle tests: spawn → despawn under a manual clock, proving
//! timer cancellation, `on_stop` exactly-once, generation-tagged slot
//! reuse, and typed errors on stale `Addr`s. Deterministic: a single
//! worker plus `ManualClock`, no sleeps — `recv_timeout` appears only as
//! a failure deadline, never as a synchronization point.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Arc};
use std::time::{Duration, Instant};

use geomancy_runtime::{Actor, Addr, Ctx, ManualClock, Reactor, ReactorConfig, TrySendError};

const DEADLINE: Duration = Duration::from_secs(10);

fn single_worker(clock: &ManualClock) -> Reactor {
    Reactor::new(ReactorConfig {
        workers: 1,
        name: "lifecycle".to_string(),
        time: Arc::new(clock.clone()),
        ..ReactorConfig::default()
    })
}

#[derive(Debug, PartialEq, Eq)]
enum Ev {
    Started,
    Stopped,
}

#[derive(Debug)]
enum LcMsg {
    /// Arm a timer `delay` µs out with `token`.
    Arm(u64, u64),
    /// Round-trip marker: reply so the sender knows every earlier
    /// message has been processed.
    Ping(mpsc::Sender<()>),
    /// Announce entry on the first channel, then park until the gate
    /// yields (holds the worker).
    Wait(mpsc::Sender<()>, mpsc::Receiver<()>),
    /// Carry a reply channel; if purged unprocessed, the sender drops.
    Reply(mpsc::Sender<u8>),
    /// Ask the actor to retire itself from inside a callback.
    StopSelf,
}

struct Lifecycle {
    events: mpsc::Sender<Ev>,
    timers_fired: Arc<AtomicU64>,
    stops: Arc<AtomicU64>,
}

impl Lifecycle {
    fn new(events: mpsc::Sender<Ev>) -> (Self, Arc<AtomicU64>, Arc<AtomicU64>) {
        let timers_fired = Arc::new(AtomicU64::new(0));
        let stops = Arc::new(AtomicU64::new(0));
        (
            Lifecycle {
                events,
                timers_fired: Arc::clone(&timers_fired),
                stops: Arc::clone(&stops),
            },
            timers_fired,
            stops,
        )
    }
}

impl Actor for Lifecycle {
    type Msg = LcMsg;

    fn on_start(&mut self, _ctx: &mut Ctx<'_>) {
        let _ = self.events.send(Ev::Started);
    }

    fn on_msg(&mut self, msg: LcMsg, ctx: &mut Ctx<'_>) {
        match msg {
            LcMsg::Arm(delay, token) => ctx.set_timer(delay, token),
            LcMsg::Ping(tx) => {
                let _ = tx.send(());
            }
            LcMsg::Wait(entered, gate) => {
                let _ = entered.send(());
                let _ = gate.recv();
            }
            LcMsg::Reply(tx) => {
                let _ = tx.send(7);
            }
            LcMsg::StopSelf => ctx.stop_self(),
        }
    }

    fn on_timer(&mut self, _token: u64, _ctx: &mut Ctx<'_>) {
        self.timers_fired.fetch_add(1, Ordering::SeqCst);
    }

    fn on_stop(&mut self, _ctx: &mut Ctx<'_>) {
        self.stops.fetch_add(1, Ordering::SeqCst);
        let _ = self.events.send(Ev::Stopped);
    }
}

fn ping(addr: &Addr<LcMsg>) {
    let (tx, rx) = mpsc::channel();
    addr.send(LcMsg::Ping(tx)).expect("ping a live actor");
    rx.recv_timeout(DEADLINE).expect("ping reply");
}

/// Despawn cancels a pending timer: the deadline passes on the manual
/// clock and the token is never delivered, while a sibling's identical
/// timer fires — proving the clock really moved past the deadline.
#[test]
fn despawn_cancels_pending_timers() {
    let clock = ManualClock::new();
    let reactor = single_worker(&clock);
    let (ev_tx, ev_rx) = mpsc::channel();
    let (victim_actor, victim_timers, victim_stops) = Lifecycle::new(ev_tx.clone());
    let (victim, victim_handle) = reactor.spawn("victim", 8, victim_actor);
    let (witness_actor, witness_timers, _) = Lifecycle::new(ev_tx);
    let (witness, _wh) = reactor.spawn("witness", 8, witness_actor);
    assert_eq!(ev_rx.recv_timeout(DEADLINE).ok(), Some(Ev::Started));
    assert_eq!(ev_rx.recv_timeout(DEADLINE).ok(), Some(Ev::Started));

    // Identical deadlines on both actors; processed before we proceed.
    victim.send(LcMsg::Arm(1_000, 7)).unwrap();
    witness.send(LcMsg::Arm(1_000, 7)).unwrap();
    ping(&victim);
    ping(&witness);

    assert!(reactor.despawn(victim_handle), "first despawn initiates");
    assert_eq!(ev_rx.recv_timeout(DEADLINE).ok(), Some(Ev::Stopped));
    assert_eq!(victim_stops.load(Ordering::SeqCst), 1);

    // Past both deadlines: the witness fires, the victim cannot.
    clock.advance_micros(2_000);
    let deadline = Instant::now() + DEADLINE;
    while witness_timers.load(Ordering::SeqCst) == 0 {
        assert!(Instant::now() < deadline, "witness timer never fired");
        std::thread::yield_now();
    }
    ping(&witness); // one more full turn, then read the victim's count
    assert_eq!(
        victim_timers.load(Ordering::SeqCst),
        0,
        "cancelled timer fired after despawn"
    );

    let stats = reactor.stats();
    assert_eq!(stats.live, 1);
    assert_eq!(stats.spawned_total, 2);
    assert_eq!(stats.retired_total, 1);
    drop(reactor);
    assert_eq!(victim_stops.load(Ordering::SeqCst), 1, "on_stop ran twice");
}

/// All three retire entry points — `Reactor::despawn`, `Addr::retire`,
/// `Ctx::stop_self` — run `on_stop` exactly once each, and a second
/// retire attempt reports false instead of double-stopping.
#[test]
fn every_retire_path_stops_exactly_once() {
    let clock = ManualClock::new();
    let reactor = single_worker(&clock);
    let (ev_tx, ev_rx) = mpsc::channel();

    let (a_actor, _, a_stops) = Lifecycle::new(ev_tx.clone());
    let (_a_addr, a_handle) = reactor.spawn("via-handle", 8, a_actor);
    let (b_actor, _, b_stops) = Lifecycle::new(ev_tx.clone());
    let (b_addr, _bh) = reactor.spawn("via-addr", 8, b_actor);
    let (c_actor, _, c_stops) = Lifecycle::new(ev_tx);
    let (c_addr, _ch) = reactor.spawn("via-stop-self", 8, c_actor);

    for _ in 0..3 {
        assert_eq!(ev_rx.recv_timeout(DEADLINE).ok(), Some(Ev::Started));
    }

    assert!(reactor.despawn(a_handle));
    assert!(b_addr.retire(), "first addr-retire initiates");
    assert!(!b_addr.retire(), "second addr-retire is a no-op");
    c_addr.send(LcMsg::StopSelf).unwrap();

    for _ in 0..3 {
        assert_eq!(ev_rx.recv_timeout(DEADLINE).ok(), Some(Ev::Stopped));
    }
    assert_eq!(a_stops.load(Ordering::SeqCst), 1);
    assert_eq!(b_stops.load(Ordering::SeqCst), 1);
    assert_eq!(c_stops.load(Ordering::SeqCst), 1);

    // Retired actors reject every send path with a typed error.
    assert!(b_addr.send(LcMsg::Arm(1, 1)).is_err());
    assert!(b_addr.send_now(LcMsg::Arm(1, 1)).is_err());
    assert!(matches!(
        b_addr.try_send(LcMsg::Arm(1, 1)),
        Err(TrySendError::Closed(_))
    ));

    let stats = reactor.stats();
    assert_eq!((stats.live, stats.retired_total), (0, 3));
    let stopped = reactor.shutdown();
    assert_eq!(
        a_stops.load(Ordering::SeqCst)
            + b_stops.load(Ordering::SeqCst)
            + c_stops.load(Ordering::SeqCst),
        3,
        "shutdown re-ran on_stop for a retired actor"
    );
    assert!(stopped.stats().is_empty(), "no live slots remain");
}

/// A despawned actor's slot is reused by the next spawn; the stale
/// `Addr` and stale `ActorHandle` both fail safely against the slot's
/// new occupant (generation tags).
#[test]
fn slot_reuse_defeats_stale_references() {
    let clock = ManualClock::new();
    let reactor = single_worker(&clock);
    let (ev_tx, ev_rx) = mpsc::channel();

    let (old_actor, _, _) = Lifecycle::new(ev_tx.clone());
    let (old_addr, old_handle) = reactor.spawn("first-occupant", 8, old_actor);
    assert_eq!(ev_rx.recv_timeout(DEADLINE).ok(), Some(Ev::Started));
    assert_eq!(reactor.stats().slot_capacity, 1);

    assert!(old_addr.retire());
    assert_eq!(ev_rx.recv_timeout(DEADLINE).ok(), Some(Ev::Stopped));
    let deadline = Instant::now() + DEADLINE;
    while reactor.stats().live != 0 {
        assert!(Instant::now() < deadline, "retired slot never freed");
        std::thread::yield_now();
    }

    let (new_actor, _, new_stops) = Lifecycle::new(ev_tx);
    let (new_addr, new_handle) = reactor.spawn("second-occupant", 8, new_actor);
    assert_eq!(ev_rx.recv_timeout(DEADLINE).ok(), Some(Ev::Started));
    let stats = reactor.stats();
    assert_eq!(stats.slot_capacity, 1, "spawn must reuse the freed slot");
    assert_eq!(stats.live, 1);

    // The stale Addr points at the killed mailbox, never the newcomer.
    assert!(old_addr.send(LcMsg::Arm(1, 1)).is_err());
    assert!(old_addr.send_now(LcMsg::Arm(1, 1)).is_err());
    assert!(
        !old_addr.retire(),
        "stale retire must not kill the newcomer"
    );
    ping(&new_addr); // newcomer unharmed and still serving

    let stopped = reactor.shutdown();
    // The stale handle's generation no longer matches the slot.
    assert!(stopped.take(old_handle).is_none());
    assert!(stopped.take(new_handle).is_some());
    assert_eq!(new_stops.load(Ordering::SeqCst), 1);
}

/// Retiring a busy actor purges its queued messages: a reply channel
/// parked behind a slow handler is dropped, so the waiting caller gets
/// a disconnect error instead of hanging forever.
#[test]
fn retire_drops_queued_reply_senders() {
    let clock = ManualClock::new();
    let reactor = single_worker(&clock);
    let (ev_tx, ev_rx) = mpsc::channel();
    let (actor, _, stops) = Lifecycle::new(ev_tx);
    let (addr, _h) = reactor.spawn("busy", 8, actor);
    assert_eq!(ev_rx.recv_timeout(DEADLINE).ok(), Some(Ev::Started));

    let (entered_tx, entered_rx) = mpsc::channel();
    let (gate_tx, gate_rx) = mpsc::channel();
    addr.send(LcMsg::Wait(entered_tx, gate_rx)).unwrap();
    entered_rx
        .recv_timeout(DEADLINE)
        .expect("worker parked inside Wait");
    let (reply_tx, reply_rx) = mpsc::channel();
    addr.send(LcMsg::Reply(reply_tx)).unwrap();

    // Retire while the worker is parked inside Wait: the queued Reply is
    // purged immediately (kill is synchronous), before the gate opens.
    assert!(addr.retire());
    assert!(
        reply_rx.recv_timeout(DEADLINE).is_err(),
        "purged reply sender must drop, unblocking the caller"
    );
    assert!(addr.send(LcMsg::StopSelf).is_err(), "retired rejects sends");

    gate_tx.send(()).unwrap();
    assert_eq!(ev_rx.recv_timeout(DEADLINE).ok(), Some(Ev::Stopped));
    assert_eq!(stops.load(Ordering::SeqCst), 1);
    reactor.shutdown();
    assert_eq!(stops.load(Ordering::SeqCst), 1, "on_stop ran twice");
}

/// Despawn landing before the actor's first turn: `on_start` never runs
/// (the worker is held elsewhere), yet `on_stop` still runs exactly once
/// and the slot is reclaimed.
#[test]
fn despawn_before_first_turn_skips_on_start() {
    let clock = ManualClock::new();
    let reactor = single_worker(&clock);
    let (hold_tx, hold_rx) = mpsc::channel();
    let (holder_actor, _, _) = Lifecycle::new(hold_tx);
    let (holder, _hh) = reactor.spawn("holder", 8, holder_actor);
    assert_eq!(hold_rx.recv_timeout(DEADLINE).ok(), Some(Ev::Started));
    let (entered_tx, entered_rx) = mpsc::channel();
    let (gate_tx, gate_rx) = mpsc::channel();
    holder.send(LcMsg::Wait(entered_tx, gate_rx)).unwrap();
    // The worker is provably parked inside the handler from here on.
    entered_rx
        .recv_timeout(DEADLINE)
        .expect("worker parked inside Wait");

    // The newcomer's on_start is queued behind the parked worker; the
    // despawn must win.
    let (ev_tx, ev_rx) = mpsc::channel();
    let (new_actor, _, stops) = Lifecycle::new(ev_tx);
    let (_addr, handle) = reactor.spawn("never-started", 8, new_actor);
    assert!(reactor.despawn(handle));

    gate_tx.send(()).unwrap();
    assert_eq!(
        ev_rx.recv_timeout(DEADLINE).ok(),
        Some(Ev::Stopped),
        "on_stop must run even when on_start never did"
    );
    assert_eq!(stops.load(Ordering::SeqCst), 1);
    let deadline = Instant::now() + DEADLINE;
    while reactor.stats().live != 1 {
        assert!(Instant::now() < deadline, "despawned slot never freed");
        std::thread::yield_now();
    }
    reactor.shutdown();
    assert_eq!(stops.load(Ordering::SeqCst), 1);
}
