//! Reactor behaviour tests: deterministic timers under a manual clock,
//! drain-on-shutdown, panic containment, backpressure, and stats.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc};
use std::time::Duration;

use geomancy_runtime::{Actor, Ctx, ManualClock, Reactor, ReactorConfig, TrySendError, WallClock};
use proptest::prelude::*;

fn single_worker(clock: &ManualClock) -> Reactor {
    Reactor::new(ReactorConfig {
        workers: 1,
        name: "test".to_string(),
        time: Arc::new(clock.clone()),
        ..ReactorConfig::default()
    })
}

#[derive(Debug, PartialEq, Eq)]
enum Event {
    Armed,
    Fired,
}

/// Arms one timer per element of the message (token = index) and records
/// the order in which they come back.
struct Recorder {
    fired: Vec<u64>,
    notify: mpsc::Sender<Event>,
}

impl Actor for Recorder {
    type Msg = Vec<u64>;

    fn on_msg(&mut self, delays: Vec<u64>, ctx: &mut Ctx<'_>) {
        for (i, d) in delays.iter().enumerate() {
            ctx.set_timer(*d, i as u64);
        }
        let _ = self.notify.send(Event::Armed);
    }

    fn on_timer(&mut self, token: u64, _ctx: &mut Ctx<'_>) {
        self.fired.push(token);
        let _ = self.notify.send(Event::Fired);
    }
}

proptest! {
    /// On a single-worker reactor with a manual clock, timers fire in
    /// (deadline, registration order) — regardless of how the clock is
    /// advanced towards the final instant.
    #[test]
    fn timer_order_is_deterministic(
        delays in proptest::collection::vec(0u64..400, 0..12),
        increments in proptest::collection::vec(1u64..150, 1..8),
    ) {
        let clock = ManualClock::new();
        let reactor = single_worker(&clock);
        let (tx, rx) = mpsc::channel();
        let (addr, handle) = reactor.spawn(
            "recorder",
            8,
            Recorder { fired: Vec::new(), notify: tx },
        );
        addr.send(delays.clone()).unwrap();
        prop_assert_eq!(
            rx.recv_timeout(Duration::from_secs(10)).ok(),
            Some(Event::Armed)
        );
        // Walk the clock past every deadline in arbitrary steps.
        let mut advanced = 0u64;
        let mut step = increments.iter().cycle();
        while advanced < 400 {
            let d = *step.next().unwrap();
            clock.advance_micros(d);
            advanced += d;
        }
        for _ in 0..delays.len() {
            prop_assert_eq!(
                rx.recv_timeout(Duration::from_secs(10)).ok(),
                Some(Event::Fired)
            );
        }
        let stopped = reactor.shutdown();
        let recorder = stopped.take(handle).expect("recorder state");
        let mut expected: Vec<u64> = (0..delays.len() as u64).collect();
        expected.sort_by_key(|&i| (delays[i as usize], i));
        prop_assert_eq!(recorder.fired, expected);
    }
}

struct Counting {
    count: usize,
    stopped: Arc<AtomicBool>,
}

impl Actor for Counting {
    type Msg = u64;

    fn on_msg(&mut self, _msg: u64, _ctx: &mut Ctx<'_>) {
        self.count += 1;
    }

    fn on_stop(&mut self, _ctx: &mut Ctx<'_>) {
        self.stopped.store(true, Ordering::SeqCst);
    }
}

/// Every message accepted before shutdown is processed before `on_stop`,
/// even with a mailbox far smaller than the send volume.
#[test]
fn shutdown_drains_mailboxes() {
    let reactor = Reactor::new(ReactorConfig {
        workers: 2,
        ..ReactorConfig::default()
    });
    let stopped_flag = Arc::new(AtomicBool::new(false));
    let (addr, handle) = reactor.spawn(
        "counting",
        16,
        Counting {
            count: 0,
            stopped: Arc::clone(&stopped_flag),
        },
    );
    let senders: Vec<_> = (0..4)
        .map(|_| {
            let addr = addr.clone();
            std::thread::spawn(move || {
                for i in 0..250u64 {
                    addr.send(i).unwrap();
                }
            })
        })
        .collect();
    for s in senders {
        s.join().unwrap();
    }
    let stopped = reactor.shutdown();
    let actor = stopped.take(handle).expect("counting state");
    assert_eq!(actor.count, 1000);
    assert!(stopped_flag.load(Ordering::SeqCst), "on_stop must run");
    // Post-shutdown sends are rejected, not silently dropped.
    assert!(addr.send(1).is_err());
    assert!(addr.send_now(1).is_err());
}

#[derive(Debug)]
enum GatedMsg {
    /// Block until the gate channel yields (simulates a slow handler).
    Wait(mpsc::Receiver<()>),
    Boom,
    Reply(mpsc::Sender<u8>),
    Work,
}

struct Gated {
    done: usize,
}

impl Actor for Gated {
    type Msg = GatedMsg;

    fn on_msg(&mut self, msg: GatedMsg, _ctx: &mut Ctx<'_>) {
        match msg {
            GatedMsg::Wait(gate) => {
                let _ = gate.recv();
            }
            GatedMsg::Boom => panic!("actor blew up"),
            GatedMsg::Reply(tx) => {
                let _ = tx.send(7);
            }
            GatedMsg::Work => self.done += 1,
        }
    }
}

/// A panicking actor is isolated: its queued messages are purged (reply
/// channels drop, so clients see disconnection instead of hanging), later
/// sends fail, and sibling actors keep running.
#[test]
fn panic_is_contained_and_purges_queue() {
    let reactor = Reactor::new(ReactorConfig {
        workers: 2,
        ..ReactorConfig::default()
    });
    let (victim, _vh) = reactor.spawn("victim", 16, Gated { done: 0 });
    let (healthy, hh) = reactor.spawn("healthy", 16, Gated { done: 0 });

    // Hold the victim busy so Boom and Reply queue up behind Wait in FIFO
    // order, then release: Boom panics with Reply still queued.
    let (gate_tx, gate_rx) = mpsc::channel();
    victim.send(GatedMsg::Wait(gate_rx)).unwrap();
    victim.send(GatedMsg::Boom).unwrap();
    let (reply_tx, reply_rx) = mpsc::channel();
    victim.send(GatedMsg::Reply(reply_tx)).unwrap();
    gate_tx.send(()).unwrap();

    // The purged Reply's sender is dropped, so recv errors out.
    assert!(reply_rx.recv_timeout(Duration::from_secs(10)).is_err());
    // The dead actor rejects everything from now on.
    assert!(victim.send(GatedMsg::Work).is_err());
    assert!(victim.send_now(GatedMsg::Work).is_err());

    // Siblings are unaffected.
    healthy.send(GatedMsg::Work).unwrap();
    let stats = reactor.stats();
    assert!(stats.actors[0].dead);
    assert!(!stats.actors[1].dead);

    let stopped = reactor.shutdown();
    assert_eq!(stopped.take(hh).expect("healthy state").done, 1);
}

/// try_send reports Full on a saturated mailbox instead of blocking, and
/// the queue drains once the actor resumes.
#[test]
fn try_send_reports_full_under_backpressure() {
    let reactor = Reactor::new(ReactorConfig {
        workers: 1,
        ..ReactorConfig::default()
    });
    let (addr, handle) = reactor.spawn("gated", 2, Gated { done: 0 });
    let (gate_tx, gate_rx) = mpsc::channel();
    addr.send(GatedMsg::Wait(gate_rx)).unwrap();
    // The actor is (or will be) stuck in Wait; fill the two mailbox slots.
    // Wait may still be queued when the first try_send lands, so allow one
    // slot to be taken by it and probe until Full is observed.
    let mut accepted = 0;
    let mut saw_full = false;
    for _ in 0..100 {
        match addr.try_send(GatedMsg::Work) {
            Ok(()) => accepted += 1,
            Err(TrySendError::Full(GatedMsg::Work)) => {
                saw_full = true;
                break;
            }
            Err(e) => panic!("unexpected send error: {e:?}"),
        }
        std::thread::sleep(Duration::from_millis(1));
    }
    assert!(saw_full, "bounded mailbox never reported Full");
    assert!(accepted >= 2, "two slots should have been accepted");
    gate_tx.send(()).unwrap();
    let stopped = reactor.shutdown();
    assert_eq!(stopped.take(handle).expect("state").done, accepted);
}

struct WallTimer {
    notify: mpsc::Sender<u64>,
}

impl Actor for WallTimer {
    type Msg = ();

    fn on_start(&mut self, ctx: &mut Ctx<'_>) {
        ctx.set_timer(2_000, 42);
    }

    fn on_msg(&mut self, _msg: (), _ctx: &mut Ctx<'_>) {}

    fn on_timer(&mut self, token: u64, ctx: &mut Ctx<'_>) {
        let _ = self.notify.send(token);
        let _ = ctx.now_micros();
    }
}

/// With the default wall clock the pool wakes itself for due timers.
#[test]
fn wall_clock_timers_fire_unattended() {
    let reactor = Reactor::new(ReactorConfig {
        workers: 2,
        time: Arc::new(WallClock::new()),
        ..ReactorConfig::default()
    });
    let (tx, rx) = mpsc::channel();
    let (_addr, _h) = reactor.spawn("timer", 4, WallTimer { notify: tx });
    assert_eq!(rx.recv_timeout(Duration::from_secs(10)).ok(), Some(42));
    let stats = reactor.stats();
    assert_eq!(stats.actors[0].timers_fired, 1);
    assert_eq!(stats.workers, 2);
}

/// Stats reflect processed counts and mailbox high-water marks.
#[test]
fn stats_track_processing_and_depth() {
    let clock = ManualClock::new();
    let reactor = single_worker(&clock);
    let (addr, _h) = reactor.spawn(
        "counting",
        64,
        Counting {
            count: 0,
            stopped: Arc::new(AtomicBool::new(false)),
        },
    );
    for i in 0..50 {
        addr.send(i).unwrap();
    }
    // Drain is observable via shutdown; stats afterwards are final.
    let stopped = reactor.shutdown();
    let stats = stopped.stats();
    assert_eq!(stats[0].processed, 50);
    assert!(stats[0].max_queued >= 1);
    assert_eq!(stats[0].queued, 0, "drain leaves nothing queued");
    assert!(!stats[0].dead);
}
