//! The batched query engine: a reactor actor owning the live model,
//! coalescing concurrent placement requests into fused forward passes.
//!
//! ## Coalescing
//!
//! Clients submit either one request ([`crate::PlacementService::query`])
//! or a whole slice ([`crate::PlacementService::query_many`]); each
//! submission is one mailbox message. The first submission opens a batch
//! and arms a *window timer*; the batch closes — one fused pass answering
//! every held submission — when it reaches `max_batch` requests, when the
//! window expires, or (with a zero window) the moment the mailbox
//! momentarily empties. Timers are generation-tagged: closing a batch
//! bumps the generation, so a stale timer from an already-served batch is
//! ignored instead of slicing the next batch short. Within a batch,
//! requests with the same `(file, read, write)` shape share a single
//! feature row — BELLE II reads each file 10–20 times in succession, so
//! concurrent request streams are full of exact duplicates — and the
//! surviving unique rows go through the network in one fused
//! [`geomancy_core::drl::DrlEngine::rank_locations_batch_into`] pass.
//!
//! ## Hot-swap
//!
//! The engine checks the [`ModelSlot`] at each batch boundary and adopts
//! any newly published model there. Because the swap happens only at a
//! batch boundary and the engine actor is the *only* reader of the live
//! model (the reactor runs an actor on one worker at a time), no decision
//! can observe a half-updated network ("torn model") — the epoch stamped
//! on each decision is exactly the model that produced it.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crossbeam::channel::{bounded, Sender};
use geomancy_core::drl::{DrlEngine, PlacementQuery};
use geomancy_runtime::{Actor, Addr, Ctx, Reactor, TimeSource};
use geomancy_sim::record::{DeviceId, FileId};
use geomancy_sim::SharedSimClock;
use serde::Serialize;

use crate::metrics::ServeMetrics;
use crate::trainer::TrainedMeta;

/// A placement question: where should the next access to `fid` of this
/// shape go? The service stamps the query time itself (its ingest
/// high-water mark), so identical shapes coalesce across clients.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PlacementRequest {
    /// File being placed.
    pub fid: FileId,
    /// Bytes the next access is expected to read.
    pub read_bytes: u64,
    /// Bytes the next access is expected to write.
    pub write_bytes: u64,
}

/// One served placement decision.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct Decision {
    /// File the decision is for.
    pub fid: FileId,
    /// Best candidate device.
    pub best: DeviceId,
    /// Predicted throughput (bytes/second, adjusted) at `best`.
    pub predicted_tp: f64,
    /// Epoch of the model that served this decision.
    pub model_epoch: u64,
    /// Requests coalesced into the fused pass that answered this one.
    pub batch_requests: u32,
    /// Unique feature-row groups in that pass (after dedup).
    pub unique_rows: u32,
}

/// Why a query could not be answered.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueryError {
    /// No model has been published yet (ingest more and retrain).
    NotReady,
    /// The admission controller shed this request: the service is over
    /// its queue-depth or latency watermark. Back off and retry.
    Overloaded,
    /// The service has shut down.
    ServiceDown,
}

impl std::fmt::Display for QueryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            QueryError::NotReady => f.write_str("no model published yet"),
            QueryError::Overloaded => f.write_str("service overloaded, request shed"),
            QueryError::ServiceDown => f.write_str("placement service has shut down"),
        }
    }
}

impl std::error::Error for QueryError {}

/// The atomic epoch-pointer used to publish retrained models.
///
/// The trainer moves a whole [`DrlEngine`] into `incoming` and bumps
/// `epoch`; the query engine takes it at the next batch boundary. At most
/// one model is in flight — publishing twice before a pickup replaces the
/// unconsumed one (the newer model wins, which is the right staleness
/// policy for serving).
#[derive(Debug, Default)]
pub struct ModelSlot {
    epoch: AtomicU64,
    incoming: Mutex<Option<(u64, DrlEngine)>>,
    /// Provenance of the newest published model. Kept beside the engine
    /// (not inside `incoming`) because the engine moves out to the query
    /// actor on pickup while the metadata must stay inspectable — it
    /// carries the per-shard watermarks the published weights trained
    /// through.
    meta: Mutex<Option<TrainedMeta>>,
}

impl ModelSlot {
    /// Creates an empty slot (epoch 0 = "nothing published").
    pub fn new() -> Self {
        ModelSlot::default()
    }

    /// Epoch of the most recently *published* model (not necessarily
    /// picked up yet). 0 means none.
    pub fn published_epoch(&self) -> u64 {
        self.epoch.load(Ordering::Acquire)
    }

    /// Publishes `engine` as the next model; returns its epoch. The epoch
    /// is minted while holding `incoming`'s lock, so concurrent publishers
    /// serialize and every published model gets a distinct epoch (the
    /// service has a single trainer, but the API does not rely on that).
    pub fn publish(&self, engine: DrlEngine) -> u64 {
        let mut incoming = self.incoming.lock().expect("model slot poisoned");
        let epoch = self.epoch.load(Ordering::Relaxed) + 1;
        *incoming = Some((epoch, engine));
        self.epoch.store(epoch, Ordering::Release);
        epoch
    }

    /// [`ModelSlot::publish`] with training provenance attached — the
    /// trainer's path, recording the watermarks/policy behind the model.
    pub fn publish_with_meta(&self, engine: DrlEngine, meta: TrainedMeta) -> u64 {
        *self.meta.lock().expect("model slot poisoned") = Some(meta);
        self.publish(engine)
    }

    /// Provenance of the most recently published model, if the publisher
    /// attached any.
    pub fn trained_meta(&self) -> Option<TrainedMeta> {
        self.meta.lock().expect("model slot poisoned").clone()
    }

    /// Takes the pending model, if any (query engine only).
    fn take(&self) -> Option<(u64, DrlEngine)> {
        // Cheap fast path: don't touch the mutex unless an unconsumed
        // publish could exist.
        if self.epoch.load(Ordering::Acquire) == 0 {
            return None;
        }
        self.incoming.lock().expect("model slot poisoned").take()
    }
}

/// How a submission wants its decisions delivered.
///
/// Blocking callers park on a channel; the transport layer hands in a
/// callback instead, so the engine actor can answer a wire request
/// without anybody blocking on anybody (the callback runs inline in the
/// engine actor and must therefore never block — `geomancy-net` resolves
/// it to a `send_now` into a writer actor's mailbox).
pub(crate) enum Reply {
    /// Complete a parked [`BatchEngine::query_many`] call.
    Channel(Sender<Result<Vec<Decision>, QueryError>>),
    /// Invoke a completion (the async / transport path).
    Callback(Box<dyn FnOnce(Result<Vec<Decision>, QueryError>) + Send>),
}

impl Reply {
    fn send(self, result: Result<Vec<Decision>, QueryError>) {
        match self {
            Reply::Channel(tx) => {
                let _ = tx.send(result);
            }
            Reply::Callback(f) => f(result),
        }
    }
}

/// One submission: requests plus the reply path to answer them on.
pub(crate) struct Submission {
    requests: Vec<PlacementRequest>,
    /// Reactor-time enqueue stamp (microseconds) for latency accounting.
    enqueued_micros: u64,
    reply: Reply,
}

/// Tuning knobs for the engine (split out so signatures stay readable).
pub(crate) struct BatchParams {
    /// Maximum requests fused into one pass.
    pub max_batch: usize,
    /// How long to hold an open batch waiting for stragglers, in
    /// microseconds of reactor time.
    pub window_micros: u64,
    /// Candidate devices ranked for every request.
    pub candidates: Vec<DeviceId>,
}

/// Handle to the query engine actor.
pub struct BatchEngine {
    addr: Addr<Submission>,
    time: Arc<dyn TimeSource>,
}

impl std::fmt::Debug for BatchEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BatchEngine")
            .field("queued", &self.addr.queue_len())
            .finish()
    }
}

impl BatchEngine {
    /// Spawns the engine actor on `reactor`. `telemetry` is the service's
    /// ingest high-water clock, read once per batch to stamp query times.
    pub(crate) fn spawn_on(
        reactor: &Reactor,
        params: BatchParams,
        slot: Arc<ModelSlot>,
        telemetry: SharedSimClock,
        metrics: Arc<ServeMetrics>,
        queue_capacity: usize,
    ) -> Self {
        assert!(params.max_batch > 0, "max_batch must be positive");
        assert!(!params.candidates.is_empty(), "need candidate devices");
        let (addr, _handle) = reactor.spawn(
            "query-engine",
            queue_capacity,
            BatchActor {
                engine: None,
                epoch: 0,
                gen: 0,
                pending: Vec::new(),
                params,
                slot,
                telemetry,
                metrics,
                unique: Vec::new(),
                row_of: HashMap::new(),
                ranked: Vec::new(),
            },
        );
        BatchEngine {
            addr,
            time: reactor.time(),
        }
    }

    /// Submits `requests` as one message; blocks for the decisions.
    ///
    /// # Errors
    ///
    /// [`QueryError::NotReady`] before the first model publish,
    /// [`QueryError::ServiceDown`] after shutdown.
    pub fn query_many(&self, requests: &[PlacementRequest]) -> Result<Vec<Decision>, QueryError> {
        if requests.is_empty() {
            return Ok(Vec::new());
        }
        let (reply, rx) = bounded(1);
        self.addr
            .send(Submission {
                requests: requests.to_vec(),
                enqueued_micros: self.time.now_micros(),
                reply: Reply::Channel(reply),
            })
            .map_err(|_| QueryError::ServiceDown)?;
        rx.recv().map_err(|_| QueryError::ServiceDown)?
    }

    /// Submits `requests` with a completion instead of blocking: `done`
    /// runs exactly once, inline in the engine actor when the batch
    /// closes (so it must not block), or on this thread with
    /// [`QueryError::ServiceDown`] if the engine is already gone.
    ///
    /// The submitting send itself still blocks while the engine mailbox
    /// is full — that is the transport's backpressure point.
    pub fn query_many_async(
        &self,
        requests: Vec<PlacementRequest>,
        done: Box<dyn FnOnce(Result<Vec<Decision>, QueryError>) + Send>,
    ) {
        if requests.is_empty() {
            done(Ok(Vec::new()));
            return;
        }
        if let Err(closed) = self.addr.send(Submission {
            requests,
            enqueued_micros: self.time.now_micros(),
            reply: Reply::Callback(done),
        }) {
            closed.0.reply.send(Err(QueryError::ServiceDown));
        }
    }

    /// Submissions currently queued in the engine's mailbox (gauge).
    pub fn queue_len(&self) -> usize {
        self.addr.queue_len()
    }
}

/// The engine's actor state machine.
struct BatchActor {
    engine: Option<DrlEngine>,
    epoch: u64,
    /// Batch generation: bumped whenever a batch closes, so an outstanding
    /// window timer armed for an earlier batch is recognized as stale.
    gen: u64,
    pending: Vec<Submission>,
    params: BatchParams,
    slot: Arc<ModelSlot>,
    telemetry: SharedSimClock,
    metrics: Arc<ServeMetrics>,
    // Scratch reused across batches (allocation-free steady state).
    unique: Vec<PlacementQuery>,
    row_of: HashMap<PlacementRequest, usize>,
    ranked: Vec<(DeviceId, f64)>,
}

impl Actor for BatchActor {
    type Msg = Submission;

    fn on_msg(&mut self, sub: Submission, ctx: &mut Ctx<'_>) {
        let opening = self.pending.is_empty();
        self.pending.push(sub);
        if opening && self.params.window_micros > 0 {
            ctx.set_timer(self.params.window_micros, self.gen);
        }
        let held: usize = self.pending.iter().map(|s| s.requests.len()).sum();
        if held >= self.params.max_batch {
            self.serve(ctx);
        } else if self.params.window_micros == 0 && ctx.pending_msgs() == 0 {
            // Zero window: close the batch the moment the mailbox
            // momentarily empties (pure opportunistic coalescing).
            self.serve(ctx);
        }
    }

    fn on_timer(&mut self, token: u64, ctx: &mut Ctx<'_>) {
        // Only the timer armed for the *current* batch closes it.
        if token == self.gen && !self.pending.is_empty() {
            self.serve(ctx);
        }
    }

    fn on_stop(&mut self, ctx: &mut Ctx<'_>) {
        // Drain already delivered every accepted submission; a batch still
        // waiting on its window timer is served now rather than dropped.
        if !self.pending.is_empty() {
            self.serve(ctx);
        }
    }
}

impl BatchActor {
    /// Answers every pending submission with one fused pass.
    fn serve(&mut self, ctx: &mut Ctx<'_>) {
        self.gen = self.gen.wrapping_add(1);
        // Batch boundary: adopt a newly published model, if any.
        if let Some((e, model)) = self.slot.take() {
            self.engine = Some(model);
            self.epoch = e;
            self.metrics.model_swaps.fetch_add(1, Ordering::Relaxed);
        }
        let batch_requests: usize = self.pending.iter().map(|s| s.requests.len()).sum();
        let Some(model) = self.engine.as_mut() else {
            for sub in self.pending.drain(..) {
                sub.reply.send(Err(QueryError::NotReady));
            }
            return;
        };
        // Dedup identical request shapes into shared feature rows, stamped
        // with one query time for the whole batch.
        let now_micros = self.telemetry.now_micros();
        let (now_secs, now_ms) = (
            now_micros / 1_000_000,
            ((now_micros / 1_000) % 1_000) as u16,
        );
        self.unique.clear();
        self.row_of.clear();
        for sub in self.pending.iter() {
            for req in &sub.requests {
                self.row_of.entry(*req).or_insert_with(|| {
                    self.unique.push(PlacementQuery {
                        fid: req.fid,
                        read_bytes: req.read_bytes,
                        write_bytes: req.write_bytes,
                        now_secs,
                        now_ms,
                    });
                    self.unique.len() - 1
                });
            }
        }
        model.rank_locations_batch_into(&self.unique, &self.params.candidates, &mut self.ranked);
        let per = self.params.candidates.len();
        let unique_rows = self.unique.len();
        // All of the batch's bookkeeping lands in one accounting section,
        // before any reply goes out: a woken client must see the full,
        // coherent counters for its own batch.
        {
            let _guard = self.metrics.accounting();
            self.metrics
                .fused_rows
                .fetch_add((unique_rows * per) as u64, Ordering::Relaxed);
            if batch_requests > unique_rows {
                self.metrics
                    .coalesced_decisions
                    .fetch_add((batch_requests - unique_rows) as u64, Ordering::Relaxed);
            }
            self.metrics
                .decisions
                .fetch_add(batch_requests as u64, Ordering::Relaxed);
            if batch_requests > 1 {
                self.metrics
                    .batched_decisions
                    .fetch_add(batch_requests as u64, Ordering::Relaxed);
            } else {
                self.metrics
                    .solo_decisions
                    .fetch_add(batch_requests as u64, Ordering::Relaxed);
            }
        }
        let served_at = ctx.now_micros();
        for sub in self.pending.drain(..) {
            let decisions: Vec<Decision> = sub
                .requests
                .iter()
                .map(|req| {
                    let row = self.row_of[req];
                    let (best, tp) = self.ranked[row * per..(row + 1) * per]
                        .iter()
                        .copied()
                        .max_by(|a, b| a.1.total_cmp(&b.1))
                        .expect("candidates are non-empty");
                    Decision {
                        fid: req.fid,
                        best,
                        predicted_tp: tp,
                        model_epoch: self.epoch,
                        batch_requests: batch_requests as u32,
                        unique_rows: unique_rows as u32,
                    }
                })
                .collect();
            let waited = served_at.saturating_sub(sub.enqueued_micros);
            self.metrics.observe_latency_us(waited);
            self.metrics.update_latency_ewma(waited);
            sub.reply.send(Ok(decisions));
        }
    }
}
