//! The batched query engine: one thread owning the live model, coalescing
//! concurrent placement requests into fused forward passes.
//!
//! ## Coalescing
//!
//! Clients submit either one request ([`crate::PlacementService::query`])
//! or a whole slice ([`crate::PlacementService::query_many`]); each
//! submission is one channel message. The engine drains queued messages
//! until it holds `max_batch` requests or the queue momentarily empties,
//! then waits at most `batch_window` for stragglers before closing the
//! batch. Within a batch, requests with the same `(file, read, write)`
//! shape share a single feature row — BELLE II reads each file 10–20 times
//! in succession, so concurrent request streams are full of exact
//! duplicates — and the surviving unique rows go through the network in
//! one fused [`geomancy_core::drl::DrlEngine::rank_locations_batch_into`]
//! pass.
//!
//! ## Hot-swap
//!
//! The engine checks the [`ModelSlot`] between batches and adopts any
//! newly published model there. Because the swap happens only at a batch
//! boundary and the engine thread is the *only* reader of the live model,
//! no decision can observe a half-updated network ("torn model") — the
//! epoch stamped on each decision is exactly the model that produced it.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crossbeam::channel::{bounded, Receiver, RecvTimeoutError, Sender};
use geomancy_core::drl::{DrlEngine, PlacementQuery};
use geomancy_sim::record::{DeviceId, FileId};
use serde::Serialize;
use std::collections::HashMap;
use std::sync::Arc;

use crate::metrics::ServeMetrics;

/// A placement question: where should the next access to `fid` of this
/// shape go? The service stamps the query time itself (its ingest
/// high-water mark), so identical shapes coalesce across clients.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PlacementRequest {
    /// File being placed.
    pub fid: FileId,
    /// Bytes the next access is expected to read.
    pub read_bytes: u64,
    /// Bytes the next access is expected to write.
    pub write_bytes: u64,
}

/// One served placement decision.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct Decision {
    /// File the decision is for.
    pub fid: FileId,
    /// Best candidate device.
    pub best: DeviceId,
    /// Predicted throughput (bytes/second, adjusted) at `best`.
    pub predicted_tp: f64,
    /// Epoch of the model that served this decision.
    pub model_epoch: u64,
    /// Requests coalesced into the fused pass that answered this one.
    pub batch_requests: u32,
    /// Unique feature-row groups in that pass (after dedup).
    pub unique_rows: u32,
}

/// Why a query could not be answered.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueryError {
    /// No model has been published yet (ingest more and retrain).
    NotReady,
    /// The service has shut down.
    ServiceDown,
}

impl std::fmt::Display for QueryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            QueryError::NotReady => f.write_str("no model published yet"),
            QueryError::ServiceDown => f.write_str("placement service has shut down"),
        }
    }
}

impl std::error::Error for QueryError {}

/// The atomic epoch-pointer used to publish retrained models.
///
/// The trainer moves a whole [`DrlEngine`] into `incoming` and bumps
/// `epoch`; the query engine takes it at the next batch boundary. At most
/// one model is in flight — publishing twice before a pickup replaces the
/// unconsumed one (the newer model wins, which is the right staleness
/// policy for serving).
#[derive(Debug, Default)]
pub struct ModelSlot {
    epoch: AtomicU64,
    incoming: Mutex<Option<(u64, DrlEngine)>>,
}

impl ModelSlot {
    /// Creates an empty slot (epoch 0 = "nothing published").
    pub fn new() -> Self {
        ModelSlot::default()
    }

    /// Epoch of the most recently *published* model (not necessarily
    /// picked up yet). 0 means none.
    pub fn published_epoch(&self) -> u64 {
        self.epoch.load(Ordering::Acquire)
    }

    /// Publishes `engine` as the next model; returns its epoch. The epoch
    /// is minted while holding `incoming`'s lock, so concurrent publishers
    /// serialize and every published model gets a distinct epoch (the
    /// service has a single trainer, but the API does not rely on that).
    pub fn publish(&self, engine: DrlEngine) -> u64 {
        let mut incoming = self.incoming.lock().expect("model slot poisoned");
        let epoch = self.epoch.load(Ordering::Relaxed) + 1;
        *incoming = Some((epoch, engine));
        self.epoch.store(epoch, Ordering::Release);
        epoch
    }

    /// Takes the pending model, if any (query engine only).
    fn take(&self) -> Option<(u64, DrlEngine)> {
        // Cheap fast path: don't touch the mutex unless an unconsumed
        // publish could exist.
        if self.epoch.load(Ordering::Acquire) == 0 {
            return None;
        }
        self.incoming.lock().expect("model slot poisoned").take()
    }
}

/// One submission: requests plus the channel to answer them on.
struct Submission {
    requests: Vec<PlacementRequest>,
    enqueued: Instant,
    reply: Sender<Result<Vec<Decision>, QueryError>>,
}

enum BatchMsg {
    Submit(Submission),
    Shutdown,
}

/// Handle to the query engine thread.
#[derive(Debug)]
pub struct BatchEngine {
    tx: Sender<BatchMsg>,
    handle: Option<JoinHandle<()>>,
}

/// Tuning knobs for the engine loop (split out so the loop signature stays
/// readable).
pub(crate) struct BatchParams {
    /// Maximum requests fused into one pass.
    pub max_batch: usize,
    /// How long to hold an open batch waiting for stragglers.
    pub window: Duration,
    /// Candidate devices ranked for every request.
    pub candidates: Vec<DeviceId>,
}

impl BatchEngine {
    /// Spawns the engine thread. `clock_micros` is the service's ingest
    /// high-water mark, read once per batch to stamp query times.
    pub(crate) fn spawn(
        params: BatchParams,
        slot: Arc<ModelSlot>,
        clock_micros: Arc<AtomicU64>,
        metrics: Arc<ServeMetrics>,
        queue_capacity: usize,
    ) -> Self {
        assert!(params.max_batch > 0, "max_batch must be positive");
        assert!(!params.candidates.is_empty(), "need candidate devices");
        let (tx, rx) = bounded(queue_capacity);
        let handle = std::thread::Builder::new()
            .name("geomancy-query".into())
            .spawn(move || engine_loop(rx, params, slot, clock_micros, metrics))
            .expect("failed to spawn query engine");
        BatchEngine {
            tx,
            handle: Some(handle),
        }
    }

    /// Submits `requests` as one message; blocks for the decisions.
    ///
    /// # Errors
    ///
    /// [`QueryError::NotReady`] before the first model publish,
    /// [`QueryError::ServiceDown`] after shutdown.
    pub fn query_many(&self, requests: &[PlacementRequest]) -> Result<Vec<Decision>, QueryError> {
        if requests.is_empty() {
            return Ok(Vec::new());
        }
        let (reply, rx) = bounded(1);
        self.tx
            .send(BatchMsg::Submit(Submission {
                requests: requests.to_vec(),
                enqueued: Instant::now(),
                reply,
            }))
            .map_err(|_| QueryError::ServiceDown)?;
        rx.recv().map_err(|_| QueryError::ServiceDown)?
    }

    /// Stops the engine after in-flight submissions are answered.
    pub fn shutdown(mut self) {
        let _ = self.tx.send(BatchMsg::Shutdown);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

impl Drop for BatchEngine {
    fn drop(&mut self) {
        let _ = self.tx.send(BatchMsg::Shutdown);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

fn engine_loop(
    rx: Receiver<BatchMsg>,
    params: BatchParams,
    slot: Arc<ModelSlot>,
    clock_micros: Arc<AtomicU64>,
    metrics: Arc<ServeMetrics>,
) {
    let mut engine: Option<DrlEngine> = None;
    let mut epoch = 0u64;
    let mut pending: Vec<Submission> = Vec::new();
    let mut unique: Vec<PlacementQuery> = Vec::new();
    let mut row_of: HashMap<PlacementRequest, usize> = HashMap::new();
    let mut ranked: Vec<(DeviceId, f64)> = Vec::new();
    'serve: loop {
        // Block for the batch's first submission.
        match rx.recv() {
            Err(_) => break,
            Ok(BatchMsg::Shutdown) => break,
            Ok(BatchMsg::Submit(s)) => pending.push(s),
        }
        // Coalesce: drain whatever is queued, then give stragglers one
        // window to arrive. The deadline is from the batch's opening so a
        // trickle of messages cannot hold the batch open indefinitely.
        let deadline = Instant::now() + params.window;
        let mut batch_requests: usize = pending[0].requests.len();
        while batch_requests < params.max_batch {
            let msg = match rx.try_recv() {
                Some(m) => m,
                None => {
                    let now = Instant::now();
                    if now >= deadline {
                        break;
                    }
                    match rx.recv_timeout(deadline - now) {
                        Ok(m) => m,
                        Err(RecvTimeoutError::Timeout) => break,
                        Err(RecvTimeoutError::Disconnected) => break,
                    }
                }
            };
            match msg {
                BatchMsg::Shutdown => {
                    // Answer what we hold, then stop.
                    serve_batch(
                        &mut engine,
                        &mut epoch,
                        &slot,
                        &params,
                        &clock_micros,
                        &metrics,
                        &mut pending,
                        &mut unique,
                        &mut row_of,
                        &mut ranked,
                    );
                    break 'serve;
                }
                BatchMsg::Submit(s) => {
                    batch_requests += s.requests.len();
                    pending.push(s);
                }
            }
        }
        serve_batch(
            &mut engine,
            &mut epoch,
            &slot,
            &params,
            &clock_micros,
            &metrics,
            &mut pending,
            &mut unique,
            &mut row_of,
            &mut ranked,
        );
    }
    // Disconnected or shut down: refuse anything still queued.
    for sub in pending.drain(..) {
        let _ = sub.reply.send(Err(QueryError::ServiceDown));
    }
}

/// Answers every pending submission with one fused pass.
#[allow(clippy::too_many_arguments)]
fn serve_batch(
    engine: &mut Option<DrlEngine>,
    epoch: &mut u64,
    slot: &ModelSlot,
    params: &BatchParams,
    clock_micros: &AtomicU64,
    metrics: &ServeMetrics,
    pending: &mut Vec<Submission>,
    unique: &mut Vec<PlacementQuery>,
    row_of: &mut HashMap<PlacementRequest, usize>,
    ranked: &mut Vec<(DeviceId, f64)>,
) {
    // Batch boundary: adopt a newly published model, if any.
    if let Some((e, model)) = slot.take() {
        *engine = Some(model);
        *epoch = e;
        metrics.model_swaps.fetch_add(1, Ordering::Relaxed);
    }
    let batch_requests: usize = pending.iter().map(|s| s.requests.len()).sum();
    let Some(model) = engine.as_mut() else {
        for sub in pending.drain(..) {
            let _ = sub.reply.send(Err(QueryError::NotReady));
        }
        return;
    };
    // Dedup identical request shapes into shared feature rows, stamped
    // with one query time for the whole batch.
    let now_micros = clock_micros.load(Ordering::Relaxed);
    let (now_secs, now_ms) = (
        now_micros / 1_000_000,
        ((now_micros / 1_000) % 1_000) as u16,
    );
    unique.clear();
    row_of.clear();
    for sub in pending.iter() {
        for req in &sub.requests {
            row_of.entry(*req).or_insert_with(|| {
                unique.push(PlacementQuery {
                    fid: req.fid,
                    read_bytes: req.read_bytes,
                    write_bytes: req.write_bytes,
                    now_secs,
                    now_ms,
                });
                unique.len() - 1
            });
        }
    }
    model.rank_locations_batch_into(unique, &params.candidates, ranked);
    let per = params.candidates.len();
    let unique_rows = unique.len();
    metrics
        .fused_rows
        .fetch_add((unique_rows * per) as u64, Ordering::Relaxed);
    // All of the batch's accounting lands before any reply goes out: a
    // woken client must see the full counters for its own batch.
    if batch_requests > unique_rows {
        metrics
            .coalesced_decisions
            .fetch_add((batch_requests - unique_rows) as u64, Ordering::Relaxed);
    }
    metrics
        .decisions
        .fetch_add(batch_requests as u64, Ordering::Relaxed);
    if batch_requests > 1 {
        metrics
            .batched_decisions
            .fetch_add(batch_requests as u64, Ordering::Relaxed);
    } else {
        metrics
            .solo_decisions
            .fetch_add(batch_requests as u64, Ordering::Relaxed);
    }
    for sub in pending.drain(..) {
        let decisions: Vec<Decision> = sub
            .requests
            .iter()
            .map(|req| {
                let row = row_of[req];
                let (best, tp) = ranked[row * per..(row + 1) * per]
                    .iter()
                    .copied()
                    .max_by(|a, b| a.1.total_cmp(&b.1))
                    .expect("candidates are non-empty");
                Decision {
                    fid: req.fid,
                    best,
                    predicted_tp: tp,
                    model_epoch: *epoch,
                    batch_requests: batch_requests as u32,
                    unique_rows: unique_rows as u32,
                }
            })
            .collect();
        metrics.observe_latency_us(sub.enqueued.elapsed().as_micros() as u64);
        let _ = sub.reply.send(Ok(decisions));
    }
}
