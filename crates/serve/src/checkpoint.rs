//! Background checkpointing: seal the shard WALs, absorb the sealed
//! segments into the cold [`geomancy_store::PagedStore`], then trim the
//! shards' in-memory hot tails.
//!
//! The checkpointer is an actor on the service's reactor, built on the
//! same non-blocking fan-out protocol as the trainer: a cycle sends one
//! [`ShardMsg::SealWal`] per shard, each reply continuation `send_now`s a
//! [`CheckpointMsg::Sealed`] back to the checkpointer's own mailbox, and
//! when the last one lands the actor absorbs every sealed segment under
//! the store's write lock and commits. Only after that durable commit
//! does it fan out [`ShardMsg::TrimHot`] — the trimmed records are by
//! then readable from the cold store, so the hot-tail bound never costs a
//! record. Cycles are serialized; timer-driven cycles coalesce with
//! whatever is already queued.
//!
//! Crash-safety is the store's (see `geomancy-store`'s crash tests): a
//! kill anywhere in the cycle leaves sealed segments that the service's
//! startup absorption replays exactly once.

use std::collections::VecDeque;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Instant;

use crossbeam::channel::{bounded, Sender};
use geomancy_runtime::{Actor, Addr, Ctx, Reactor};
use geomancy_store::{AbsorbReport, SharedPagedStore};

use crate::metrics::ServeMetrics;
use crate::service::SealHook;
use crate::shard::{ShardMsg, ShardSet};

/// Why a checkpoint cycle failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CheckpointError {
    /// The checkpointer (or a shard it seals) has shut down.
    Down,
    /// The store rejected the absorption (I/O failure, corruption).
    Store(String),
}

impl std::fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckpointError::Down => f.write_str("checkpointer has shut down"),
            CheckpointError::Store(msg) => write!(f, "checkpoint absorb failed: {msg}"),
        }
    }
}

impl std::error::Error for CheckpointError {}

pub(crate) enum CheckpointMsg {
    /// Self-address bootstrap, delivered first (mailbox FIFO) so seal
    /// continuations can route replies home — and the cadence timer arms.
    Init(Addr<CheckpointMsg>),
    /// Run one checkpoint cycle; reply with what it absorbed.
    Checkpoint {
        reply: Option<Sender<Result<AbsorbReport, CheckpointError>>>,
    },
    /// One shard's seal reply for the in-flight cycle (`seq` 0 = that
    /// shard had nothing to seal).
    Sealed { shard: usize, seq: u64 },
}

/// Handle to the checkpointer actor.
#[derive(Debug)]
pub struct Checkpointer {
    addr: Addr<CheckpointMsg>,
}

impl Checkpointer {
    /// Spawns the checkpointer on `reactor`. With `every_micros > 0` it
    /// also checkpoints on that cadence (reactor time, so simulated-time
    /// services checkpoint on simulated cadence).
    #[allow(clippy::too_many_arguments)] // crate-internal spawn, one call site
    pub(crate) fn spawn_on(
        reactor: &Reactor,
        shards: &ShardSet,
        store: SharedPagedStore,
        wal_dir: PathBuf,
        every_micros: u64,
        hot_tail: usize,
        metrics: Arc<ServeMetrics>,
        seal_hook: Option<SealHook>,
    ) -> Self {
        let n = shards.len();
        let (addr, _handle) = reactor.spawn(
            "checkpointer",
            16,
            CheckpointActor {
                self_addr: None,
                shard_addrs: shards.addrs().to_vec(),
                store,
                wal_dir,
                every_micros,
                hot_tail,
                metrics,
                seal_hook,
                collecting: None,
                queued: VecDeque::new(),
                shard_count: n,
            },
        );
        addr.send_now(CheckpointMsg::Init(addr.clone()))
            .ok()
            .expect("checkpointer mailbox open at spawn");
        Checkpointer { addr }
    }

    /// Runs one checkpoint cycle and blocks until it commits (or turns
    /// out to be empty). Returns what the cycle absorbed.
    ///
    /// # Errors
    ///
    /// [`CheckpointError::Down`] after shutdown, or
    /// [`CheckpointError::Store`] if the absorption failed.
    pub fn checkpoint_now(&self) -> Result<AbsorbReport, CheckpointError> {
        let (reply, rx) = bounded(1);
        self.addr
            .send(CheckpointMsg::Checkpoint { reply: Some(reply) })
            .map_err(|_| CheckpointError::Down)?;
        rx.recv().map_err(|_| CheckpointError::Down)?
    }
}

/// An in-flight cycle's gathered state.
struct Collect {
    reply: Option<Sender<Result<AbsorbReport, CheckpointError>>>,
    /// Per-shard sealed segment sequence (`Some(0)` = nothing to seal).
    seals: Vec<Option<u64>>,
    got: usize,
}

struct CheckpointActor {
    self_addr: Option<Addr<CheckpointMsg>>,
    shard_addrs: Vec<Addr<ShardMsg>>,
    store: SharedPagedStore,
    wal_dir: PathBuf,
    every_micros: u64,
    hot_tail: usize,
    metrics: Arc<ServeMetrics>,
    /// Sees each sealed segment before absorption deletes it (WAL
    /// shipping reads the bytes in this window).
    seal_hook: Option<SealHook>,
    collecting: Option<Collect>,
    /// Cycles requested while one is in flight (serialized FIFO).
    queued: VecDeque<Option<Sender<Result<AbsorbReport, CheckpointError>>>>,
    shard_count: usize,
}

impl Actor for CheckpointActor {
    type Msg = CheckpointMsg;

    fn on_msg(&mut self, msg: CheckpointMsg, ctx: &mut Ctx<'_>) {
        match msg {
            CheckpointMsg::Init(addr) => {
                self.self_addr = Some(addr);
                if self.every_micros > 0 {
                    ctx.set_timer(self.every_micros, 0);
                }
            }
            CheckpointMsg::Checkpoint { reply } => {
                if self.collecting.is_some() {
                    self.queued.push_back(reply);
                } else {
                    self.start_cycle(reply);
                }
            }
            CheckpointMsg::Sealed { shard, seq } => {
                let Some(collect) = self.collecting.as_mut() else {
                    return; // stale reply from an abandoned cycle
                };
                if collect.seals[shard].is_none() {
                    collect.seals[shard] = Some(seq);
                    collect.got += 1;
                }
                if collect.got == self.shard_count {
                    self.finish_cycle();
                }
            }
        }
    }

    fn on_timer(&mut self, _token: u64, ctx: &mut Ctx<'_>) {
        ctx.set_timer(self.every_micros, 0);
        // A cadence tick while a cycle is in flight or queued coalesces
        // into it — ticks never pile up behind a slow absorb.
        if self.collecting.is_none() && self.queued.is_empty() {
            self.start_cycle(None);
        }
    }

    fn on_stop(&mut self, _ctx: &mut Ctx<'_>) {
        // Dropping the reply senders surfaces Down to any blocked caller.
        self.collecting = None;
        self.queued.clear();
    }
}

impl CheckpointActor {
    /// Fans the seal request out to every shard; replies flow back as
    /// messages so the actor never blocks a pool worker.
    fn start_cycle(&mut self, reply: Option<Sender<Result<AbsorbReport, CheckpointError>>>) {
        self.collecting = Some(Collect {
            reply,
            seals: vec![None; self.shard_count],
            got: 0,
        });
        let me = self
            .self_addr
            .clone()
            .expect("Init is delivered before any Checkpoint");
        for addr in &self.shard_addrs {
            let home = me.clone();
            if addr
                .send_now(ShardMsg::SealWal {
                    reply: Box::new(move |shard, seq| {
                        let _ = home.send_now(CheckpointMsg::Sealed { shard, seq });
                    }),
                })
                .is_err()
            {
                // Shard dead: abandon the cycle (reply drop → Down).
                self.collecting = None;
                return;
            }
        }
    }

    /// All seals in hand: absorb under the store write lock, publish the
    /// gauges, then trim the hot tails.
    fn finish_cycle(&mut self) {
        let collect = self.collecting.take().expect("cycle in flight");
        let any_sealed = collect
            .seals
            .iter()
            .any(|s| matches!(s, Some(seq) if *seq > 0));
        // Surface every sealed segment to the shipping hook *before*
        // absorption deletes it — the bytes on disk are the replica's
        // exactly-once unit of replication.
        if let Some(hook) = &self.seal_hook {
            for (shard, seal) in collect.seals.iter().enumerate() {
                if let Some(seq) = seal {
                    if *seq > 0 {
                        let path = geomancy_replaydb::wal::segment_path(&self.wal_dir, shard, *seq);
                        (hook.0)(shard, *seq, &path);
                    }
                }
            }
        }
        let outcome = if any_sealed {
            let started = Instant::now();
            let mut store = self.store.write();
            match store.absorb_segments(&self.wal_dir, self.shard_count, None) {
                Ok(report) => {
                    use std::sync::atomic::Ordering;
                    self.metrics
                        .last_checkpoint_micros
                        .store(started.elapsed().as_micros() as u64, Ordering::Relaxed);
                    self.metrics.checkpoints.fetch_add(1, Ordering::Relaxed);
                    self.metrics.sub_wal_pending(report.records_absorbed);
                    self.metrics
                        .store_pages
                        .store(store.page_count() as u64, Ordering::Relaxed);
                    self.metrics
                        .store_cold_bytes
                        .store(store.cold_bytes(), Ordering::Relaxed);
                    drop(store);
                    // The absorbed records are durable in the cold store;
                    // only now may the hot copies go.
                    for addr in &self.shard_addrs {
                        let _ = addr.send_now(ShardMsg::TrimHot {
                            keep: self.hot_tail,
                        });
                    }
                    Ok(report)
                }
                Err(e) => Err(CheckpointError::Store(e.to_string())),
            }
        } else {
            Ok(AbsorbReport::default())
        };
        if let Some(reply) = collect.reply {
            let _ = reply.send(outcome);
        }
        if let Some(next) = self.queued.pop_front() {
            self.start_cycle(next);
        }
    }
}
