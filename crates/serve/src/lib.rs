//! # geomancy-serve
//!
//! The online placement serving layer: what the paper's Interface Daemon
//! (§V-A, "networking middleware that allows parallel requests") grows
//! into when one actor and one channel stop being enough.
//!
//! ```text
//!            ingest (records)                placement requests
//!                 │                                 │
//!        ┌────────┴────────┐              ┌─────────┴─────────┐
//!        │ shard map        │              │ batched query     │
//!        │ fid.stable_hash  │              │ engine (1 thread) │
//!        ▼        ▼        ▼              │  coalesce → dedup │
//!    shard 0   shard 1   shard N-1        │  → fused NN pass  │
//!    queue+WAL queue+WAL queue+WAL        └─────────▲─────────┘
//!        │        │        │                        │ hot-swap
//!        └────────┴────────┘              ┌─────────┴─────────┐
//!          snapshots (copies)  ─────────▶ │ background trainer│
//!                                         │ merge → retrain → │
//!                                         │ publish epoch N+1 │
//!                                         └───────────────────┘
//! ```
//!
//! Three independent moving parts, three guarantees:
//!
//! - **Sharded ingest** ([`shard`]): records route by
//!   [`geomancy_sim::record::FileId::stable_hash`], so one file's history
//!   stays ordered on one shard while shards ingest in parallel. Queues
//!   are bounded — producers feel backpressure instead of growing an
//!   unbounded buffer.
//! - **Batched queries** ([`batch`]): concurrent placement requests
//!   coalesce into one fused forward pass, with duplicate request shapes
//!   deduplicated into shared feature rows. The engine thread owns the
//!   model exclusively.
//! - **Hot-swap training** ([`trainer`]): retraining runs on shard
//!   *snapshots* off-thread and publishes finished models through an
//!   atomic epoch pointer; serving never blocks on training and no
//!   decision ever sees a half-swapped model.
//!
//! [`PlacementService`] wires the three together; [`load`] drives the
//! whole service with the BELLE II workload (the `geomancy serve` CLI
//! subcommand and the serve benchmark both run it).

#![warn(missing_docs)]

pub mod batch;
pub mod load;
pub mod metrics;
pub mod service;
pub mod shard;
pub mod trainer;

pub use batch::{Decision, ModelSlot, PlacementRequest, QueryError};
pub use load::{run_belle2_load, LoadConfig, LoadReport, QueryMode};
pub use metrics::{MetricsSnapshot, ServeMetrics};
pub use service::{PlacementService, ServeConfig};
pub use shard::{shard_of, Backpressure, ShardSet};
pub use trainer::{TrainError, Trainer};
