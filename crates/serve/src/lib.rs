//! # geomancy-serve
//!
//! The online placement serving layer: what the paper's Interface Daemon
//! (§V-A, "networking middleware that allows parallel requests") grows
//! into when one actor and one channel stop being enough.
//!
//! ```text
//!            ingest (records)                placement requests
//!                 │                                 │
//!        ┌────────┴────────┐              admission controller
//!        │ shard map        │             (watermarks → shed)
//!        │ fid.stable_hash  │              ┌─────────┴─────────┐
//!        ▼        ▼        ▼              │ batched query     │
//!    shard 0   shard 1   shard N-1        │ engine (actor)    │
//!    actor+WAL actor+WAL actor+WAL        │  coalesce → dedup │
//!        │        │        │              │  → fused NN pass  │
//!        └────────┴────────┘              └─────────▲─────────┘
//!          snapshots (parts)                        │ hot-swap
//!                 ▼                       ┌─────────┴─────────┐
//!    ═══ one reactor pool (N workers) ═══ │ trainer (actor)   │
//!                                         │ merge → retrain → │
//!                                         │ publish epoch N+1 │
//!                                         └───────────────────┘
//! ```
//!
//! Every moving part is a state-machine actor on **one shared
//! [`geomancy_runtime::Reactor`] pool**: the service costs a small fixed
//! number of threads no matter how many shards it runs, and shutdown is a
//! single drain (queued batches apply, in-flight queries answer, queued
//! retrains finish) instead of per-subsystem join choreography.
//!
//! - **Sharded ingest** ([`shard`]): records route by
//!   [`geomancy_sim::record::FileId::stable_hash`], so one file's history
//!   stays ordered on one shard while shards ingest in parallel.
//!   Mailboxes are bounded — producers feel backpressure instead of
//!   growing an unbounded buffer.
//! - **Batched queries** ([`batch`]): concurrent placement requests
//!   coalesce into one fused forward pass, with duplicate request shapes
//!   deduplicated into shared feature rows. The engine actor owns the
//!   model exclusively; its batch window is a generation-tagged reactor
//!   timer, so it runs on simulated time when the service is started with
//!   a [`geomancy_sim::SharedSimClock`].
//! - **Hot-swap training** ([`trainer`]): retraining runs on shard
//!   *snapshots* gathered by message fan-out and publishes finished
//!   models through an atomic epoch pointer; serving never blocks on
//!   training and no decision ever sees a half-swapped model.
//! - **Admission control** ([`service`]): over a pending-request or
//!   latency-EWMA watermark, `query_many` defers once then sheds with
//!   [`QueryError::Overloaded`] — and the [`metrics`] snapshot is
//!   coherent, so `queries_offered == queries_admitted + queries_shed`
//!   holds in every observation, mirroring ingest's
//!   `ingested + dropped == offered`.
//!
//! [`PlacementService`] wires it all together; [`load`] drives the whole
//! service with the BELLE II workload (the `geomancy serve` CLI
//! subcommand and the serve benchmark both run it).

#![warn(missing_docs)]

pub mod batch;
pub mod checkpoint;
pub mod load;
pub mod metrics;
pub mod retain;
pub mod service;
pub mod shard;
pub mod trainer;

pub use batch::{Decision, ModelSlot, PlacementRequest, QueryError};
pub use checkpoint::{CheckpointError, Checkpointer};
pub use load::{
    prepare_belle2, run_belle2_load, AccessMix, LoadConfig, LoadReport, PreparedLoad, QueryMode,
};
pub use metrics::{MetricsSnapshot, ServeMetrics};
pub use retain::SegmentRetainer;
pub use service::{AdmissionConfig, PlacementService, SealHook, ServeConfig, StoreSettings};
pub use shard::{shard_of, Backpressure, ShardSet};
pub use trainer::{RetrainMode, TrainError, TrainedMeta, Trainer, TrainerConfig};
