//! Drives a [`PlacementService`] with the BELLE II workload on the
//! simulated Bluesky substrate — the shared engine behind the
//! `geomancy serve` CLI subcommand and the serve benchmark.
//!
//! The driver plays the paper's loop at serving scale: execute workload
//! operations on the simulator, ingest the resulting telemetry, retrain,
//! and then hammer the query engine from several concurrent client
//! threads replaying the run's placement questions — either one file per
//! round trip (the baseline) or whole runs per submission (the batched
//! path the engine fuses and dedups).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use geomancy_core::experiment::place_files_spread;
use geomancy_sim::bluesky::{bluesky_builder_scaled, bluesky_system};
use geomancy_sim::cluster::StorageSystem;
use geomancy_sim::record::AccessRecord;
use geomancy_trace::belle2::Belle2Workload;
use serde::Serialize;

use crate::batch::{PlacementRequest, QueryError};
use crate::metrics::MetricsSnapshot;
use crate::service::PlacementService;

/// How the measured phase submits queries.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum QueryMode {
    /// One request per round trip — the per-file baseline.
    PerFile,
    /// One run's worth of requests per submission — the batched path.
    Batched,
}

/// How one workload "run" visits the working set.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub enum AccessMix {
    /// The paper's looping sequential scan: every file read 10–20 times
    /// in succession. Right for suite-sized working sets (24 files).
    Sequential,
    /// `ops_per_run` accesses drawn zipf-distributed over the working
    /// set — the mix that makes 100k–1M-file populations drivable, where
    /// a full scan would dwarf any realistic traffic pattern.
    Zipfian {
        /// Accesses per run.
        ops_per_run: usize,
        /// Zipf exponent (0 = uniform, 1 ≈ classic storage skew).
        exponent: f64,
    },
}

/// Load-driver configuration.
#[derive(Debug, Clone)]
pub struct LoadConfig {
    /// Workload/system seed.
    pub seed: u64,
    /// BELLE II working-set size (the paper's suite: 24 files; the scale
    /// runs raise this to 100k–1M with a zipfian [`AccessMix`]).
    pub file_count: usize,
    /// Workload runs executed and ingested before the first retrain.
    pub warmup_runs: usize,
    /// Workload runs whose placement questions the measured phase replays.
    pub measured_runs: usize,
    /// Concurrent client threads in the measured phase.
    pub clients: usize,
    /// Submission style.
    pub mode: QueryMode,
    /// Retrain cycles requested mid-measurement (hot-swap under load).
    pub mid_load_retrains: usize,
    /// How each run visits the working set.
    pub access_mix: AccessMix,
}

impl Default for LoadConfig {
    fn default() -> Self {
        LoadConfig {
            seed: 42,
            file_count: 24,
            warmup_runs: 2,
            measured_runs: 2,
            clients: 4,
            mode: QueryMode::Batched,
            mid_load_retrains: 0,
            access_mix: AccessMix::Sequential,
        }
    }
}

/// What the driver observed.
#[derive(Debug, Clone, Serialize)]
pub struct LoadReport {
    /// Submission style used.
    pub mode: QueryMode,
    /// Placement decisions served in the measured phase.
    pub decisions: u64,
    /// Measured-phase wall-clock seconds.
    pub elapsed_secs: f64,
    /// Decisions per wall-clock second.
    pub decisions_per_sec: f64,
    /// Records ingested across warm-up and measurement.
    pub ingested_records: u64,
    /// Model epochs observed stamped on decisions (sorted, deduped).
    pub epochs_seen: Vec<u64>,
    /// Highest epoch published by the trainer.
    pub published_epoch: u64,
    /// Decisions whose epoch was not in `1..=published_epoch` at the time
    /// they were checked — must be zero (a nonzero count would mean a
    /// torn or phantom model served traffic).
    pub invalid_epoch_decisions: u64,
    /// Full counter snapshot at the end of the run.
    pub metrics: MetricsSnapshot,
}

/// The BELLE II load, prepared ahead of driving a service: warm-up
/// telemetry batches (with their ingest timestamps) and the measured
/// phase's placement question list. Computing this once lets the same
/// workload drive the in-process service handle and the TCP wire path.
#[derive(Debug, Clone)]
pub struct PreparedLoad {
    /// `(timestamp_micros, records)` ingest batches, in order.
    pub warmup_batches: Vec<(u64, Vec<AccessRecord>)>,
    /// Placement questions the measured phase replays.
    pub requests: Vec<PlacementRequest>,
}

/// The Bluesky system sized for `workload`: the paper's stock capacities
/// when the working set fits, otherwise every mount scaled up uniformly
/// (with 25 % headroom over the round-robin spread) so 100k–1M-file
/// populations place cleanly. Scale runs measure the placement and
/// telemetry pipeline at file-count scale; capacity pressure is not what
/// they are about.
fn bluesky_system_for(seed: u64, workload: &Belle2Workload) -> StorageSystem {
    let stock = bluesky_system(seed);
    let device_count = stock.devices().len();
    let mut need = vec![0u64; device_count];
    for (i, file) in workload.files().iter().enumerate() {
        need[i % device_count] += file.size;
    }
    let factor = stock
        .devices()
        .iter()
        .zip(&need)
        .map(|(device, &bytes)| bytes as f64 * 1.25 / device.spec().capacity as f64)
        .fold(1.0f64, f64::max);
    if factor <= 1.0 {
        stock
    } else {
        bluesky_builder_scaled(factor).seed(seed).build()
    }
}

/// Executes the BELLE II workload on the simulated Bluesky substrate and
/// returns its telemetry and question list; see [`PreparedLoad`].
pub fn prepare_belle2(config: &LoadConfig) -> PreparedLoad {
    let mut workload =
        Belle2Workload::with_params(config.seed.wrapping_add(1), config.file_count, 0);
    let mut system = bluesky_system_for(config.seed, &workload);
    place_files_spread(&mut system, &workload);

    let next_run = |workload: &mut Belle2Workload| match config.access_mix {
        AccessMix::Sequential => workload.next_run(),
        AccessMix::Zipfian {
            ops_per_run,
            exponent,
        } => workload.zipf_run(ops_per_run, exponent),
    };

    let mut warmup_batches: Vec<(u64, Vec<AccessRecord>)> = Vec::new();
    let mut batch: Vec<AccessRecord> = Vec::new();
    for _ in 0..config.warmup_runs.max(1) {
        for op in next_run(&mut workload) {
            let record = if op.write {
                system.write_file(op.fid, op.bytes)
            } else {
                system.read_file(op.fid, op.bytes)
            }
            .expect("workload references a registered file");
            batch.push(record);
            if batch.len() >= 32 {
                warmup_batches.push((system.clock().now_micros(), std::mem::take(&mut batch)));
            }
        }
        system.idle(5.0);
    }
    if !batch.is_empty() {
        warmup_batches.push((system.clock().now_micros(), batch));
    }

    // Build the measured phase's question list from real runs: per op, ask
    // where the file's next access (whole-file read/write) should land.
    let files: std::collections::BTreeMap<_, _> =
        workload.files().iter().map(|f| (f.fid, f.size)).collect();
    let mut requests: Vec<PlacementRequest> = Vec::new();
    for _ in 0..config.measured_runs.max(1) {
        for op in next_run(&mut workload) {
            let bytes = op.bytes.unwrap_or(files[&op.fid]);
            requests.push(PlacementRequest {
                fid: op.fid,
                read_bytes: if op.write { 0 } else { bytes },
                write_bytes: if op.write { bytes } else { 0 },
            });
        }
    }
    PreparedLoad {
        warmup_batches,
        requests,
    }
}

/// Executes the workload and drives `service`; see the module docs.
///
/// # Panics
///
/// Panics if the service cannot ingest (a shard died), if retraining
/// fails with enough data, or if a query client errors.
pub fn run_belle2_load(service: &Arc<PlacementService>, config: &LoadConfig) -> LoadReport {
    let prepared = prepare_belle2(config);

    // Warm-up: ingest telemetry (blocking ingest — the CI smoke asserts
    // zero dropped batches, so nothing may be shed here).
    for (ts, batch) in &prepared.warmup_batches {
        service.ingest(*ts, batch).expect("ingest shard died");
    }
    service
        .retrain_now()
        .expect("warm-up produced enough telemetry");
    let requests = prepared.requests;

    // Measured phase: `clients` threads replay the question list
    // concurrently while the main thread optionally retrains mid-load.
    let invalid_epochs = AtomicU64::new(0);
    let decisions = AtomicU64::new(0);
    let epoch_mask = std::sync::Mutex::new(std::collections::BTreeSet::new());
    let start = Instant::now();
    std::thread::scope(|s| {
        for _ in 0..config.clients.max(1) {
            s.spawn(|| {
                let mut seen: Vec<u64> = Vec::new();
                // A shed submission (admission control under overload) is
                // the client's to retry: yield and resubmit until admitted,
                // so every question is eventually answered exactly once.
                let mut run =
                    |query: &mut dyn FnMut() -> Result<Vec<crate::batch::Decision>, QueryError>| {
                        let ds = loop {
                            match query() {
                                Ok(ds) => break ds,
                                Err(QueryError::Overloaded) => std::thread::yield_now(),
                                Err(e) => panic!("query client failed: {e}"),
                            }
                        };
                        for d in &ds {
                            if d.model_epoch == 0 || d.model_epoch > service.published_epoch() {
                                invalid_epochs.fetch_add(1, Ordering::Relaxed);
                            }
                            if !seen.contains(&d.model_epoch) {
                                seen.push(d.model_epoch);
                            }
                        }
                        decisions.fetch_add(ds.len() as u64, Ordering::Relaxed);
                    };
                match config.mode {
                    QueryMode::PerFile => {
                        for req in &requests {
                            run(&mut || service.query(*req).map(|d| vec![d]));
                        }
                    }
                    QueryMode::Batched => {
                        // One submission per workload-run-sized chunk.
                        let chunk = (requests.len() / config.measured_runs.max(1)).max(1);
                        for part in requests.chunks(chunk) {
                            run(&mut || service.query_many(part));
                        }
                    }
                }
                epoch_mask.lock().unwrap().extend(seen);
            });
        }
        for _ in 0..config.mid_load_retrains {
            service.retrain_now().expect("mid-load retrain failed");
        }
    });
    let elapsed = start.elapsed().as_secs_f64();

    let metrics = service.metrics();
    let served = decisions.load(Ordering::Relaxed);
    LoadReport {
        mode: config.mode,
        decisions: served,
        elapsed_secs: elapsed,
        decisions_per_sec: if elapsed > 0.0 {
            served as f64 / elapsed
        } else {
            0.0
        },
        ingested_records: metrics.ingested_records,
        epochs_seen: epoch_mask.into_inner().unwrap().into_iter().collect(),
        published_epoch: service.published_epoch(),
        invalid_epoch_decisions: invalid_epochs.load(Ordering::Relaxed),
        metrics,
    }
}
