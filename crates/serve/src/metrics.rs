//! Serving-layer counters: cheap atomics sampled into a serializable
//! snapshot.
//!
//! Every hot-path touch is a single relaxed atomic op; nothing here takes a
//! lock, so the ingest shards and the query engine can bump counters from
//! their own threads without coupling.
//!
//! ## Snapshot coherence
//!
//! Counters that must satisfy cross-counter invariants (`decisions ==
//! batched + solo`, `ingested + dropped == offered`, and `offered ==
//! admitted + shed`) are updated inside an *accounting section*
//! ([`ServeMetrics::accounting`]): a seqlock-style enter/exit pair.
//! [`ServeMetrics::snapshot`] retries until it observes no section in
//! flight and no section completed while it read, so a snapshot taken
//! mid-batch can no longer show half of a batch's bookkeeping. Gauges
//! (queue depths, pending requests) are exempt — they are racy by nature.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

use serde::Serialize;

/// Number of power-of-two latency buckets (covers < 1 µs up to > 1 s).
pub const LATENCY_BUCKETS: usize = 21;

/// Bounded coherent-snapshot retries: accounting sections are a handful of
/// atomic ops, so this is generous; after it, return what we have rather
/// than wedge a monitoring thread.
const SNAPSHOT_RETRIES: usize = 100_000;

/// Live counters shared by the service's threads.
#[derive(Debug)]
pub struct ServeMetrics {
    /// Access records accepted into shard queues.
    pub ingested_records: AtomicU64,
    /// Ingest batches accepted (post-routing, one per shard touched).
    pub ingest_batches: AtomicU64,
    /// Per-shard sub-batches rejected by backpressure: when `try_ingest`
    /// hits a full shard queue, the failed sub-batch *and* every sub-batch
    /// it had not yet sent count here (one call can route to several
    /// shards, so one rejected call may drop several sub-batches).
    pub dropped_batches: AtomicU64,
    /// Records inside dropped sub-batches — none of these were ingested.
    /// `ingested_records + dropped_records` equals the records offered to
    /// `try_ingest`/`ingest` (sub-batches queued before the full shard was
    /// hit stay queued and count as ingested).
    pub dropped_records: AtomicU64,
    /// Per-shard queued-batch depth (incremented on enqueue, decremented
    /// when the shard actor finishes the batch).
    pub queue_depth: Vec<AtomicUsize>,
    /// Placement decisions served.
    pub decisions: AtomicU64,
    /// Decisions answered from a fused pass covering more than one request.
    pub batched_decisions: AtomicU64,
    /// Decisions answered by a single-request pass.
    pub solo_decisions: AtomicU64,
    /// Decisions that shared a deduplicated feature row with another
    /// request in the same batch (same file, same access shape).
    pub coalesced_decisions: AtomicU64,
    /// Feature rows actually pushed through the network.
    pub fused_rows: AtomicU64,
    /// Model hot-swaps picked up by the query engine.
    pub model_swaps: AtomicU64,
    /// Retrain cycles completed by the background trainer.
    pub retrains: AtomicU64,
    /// Requests offered to `query_many` (admission controller input).
    pub queries_offered: AtomicU64,
    /// Requests the admission controller let through.
    pub queries_admitted: AtomicU64,
    /// Requests shed by the admission controller (`Overloaded`). Always
    /// `queries_offered == queries_admitted + queries_shed`.
    pub queries_shed: AtomicU64,
    /// Requests admitted but not yet answered (gauge).
    pub pending_requests: AtomicU64,
    /// High-water mark of `pending_requests`.
    pub pending_peak: AtomicU64,
    /// Per-shard slice of `pending_requests` (requests map to shards by
    /// the queried file's hash, the same map ingest uses). Gauge.
    pub pending_per_shard: Vec<AtomicU64>,
    /// Requests shed because one of their target shards was over its
    /// per-shard pending bound (a subset of `queries_shed`).
    pub shard_shed: Vec<AtomicU64>,
    /// Exponentially weighted moving average of decision latency in
    /// microseconds (α = 1/8; the admission controller's latency signal).
    pub latency_ewma_us: AtomicU64,
    /// Decision latency histogram; bucket `i` counts latencies in
    /// `[2^i, 2^(i+1))` microseconds (bucket 0 is `< 2 µs`, the last
    /// bucket is open-ended).
    pub latency_us: [AtomicU64; LATENCY_BUCKETS],
    /// Pages committed in the cold paged store (gauge; 0 without a store).
    pub store_pages: AtomicU64,
    /// Bytes of cold page storage on disk (gauge; 0 without a store).
    pub store_cold_bytes: AtomicU64,
    /// Records sitting in shard WALs (active logs plus sealed segments)
    /// that no checkpoint has absorbed yet — the checkpoint lag gauge.
    /// Grows on every WAL append (and WAL recovery at startup), shrinks
    /// by `records_absorbed` at each checkpoint.
    pub wal_pending_records: AtomicU64,
    /// Checkpoint cycles that absorbed at least one segment.
    pub checkpoints: AtomicU64,
    /// Wall-clock duration of the most recent absorbing checkpoint, in
    /// microseconds (the store-write-lock hold the query path can feel).
    pub last_checkpoint_micros: AtomicU64,
    /// Records moved by trainer snapshots (full or delta) — with
    /// incremental retraining this tracks the *delta* stream, not the
    /// history, which is the whole point.
    pub retrain_records: AtomicU64,
    /// Cumulative wall-clock time spent training, in microseconds
    /// (successful or not; the retrain-latency gauge).
    pub retrain_micros: AtomicU64,
    /// Cycles that published a warm-started (incrementally trained)
    /// model.
    pub warm_starts: AtomicU64,
    /// Cycles that published a from-scratch model (bootstrap, forced
    /// full mode, or an `auto` quality fallback).
    pub full_retrains: AtomicU64,
    /// Stable cluster node id these gauges belong to (0 when the service
    /// runs single-node). Set once at service start; rides the wire as
    /// the protocol-v5 cluster block so per-node gauges stay
    /// attributable after aggregation.
    pub node_id: AtomicU64,
    /// Accounting sections entered (see module docs).
    accounting_enter: AtomicU64,
    /// Accounting sections exited.
    accounting_exit: AtomicU64,
}

/// RAII marker for an accounting section: invariant-coupled counters
/// updated while one of these is alive appear atomically to
/// [`ServeMetrics::snapshot`]. Keep sections short and never block while
/// holding one.
pub struct AccountingGuard<'a> {
    metrics: &'a ServeMetrics,
}

impl Drop for AccountingGuard<'_> {
    fn drop(&mut self) {
        self.metrics.accounting_exit.fetch_add(1, Ordering::SeqCst);
    }
}

impl ServeMetrics {
    /// Fresh zeroed counters for `shards` ingest shards.
    pub fn new(shards: usize) -> Self {
        ServeMetrics {
            ingested_records: AtomicU64::new(0),
            ingest_batches: AtomicU64::new(0),
            dropped_batches: AtomicU64::new(0),
            dropped_records: AtomicU64::new(0),
            queue_depth: (0..shards).map(|_| AtomicUsize::new(0)).collect(),
            decisions: AtomicU64::new(0),
            batched_decisions: AtomicU64::new(0),
            solo_decisions: AtomicU64::new(0),
            coalesced_decisions: AtomicU64::new(0),
            fused_rows: AtomicU64::new(0),
            model_swaps: AtomicU64::new(0),
            retrains: AtomicU64::new(0),
            queries_offered: AtomicU64::new(0),
            queries_admitted: AtomicU64::new(0),
            queries_shed: AtomicU64::new(0),
            pending_requests: AtomicU64::new(0),
            pending_peak: AtomicU64::new(0),
            pending_per_shard: (0..shards).map(|_| AtomicU64::new(0)).collect(),
            shard_shed: (0..shards).map(|_| AtomicU64::new(0)).collect(),
            latency_ewma_us: AtomicU64::new(0),
            latency_us: std::array::from_fn(|_| AtomicU64::new(0)),
            store_pages: AtomicU64::new(0),
            store_cold_bytes: AtomicU64::new(0),
            wal_pending_records: AtomicU64::new(0),
            checkpoints: AtomicU64::new(0),
            last_checkpoint_micros: AtomicU64::new(0),
            retrain_records: AtomicU64::new(0),
            retrain_micros: AtomicU64::new(0),
            warm_starts: AtomicU64::new(0),
            full_retrains: AtomicU64::new(0),
            node_id: AtomicU64::new(0),
            accounting_enter: AtomicU64::new(0),
            accounting_exit: AtomicU64::new(0),
        }
    }

    /// Opens an accounting section (see the module docs).
    pub fn accounting(&self) -> AccountingGuard<'_> {
        self.accounting_enter.fetch_add(1, Ordering::SeqCst);
        AccountingGuard { metrics: self }
    }

    /// Records one decision latency in microseconds.
    pub fn observe_latency_us(&self, micros: u64) {
        let bucket = (64 - micros.leading_zeros() as usize)
            .saturating_sub(1)
            .min(LATENCY_BUCKETS - 1);
        self.latency_us[bucket].fetch_add(1, Ordering::Relaxed);
    }

    /// Shrinks the checkpoint-lag gauge by `n` without wrapping (recovery
    /// paths can absorb records the gauge never saw appended).
    pub fn sub_wal_pending(&self, n: u64) {
        let mut cur = self.wal_pending_records.load(Ordering::Relaxed);
        loop {
            match self.wal_pending_records.compare_exchange_weak(
                cur,
                cur.saturating_sub(n),
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return,
                Err(seen) => cur = seen,
            }
        }
    }

    /// Folds one latency sample into the EWMA. Single-writer (the query
    /// engine actor), so plain load/store is race-free.
    pub fn update_latency_ewma(&self, sample_us: u64) {
        let prev = self.latency_ewma_us.load(Ordering::Relaxed);
        let next = if prev == 0 {
            sample_us
        } else {
            (prev * 7 + sample_us) / 8
        };
        self.latency_ewma_us.store(next, Ordering::Relaxed);
    }

    /// A coherent point-in-time copy of every counter: retries while an
    /// accounting section is in flight so cross-counter invariants hold in
    /// the result (bounded — falls back to a best-effort read rather than
    /// spinning forever).
    pub fn snapshot(&self) -> MetricsSnapshot {
        for _ in 0..SNAPSHOT_RETRIES {
            let before = self.accounting_enter.load(Ordering::SeqCst);
            if before != self.accounting_exit.load(Ordering::SeqCst) {
                std::thread::yield_now();
                continue;
            }
            let snap = self.read_all();
            if self.accounting_enter.load(Ordering::SeqCst) == before {
                return snap;
            }
        }
        self.read_all()
    }

    fn read_all(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            ingested_records: self.ingested_records.load(Ordering::Relaxed),
            ingest_batches: self.ingest_batches.load(Ordering::Relaxed),
            dropped_batches: self.dropped_batches.load(Ordering::Relaxed),
            dropped_records: self.dropped_records.load(Ordering::Relaxed),
            queue_depth: self
                .queue_depth
                .iter()
                .map(|d| d.load(Ordering::Relaxed))
                .collect(),
            decisions: self.decisions.load(Ordering::Relaxed),
            batched_decisions: self.batched_decisions.load(Ordering::Relaxed),
            solo_decisions: self.solo_decisions.load(Ordering::Relaxed),
            coalesced_decisions: self.coalesced_decisions.load(Ordering::Relaxed),
            fused_rows: self.fused_rows.load(Ordering::Relaxed),
            model_swaps: self.model_swaps.load(Ordering::Relaxed),
            retrains: self.retrains.load(Ordering::Relaxed),
            queries_offered: self.queries_offered.load(Ordering::Relaxed),
            queries_admitted: self.queries_admitted.load(Ordering::Relaxed),
            queries_shed: self.queries_shed.load(Ordering::Relaxed),
            pending_requests: self.pending_requests.load(Ordering::Relaxed),
            pending_peak: self.pending_peak.load(Ordering::Relaxed),
            pending_per_shard: self
                .pending_per_shard
                .iter()
                .map(|p| p.load(Ordering::Relaxed))
                .collect(),
            shard_shed: self
                .shard_shed
                .iter()
                .map(|s| s.load(Ordering::Relaxed))
                .collect(),
            latency_ewma_us: self.latency_ewma_us.load(Ordering::Relaxed),
            engine_queue: 0,
            net_connections_live: 0,
            net_writers_live: 0,
            kernel_backend: geomancy_nn::matrix::kernels::backend_name().to_string(),
            latency_us: self
                .latency_us
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
            store_pages: self.store_pages.load(Ordering::Relaxed),
            store_cold_bytes: self.store_cold_bytes.load(Ordering::Relaxed),
            wal_pending_records: self.wal_pending_records.load(Ordering::Relaxed),
            checkpoints: self.checkpoints.load(Ordering::Relaxed),
            last_checkpoint_micros: self.last_checkpoint_micros.load(Ordering::Relaxed),
            retrain_records: self.retrain_records.load(Ordering::Relaxed),
            retrain_micros: self.retrain_micros.load(Ordering::Relaxed),
            warm_starts: self.warm_starts.load(Ordering::Relaxed),
            full_retrains: self.full_retrains.load(Ordering::Relaxed),
            node_id: self.node_id.load(Ordering::Relaxed),
        }
    }
}

/// Plain-data copy of [`ServeMetrics`], for reports and JSON output.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct MetricsSnapshot {
    /// See [`ServeMetrics::ingested_records`].
    pub ingested_records: u64,
    /// See [`ServeMetrics::ingest_batches`].
    pub ingest_batches: u64,
    /// See [`ServeMetrics::dropped_batches`].
    pub dropped_batches: u64,
    /// See [`ServeMetrics::dropped_records`].
    pub dropped_records: u64,
    /// See [`ServeMetrics::queue_depth`].
    pub queue_depth: Vec<usize>,
    /// See [`ServeMetrics::decisions`].
    pub decisions: u64,
    /// See [`ServeMetrics::batched_decisions`].
    pub batched_decisions: u64,
    /// See [`ServeMetrics::solo_decisions`].
    pub solo_decisions: u64,
    /// See [`ServeMetrics::coalesced_decisions`].
    pub coalesced_decisions: u64,
    /// See [`ServeMetrics::fused_rows`].
    pub fused_rows: u64,
    /// See [`ServeMetrics::model_swaps`].
    pub model_swaps: u64,
    /// See [`ServeMetrics::retrains`].
    pub retrains: u64,
    /// See [`ServeMetrics::queries_offered`].
    pub queries_offered: u64,
    /// See [`ServeMetrics::queries_admitted`].
    pub queries_admitted: u64,
    /// See [`ServeMetrics::queries_shed`].
    pub queries_shed: u64,
    /// See [`ServeMetrics::pending_requests`].
    pub pending_requests: u64,
    /// See [`ServeMetrics::pending_peak`].
    pub pending_peak: u64,
    /// See [`ServeMetrics::pending_per_shard`].
    pub pending_per_shard: Vec<u64>,
    /// See [`ServeMetrics::shard_shed`].
    pub shard_shed: Vec<u64>,
    /// See [`ServeMetrics::latency_ewma_us`].
    pub latency_ewma_us: u64,
    /// Query-engine mailbox depth at snapshot time (gauge; filled in by
    /// the service, 0 when sampled from raw [`ServeMetrics`]).
    pub engine_queue: usize,
    /// TCP connections currently open at the transport layer (gauge;
    /// filled in by the net server, 0 for in-process snapshots).
    pub net_connections_live: u64,
    /// Per-connection writer actors currently live on the net reactor
    /// (gauge; filled in by the net server, 0 for in-process snapshots).
    pub net_writers_live: u64,
    /// NN kernel backend the serving process dispatches to
    /// (`"avx2_fma"` or `"scalar"`; see `geomancy_nn::matrix::kernels`).
    pub kernel_backend: String,
    /// See [`ServeMetrics::latency_us`].
    pub latency_us: Vec<u64>,
    /// See [`ServeMetrics::store_pages`].
    pub store_pages: u64,
    /// See [`ServeMetrics::store_cold_bytes`].
    pub store_cold_bytes: u64,
    /// See [`ServeMetrics::wal_pending_records`].
    pub wal_pending_records: u64,
    /// See [`ServeMetrics::checkpoints`].
    pub checkpoints: u64,
    /// See [`ServeMetrics::last_checkpoint_micros`].
    pub last_checkpoint_micros: u64,
    /// See [`ServeMetrics::retrain_records`].
    pub retrain_records: u64,
    /// See [`ServeMetrics::retrain_micros`].
    pub retrain_micros: u64,
    /// See [`ServeMetrics::warm_starts`].
    pub warm_starts: u64,
    /// See [`ServeMetrics::full_retrains`].
    pub full_retrains: u64,
    /// See [`ServeMetrics::node_id`].
    pub node_id: u64,
}

impl MetricsSnapshot {
    /// Approximate p99 decision latency in microseconds (upper edge of the
    /// bucket containing the 99th percentile), or 0 with no data.
    pub fn p99_latency_us(&self) -> u64 {
        let total: u64 = self.latency_us.iter().sum();
        if total == 0 {
            return 0;
        }
        let target = (total * 99).div_ceil(100);
        let mut seen = 0;
        for (i, &count) in self.latency_us.iter().enumerate() {
            seen += count;
            if seen >= target {
                return 1 << (i + 1);
            }
        }
        1 << LATENCY_BUCKETS
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn latency_buckets_are_log2() {
        let m = ServeMetrics::new(2);
        m.observe_latency_us(0); // bucket 0
        m.observe_latency_us(1); // bucket 0
        m.observe_latency_us(2); // bucket 1
        m.observe_latency_us(3); // bucket 1
        m.observe_latency_us(1024); // bucket 10
        m.observe_latency_us(u64::MAX); // clamped to last bucket
        let snap = m.snapshot();
        assert_eq!(snap.latency_us[0], 2);
        assert_eq!(snap.latency_us[1], 2);
        assert_eq!(snap.latency_us[10], 1);
        assert_eq!(snap.latency_us[LATENCY_BUCKETS - 1], 1);
        assert_eq!(snap.queue_depth.len(), 2);
    }

    #[test]
    fn p99_is_bucket_upper_edge() {
        let m = ServeMetrics::new(1);
        for _ in 0..99 {
            m.observe_latency_us(1);
        }
        m.observe_latency_us(5000);
        let snap = m.snapshot();
        assert_eq!(snap.p99_latency_us(), 2);
        assert_eq!(
            MetricsSnapshot {
                latency_us: vec![0; LATENCY_BUCKETS],
                ..snap
            }
            .p99_latency_us(),
            0
        );
    }

    #[test]
    fn ewma_converges_towards_samples() {
        let m = ServeMetrics::new(1);
        m.update_latency_ewma(800);
        assert_eq!(m.latency_ewma_us.load(Ordering::Relaxed), 800);
        for _ in 0..64 {
            m.update_latency_ewma(0);
        }
        assert!(m.latency_ewma_us.load(Ordering::Relaxed) < 800 / 8);
    }

    /// A snapshot never observes half of an accounting section: it waits
    /// for the section to close and then sees all of its updates.
    #[test]
    fn snapshot_waits_for_open_accounting_sections() {
        let m = Arc::new(ServeMetrics::new(1));
        let guard = m.accounting();
        m.decisions.fetch_add(5, Ordering::Relaxed);
        let m2 = Arc::clone(&m);
        let snapper = std::thread::spawn(move || m2.snapshot());
        // The section stays open while the snapshot thread (if it got that
        // far) spins; completing the section lets it through with a
        // consistent view.
        std::thread::sleep(std::time::Duration::from_millis(10));
        m.batched_decisions.fetch_add(5, Ordering::Relaxed);
        drop(guard);
        let snap = snapper.join().unwrap();
        assert_eq!(snap.decisions, 5);
        assert_eq!(snap.batched_decisions, 5);
    }
}
