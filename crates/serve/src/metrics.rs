//! Serving-layer counters: cheap atomics sampled into a serializable
//! snapshot.
//!
//! Every hot-path touch is a single relaxed atomic op; nothing here takes a
//! lock, so the ingest shards and the query engine can bump counters from
//! their own threads without coupling.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

use serde::Serialize;

/// Number of power-of-two latency buckets (covers < 1 µs up to > 1 s).
pub const LATENCY_BUCKETS: usize = 21;

/// Live counters shared by the service's threads.
#[derive(Debug)]
pub struct ServeMetrics {
    /// Access records accepted into shard queues.
    pub ingested_records: AtomicU64,
    /// Ingest batches accepted (post-routing, one per shard touched).
    pub ingest_batches: AtomicU64,
    /// Per-shard sub-batches rejected by backpressure: when `try_ingest`
    /// hits a full shard queue, the failed sub-batch *and* every sub-batch
    /// it had not yet sent count here (one call can route to several
    /// shards, so one rejected call may drop several sub-batches).
    pub dropped_batches: AtomicU64,
    /// Records inside dropped sub-batches — none of these were ingested.
    /// `ingested_records + dropped_records` equals the records offered to
    /// `try_ingest`/`ingest` (sub-batches queued before the full shard was
    /// hit stay queued and count as ingested).
    pub dropped_records: AtomicU64,
    /// Per-shard queued-batch depth (incremented on enqueue, decremented
    /// when the shard actor finishes the batch).
    pub queue_depth: Vec<AtomicUsize>,
    /// Placement decisions served.
    pub decisions: AtomicU64,
    /// Decisions answered from a fused pass covering more than one request.
    pub batched_decisions: AtomicU64,
    /// Decisions answered by a single-request pass.
    pub solo_decisions: AtomicU64,
    /// Decisions that shared a deduplicated feature row with another
    /// request in the same batch (same file, same access shape).
    pub coalesced_decisions: AtomicU64,
    /// Feature rows actually pushed through the network.
    pub fused_rows: AtomicU64,
    /// Model hot-swaps picked up by the query engine.
    pub model_swaps: AtomicU64,
    /// Retrain cycles completed by the background trainer.
    pub retrains: AtomicU64,
    /// Decision latency histogram; bucket `i` counts latencies in
    /// `[2^i, 2^(i+1))` microseconds (bucket 0 is `< 2 µs`, the last
    /// bucket is open-ended).
    pub latency_us: [AtomicU64; LATENCY_BUCKETS],
}

impl ServeMetrics {
    /// Fresh zeroed counters for `shards` ingest shards.
    pub fn new(shards: usize) -> Self {
        ServeMetrics {
            ingested_records: AtomicU64::new(0),
            ingest_batches: AtomicU64::new(0),
            dropped_batches: AtomicU64::new(0),
            dropped_records: AtomicU64::new(0),
            queue_depth: (0..shards).map(|_| AtomicUsize::new(0)).collect(),
            decisions: AtomicU64::new(0),
            batched_decisions: AtomicU64::new(0),
            solo_decisions: AtomicU64::new(0),
            coalesced_decisions: AtomicU64::new(0),
            fused_rows: AtomicU64::new(0),
            model_swaps: AtomicU64::new(0),
            retrains: AtomicU64::new(0),
            latency_us: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }

    /// Records one decision latency in microseconds.
    pub fn observe_latency_us(&self, micros: u64) {
        let bucket = (64 - micros.leading_zeros() as usize)
            .saturating_sub(1)
            .min(LATENCY_BUCKETS - 1);
        self.latency_us[bucket].fetch_add(1, Ordering::Relaxed);
    }

    /// A consistent-enough point-in-time copy of every counter.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            ingested_records: self.ingested_records.load(Ordering::Relaxed),
            ingest_batches: self.ingest_batches.load(Ordering::Relaxed),
            dropped_batches: self.dropped_batches.load(Ordering::Relaxed),
            dropped_records: self.dropped_records.load(Ordering::Relaxed),
            queue_depth: self
                .queue_depth
                .iter()
                .map(|d| d.load(Ordering::Relaxed))
                .collect(),
            decisions: self.decisions.load(Ordering::Relaxed),
            batched_decisions: self.batched_decisions.load(Ordering::Relaxed),
            solo_decisions: self.solo_decisions.load(Ordering::Relaxed),
            coalesced_decisions: self.coalesced_decisions.load(Ordering::Relaxed),
            fused_rows: self.fused_rows.load(Ordering::Relaxed),
            model_swaps: self.model_swaps.load(Ordering::Relaxed),
            retrains: self.retrains.load(Ordering::Relaxed),
            latency_us: self
                .latency_us
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
        }
    }
}

/// Plain-data copy of [`ServeMetrics`], for reports and JSON output.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct MetricsSnapshot {
    /// See [`ServeMetrics::ingested_records`].
    pub ingested_records: u64,
    /// See [`ServeMetrics::ingest_batches`].
    pub ingest_batches: u64,
    /// See [`ServeMetrics::dropped_batches`].
    pub dropped_batches: u64,
    /// See [`ServeMetrics::dropped_records`].
    pub dropped_records: u64,
    /// See [`ServeMetrics::queue_depth`].
    pub queue_depth: Vec<usize>,
    /// See [`ServeMetrics::decisions`].
    pub decisions: u64,
    /// See [`ServeMetrics::batched_decisions`].
    pub batched_decisions: u64,
    /// See [`ServeMetrics::solo_decisions`].
    pub solo_decisions: u64,
    /// See [`ServeMetrics::coalesced_decisions`].
    pub coalesced_decisions: u64,
    /// See [`ServeMetrics::fused_rows`].
    pub fused_rows: u64,
    /// See [`ServeMetrics::model_swaps`].
    pub model_swaps: u64,
    /// See [`ServeMetrics::retrains`].
    pub retrains: u64,
    /// See [`ServeMetrics::latency_us`].
    pub latency_us: Vec<u64>,
}

impl MetricsSnapshot {
    /// Approximate p99 decision latency in microseconds (upper edge of the
    /// bucket containing the 99th percentile), or 0 with no data.
    pub fn p99_latency_us(&self) -> u64 {
        let total: u64 = self.latency_us.iter().sum();
        if total == 0 {
            return 0;
        }
        let target = (total * 99).div_ceil(100);
        let mut seen = 0;
        for (i, &count) in self.latency_us.iter().enumerate() {
            seen += count;
            if seen >= target {
                return 1 << (i + 1);
            }
        }
        1 << LATENCY_BUCKETS
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_buckets_are_log2() {
        let m = ServeMetrics::new(2);
        m.observe_latency_us(0); // bucket 0
        m.observe_latency_us(1); // bucket 0
        m.observe_latency_us(2); // bucket 1
        m.observe_latency_us(3); // bucket 1
        m.observe_latency_us(1024); // bucket 10
        m.observe_latency_us(u64::MAX); // clamped to last bucket
        let snap = m.snapshot();
        assert_eq!(snap.latency_us[0], 2);
        assert_eq!(snap.latency_us[1], 2);
        assert_eq!(snap.latency_us[10], 1);
        assert_eq!(snap.latency_us[LATENCY_BUCKETS - 1], 1);
        assert_eq!(snap.queue_depth.len(), 2);
    }

    #[test]
    fn p99_is_bucket_upper_edge() {
        let m = ServeMetrics::new(1);
        for _ in 0..99 {
            m.observe_latency_us(1);
        }
        m.observe_latency_us(5000);
        let snap = m.snapshot();
        assert_eq!(snap.p99_latency_us(), 2);
        assert_eq!(
            MetricsSnapshot {
                latency_us: vec![0; LATENCY_BUCKETS],
                ..snap
            }
            .p99_latency_us(),
            0
        );
    }
}
