//! [`SegmentRetainer`]: a byte-capped in-memory cache of sealed WAL
//! segments, kept past their absorb so a trailing replica can backfill
//! by sequence number instead of re-reading cold pages.
//!
//! The checkpoint seal hook feeds every sealed segment in here; the
//! catch-up responder serves `(floor, seq]` ranges out of it when the
//! whole range is still resident. When a replica is down long enough
//! that eviction opens a hole, catch-up falls back to cursor exports
//! from the cold store — retention is an optimization, never a
//! durability obligation, which is what keeps it safe to bound: disk
//! and memory usage stay capped no matter how long a replica is gone.

use std::collections::BTreeMap;
use std::collections::VecDeque;
use std::sync::Arc;

use parking_lot::Mutex;

/// Byte-capped retention of sealed segments keyed by `(shard, seq)`.
/// Eviction is strictly oldest-sealed-first (global insertion order), so
/// what survives is always the *newest* suffix of each shard's segment
/// chain — exactly the shape the sequence-mode catch-up path needs.
///
/// All methods take `&self`; the retainer is shared between the seal
/// hook (producer) and the catch-up responder (consumer).
#[derive(Debug)]
pub struct SegmentRetainer {
    max_bytes: usize,
    inner: Mutex<RetainerInner>,
}

#[derive(Debug, Default)]
struct RetainerInner {
    /// Per-shard segment bytes, ordered by sequence number.
    segments: BTreeMap<u32, BTreeMap<u64, Arc<Vec<u8>>>>,
    /// Global seal order, for oldest-first eviction.
    order: VecDeque<(u32, u64)>,
    bytes: usize,
    evicted: u64,
}

impl SegmentRetainer {
    /// A retainer that keeps at most `max_bytes` of segment payload.
    /// Zero means "retain nothing" (every lookup misses, catch-up always
    /// goes cold).
    #[must_use]
    pub fn new(max_bytes: usize) -> SegmentRetainer {
        SegmentRetainer {
            max_bytes,
            inner: Mutex::new(RetainerInner::default()),
        }
    }

    /// Inserts one sealed segment, evicting oldest-sealed segments until
    /// the cap holds again. A segment larger than the whole cap is
    /// dropped immediately (counted as an eviction).
    pub fn insert(&self, shard: u32, seq: u64, bytes: Vec<u8>) {
        let mut inner = self.inner.lock();
        let len = bytes.len();
        if len > self.max_bytes {
            inner.evicted += 1;
            return;
        }
        let prev = inner
            .segments
            .entry(shard)
            .or_default()
            .insert(seq, Arc::new(bytes));
        if let Some(prev) = prev {
            inner.bytes -= prev.len();
        } else {
            inner.order.push_back((shard, seq));
        }
        inner.bytes += len;
        while inner.bytes > self.max_bytes {
            let Some((s, q)) = inner.order.pop_front() else {
                break;
            };
            if let Some(gone) = inner.segments.get_mut(&s).and_then(|m| m.remove(&q)) {
                inner.bytes -= gone.len();
                inner.evicted += 1;
            }
        }
    }

    /// Whether every sequence in `(after_seq, up_to_seq]` for `shard` is
    /// resident. Sequence numbers are dense per shard (the WAL seals
    /// them monotonically), so this is a count check over the range.
    /// Vacuously true when the range is empty.
    #[must_use]
    pub fn holds_range(&self, shard: u32, after_seq: u64, up_to_seq: u64) -> bool {
        if up_to_seq <= after_seq {
            return true;
        }
        let inner = self.inner.lock();
        let Some(m) = inner.segments.get(&shard) else {
            return false;
        };
        let held = m
            .range(after_seq + 1..=up_to_seq)
            .count() as u64;
        held == up_to_seq - after_seq
    }

    /// The lowest retained segment for `shard` with `seq > after_seq`.
    #[must_use]
    pub fn next_after(&self, shard: u32, after_seq: u64) -> Option<(u64, Arc<Vec<u8>>)> {
        let inner = self.inner.lock();
        inner
            .segments
            .get(&shard)?
            .range(after_seq + 1..)
            .next()
            .map(|(&seq, bytes)| (seq, Arc::clone(bytes)))
    }

    /// Total retained payload bytes (always `<=` the cap).
    #[must_use]
    pub fn bytes(&self) -> usize {
        self.inner.lock().bytes
    }

    /// Segments retained right now, across all shards.
    #[must_use]
    pub fn len(&self) -> usize {
        self.inner.lock().order.len()
    }

    /// Whether nothing is retained.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.inner.lock().bytes == 0
    }

    /// Segments evicted (or refused outright) since creation — the
    /// regression signal that long-gone replicas cost bounded memory.
    #[must_use]
    pub fn evicted(&self) -> u64 {
        self.inner.lock().evicted
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn retention_stays_bounded_under_unbounded_sealing() {
        // The leak-regression test: a replica down "forever" while the
        // primary seals thousands of segments must cost at most the cap.
        let cap = 16 * 1024;
        let retainer = SegmentRetainer::new(cap);
        for seq in 1..=4096u64 {
            retainer.insert((seq % 4) as u32, seq, vec![0u8; 512]);
            assert!(retainer.bytes() <= cap, "cap breached at seq {seq}");
        }
        assert!(retainer.evicted() > 0);
        assert_eq!(retainer.bytes(), retainer.len() * 512);
        // Only the newest suffix survives.
        assert!(retainer.next_after(0, 0).is_some());
        assert!(!retainer.holds_range(0, 0, 4096));
    }

    #[test]
    fn holds_range_demands_contiguity() {
        let retainer = SegmentRetainer::new(1 << 20);
        retainer.insert(0, 1, vec![1; 10]);
        retainer.insert(0, 2, vec![2; 10]);
        retainer.insert(0, 4, vec![4; 10]);
        assert!(retainer.holds_range(0, 0, 2));
        assert!(retainer.holds_range(0, 1, 2));
        // Empty range is vacuously held.
        assert!(retainer.holds_range(0, 7, 7));
        // Seq 3 is missing.
        assert!(!retainer.holds_range(0, 0, 4));
        assert!(!retainer.holds_range(0, 2, 4));
        // Unknown shard holds nothing non-empty.
        assert!(!retainer.holds_range(9, 0, 1));
        let (seq, bytes) = retainer.next_after(0, 2).unwrap();
        assert_eq!((seq, bytes[0]), (4, 4));
        assert!(retainer.next_after(0, 4).is_none());
    }

    #[test]
    fn reinsert_and_oversize_are_handled() {
        let retainer = SegmentRetainer::new(100);
        retainer.insert(0, 1, vec![0; 60]);
        // Re-sealing the same (shard, seq) replaces, not duplicates.
        retainer.insert(0, 1, vec![0; 40]);
        assert_eq!(retainer.bytes(), 40);
        assert_eq!(retainer.len(), 1);
        // A segment over the whole cap is refused, not looped on.
        retainer.insert(0, 2, vec![0; 101]);
        assert_eq!(retainer.bytes(), 40);
        assert_eq!(retainer.evicted(), 1);
        assert!(!retainer.is_empty());
    }
}
