//! [`PlacementService`]: the public face of the serving layer, wiring the
//! ingest shards, the batched query engine, and the background trainer
//! together behind one handle.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use geomancy_core::drl::DrlConfig;
use geomancy_replaydb::ReplayDb;
use geomancy_sim::record::{AccessRecord, DeviceId};

use crate::batch::{BatchEngine, BatchParams, Decision, ModelSlot, PlacementRequest, QueryError};
use crate::metrics::{MetricsSnapshot, ServeMetrics};
use crate::shard::{Backpressure, ShardSet};
use crate::trainer::{TrainError, Trainer};

/// Configuration of a [`PlacementService`].
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Ingest shards (each an independent actor with its own queue/WAL).
    pub shards: usize,
    /// Bounded depth of each shard queue and of the query queue, in
    /// messages.
    pub queue_capacity: usize,
    /// How long the query engine holds an open batch for stragglers, in
    /// microseconds. 0 fuses only what is already queued.
    pub batch_window_micros: u64,
    /// Maximum placement requests fused into one forward pass. 1 disables
    /// coalescing entirely (the per-file baseline).
    pub max_batch: usize,
    /// Directory for per-shard WALs; `None` keeps shards memory-only.
    pub wal_dir: Option<PathBuf>,
    /// Candidate devices ranked for every placement request.
    pub candidates: Vec<DeviceId>,
    /// DRL engine configuration used by the background trainer.
    pub drl: DrlConfig,
    /// Auto-retrain after this many newly ingested records (`None`
    /// retrains only on explicit [`PlacementService::retrain_now`]).
    pub retrain_every_records: Option<u64>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            shards: 4,
            queue_capacity: 1024,
            batch_window_micros: 100,
            max_batch: 256,
            wal_dir: None,
            candidates: (0..4).map(DeviceId).collect(),
            drl: DrlConfig::default(),
            retrain_every_records: None,
        }
    }
}

/// The online placement service (see the crate docs for the architecture).
#[derive(Debug)]
pub struct PlacementService {
    shards: Arc<ShardSet>,
    engine: Option<BatchEngine>,
    trainer: Option<Trainer>,
    slot: Arc<ModelSlot>,
    metrics: Arc<ServeMetrics>,
    /// Ingest high-water mark in simulated microseconds; stamps query
    /// times so identical request shapes coalesce.
    clock_micros: Arc<AtomicU64>,
    /// Records ingested at the last auto-retrain trigger.
    last_retrain_at: AtomicU64,
    retrain_every_records: Option<u64>,
}

impl PlacementService {
    /// Starts the service: spawns `config.shards` ingest actors, the query
    /// engine, and the trainer.
    ///
    /// # Panics
    ///
    /// Panics on a zero shard count, zero queue capacity, zero
    /// `max_batch`, empty candidate list, or an unopenable WAL directory.
    pub fn start(config: ServeConfig) -> Self {
        let metrics = Arc::new(ServeMetrics::new(config.shards));
        let shards = Arc::new(ShardSet::spawn(
            config.shards,
            config.queue_capacity,
            config.wal_dir.clone(),
            Arc::clone(&metrics),
        ));
        let slot = Arc::new(ModelSlot::new());
        let clock_micros = Arc::new(AtomicU64::new(0));
        let engine = BatchEngine::spawn(
            BatchParams {
                max_batch: config.max_batch,
                window: std::time::Duration::from_micros(config.batch_window_micros),
                candidates: config.candidates.clone(),
            },
            Arc::clone(&slot),
            Arc::clone(&clock_micros),
            Arc::clone(&metrics),
            config.queue_capacity,
        );
        let trainer = Trainer::spawn(
            config.drl.clone(),
            &shards,
            Arc::clone(&slot),
            Arc::clone(&metrics),
        );
        PlacementService {
            shards,
            engine: Some(engine),
            trainer: Some(trainer),
            slot,
            metrics,
            clock_micros,
            last_retrain_at: AtomicU64::new(0),
            retrain_every_records: config.retrain_every_records,
        }
    }

    /// Blocking ingest: waits on full shard queues, drops nothing.
    ///
    /// # Errors
    ///
    /// Returns [`Backpressure`] only if a shard actor has died.
    pub fn ingest(
        &self,
        timestamp_micros: u64,
        records: &[AccessRecord],
    ) -> Result<(), Backpressure> {
        self.clock_micros
            .fetch_max(timestamp_micros, Ordering::Relaxed);
        let result = self.shards.ingest(timestamp_micros, records);
        self.maybe_auto_retrain();
        result
    }

    /// Non-blocking ingest: a full shard queue rejects the call with
    /// [`Backpressure`] (unsent sub-batches are counted in
    /// `dropped_batches` and their records in `dropped_records`).
    ///
    /// # Errors
    ///
    /// Returns [`Backpressure`] naming the full shard.
    pub fn try_ingest(
        &self,
        timestamp_micros: u64,
        records: &[AccessRecord],
    ) -> Result<(), Backpressure> {
        self.clock_micros
            .fetch_max(timestamp_micros, Ordering::Relaxed);
        let result = self.shards.try_ingest(timestamp_micros, records);
        self.maybe_auto_retrain();
        result
    }

    fn maybe_auto_retrain(&self) {
        let Some(every) = self.retrain_every_records else {
            return;
        };
        let ingested = self.metrics.ingested_records.load(Ordering::Relaxed);
        let last = self.last_retrain_at.load(Ordering::Relaxed);
        if ingested.saturating_sub(last) >= every
            && self
                .last_retrain_at
                .compare_exchange(last, ingested, Ordering::Relaxed, Ordering::Relaxed)
                .is_ok()
        {
            if let Some(t) = &self.trainer {
                t.request_retrain();
            }
        }
    }

    /// One placement decision (the per-file baseline path).
    ///
    /// # Errors
    ///
    /// See [`QueryError`].
    pub fn query(&self, request: PlacementRequest) -> Result<Decision, QueryError> {
        let mut v = self.query_many(std::slice::from_ref(&request))?;
        Ok(v.pop().expect("one decision per request"))
    }

    /// Decisions for a whole slice of requests, submitted as one message —
    /// the batched path the engine fuses and dedups.
    ///
    /// # Errors
    ///
    /// See [`QueryError`].
    pub fn query_many(&self, requests: &[PlacementRequest]) -> Result<Vec<Decision>, QueryError> {
        self.engine
            .as_ref()
            .expect("engine alive until shutdown")
            .query_many(requests)
    }

    /// Runs a retrain cycle now and waits for its model to publish;
    /// returns the new epoch.
    ///
    /// # Errors
    ///
    /// See [`TrainError`].
    pub fn retrain_now(&self) -> Result<u64, TrainError> {
        self.trainer
            .as_ref()
            .expect("trainer alive until shutdown")
            .retrain_now()
    }

    /// Epoch of the most recently published model (0 = none yet).
    pub fn published_epoch(&self) -> u64 {
        self.slot.published_epoch()
    }

    /// Point-in-time copy of the service counters.
    pub fn metrics(&self) -> MetricsSnapshot {
        self.metrics.snapshot()
    }

    /// Orderly shutdown: trainer first (no more publishes), then the query
    /// engine (drains in-flight submissions), then the shards (drain their
    /// queues, flush WALs). Returns the final per-shard databases.
    pub fn shutdown(mut self) -> Vec<ReplayDb> {
        if let Some(t) = self.trainer.take() {
            t.shutdown();
        }
        if let Some(e) = self.engine.take() {
            e.shutdown();
        }
        let shards = Arc::clone(&self.shards);
        drop(self); // release the service's Arc before unwrapping
        Arc::try_unwrap(shards)
            .expect("all shard handles released at shutdown")
            .shutdown()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use geomancy_sim::record::FileId;

    fn rec(n: u64, fid: u64, dev: u32, dt_ms: u64) -> AccessRecord {
        let open_ms = n * 1000;
        let close_ms = open_ms + dt_ms;
        AccessRecord {
            access_number: n,
            fid: FileId(fid),
            fsid: DeviceId(dev),
            rb: 1_000_000,
            wb: 0,
            ots: open_ms / 1000,
            otms: (open_ms % 1000) as u16,
            cts: close_ms / 1000,
            ctms: (close_ms % 1000) as u16,
        }
    }

    fn test_config() -> ServeConfig {
        ServeConfig {
            shards: 2,
            candidates: vec![DeviceId(0), DeviceId(1)],
            drl: DrlConfig {
                epochs: 20,
                smoothing_window: 4,
                ..DrlConfig::default()
            },
            ..ServeConfig::default()
        }
    }

    /// Device 1 is ~4x faster than device 0.
    fn ingest_biased(service: &PlacementService, n: u64) {
        for i in 0..n {
            let dev = (i % 2) as u32;
            let dt = if dev == 0 { 400 } else { 100 };
            service
                .ingest(i * 1_000_000, &[rec(i, i % 4, dev, dt)])
                .unwrap();
        }
    }

    #[test]
    fn query_before_model_is_not_ready() {
        let service = PlacementService::start(test_config());
        let err = service
            .query(PlacementRequest {
                fid: FileId(0),
                read_bytes: 1,
                write_bytes: 0,
            })
            .unwrap_err();
        assert_eq!(err, QueryError::NotReady);
        service.shutdown();
    }

    #[test]
    fn ingest_retrain_query_round_trip() {
        let service = PlacementService::start(test_config());
        ingest_biased(&service, 300);
        let epoch = service.retrain_now().expect("enough data");
        assert_eq!(epoch, 1);
        let decision = service
            .query(PlacementRequest {
                fid: FileId(1),
                read_bytes: 1_000_000,
                write_bytes: 0,
            })
            .expect("model published");
        assert_eq!(decision.model_epoch, 1);
        assert_eq!(decision.best, DeviceId(1), "picked the slower device");
        let dbs = service.shutdown();
        let total: usize = dbs.iter().map(|db| db.len()).sum();
        assert_eq!(total, 300);
    }

    #[test]
    fn query_many_fuses_and_dedups() {
        let service = PlacementService::start(test_config());
        ingest_biased(&service, 300);
        service.retrain_now().expect("enough data");
        // 30 requests over 3 distinct shapes → 3 unique rows.
        let requests: Vec<PlacementRequest> = (0..30)
            .map(|i| PlacementRequest {
                fid: FileId(i % 3),
                read_bytes: 1_000_000,
                write_bytes: 0,
            })
            .collect();
        let decisions = service.query_many(&requests).unwrap();
        assert_eq!(decisions.len(), 30);
        for d in &decisions {
            assert_eq!(d.batch_requests, 30);
            assert_eq!(d.unique_rows, 3);
        }
        let m = service.metrics();
        assert_eq!(m.decisions, 30);
        assert_eq!(m.batched_decisions, 30);
        assert_eq!(m.coalesced_decisions, 27);
        service.shutdown();
    }

    #[test]
    fn retrain_without_data_reports_not_enough() {
        let service = PlacementService::start(test_config());
        assert_eq!(service.retrain_now(), Err(TrainError::NotEnoughData));
        service.shutdown();
    }

    #[test]
    fn auto_retrain_fires_on_ingest_volume() {
        let mut config = test_config();
        config.retrain_every_records = Some(100);
        let service = PlacementService::start(config);
        ingest_biased(&service, 250);
        // The trigger is async; wait for a publish.
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(30);
        while service.published_epoch() == 0 {
            assert!(
                std::time::Instant::now() < deadline,
                "auto retrain never published"
            );
            std::thread::sleep(std::time::Duration::from_millis(10));
        }
        assert!(service.metrics().retrains >= 1);
        service.shutdown();
    }

    #[test]
    fn queries_after_shutdown_error_cleanly() {
        let service = PlacementService::start(test_config());
        let shards = service.metrics().queue_depth.len();
        assert_eq!(shards, 2);
        service.shutdown();
    }
}
