//! [`PlacementService`]: the public face of the serving layer, wiring the
//! ingest shards, the batched query engine, and the background trainer
//! together behind one handle.
//!
//! All three subsystems run as actors on one shared
//! [`geomancy_runtime::Reactor`] pool, so the service's thread count is
//! the (small, fixed) worker count instead of `shards + 2`. In front of
//! the query path sits a cross-shard admission controller: when the
//! service is over its queue-depth or latency watermark, `query_many`
//! defers briefly and then sheds with [`QueryError::Overloaded`] instead
//! of letting queues grow without bound — and every shed request is
//! accounted (`queries_offered == queries_admitted + queries_shed`),
//! mirroring the ingest side's `ingested + dropped == offered`.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use geomancy_core::drl::DrlConfig;
use geomancy_replaydb::ReplayDb;
use geomancy_runtime::{Reactor, ReactorConfig, TimeSource};
use geomancy_sim::record::{AccessRecord, DeviceId};
use geomancy_sim::SharedSimClock;

use geomancy_store::{AbsorbReport, PagedStore, SharedPagedStore, StoreConfig};

use crate::batch::{BatchEngine, BatchParams, Decision, ModelSlot, PlacementRequest, QueryError};
use crate::checkpoint::{CheckpointError, Checkpointer};
use crate::metrics::{MetricsSnapshot, ServeMetrics};
use crate::shard::{Backpressure, ShardSet};
use crate::trainer::{TrainError, TrainedMeta, Trainer, TrainerConfig};

/// Watermarks for the cross-shard admission controller. Disabled by
/// default: every field `None`/zero/empty admits everything.
#[derive(Debug, Clone, Default)]
pub struct AdmissionConfig {
    /// Shed when admitting would push the in-flight request count past
    /// this bound.
    pub max_pending_requests: Option<u64>,
    /// Shed while the decision-latency EWMA (µs) sits above this bound.
    pub latency_watermark_us: Option<u64>,
    /// Per-shard pending bounds, one entry per ingest shard (requests map
    /// to shards by the queried file's [`crate::shard_of`] hash): a
    /// submission sheds when any shard it targets would exceed its own
    /// bound, so one hot shard sheds without starving queries aimed at
    /// the others. Empty disables per-shard admission; a non-empty vector
    /// must have exactly `shards` entries.
    pub per_shard_pending: Vec<u64>,
    /// Before shedding, wait this many wall microseconds once and
    /// re-check — a momentary spike drains instead of shedding. 0 sheds
    /// immediately.
    pub defer_micros: u64,
}

impl AdmissionConfig {
    fn enabled(&self) -> bool {
        self.max_pending_requests.is_some()
            || self.latency_watermark_us.is_some()
            || !self.per_shard_pending.is_empty()
    }
}

/// Cold-store settings: where checkpointed history pages live and how the
/// checkpointer behaves. Requires [`ServeConfig::wal_dir`] to be set —
/// the store is filled by absorbing sealed shard WAL segments.
#[derive(Debug, Clone)]
pub struct StoreSettings {
    /// Directory holding `pages.bin`, `index.json`, and the manifest.
    pub dir: PathBuf,
    /// Fixed page size in bytes (4–64 KiB).
    pub page_size: usize,
    /// Pages held decoded in the in-process page cache.
    pub cache_pages: usize,
    /// Checkpoint cadence in reactor microseconds (0 = only explicit
    /// [`PlacementService::checkpoint_now`] calls checkpoint).
    pub checkpoint_every_micros: u64,
    /// Records each shard keeps in memory after a checkpoint trims it —
    /// the hot tail the trainer and snapshot queries see.
    pub hot_tail: usize,
}

impl Default for StoreSettings {
    fn default() -> Self {
        let store = StoreConfig::default();
        StoreSettings {
            dir: PathBuf::from("geomancy-store"),
            page_size: store.page_size,
            cache_pages: store.cache_pages,
            checkpoint_every_micros: 0,
            hot_tail: 4096,
        }
    }
}

/// Configuration of a [`PlacementService`].
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Ingest shards (each an independent actor with its own queue/WAL).
    pub shards: usize,
    /// Bounded depth of each shard mailbox and of the query mailbox, in
    /// messages.
    pub queue_capacity: usize,
    /// How long the query engine holds an open batch for stragglers, in
    /// microseconds. 0 fuses only what is already queued.
    pub batch_window_micros: u64,
    /// Maximum placement requests fused into one forward pass. 1 disables
    /// coalescing entirely (the per-file baseline).
    pub max_batch: usize,
    /// Directory for per-shard WALs; `None` keeps shards memory-only.
    pub wal_dir: Option<PathBuf>,
    /// Candidate devices ranked for every placement request.
    pub candidates: Vec<DeviceId>,
    /// DRL engine configuration used by the background trainer.
    pub drl: DrlConfig,
    /// Auto-retrain after this many newly ingested records (`None`
    /// retrains only on explicit [`PlacementService::retrain_now`]).
    pub retrain_every_records: Option<u64>,
    /// Reactor pool workers running every actor (0 = auto-size).
    pub reactor_workers: usize,
    /// Admission-control watermarks for the query path.
    pub admission: AdmissionConfig,
    /// Cold paged store + background checkpointer; `None` keeps shard
    /// WALs growing unboundedly (the pre-store behavior). Requires
    /// `wal_dir`.
    pub store: Option<StoreSettings>,
    /// Retraining policy: warm-start vs. full cycles, replay mix, and
    /// the `auto` fallback threshold.
    pub trainer: TrainerConfig,
    /// Stable cluster node id reported in metrics (0 = single-node).
    pub node_id: u64,
    /// Called with each sealed WAL segment `(shard, seq, path)` after the
    /// checkpointer seals it and *before* absorption deletes it — the
    /// window in which a cluster node reads the bytes for WAL shipping.
    /// The hook runs on the checkpoint actor's worker: keep it to a file
    /// read plus a channel send.
    pub seal_hook: Option<SealHook>,
}

/// Callback signature for [`SealHook`]: `(shard, seq, segment_path)`.
pub type SealFn = dyn Fn(usize, u64, &std::path::Path) + Send + Sync;

/// Observer for sealed WAL segments (see [`ServeConfig::seal_hook`]).
#[derive(Clone)]
pub struct SealHook(pub Arc<SealFn>);

impl std::fmt::Debug for SealHook {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("SealHook(..)")
    }
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            shards: 4,
            queue_capacity: 1024,
            batch_window_micros: 100,
            max_batch: 256,
            wal_dir: None,
            candidates: (0..4).map(DeviceId).collect(),
            drl: DrlConfig::default(),
            retrain_every_records: None,
            reactor_workers: 0,
            admission: AdmissionConfig::default(),
            store: None,
            trainer: TrainerConfig::default(),
            node_id: 0,
            seal_hook: None,
        }
    }
}

/// The online placement service (see the crate docs for the architecture).
#[derive(Debug)]
pub struct PlacementService {
    reactor: Option<Reactor>,
    shards: Option<ShardSet>,
    engine: Option<BatchEngine>,
    trainer: Option<Trainer>,
    checkpointer: Option<Checkpointer>,
    store: Option<SharedPagedStore>,
    slot: Arc<ModelSlot>,
    metrics: Arc<ServeMetrics>,
    /// Ingest high-water mark in simulated microseconds; stamps query
    /// times so identical request shapes coalesce, and doubles as a
    /// publishable [`TimeSource`] a test can drive the reactor with.
    telemetry: SharedSimClock,
    /// Records ingested at the last auto-retrain trigger.
    last_retrain_at: AtomicU64,
    retrain_every_records: Option<u64>,
    admission: AdmissionConfig,
    /// Shard count, for mapping queried files to shards in per-shard
    /// admission.
    shard_count: usize,
}

/// Receipt for an admitted submission: what [`PlacementService::admit`]
/// charged to the pending gauges, so the release after the reply (or after
/// an orphaned completion) subtracts exactly the same amounts.
struct Admitted {
    total: u64,
    /// Per-shard request counts; empty when per-shard admission is off.
    per_shard: Vec<u64>,
}

impl PlacementService {
    /// Starts the service: one reactor pool running `config.shards` ingest
    /// actors, the query engine, and the trainer, timed by the wall clock.
    ///
    /// # Panics
    ///
    /// Panics on a zero shard count, zero queue capacity, zero
    /// `max_batch`, empty candidate list, or an unopenable WAL directory.
    pub fn start(config: ServeConfig) -> Self {
        let telemetry = SharedSimClock::new();
        PlacementService::start_inner(config, None, telemetry)
    }

    /// Starts the service with `clock` as *both* the reactor's time source
    /// and the telemetry clock: batch-window timers then fire only when
    /// simulated time is published past them (by ingest timestamps or by
    /// the test directly), making the whole pipeline deterministic.
    pub fn start_with_clock(config: ServeConfig, clock: SharedSimClock) -> Self {
        let time: Arc<dyn TimeSource> = Arc::new(clock.clone());
        PlacementService::start_inner(config, Some(time), clock)
    }

    fn start_inner(
        config: ServeConfig,
        time: Option<Arc<dyn TimeSource>>,
        telemetry: SharedSimClock,
    ) -> Self {
        assert!(
            config.admission.per_shard_pending.is_empty()
                || config.admission.per_shard_pending.len() == config.shards,
            "per_shard_pending must have one bound per shard"
        );
        let metrics = Arc::new(ServeMetrics::new(config.shards));
        metrics.node_id.store(config.node_id, Ordering::Relaxed);
        let mut reactor_config = ReactorConfig {
            workers: config.reactor_workers,
            name: "geomancy-serve".to_string(),
            ..ReactorConfig::default()
        };
        if let Some(time) = time {
            reactor_config.time = time;
        }
        let reactor = Reactor::new(reactor_config);

        // Open the cold store first: startup absorption replays any WAL
        // segments a crashed checkpoint left behind (exactly once — see
        // geomancy-store's crash tests), and the store's committed state
        // then floors the shards' timestamp clamp and segment numbering.
        let mut min_last_ts = 0u64;
        let mut seq_floors: Vec<u64> = Vec::new();
        let store = config.store.as_ref().map(|settings| {
            let wal_dir = config
                .wal_dir
                .clone()
                .expect("ServeConfig.store requires wal_dir");
            std::fs::create_dir_all(&wal_dir).expect("failed to create WAL directory");
            let (mut store, _report) = PagedStore::open(
                &settings.dir,
                StoreConfig {
                    page_size: settings.page_size,
                    cache_pages: settings.cache_pages,
                },
            )
            .expect("failed to open cold store");
            store
                .absorb_segments(&wal_dir, config.shards, None)
                .expect("startup WAL-segment absorption failed");
            min_last_ts = store.max_timestamp_micros().unwrap_or(0);
            seq_floors = store.absorbed().to_vec();
            metrics
                .store_pages
                .store(store.page_count() as u64, Ordering::Relaxed);
            metrics
                .store_cold_bytes
                .store(store.cold_bytes(), Ordering::Relaxed);
            store.into_shared()
        });
        let shards = ShardSet::spawn_on(
            &reactor,
            config.shards,
            config.queue_capacity,
            config.wal_dir.clone(),
            Arc::clone(&metrics),
            min_last_ts,
            &seq_floors,
        );
        let slot = Arc::new(ModelSlot::new());
        let engine = BatchEngine::spawn_on(
            &reactor,
            BatchParams {
                max_batch: config.max_batch,
                window_micros: config.batch_window_micros,
                candidates: config.candidates.clone(),
            },
            Arc::clone(&slot),
            telemetry.clone(),
            Arc::clone(&metrics),
            config.queue_capacity,
        );
        let trainer = Trainer::spawn_on(
            &reactor,
            config.drl.clone(),
            config.trainer.clone(),
            &shards,
            Arc::clone(&slot),
            Arc::clone(&metrics),
            store.clone(),
        );
        let checkpointer = store.as_ref().map(|store| {
            let settings = config.store.as_ref().expect("store settings present");
            Checkpointer::spawn_on(
                &reactor,
                &shards,
                Arc::clone(store),
                config.wal_dir.clone().expect("store requires wal_dir"),
                settings.checkpoint_every_micros,
                settings.hot_tail,
                Arc::clone(&metrics),
                config.seal_hook.clone(),
            )
        });
        PlacementService {
            reactor: Some(reactor),
            shards: Some(shards),
            engine: Some(engine),
            trainer: Some(trainer),
            checkpointer,
            store,
            slot,
            metrics,
            telemetry,
            last_retrain_at: AtomicU64::new(0),
            retrain_every_records: config.retrain_every_records,
            admission: config.admission,
            shard_count: config.shards,
        }
    }

    fn shards(&self) -> &ShardSet {
        self.shards.as_ref().expect("shards alive until shutdown")
    }

    /// Blocking ingest: waits on full shard mailboxes, drops nothing.
    ///
    /// # Errors
    ///
    /// Returns [`Backpressure`] only if a shard actor has died.
    pub fn ingest(
        &self,
        timestamp_micros: u64,
        records: &[AccessRecord],
    ) -> Result<(), Backpressure> {
        self.telemetry.publish_micros(timestamp_micros);
        let result = self.shards().ingest(timestamp_micros, records);
        self.maybe_auto_retrain();
        result
    }

    /// Non-blocking ingest: a full shard mailbox rejects the call with
    /// [`Backpressure`] (unsent sub-batches are counted in
    /// `dropped_batches` and their records in `dropped_records`).
    ///
    /// # Errors
    ///
    /// Returns [`Backpressure`] naming the full shard.
    pub fn try_ingest(
        &self,
        timestamp_micros: u64,
        records: &[AccessRecord],
    ) -> Result<(), Backpressure> {
        self.telemetry.publish_micros(timestamp_micros);
        let result = self.shards().try_ingest(timestamp_micros, records);
        self.maybe_auto_retrain();
        result
    }

    fn maybe_auto_retrain(&self) {
        let Some(every) = self.retrain_every_records else {
            return;
        };
        let ingested = self.metrics.ingested_records.load(Ordering::Relaxed);
        let last = self.last_retrain_at.load(Ordering::Relaxed);
        if ingested.saturating_sub(last) >= every
            && self
                .last_retrain_at
                .compare_exchange(last, ingested, Ordering::Relaxed, Ordering::Relaxed)
                .is_ok()
        {
            if let Some(t) = &self.trainer {
                t.request_retrain();
            }
        }
    }

    /// The watermark rule shared by the global and per-shard bounds: a
    /// single submission larger than a nonzero bound is judged against
    /// current occupancy instead (one oversized batch may overshoot the
    /// watermark while the service is quiet) — otherwise it could never
    /// be admitted and a retrying client would livelock. `max == 0` stays
    /// a hard shed-everything switch.
    fn bound_breached(pending: u64, incoming: u64, max: u64) -> bool {
        if incoming > max && max > 0 {
            pending > 0
        } else {
            pending + incoming > max
        }
    }

    /// Whether admitting `incoming` more requests (distributed over the
    /// shards as `per_shard`, when per-shard admission is on) would cross
    /// a watermark.
    fn over_watermarks(&self, incoming: u64, per_shard: &[u64]) -> bool {
        if let Some(max) = self.admission.max_pending_requests {
            let pending = self.metrics.pending_requests.load(Ordering::Relaxed);
            if PlacementService::bound_breached(pending, incoming, max) {
                return true;
            }
        }
        if let Some(watermark) = self.admission.latency_watermark_us {
            if self.metrics.latency_ewma_us.load(Ordering::Relaxed) > watermark {
                return true;
            }
        }
        self.breached_shards(per_shard).next().is_some()
    }

    /// Shards whose per-shard bound the submission would breach.
    fn breached_shards<'a>(&'a self, per_shard: &'a [u64]) -> impl Iterator<Item = usize> + 'a {
        self.admission
            .per_shard_pending
            .iter()
            .zip(per_shard)
            .enumerate()
            .filter(|(k, (&max, &incoming))| {
                incoming > 0
                    && PlacementService::bound_breached(
                        self.metrics.pending_per_shard[*k].load(Ordering::Relaxed),
                        incoming,
                        max,
                    )
            })
            .map(|(k, _)| k)
    }

    /// Runs the admission controller for one submission: over the
    /// watermarks, the call defers once (`defer_micros`) and then sheds;
    /// otherwise every offered request is accounted and charged to the
    /// pending gauges. The returned receipt must be passed to
    /// [`PlacementService::release`] exactly once after the submission is
    /// answered (or abandoned).
    fn admit(&self, requests: &[PlacementRequest]) -> Result<Admitted, QueryError> {
        let n = requests.len() as u64;
        let per_shard: Vec<u64> = if self.admission.per_shard_pending.is_empty() {
            Vec::new()
        } else {
            let mut counts = vec![0u64; self.shard_count];
            for req in requests {
                counts[crate::shard::shard_of(req.fid, self.shard_count)] += 1;
            }
            counts
        };
        if self.admission.enabled() {
            if self.over_watermarks(n, &per_shard) && self.admission.defer_micros > 0 {
                std::thread::sleep(std::time::Duration::from_micros(
                    self.admission.defer_micros,
                ));
            }
            if self.over_watermarks(n, &per_shard) {
                let _guard = self.metrics.accounting();
                self.metrics.queries_offered.fetch_add(n, Ordering::Relaxed);
                self.metrics.queries_shed.fetch_add(n, Ordering::Relaxed);
                for k in self.breached_shards(&per_shard) {
                    self.metrics.shard_shed[k].fetch_add(per_shard[k], Ordering::Relaxed);
                }
                return Err(QueryError::Overloaded);
            }
        }
        {
            let _guard = self.metrics.accounting();
            self.metrics.queries_offered.fetch_add(n, Ordering::Relaxed);
            self.metrics
                .queries_admitted
                .fetch_add(n, Ordering::Relaxed);
        }
        let pending = self
            .metrics
            .pending_requests
            .fetch_add(n, Ordering::Relaxed)
            + n;
        self.metrics
            .pending_peak
            .fetch_max(pending, Ordering::Relaxed);
        for (k, &count) in per_shard.iter().enumerate() {
            if count > 0 {
                self.metrics.pending_per_shard[k].fetch_add(count, Ordering::Relaxed);
            }
        }
        Ok(Admitted {
            total: n,
            per_shard,
        })
    }

    /// Returns an admitted submission's charge to the pending gauges.
    fn release(&self, admitted: &Admitted) {
        self.metrics
            .pending_requests
            .fetch_sub(admitted.total, Ordering::Relaxed);
        for (k, &count) in admitted.per_shard.iter().enumerate() {
            if count > 0 {
                self.metrics.pending_per_shard[k].fetch_sub(count, Ordering::Relaxed);
            }
        }
    }

    /// One placement decision (the per-file baseline path).
    ///
    /// # Errors
    ///
    /// See [`QueryError`].
    pub fn query(&self, request: PlacementRequest) -> Result<Decision, QueryError> {
        let mut v = self.query_many(std::slice::from_ref(&request))?;
        Ok(v.pop().expect("one decision per request"))
    }

    /// Decisions for a whole slice of requests, submitted as one message —
    /// the batched path the engine fuses and dedups. Runs through the
    /// admission controller first: over the watermarks, the call defers
    /// once (`defer_micros`) and then sheds with
    /// [`QueryError::Overloaded`]; shed requests never reach the engine.
    ///
    /// # Errors
    ///
    /// See [`QueryError`].
    pub fn query_many(&self, requests: &[PlacementRequest]) -> Result<Vec<Decision>, QueryError> {
        if requests.is_empty() {
            return Ok(Vec::new());
        }
        let admitted = self.admit(requests)?;
        let result = self
            .engine
            .as_ref()
            .expect("engine alive until shutdown")
            .query_many(requests);
        self.release(&admitted);
        result
    }

    /// Asynchronous [`PlacementService::query_many`]: runs the same
    /// admission controller, then hands the submission to the engine with
    /// a completion instead of blocking. `done` runs exactly once — on
    /// this thread for shed (`Overloaded`) or empty submissions, inline
    /// in the engine actor otherwise, so it must not block (the transport
    /// layer resolves it to a non-blocking send into a writer actor).
    ///
    /// Pending accounting is released when the completion fires even if
    /// the caller that submitted the request is gone (a disconnected
    /// client never leaks admission budget).
    pub fn query_many_async(
        &self,
        requests: Vec<PlacementRequest>,
        done: impl FnOnce(Result<Vec<Decision>, QueryError>) + Send + 'static,
    ) {
        if requests.is_empty() {
            done(Ok(Vec::new()));
            return;
        }
        let admitted = match self.admit(&requests) {
            Ok(admitted) => admitted,
            Err(e) => {
                done(Err(e));
                return;
            }
        };
        let metrics = Arc::clone(&self.metrics);
        self.engine
            .as_ref()
            .expect("engine alive until shutdown")
            .query_many_async(
                requests,
                Box::new(move |result| {
                    // Inline release (self may be gone by completion time).
                    metrics
                        .pending_requests
                        .fetch_sub(admitted.total, Ordering::Relaxed);
                    for (k, &count) in admitted.per_shard.iter().enumerate() {
                        if count > 0 {
                            metrics.pending_per_shard[k].fetch_sub(count, Ordering::Relaxed);
                        }
                    }
                    done(result);
                }),
            );
    }

    /// Runs a retrain cycle now and waits for its model to publish;
    /// returns the new epoch.
    ///
    /// # Errors
    ///
    /// See [`TrainError`].
    pub fn retrain_now(&self) -> Result<u64, TrainError> {
        self.trainer
            .as_ref()
            .expect("trainer alive until shutdown")
            .retrain_now()
    }

    /// Runs one checkpoint cycle now — seal every shard WAL, absorb the
    /// segments into the cold store, trim the hot tails — and blocks
    /// until the store commit lands. Returns what was absorbed.
    ///
    /// # Errors
    ///
    /// [`CheckpointError::Down`] when the service runs without a store
    /// (or after shutdown), [`CheckpointError::Store`] if the absorption
    /// failed.
    pub fn checkpoint_now(&self) -> Result<AbsorbReport, CheckpointError> {
        self.checkpointer
            .as_ref()
            .ok_or(CheckpointError::Down)?
            .checkpoint_now()
    }

    /// The shared cold store, when the service runs with one — readers
    /// can query checkpointed history concurrently with serving.
    pub fn store(&self) -> Option<&SharedPagedStore> {
        self.store.as_ref()
    }

    /// Epoch of the most recently published model (0 = none yet).
    pub fn published_epoch(&self) -> u64 {
        self.slot.published_epoch()
    }

    /// Metadata recorded alongside the most recently published model:
    /// per-shard watermarks, whether the cycle warm-started, the model
    /// spec, and the validation MAE. `None` until the first publish.
    pub fn trained_meta(&self) -> Option<TrainedMeta> {
        self.slot.trained_meta()
    }

    /// The service's shared reactor pool, for co-locating control-plane
    /// actors (the cluster failover controller spawns here so one pool
    /// runs the whole node).
    pub fn reactor(&self) -> &Reactor {
        self.reactor.as_ref().expect("reactor alive until shutdown")
    }

    /// Number of reactor pool workers running the service's actors.
    pub fn reactor_workers(&self) -> usize {
        self.reactor
            .as_ref()
            .expect("reactor alive until shutdown")
            .worker_count()
    }

    /// Coherent point-in-time copy of the service counters, with live
    /// gauges (engine mailbox depth) filled in.
    pub fn metrics(&self) -> MetricsSnapshot {
        let mut snap = self.metrics.snapshot();
        if let Some(engine) = &self.engine {
            snap.engine_queue = engine.queue_len();
        }
        if let Some(store) = &self.store {
            let store = store.read();
            snap.store_pages = store.page_count() as u64;
            snap.store_cold_bytes = store.cold_bytes();
        }
        snap
    }

    /// Orderly shutdown: the reactor drains every mailbox — queued ingest
    /// batches apply (WALs flush), in-flight queries answer, queued
    /// retrain cycles finish — then stops its workers. Returns the final
    /// per-shard databases.
    pub fn shutdown(mut self) -> Vec<ReplayDb> {
        drop(self.checkpointer.take());
        drop(self.trainer.take());
        drop(self.engine.take());
        let shards = self.shards.take().expect("shutdown runs once");
        let reactor = self.reactor.take().expect("shutdown runs once");
        let stopped = reactor.shutdown();
        shards.take_dbs(&stopped)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use geomancy_sim::record::FileId;

    fn rec(n: u64, fid: u64, dev: u32, dt_ms: u64) -> AccessRecord {
        let open_ms = n * 1000;
        let close_ms = open_ms + dt_ms;
        AccessRecord {
            access_number: n,
            fid: FileId(fid),
            fsid: DeviceId(dev),
            rb: 1_000_000,
            wb: 0,
            ots: open_ms / 1000,
            otms: (open_ms % 1000) as u16,
            cts: close_ms / 1000,
            ctms: (close_ms % 1000) as u16,
        }
    }

    fn test_config() -> ServeConfig {
        ServeConfig {
            shards: 2,
            candidates: vec![DeviceId(0), DeviceId(1)],
            drl: DrlConfig {
                epochs: 20,
                smoothing_window: 4,
                ..DrlConfig::default()
            },
            ..ServeConfig::default()
        }
    }

    /// Device 1 is ~4x faster than device 0.
    fn ingest_biased(service: &PlacementService, n: u64) {
        for i in 0..n {
            let dev = (i % 2) as u32;
            let dt = if dev == 0 { 400 } else { 100 };
            service
                .ingest(i * 1_000_000, &[rec(i, i % 4, dev, dt)])
                .unwrap();
        }
    }

    #[test]
    fn query_before_model_is_not_ready() {
        let service = PlacementService::start(test_config());
        let err = service
            .query(PlacementRequest {
                fid: FileId(0),
                read_bytes: 1,
                write_bytes: 0,
            })
            .unwrap_err();
        assert_eq!(err, QueryError::NotReady);
        service.shutdown();
    }

    #[test]
    fn ingest_retrain_query_round_trip() {
        let service = PlacementService::start(test_config());
        ingest_biased(&service, 300);
        let epoch = service.retrain_now().expect("enough data");
        assert_eq!(epoch, 1);
        let decision = service
            .query(PlacementRequest {
                fid: FileId(1),
                read_bytes: 1_000_000,
                write_bytes: 0,
            })
            .expect("model published");
        assert_eq!(decision.model_epoch, 1);
        assert_eq!(decision.best, DeviceId(1), "picked the slower device");
        let dbs = service.shutdown();
        let total: usize = dbs.iter().map(|db| db.len()).sum();
        assert_eq!(total, 300);
    }

    #[test]
    fn query_many_fuses_and_dedups() {
        let service = PlacementService::start(test_config());
        ingest_biased(&service, 300);
        service.retrain_now().expect("enough data");
        // 30 requests over 3 distinct shapes → 3 unique rows.
        let requests: Vec<PlacementRequest> = (0..30)
            .map(|i| PlacementRequest {
                fid: FileId(i % 3),
                read_bytes: 1_000_000,
                write_bytes: 0,
            })
            .collect();
        let decisions = service.query_many(&requests).unwrap();
        assert_eq!(decisions.len(), 30);
        for d in &decisions {
            assert_eq!(d.batch_requests, 30);
            assert_eq!(d.unique_rows, 3);
        }
        let m = service.metrics();
        assert_eq!(m.decisions, 30);
        assert_eq!(m.batched_decisions, 30);
        assert_eq!(m.coalesced_decisions, 27);
        assert_eq!(m.queries_offered, 30);
        assert_eq!(m.queries_admitted, 30);
        assert_eq!(m.queries_shed, 0);
        assert!(m.pending_peak >= 30);
        service.shutdown();
    }

    #[test]
    fn retrain_without_data_reports_not_enough() {
        let service = PlacementService::start(test_config());
        assert_eq!(service.retrain_now(), Err(TrainError::NotEnoughData));
        service.shutdown();
    }

    #[test]
    fn auto_retrain_fires_on_ingest_volume() {
        let mut config = test_config();
        config.retrain_every_records = Some(100);
        let service = PlacementService::start(config);
        ingest_biased(&service, 250);
        // The trigger is async; wait for a publish.
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(30);
        while service.published_epoch() == 0 {
            assert!(
                std::time::Instant::now() < deadline,
                "auto retrain never published"
            );
            std::thread::sleep(std::time::Duration::from_millis(10));
        }
        assert!(service.metrics().retrains >= 1);
        service.shutdown();
    }

    #[test]
    fn queries_after_shutdown_error_cleanly() {
        let service = PlacementService::start(test_config());
        let shards = service.metrics().queue_depth.len();
        assert_eq!(shards, 2);
        service.shutdown();
    }

    #[test]
    fn runs_on_a_fixed_worker_pool() {
        let mut config = test_config();
        config.shards = 8;
        config.reactor_workers = 3;
        let service = PlacementService::start(config);
        assert_eq!(service.reactor_workers(), 3);
        ingest_biased(&service, 300);
        service.retrain_now().expect("enough data");
        let dbs = service.shutdown();
        assert_eq!(dbs.len(), 8);
        let total: usize = dbs.iter().map(|db| db.len()).sum();
        assert_eq!(total, 300);
    }

    /// The whole pipeline on simulated time: the batch window opens on
    /// submit and closes only when the shared clock is published past it —
    /// no wall time involved.
    #[test]
    fn batch_window_runs_on_shared_sim_time() {
        let clock = geomancy_sim::SharedSimClock::new();
        let mut config = test_config();
        config.batch_window_micros = 1_000_000; // one *simulated* second
        let service = Arc::new(PlacementService::start_with_clock(config, clock.clone()));
        ingest_biased(&service, 300); // publishes sim time up to 299 s
        service.retrain_now().expect("enough data");
        let s2 = Arc::clone(&service);
        let (tx, rx) = std::sync::mpsc::channel();
        let client = std::thread::spawn(move || {
            let out = s2.query(PlacementRequest {
                fid: FileId(1),
                read_bytes: 1_000_000,
                write_bytes: 0,
            });
            tx.send(out).unwrap();
        });
        // The batch stays open: simulated time is frozen at the ingest
        // high-water mark, so the window timer cannot fire.
        assert!(
            rx.recv_timeout(std::time::Duration::from_millis(100))
                .is_err(),
            "window closed without simulated time advancing"
        );
        clock.publish_micros(301_000_000);
        let decision = rx
            .recv_timeout(std::time::Duration::from_secs(10))
            .expect("window closes once sim time passes it")
            .expect("model is published");
        assert_eq!(decision.model_epoch, 1);
        client.join().unwrap();
        Arc::try_unwrap(service)
            .unwrap_or_else(|_| panic!("sole owner"))
            .shutdown();
    }
}
