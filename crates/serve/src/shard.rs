//! Sharded ReplayDB ingest: N independent actors, each owning one shard.
//!
//! The single-threaded Interface Daemon serializes every ingest batch and
//! query through one channel; here the record stream is split N ways by
//! [`FileId::stable_hash`], so all telemetry for one file always lands on
//! the same shard (per-file order is preserved by mailbox FIFO) while
//! different files ingest in parallel. Shard actors run as state machines
//! on the service's shared [`geomancy_runtime::Reactor`] pool — N shards
//! no longer cost N threads. Each shard's mailbox is *bounded*: when a
//! shard falls behind, [`ShardSet::try_ingest`] reports backpressure
//! instead of buffering without limit, and the blocking
//! [`ShardSet::ingest`] path simply waits.
//!
//! Durability mirrors the daemon's WAL story, but per shard: each actor
//! appends to its own `shard-<i>.wal`, so a crash loses at most one
//! partial line per shard and recovery rebuilds exactly the per-shard
//! databases (see [`geomancy_replaydb::wal::recover_shards`]).

use std::path::PathBuf;
use std::sync::atomic::Ordering;
use std::sync::Arc;

use crossbeam::channel::bounded;
use geomancy_replaydb::wal::{shard_path, WalWriter};
use geomancy_replaydb::{ReplayDb, StoredRecord};
use geomancy_runtime::{
    Actor, ActorHandle, Addr, Ctx, Reactor, ReactorConfig, StoppedReactor, TrySendError,
};
use geomancy_sim::record::{AccessRecord, FileId};

use crate::metrics::ServeMetrics;

/// Ingest refused because a shard queue is full (the caller should retry,
/// shed load, or switch to the blocking path).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Backpressure {
    /// The shard whose queue was full.
    pub shard: usize,
}

impl std::fmt::Display for Backpressure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "ingest shard {} queue is full", self.shard)
    }
}

impl std::error::Error for Backpressure {}

/// One shard's answer to a delta [`ShardMsg::Snapshot`]: the records the
/// requester has not seen yet, plus the shard's new watermark.
///
/// Watermarks are *applied-record counts*, not timestamps: shard
/// timestamps are monotonically clamped but not strictly increasing (a
/// whole batch shares one clamp), so a timestamp watermark could silently
/// skip or double-deliver records sharing the boundary instant. Counts
/// are tie-proof. Timestamp-based deltas remain the right tool for the
/// timestamp-indexed stores (`records_since`).
pub(crate) struct SnapshotDelta {
    /// The replying shard.
    pub shard: usize,
    /// Records applied after the requester's watermark, oldest first.
    /// Bounded by the hot database: records the checkpointer already
    /// trimmed to the cold store are not replayed here (the trainer tops
    /// up old history from the store's timestamp index instead), matching
    /// what the old full-DB snapshot carried.
    pub records: Vec<StoredRecord>,
    /// Total records this shard has ever applied — the requester's next
    /// watermark.
    pub applied: u64,
}

/// Messages a shard actor accepts. Snapshot replies are continuations so
/// both blocking callers (channel send) and other actors (`send_now` back
/// to their own mailbox) can consume them without the shard knowing which.
pub(crate) enum ShardMsg {
    Batch {
        timestamp_micros: u64,
        records: Vec<AccessRecord>,
    },
    /// Delta snapshot: everything applied after the `since` watermark
    /// (an applied-record count from a previous [`SnapshotDelta`];
    /// `since == 0` means everything the hot database holds).
    Snapshot {
        since: u64,
        reply: Box<dyn FnOnce(SnapshotDelta) + Send>,
    },
    /// Seal the active WAL into a numbered segment for the checkpointer
    /// to absorb. Replies `(shard, seq)`; `seq == 0` means the WAL held
    /// nothing (or the shard runs memory-only) and no segment was cut.
    SealWal {
        reply: Box<dyn FnOnce(usize, u64) + Send>,
    },
    /// Drop all but the newest `keep` records from the in-memory
    /// database — sent by the checkpointer after the trimmed records'
    /// segments have durably committed to the cold store.
    TrimHot { keep: usize },
}

/// Maps a file to its ingest shard.
pub fn shard_of(fid: FileId, shards: usize) -> usize {
    (fid.stable_hash() % shards as u64) as usize
}

/// One ingest shard as a reactor actor: applies batches in arrival order,
/// appending to the WAL first (write-ahead) and clamping timestamps
/// monotonically — shards see only a subset of the global stream, so a
/// slow producer can hand a shard a timestamp older than one it already
/// stored; the clamp keeps the shard's log time-ordered without rejecting
/// data.
pub(crate) struct ShardActor {
    shard: usize,
    db: ReplayDb,
    wal: Option<WalWriter>,
    /// Directory holding the WAL and its sealed segments (set iff `wal`
    /// is).
    wal_dir: Option<PathBuf>,
    /// Entries in the active WAL (recovered + appended since the last
    /// seal): a seal with zero entries is skipped instead of cutting an
    /// empty segment.
    wal_records: u64,
    /// Sequence number the next sealed segment gets. Starts above both
    /// the highest segment on disk and the store's absorbed floor, so a
    /// fresh segment is never mistaken for an already-absorbed orphan.
    next_seq: u64,
    last_ts: u64,
    /// Total records ever applied to this shard (recovered + ingested) —
    /// the monotonic count that delta-snapshot watermarks are measured
    /// against. Unlike timestamps it is strictly increasing per record,
    /// so a watermark can never straddle a tie.
    applied: u64,
    metrics: Arc<ServeMetrics>,
}

impl Actor for ShardActor {
    type Msg = ShardMsg;

    fn on_msg(&mut self, msg: ShardMsg, _ctx: &mut Ctx<'_>) {
        match msg {
            ShardMsg::Batch {
                timestamp_micros,
                records,
            } => {
                let ts = timestamp_micros.max(self.last_ts);
                self.last_ts = ts;
                if let Some(w) = &mut self.wal {
                    w.append_batch(ts, &records)
                        .expect("shard WAL append failed");
                    w.flush().expect("shard WAL flush failed");
                    self.wal_records += records.len() as u64;
                    self.metrics
                        .wal_pending_records
                        .fetch_add(records.len() as u64, Ordering::Relaxed);
                }
                self.db.insert_batch(ts, &records);
                self.applied += records.len() as u64;
                self.metrics.queue_depth[self.shard].fetch_sub(1, Ordering::Relaxed);
            }
            ShardMsg::Snapshot { since, reply } => {
                // `applied - since` records are new since the requester's
                // watermark; the hot db tail holds the newest of them (the
                // rest were trimmed to the cold store and are served from
                // its timestamp index, not re-shipped here).
                let fresh = self.applied.saturating_sub(since) as usize;
                let take = fresh.min(self.db.len());
                let skip = self.db.len() - take;
                let records: Vec<StoredRecord> = self.db.records().skip(skip).copied().collect();
                reply(SnapshotDelta {
                    shard: self.shard,
                    records,
                    applied: self.applied,
                });
            }
            ShardMsg::SealWal { reply } => {
                let seq = match (&mut self.wal, &self.wal_dir) {
                    (Some(w), Some(dir)) if self.wal_records > 0 => {
                        let seq = self.next_seq;
                        w.seal_to(geomancy_replaydb::wal::segment_path(dir, self.shard, seq))
                            .expect("shard WAL seal failed");
                        self.next_seq += 1;
                        self.wal_records = 0;
                        seq
                    }
                    _ => 0,
                };
                reply(self.shard, seq);
            }
            ShardMsg::TrimHot { keep } => {
                if self.db.len() > keep {
                    self.db.compact(keep);
                }
            }
        }
    }

    fn on_stop(&mut self, _ctx: &mut Ctx<'_>) {
        if let Some(w) = &mut self.wal {
            let _ = w.flush();
        }
    }
}

/// A set of ingest shard actors on a reactor.
pub struct ShardSet {
    addrs: Vec<Addr<ShardMsg>>,
    handles: Vec<ActorHandle<ShardActor>>,
    metrics: Arc<ServeMetrics>,
    /// Present when spawned standalone (the set owns a private reactor);
    /// absent when spawned onto a service-owned reactor.
    own_reactor: Option<Reactor>,
}

impl std::fmt::Debug for ShardSet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardSet")
            .field("shards", &self.addrs.len())
            .field("owns_reactor", &self.own_reactor.is_some())
            .finish()
    }
}

impl ShardSet {
    /// Spawns `shards` actors on a private reactor pool, with
    /// `queue_capacity`-deep bounded mailboxes.
    ///
    /// With `wal_dir` set, each shard appends to `shard-<i>.wal` in that
    /// directory and starts from whatever an existing log replays to
    /// (crash recovery); without it, shards are memory-only.
    ///
    /// # Panics
    ///
    /// Panics if `shards` or `queue_capacity` is zero, or if a WAL cannot
    /// be opened or recovered.
    pub fn spawn(
        shards: usize,
        queue_capacity: usize,
        wal_dir: Option<PathBuf>,
        metrics: Arc<ServeMetrics>,
    ) -> Self {
        let reactor = Reactor::new(ReactorConfig {
            name: "geomancy-shards".to_string(),
            ..ReactorConfig::default()
        });
        let mut set =
            ShardSet::spawn_on(&reactor, shards, queue_capacity, wal_dir, metrics, 0, &[]);
        set.own_reactor = Some(reactor);
        set
    }

    /// Spawns the shard actors onto an existing reactor (the service path:
    /// shards share the pool with the query engine and trainer).
    ///
    /// `min_last_ts` floors each shard's monotonic timestamp clamp — the
    /// service passes the cold store's max timestamp so records ingested
    /// after a restart can never be stamped older than checkpointed
    /// history. `seq_floors` (one entry per shard, or empty) floors each
    /// shard's next WAL-segment sequence number at the store's absorbed
    /// floor, so fresh segments are never numbered like absorbed orphans.
    pub(crate) fn spawn_on(
        reactor: &Reactor,
        shards: usize,
        queue_capacity: usize,
        wal_dir: Option<PathBuf>,
        metrics: Arc<ServeMetrics>,
        min_last_ts: u64,
        seq_floors: &[u64],
    ) -> Self {
        assert!(shards > 0, "need at least one ingest shard");
        assert!(
            queue_capacity > 0,
            "shard queues must hold at least one batch"
        );
        if let Some(dir) = &wal_dir {
            std::fs::create_dir_all(dir).expect("failed to create WAL directory");
        }
        let mut addrs = Vec::with_capacity(shards);
        let mut handles = Vec::with_capacity(shards);
        for i in 0..shards {
            let (db, wal, wal_records) = match &wal_dir {
                None => (ReplayDb::new(), None, 0),
                Some(dir) => {
                    let path = shard_path(dir, i);
                    // `recover_for_append` also truncates a torn tail left
                    // by a crash mid-append, so the append-mode reopen
                    // below starts on a fresh line instead of gluing the
                    // first new entry onto the partial one.
                    let (db, recovered) = if path.exists() {
                        geomancy_replaydb::wal::recover_for_append(&path)
                            .expect("shard WAL recovery failed")
                    } else {
                        (ReplayDb::new(), 0)
                    };
                    let wal = WalWriter::open(&path).expect("failed to open shard WAL");
                    (db, Some(wal), recovered)
                }
            };
            metrics
                .wal_pending_records
                .fetch_add(wal_records, Ordering::Relaxed);
            let next_seq = match &wal_dir {
                None => 1,
                Some(dir) => {
                    let on_disk = geomancy_replaydb::wal::list_segments(dir, i)
                        .expect("failed to list WAL segments")
                        .last()
                        .map_or(0, |(seq, _)| *seq);
                    on_disk.max(seq_floors.get(i).copied().unwrap_or(0)) + 1
                }
            };
            let last_ts = db
                .records()
                .last()
                .map_or(0, |s| s.timestamp_micros)
                .max(min_last_ts);
            let applied = db.len() as u64;
            let (addr, handle) = reactor.spawn(
                &format!("shard-{i}"),
                queue_capacity,
                ShardActor {
                    shard: i,
                    db,
                    wal,
                    wal_dir: wal_dir.clone(),
                    wal_records,
                    next_seq,
                    last_ts,
                    applied,
                    metrics: Arc::clone(&metrics),
                },
            );
            addrs.push(addr);
            handles.push(handle);
        }
        ShardSet {
            addrs,
            handles,
            metrics,
            own_reactor: None,
        }
    }

    /// Number of shards.
    pub fn len(&self) -> usize {
        self.addrs.len()
    }

    /// Whether the set is empty (never true for a spawned set).
    pub fn is_empty(&self) -> bool {
        self.addrs.is_empty()
    }

    /// Shard actor addresses, for peers that talk to shards directly (the
    /// trainer's snapshot fan-out).
    pub(crate) fn addrs(&self) -> &[Addr<ShardMsg>] {
        &self.addrs
    }

    /// Routes `records` to their shards. Returns one `(shard, sub-batch)`
    /// per shard touched, preserving input order within each sub-batch.
    fn route(&self, records: &[AccessRecord]) -> Vec<(usize, Vec<AccessRecord>)> {
        let shards = self.addrs.len();
        let mut buckets: Vec<Vec<AccessRecord>> = vec![Vec::new(); shards];
        for &r in records {
            buckets[shard_of(r.fid, shards)].push(r);
        }
        buckets
            .into_iter()
            .enumerate()
            .filter(|(_, b)| !b.is_empty())
            .collect()
    }

    /// Blocking ingest: routes the batch and waits on any full shard
    /// mailbox (backpressure by blocking — nothing is dropped).
    ///
    /// # Errors
    ///
    /// Returns [`Backpressure`] only if a shard actor is gone (shut down
    /// or dead), which should not happen before shutdown.
    pub fn ingest(
        &self,
        timestamp_micros: u64,
        records: &[AccessRecord],
    ) -> Result<(), Backpressure> {
        let mut sent_batches = 0u64;
        let mut sent_records = 0u64;
        let mut failed = None;
        for (shard, sub) in self.route(records) {
            let n = sub.len() as u64;
            self.metrics.queue_depth[shard].fetch_add(1, Ordering::Relaxed);
            if self.addrs[shard]
                .send(ShardMsg::Batch {
                    timestamp_micros,
                    records: sub,
                })
                .is_err()
            {
                self.metrics.queue_depth[shard].fetch_sub(1, Ordering::Relaxed);
                failed = Some(shard);
                break;
            }
            sent_batches += 1;
            sent_records += n;
        }
        // All of the call's counter updates land in one accounting section
        // (after the blocking sends — never block inside a section).
        let _guard = self.metrics.accounting();
        self.metrics
            .ingest_batches
            .fetch_add(sent_batches, Ordering::Relaxed);
        self.metrics
            .ingested_records
            .fetch_add(sent_records, Ordering::Relaxed);
        match failed {
            None => Ok(()),
            Some(shard) => Err(Backpressure { shard }),
        }
    }

    /// Non-blocking ingest: any full shard mailbox rejects the *whole*
    /// call (sub-batches already queued on other shards stay queued —
    /// per-file streams are unaffected since a file maps to exactly one
    /// shard).
    ///
    /// # Errors
    ///
    /// Returns [`Backpressure`] naming the full shard. The failed
    /// sub-batch and every sub-batch not yet sent count toward the
    /// metrics' `dropped_batches`, and their records toward
    /// `dropped_records`, so shed load is fully accounted even when part
    /// of the call was already queued.
    pub fn try_ingest(
        &self,
        timestamp_micros: u64,
        records: &[AccessRecord],
    ) -> Result<(), Backpressure> {
        let mut sent_batches = 0u64;
        let mut sent_records = 0u64;
        let mut routed = self.route(records).into_iter();
        while let Some((shard, sub)) = routed.next() {
            let n = sub.len() as u64;
            self.metrics.queue_depth[shard].fetch_add(1, Ordering::Relaxed);
            match self.addrs[shard].try_send(ShardMsg::Batch {
                timestamp_micros,
                records: sub,
            }) {
                Ok(()) => {
                    sent_batches += 1;
                    sent_records += n;
                }
                Err(TrySendError::Full(_) | TrySendError::Closed(_)) => {
                    self.metrics.queue_depth[shard].fetch_sub(1, Ordering::Relaxed);
                    let (mut batches, mut dropped) = (1u64, n);
                    for (_, rest) in routed {
                        batches += 1;
                        dropped += rest.len() as u64;
                    }
                    let _guard = self.metrics.accounting();
                    self.metrics
                        .ingest_batches
                        .fetch_add(sent_batches, Ordering::Relaxed);
                    self.metrics
                        .ingested_records
                        .fetch_add(sent_records, Ordering::Relaxed);
                    self.metrics
                        .dropped_batches
                        .fetch_add(batches, Ordering::Relaxed);
                    self.metrics
                        .dropped_records
                        .fetch_add(dropped, Ordering::Relaxed);
                    return Err(Backpressure { shard });
                }
            }
        }
        let _guard = self.metrics.accounting();
        self.metrics
            .ingest_batches
            .fetch_add(sent_batches, Ordering::Relaxed);
        self.metrics
            .ingested_records
            .fetch_add(sent_records, Ordering::Relaxed);
        Ok(())
    }

    /// Snapshots every shard's database (after all batches queued ahead of
    /// the snapshot request have been applied — the mailbox is FIFO).
    ///
    /// # Panics
    ///
    /// Panics if a shard actor has died.
    pub fn snapshot_all(&self) -> Vec<ReplayDb> {
        let mut replies = Vec::with_capacity(self.addrs.len());
        for addr in &self.addrs {
            let (tx, rx) = bounded(1);
            addr.send(ShardMsg::Snapshot {
                since: 0,
                reply: Box::new(move |delta: SnapshotDelta| {
                    let _ = tx.send(delta);
                }),
            })
            .map_err(|_| ())
            .expect("shard actor gone");
            replies.push(rx);
        }
        replies
            .into_iter()
            .map(|rx| {
                let delta = rx.recv().expect("shard actor gone");
                let mut db = ReplayDb::new();
                for s in delta.records {
                    db.insert(s.timestamp_micros, s.record);
                }
                db
            })
            .collect()
    }

    /// Stops the private reactor after every mailbox drains; returns the
    /// final per-shard databases in shard order. Only valid for sets
    /// created with [`ShardSet::spawn`] — service-owned sets are collected
    /// via `take_dbs` after the service shuts its reactor down.
    ///
    /// # Panics
    ///
    /// Panics if a shard actor panicked, or if the set does not own its
    /// reactor.
    pub fn shutdown(mut self) -> Vec<ReplayDb> {
        let reactor = self
            .own_reactor
            .take()
            .expect("shutdown() is only for standalone ShardSets");
        let stopped = reactor.shutdown();
        self.take_dbs(&stopped)
    }

    /// Recovers each shard's final database from a stopped reactor.
    ///
    /// # Panics
    ///
    /// Panics if a shard actor panicked.
    pub(crate) fn take_dbs(self, stopped: &StoppedReactor) -> Vec<ReplayDb> {
        self.handles
            .into_iter()
            .map(|h| stopped.take(h).expect("shard actor panicked").db)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use geomancy_sim::record::DeviceId;

    fn rec(n: u64, fid: u64) -> AccessRecord {
        AccessRecord {
            access_number: n,
            fid: FileId(fid),
            fsid: DeviceId(0),
            rb: 10,
            wb: 0,
            ots: n,
            otms: 0,
            cts: n + 1,
            ctms: 0,
        }
    }

    #[test]
    fn ingest_routes_by_file_hash() {
        let metrics = Arc::new(ServeMetrics::new(4));
        let set = ShardSet::spawn(4, 16, None, Arc::clone(&metrics));
        let records: Vec<AccessRecord> = (0..40).map(|n| rec(n, n % 10)).collect();
        set.ingest(0, &records).unwrap();
        let dbs = set.shutdown();
        let total: usize = dbs.iter().map(|db| db.len()).sum();
        assert_eq!(total, 40);
        for (i, db) in dbs.iter().enumerate() {
            for stored in db.records() {
                assert_eq!(shard_of(stored.record.fid, 4), i);
            }
        }
        assert_eq!(metrics.snapshot().ingested_records, 40);
    }

    #[test]
    fn try_ingest_reports_backpressure_when_queue_full() {
        let metrics = Arc::new(ServeMetrics::new(1));
        let set = ShardSet::spawn(1, 1, None, Arc::clone(&metrics));
        // Hammer the single 1-slot shard mailbox: some batches queue, the
        // rest bounce with Backpressure.
        let mut queued = 0;
        let mut dropped = 0;
        for n in 0..200u64 {
            match set.try_ingest(n, &[rec(n, 0)]) {
                Ok(()) => queued += 1,
                Err(Backpressure { shard: 0 }) => dropped += 1,
                Err(e) => panic!("unexpected {e:?}"),
            }
        }
        assert_eq!(queued + dropped, 200);
        let dbs = set.shutdown();
        assert_eq!(dbs[0].len(), queued);
        let snap = metrics.snapshot();
        assert_eq!(snap.dropped_batches, dropped as u64);
        assert_eq!(snap.dropped_records, dropped as u64);
    }

    #[test]
    fn dropped_records_account_for_every_unsent_sub_batch() {
        // Batches spanning both shards: when one shard's queue fills, the
        // failed sub-batch AND any not-yet-sent sub-batch must be counted,
        // so ingested + dropped always equals the records offered.
        let metrics = Arc::new(ServeMetrics::new(2));
        let set = ShardSet::spawn(2, 1, None, Arc::clone(&metrics));
        // Two fids guaranteed to land on different shards.
        let fid_a = (0u64..).find(|&f| shard_of(FileId(f), 2) == 0).unwrap();
        let fid_b = (0u64..).find(|&f| shard_of(FileId(f), 2) == 1).unwrap();
        let mut offered = 0u64;
        let mut saw_drop = false;
        for round in 0..50_000u64 {
            let batch = [rec(round * 2, fid_a), rec(round * 2 + 1, fid_b)];
            offered += batch.len() as u64;
            if set.try_ingest(round, &batch).is_err() {
                saw_drop = true;
                if round > 1000 {
                    break;
                }
            }
        }
        let _ = set.shutdown();
        let snap = metrics.snapshot();
        assert_eq!(
            snap.ingested_records + snap.dropped_records,
            offered,
            "shed records must be fully accounted"
        );
        if saw_drop {
            assert!(snap.dropped_batches >= 1);
            assert!(snap.dropped_records >= snap.dropped_batches);
        }
    }

    /// Delta snapshots must carry exactly the records applied after the
    /// watermark, and an up-to-date watermark must yield an empty delta.
    #[test]
    fn delta_snapshot_moves_only_records_past_the_watermark() {
        let metrics = Arc::new(ServeMetrics::new(1));
        let set = ShardSet::spawn(1, 16, None, metrics);
        let snap = |since: u64| {
            let (tx, rx) = bounded(1);
            set.addrs()[0]
                .send(ShardMsg::Snapshot {
                    since,
                    reply: Box::new(move |delta: SnapshotDelta| {
                        let _ = tx.send(delta);
                    }),
                })
                .map_err(|_| ())
                .unwrap();
            rx.recv().unwrap()
        };
        let recs: Vec<AccessRecord> = (0..30).map(|n| rec(n, 0)).collect();
        set.ingest(10, &recs[..20]).unwrap();
        let first = snap(0);
        assert_eq!(first.records.len(), 20);
        assert_eq!(first.applied, 20);
        // No new records: the same watermark returns an empty delta.
        let idle = snap(first.applied);
        assert!(idle.records.is_empty());
        assert_eq!(idle.applied, 20);
        // Ten more records: the delta is exactly those ten, oldest first.
        set.ingest(20, &recs[20..]).unwrap();
        let second = snap(first.applied);
        assert_eq!(second.records.len(), 10);
        assert_eq!(second.applied, 30);
        assert_eq!(second.records[0].record.access_number, 20);
        assert_eq!(second.records[9].record.access_number, 29);
        let _ = set.shutdown();
    }

    #[test]
    fn out_of_order_timestamps_are_clamped_not_fatal() {
        let metrics = Arc::new(ServeMetrics::new(2));
        let set = ShardSet::spawn(2, 16, None, metrics);
        set.ingest(100, &[rec(0, 0), rec(1, 1)]).unwrap();
        // Older timestamp: would panic ReplayDb::insert if unclamped.
        set.ingest(50, &[rec(2, 0), rec(3, 1)]).unwrap();
        let dbs = set.shutdown();
        let total: usize = dbs.iter().map(|db| db.len()).sum();
        assert_eq!(total, 4);
        for db in &dbs {
            for stored in db.records() {
                assert!(stored.timestamp_micros >= 100);
            }
        }
    }
}
