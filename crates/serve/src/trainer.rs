//! Background retraining: delta-snapshot the shards, warm-start train off
//! to the side, publish through the [`ModelSlot`].
//!
//! Serving never blocks on training: the trainer works on *copies* of new
//! shard records, and the only synchronization with the query engine is
//! the epoch-pointer publish. PR 8 replaced the original full-snapshot +
//! from-scratch pipeline: each cycle now pulls only the records past a
//! per-shard **watermark** (an applied-record count carried in
//! [`TrainedMeta`] alongside every published model) and continues
//! training the trainer's resident master engine on that delta, mixed
//! with a replay sample of older history so the model does not forget
//! quiet devices. Retrain cost therefore scales with the *delta*, not
//! the history — see `retrain_bench`.
//!
//! ## Snapshot protocol
//!
//! The trainer is an actor on the service's reactor, so it cannot block
//! waiting for shard replies (that would wedge a pool worker). A cycle
//! instead fans out one delta `Snapshot` message per shard whose reply
//! continuation `send_now`s a [`TrainerMsg::Part`] back to the trainer's
//! own mailbox; when the last part lands, the trainer merges, trains, and
//! publishes inline. Snapshot requests ride each shard's FIFO mailbox, so
//! a cycle still observes every batch ingested before it was requested.
//! Cycles are serialized: requests arriving mid-cycle queue behind it,
//! and parts are tagged with a cycle generation so a part from an
//! abandoned cycle can never leak into the next one.
//!
//! ## Warm-start vs. full policy
//!
//! [`RetrainMode::Full`] reproduces the legacy pipeline (every cycle
//! snapshots everything and trains a fresh engine).
//! [`RetrainMode::Incremental`] always warm-starts after the bootstrap
//! cycle. [`RetrainMode::Auto`] (the default) warm-starts but falls back
//! to a from-scratch fit — within the same cycle, on the retained history
//! plus the delta — when the warm step diverges, regresses validation
//! error beyond [`TrainerConfig::regression_factor`], or the master's
//! architecture no longer matches the configured spec.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use crossbeam::channel::{bounded, Sender};
use geomancy_core::drl::{DrlConfig, DrlEngine};
use geomancy_replaydb::{ReplayDb, StoredRecord};
use geomancy_runtime::{Actor, Addr, Ctx, Reactor};
use geomancy_sim::record::AccessRecord;
use geomancy_store::SharedPagedStore;

use crate::batch::ModelSlot;
use crate::metrics::ServeMetrics;
use crate::shard::{ShardMsg, ShardSet, SnapshotDelta};

/// Why a retrain cycle produced no model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TrainError {
    /// The cycle's records (delta plus replay) are too few to train on.
    NotEnoughData,
    /// The trainer has shut down.
    TrainerDown,
}

impl std::fmt::Display for TrainError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TrainError::NotEnoughData => f.write_str("not enough telemetry to retrain"),
            TrainError::TrainerDown => f.write_str("trainer has shut down"),
        }
    }
}

impl std::error::Error for TrainError {}

/// Retraining policy: how each cycle treats accumulated history.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RetrainMode {
    /// Legacy pipeline: every cycle snapshots every shard in full and
    /// trains a fresh engine from scratch. Cost grows with history.
    Full,
    /// Delta snapshots + warm start every cycle (after the unavoidable
    /// full bootstrap cycle), with no quality fallback.
    Incremental,
    /// Warm-start like `Incremental`, but fall back to a from-scratch
    /// fit when the warm step diverges, regresses validation error
    /// beyond the configured factor, or the model spec changed.
    #[default]
    Auto,
}

impl std::fmt::Display for RetrainMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            RetrainMode::Full => "full",
            RetrainMode::Incremental => "incremental",
            RetrainMode::Auto => "auto",
        })
    }
}

impl std::str::FromStr for RetrainMode {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "full" => Ok(RetrainMode::Full),
            "incremental" => Ok(RetrainMode::Incremental),
            "auto" => Ok(RetrainMode::Auto),
            other => Err(format!(
                "unknown retrain mode {other:?} (expected full, incremental, or auto)"
            )),
        }
    }
}

/// Trainer policy knobs (the `--retrain-mode` surface).
#[derive(Debug, Clone)]
pub struct TrainerConfig {
    /// Warm-start vs. full policy. Default: [`RetrainMode::Auto`].
    pub mode: RetrainMode,
    /// Fraction of a delta's size drawn from older history and mixed
    /// into each warm-start fit, resisting catastrophic forgetting of
    /// devices the delta did not touch. Sampled by a deterministic
    /// stride over the trainer's retained window, topped up from the
    /// cold store's timestamp index when the window is short.
    pub replay_ratio: f64,
    /// Most records retained in the trainer's replay window. Bounds
    /// per-cycle merge cost, keeping incremental cycles flat as total
    /// history grows.
    pub replay_capacity: usize,
    /// `auto` falls back to a full fit when a warm step's validation
    /// MAE exceeds the previous cycle's by this factor.
    pub regression_factor: f64,
    /// Vary the weight-init seed with the published epoch on *full*
    /// cycles, so consecutive from-scratch models are distinguishable
    /// (the soak test's "no torn model" check needs models to differ).
    /// Warm-started cycles never re-initialize, so consecutive models
    /// differ naturally; this knob replaces the unconditional reseed
    /// the legacy pipeline hard-coded.
    pub reseed_per_cycle: bool,
}

impl Default for TrainerConfig {
    fn default() -> Self {
        TrainerConfig {
            mode: RetrainMode::Auto,
            replay_ratio: 0.25,
            replay_capacity: 8192,
            regression_factor: 2.0,
            reseed_per_cycle: true,
        }
    }
}

/// Provenance of the model a [`ModelSlot`] publish carried: the per-shard
/// watermarks it trained through, whether it was warm-started, and how it
/// validated. The watermarks make retraining restartable — they record
/// exactly which prefix of each shard's stream the published weights have
/// seen.
#[derive(Debug, Clone)]
pub struct TrainedMeta {
    /// Per-shard applied-record counts the model has trained through.
    pub watermarks: Vec<u64>,
    /// Whether the cycle warm-started from the previous weights (false:
    /// trained from scratch).
    pub warm_start: bool,
    /// Architecture in Table I notation, for spec-change detection.
    pub spec: String,
    /// Validation mean absolute relative error, percent.
    pub validation_mae: f64,
}

pub(crate) enum TrainerMsg {
    /// Self-address bootstrap, delivered first (mailbox FIFO) so snapshot
    /// continuations can route parts home.
    Init(Addr<TrainerMsg>),
    /// Snapshot, retrain, publish; reply with the new epoch.
    TrainNow {
        reply: Option<Sender<Result<u64, TrainError>>>,
    },
    /// One shard's delta arriving for the in-flight cycle `gen`.
    Part { gen: u64, delta: SnapshotDelta },
}

/// Handle to the trainer actor.
#[derive(Debug)]
pub struct Trainer {
    addr: Addr<TrainerMsg>,
    /// Whether an async (fire-and-forget) retrain request is already
    /// queued. [`Trainer::request_retrain`] only enqueues when it flips
    /// this false→true, so a burst of ingest-driven triggers coalesces to
    /// at most one queued cycle instead of piling up stale back-to-back
    /// cycles when a retrain takes longer than the trigger interval.
    async_queued: Arc<AtomicBool>,
}

impl Trainer {
    /// Spawns the trainer actor on `reactor`. Snapshots go through the
    /// shard mailbox FIFOs, so a cycle observes every batch ingested
    /// before it started. `cold` (the service's paged store, when one is
    /// configured) backs the replay sample with pre-trim history.
    pub(crate) fn spawn_on(
        reactor: &Reactor,
        drl: DrlConfig,
        config: TrainerConfig,
        shards: &ShardSet,
        slot: Arc<ModelSlot>,
        metrics: Arc<ServeMetrics>,
        cold: Option<SharedPagedStore>,
    ) -> Self {
        let async_queued = Arc::new(AtomicBool::new(false));
        let n = shards.len();
        // The spec the configured DrlConfig builds — `auto`'s reference
        // for detecting that a resident master no longer matches.
        let expected_spec = DrlEngine::new(drl.clone()).spec();
        let (addr, _handle) = reactor.spawn(
            "trainer",
            16,
            TrainerActor {
                self_addr: None,
                shard_addrs: shards.addrs().to_vec(),
                drl,
                tcfg: config,
                slot,
                metrics,
                async_queued: Arc::clone(&async_queued),
                collecting: None,
                queued: VecDeque::new(),
                shard_count: n,
                cycle_gen: 0,
                watermarks: vec![0; n],
                master: None,
                history: Vec::new(),
                last_val_mae: None,
                expected_spec,
                cold,
            },
        );
        addr.send_now(TrainerMsg::Init(addr.clone()))
            .ok()
            .expect("trainer mailbox open at spawn");
        Trainer { addr, async_queued }
    }

    /// Runs one retrain cycle and blocks until its model is published.
    ///
    /// # Errors
    ///
    /// [`TrainError::NotEnoughData`] with a too-small telemetry window,
    /// [`TrainError::TrainerDown`] after shutdown.
    pub fn retrain_now(&self) -> Result<u64, TrainError> {
        let (reply, rx) = bounded(1);
        self.addr
            .send(TrainerMsg::TrainNow { reply: Some(reply) })
            .map_err(|_| TrainError::TrainerDown)?;
        rx.recv().map_err(|_| TrainError::TrainerDown)?
    }

    /// Queues a retrain cycle without waiting for it. Requests coalesce:
    /// while one async cycle is already queued, further requests are
    /// no-ops (the queued cycle will train on the newer data anyway).
    pub fn request_retrain(&self) {
        if self
            .async_queued
            .compare_exchange(false, true, Ordering::AcqRel, Ordering::Relaxed)
            .is_ok()
            && self
                .addr
                .try_send(TrainerMsg::TrainNow { reply: None })
                .is_err()
        {
            // Mailbox full or closing: give the next trigger its chance.
            self.async_queued.store(false, Ordering::Release);
        }
    }
}

/// Pure fallback policy: should `auto` abandon this warm step's result
/// and retrain from scratch?
fn warm_step_regressed(prev_mae: Option<f64>, mae: f64, factor: f64, diverged: bool) -> bool {
    diverged || !mae.is_finite() || prev_mae.is_some_and(|prev| mae > prev * factor)
}

/// An in-flight cycle's gathered state.
struct Collect {
    reply: Option<Sender<Result<u64, TrainError>>>,
    parts: Vec<Option<SnapshotDelta>>,
    got: usize,
    /// Whether this cycle snapshots in full and trains from scratch.
    full: bool,
    /// Generation tag matching [`TrainerMsg::Part`]s to this cycle.
    gen: u64,
}

struct TrainerActor {
    self_addr: Option<Addr<TrainerMsg>>,
    shard_addrs: Vec<Addr<ShardMsg>>,
    drl: DrlConfig,
    tcfg: TrainerConfig,
    slot: Arc<ModelSlot>,
    metrics: Arc<ServeMetrics>,
    async_queued: Arc<AtomicBool>,
    collecting: Option<Collect>,
    /// Cycles requested while one is in flight (serialized FIFO).
    queued: VecDeque<Option<Sender<Result<u64, TrainError>>>>,
    shard_count: usize,
    /// Monotonic cycle counter; parts carry it so an abandoned cycle's
    /// stragglers cannot be mistaken for the next cycle's parts.
    cycle_gen: u64,
    /// Per-shard applied-record counts the master has trained through.
    /// Advanced only when a cycle publishes, so records a failed cycle
    /// pulled are redelivered to the next one.
    watermarks: Vec<u64>,
    /// The resident engine warm starts continue training. Publishes
    /// hand a [`DrlEngine::fork`] to the slot, never the master itself.
    master: Option<DrlEngine>,
    /// Replay window: recent records kept for the anti-forgetting mix,
    /// sorted by `(timestamp, access_number)` and bounded at
    /// `replay_capacity` (bounded window ⇒ flat per-cycle cost).
    history: Vec<StoredRecord>,
    /// Last published validation MAE — `auto`'s regression baseline.
    last_val_mae: Option<f64>,
    /// Spec the configured model builds to (spec-change detection).
    expected_spec: String,
    /// Cold store for replay top-up when the in-memory window is short
    /// (e.g. right after a restart).
    cold: Option<SharedPagedStore>,
}

impl Actor for TrainerActor {
    type Msg = TrainerMsg;

    fn on_msg(&mut self, msg: TrainerMsg, _ctx: &mut Ctx<'_>) {
        match msg {
            TrainerMsg::Init(addr) => self.self_addr = Some(addr),
            TrainerMsg::TrainNow { reply } => {
                if self.collecting.is_some() {
                    self.queued.push_back(reply);
                } else {
                    self.start_cycle(reply);
                }
            }
            TrainerMsg::Part { gen, delta } => {
                let Some(collect) = self.collecting.as_mut() else {
                    return; // stale part from an abandoned cycle
                };
                if collect.gen != gen {
                    return; // part raced an abandoned cycle's replacement
                }
                let shard = delta.shard;
                if collect.parts[shard].is_none() {
                    collect.parts[shard] = Some(delta);
                    collect.got += 1;
                }
                if collect.got == self.shard_count {
                    self.finish_cycle();
                }
            }
        }
    }

    fn on_stop(&mut self, _ctx: &mut Ctx<'_>) {
        // A cycle caught mid-collection at shutdown cannot complete (its
        // remaining parts were purged with the mailboxes); dropping the
        // reply senders surfaces TrainerDown to any blocked caller.
        self.collecting = None;
        self.queued.clear();
    }
}

impl TrainerActor {
    /// Whether the next cycle must snapshot in full and train from
    /// scratch: forced mode, no master yet (bootstrap), or — under
    /// `auto` — a master whose architecture no longer matches the
    /// configured spec.
    fn next_cycle_is_full(&self) -> bool {
        match self.tcfg.mode {
            RetrainMode::Full => true,
            RetrainMode::Incremental => self.master.is_none(),
            RetrainMode::Auto => match &self.master {
                None => true,
                Some(m) => m.spec() != self.expected_spec,
            },
        }
    }

    /// Fans the snapshot request out to every shard; parts flow back as
    /// messages. `send_now` keeps the fan-out non-blocking and lets parts
    /// land even while the service is draining.
    fn start_cycle(&mut self, reply: Option<Sender<Result<u64, TrainError>>>) {
        // Clear the coalescing flag before the cycle trains so a trigger
        // arriving mid-cycle earns one follow-up cycle over newer data.
        if reply.is_none() {
            self.async_queued.store(false, Ordering::Release);
        }
        let full = self.next_cycle_is_full();
        self.cycle_gen += 1;
        let gen = self.cycle_gen;
        self.collecting = Some(Collect {
            reply,
            parts: (0..self.shard_count).map(|_| None).collect(),
            got: 0,
            full,
            gen,
        });
        let me = self
            .self_addr
            .clone()
            .expect("Init is delivered before any TrainNow");
        for (shard, addr) in self.shard_addrs.iter().enumerate() {
            let since = if full { 0 } else { self.watermarks[shard] };
            let home = me.clone();
            if addr
                .send_now(ShardMsg::Snapshot {
                    since,
                    reply: Box::new(move |delta| {
                        let _ = home.send_now(TrainerMsg::Part { gen, delta });
                    }),
                })
                .is_err()
            {
                // Shard dead (panicked): abandon the cycle; dropping the
                // reply sender reports TrainerDown to a blocked caller.
                // Keep draining the queue — a queued cycle left behind
                // here would strand its caller until some unrelated
                // future trigger.
                self.collecting = None;
                if let Some(next) = self.queued.pop_front() {
                    self.start_cycle(next);
                }
                return;
            }
        }
    }

    /// All parts in hand: merge the delta → train (warm or full per the
    /// cycle's plan) → publish a fork with its watermark metadata.
    fn finish_cycle(&mut self) {
        let collect = self.collecting.take().expect("cycle in flight");
        let parts: Vec<SnapshotDelta> = collect
            .parts
            .into_iter()
            .map(|p| p.expect("all parts collected"))
            .collect();
        // Parts were indexed by shard, so watermark order matches.
        let new_watermarks: Vec<u64> = parts.iter().map(|p| p.applied).collect();
        let mut delta: Vec<StoredRecord> =
            Vec::with_capacity(parts.iter().map(|p| p.records.len()).sum());
        for p in &parts {
            delta.extend_from_slice(&p.records);
        }
        delta.sort_by_key(|s| (s.timestamp_micros, s.record.access_number));
        self.metrics
            .retrain_records
            .fetch_add(delta.len() as u64, Ordering::Relaxed);

        let started = std::time::Instant::now();
        let trained = if collect.full {
            self.train_full(&delta)
        } else {
            self.train_incremental(&delta)
        };
        self.metrics
            .retrain_micros
            .fetch_add(started.elapsed().as_micros() as u64, Ordering::Relaxed);

        let outcome = match trained {
            Err(e) => Err(e),
            Ok((mae, warm_start)) => {
                let counter = if warm_start {
                    &self.metrics.warm_starts
                } else {
                    &self.metrics.full_retrains
                };
                counter.fetch_add(1, Ordering::Relaxed);
                self.metrics.retrains.fetch_add(1, Ordering::Relaxed);
                self.last_val_mae = Some(mae);
                self.watermarks = new_watermarks;
                self.remember(&delta);
                let master = self.master.as_ref().expect("successful cycle set a master");
                let meta = TrainedMeta {
                    watermarks: self.watermarks.clone(),
                    warm_start,
                    spec: master.spec(),
                    validation_mae: mae,
                };
                Ok(self.slot.publish_with_meta(master.fork(), meta))
            }
        };
        if let Some(reply) = collect.reply {
            let _ = reply.send(outcome);
        }
        if let Some(next) = self.queued.pop_front() {
            self.start_cycle(next);
        }
    }

    /// From-scratch fit on `records`, replacing the master on success.
    /// Returns `(validation MAE, warm_start=false)`.
    fn train_full(&mut self, records: &[StoredRecord]) -> Result<(f64, bool), TrainError> {
        let mut config = self.drl.clone();
        if self.tcfg.reseed_per_cycle {
            config.seed = config.seed.wrapping_add(self.slot.published_epoch());
        }
        let mut engine = DrlEngine::new(config);
        let mut db = ReplayDb::new();
        for s in records {
            db.insert(s.timestamp_micros, s.record);
        }
        let outcome = engine.retrain(&db).ok_or(TrainError::NotEnoughData)?;
        self.master = Some(engine);
        Ok((outcome.validation_error.mean, false))
    }

    /// Warm-start fit on the delta plus a replay sample. Under `auto`, a
    /// regressed or diverged warm step falls back to [`Self::train_full`]
    /// on the retained history plus the delta, inside the same cycle.
    fn train_incremental(&mut self, delta: &[StoredRecord]) -> Result<(f64, bool), TrainError> {
        let fresh: Vec<AccessRecord> = delta.iter().map(|s| s.record).collect();
        let replay_n = (fresh.len() as f64 * self.tcfg.replay_ratio).round() as usize;
        let replay = self.sample_replay(replay_n);
        let master = self
            .master
            .as_mut()
            .expect("incremental cycle requires a trained master");
        let outcome = master
            .retrain_incremental(&fresh, &replay)
            .ok_or(TrainError::NotEnoughData)?;
        let mae = outcome.validation_error.mean;
        if self.tcfg.mode == RetrainMode::Auto
            && warm_step_regressed(
                self.last_val_mae,
                mae,
                self.tcfg.regression_factor,
                outcome.diverged,
            )
        {
            // The warm step hurt the model (and already perturbed the
            // master): rebuild from scratch on everything at hand.
            let mut records = self.history.clone();
            records.extend_from_slice(delta);
            records.sort_by_key(|s| (s.timestamp_micros, s.record.access_number));
            return self.train_full(&records);
        }
        Ok((mae, true))
    }

    /// Deterministic replay sample of `n` records from the retained
    /// window (an even stride, so every era of the window is
    /// represented), topped up from the cold store's timestamp index
    /// when the window holds fewer than `n` — the restart case, where
    /// in-memory history is empty but checkpointed history is not. The
    /// top-up may overlap the newest retained records right after a
    /// checkpoint; a few double-weighted replay rows are harmless.
    fn sample_replay(&self, n: usize) -> Vec<AccessRecord> {
        if n == 0 {
            return Vec::new();
        }
        let have = self.history.len();
        if have >= n {
            return (0..n).map(|k| self.history[k * have / n].record).collect();
        }
        let mut out: Vec<AccessRecord> = Vec::with_capacity(n);
        if let Some(cold) = &self.cold {
            if let Ok(older) = cold.read().recent(n - have) {
                out.extend(older);
            }
        }
        out.extend(self.history.iter().map(|s| s.record));
        out
    }

    /// Folds a cycle's delta into the bounded replay window.
    fn remember(&mut self, delta: &[StoredRecord]) {
        self.history.extend_from_slice(delta);
        self.history
            .sort_by_key(|s| (s.timestamp_micros, s.record.access_number));
        if self.history.len() > self.tcfg.replay_capacity {
            let excess = self.history.len() - self.tcfg.replay_capacity;
            self.history.drain(..excess);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use geomancy_runtime::ReactorConfig;
    use std::time::Duration;

    #[test]
    fn retrain_mode_parses_and_prints() {
        for (s, m) in [
            ("full", RetrainMode::Full),
            ("incremental", RetrainMode::Incremental),
            ("auto", RetrainMode::Auto),
        ] {
            assert_eq!(s.parse::<RetrainMode>().unwrap(), m);
            assert_eq!(m.to_string(), s);
        }
        assert!("warm".parse::<RetrainMode>().is_err());
    }

    #[test]
    fn regression_policy_triggers_on_divergence_and_blowup() {
        // No baseline yet: only divergence or a non-finite MAE falls back.
        assert!(!warm_step_regressed(None, 5.0, 2.0, false));
        assert!(warm_step_regressed(None, 5.0, 2.0, true));
        assert!(warm_step_regressed(None, f64::NAN, 2.0, false));
        // With a baseline: fall back past the factor, not inside it.
        assert!(!warm_step_regressed(Some(10.0), 19.9, 2.0, false));
        assert!(warm_step_regressed(Some(10.0), 20.1, 2.0, false));
    }

    /// A stand-in shard for trainer lifecycle tests: replies to delta
    /// snapshots with an empty delta — immediately when `hold` is false,
    /// or on the next `TrimHot` when `hold` is true (letting a test
    /// freeze a cycle mid-collection). A `Batch` kills it, simulating a
    /// shard that panicked.
    struct FakeShard {
        shard: usize,
        hold: bool,
        held: Option<Box<dyn FnOnce(SnapshotDelta) + Send>>,
    }

    impl FakeShard {
        fn empty_delta(shard: usize) -> SnapshotDelta {
            SnapshotDelta {
                shard,
                records: Vec::new(),
                applied: 0,
            }
        }
    }

    impl Actor for FakeShard {
        type Msg = ShardMsg;

        fn on_msg(&mut self, msg: ShardMsg, _ctx: &mut Ctx<'_>) {
            match msg {
                ShardMsg::Snapshot { reply, .. } => {
                    if self.hold {
                        self.held = Some(reply);
                    } else {
                        reply(FakeShard::empty_delta(self.shard));
                    }
                }
                ShardMsg::TrimHot { .. } => {
                    if let Some(reply) = self.held.take() {
                        reply(FakeShard::empty_delta(self.shard));
                    }
                }
                ShardMsg::Batch { .. } => panic!("fake shard killed by test"),
                ShardMsg::SealWal { reply } => reply(self.shard, 0),
            }
        }
    }

    fn spawn_trainer(
        reactor: &Reactor,
        shard_addrs: Vec<Addr<ShardMsg>>,
    ) -> (Trainer, Arc<ServeMetrics>) {
        let n = shard_addrs.len();
        let metrics = Arc::new(ServeMetrics::new(n));
        let async_queued = Arc::new(AtomicBool::new(false));
        let drl = DrlConfig::default();
        let expected_spec = DrlEngine::new(drl.clone()).spec();
        let (addr, _handle) = reactor.spawn(
            "trainer-under-test",
            16,
            TrainerActor {
                self_addr: None,
                shard_addrs,
                drl,
                tcfg: TrainerConfig::default(),
                slot: Arc::new(ModelSlot::new()),
                metrics: Arc::clone(&metrics),
                async_queued: Arc::clone(&async_queued),
                collecting: None,
                queued: VecDeque::new(),
                shard_count: n,
                cycle_gen: 0,
                watermarks: vec![0; n],
                master: None,
                history: Vec::new(),
                last_val_mae: None,
                expected_spec,
                cold: None,
            },
        );
        addr.send_now(TrainerMsg::Init(addr.clone())).ok().unwrap();
        (Trainer { addr, async_queued }, metrics)
    }

    /// Kills a fake shard and waits until its mailbox is really closed.
    fn kill_shard(addr: &Addr<ShardMsg>) {
        let _ = addr.send(ShardMsg::Batch {
            timestamp_micros: 0,
            records: Vec::new(),
        });
        for _ in 0..500 {
            if addr
                .send_now(ShardMsg::TrimHot { keep: usize::MAX })
                .is_err()
            {
                return;
            }
            std::thread::sleep(Duration::from_millis(2));
        }
        panic!("fake shard did not die");
    }

    /// Satellite regression: a dead shard at cycle start must surface
    /// `TrainerDown` to the blocked caller instead of hanging it.
    #[test]
    fn dead_shard_surfaces_trainer_down_to_blocked_caller() {
        let reactor = Reactor::new(ReactorConfig {
            name: "trainer-test".to_string(),
            ..ReactorConfig::default()
        });
        let (victim, _h) = reactor.spawn(
            "victim",
            16,
            FakeShard {
                shard: 0,
                hold: false,
                held: None,
            },
        );
        kill_shard(&victim);
        let (trainer, _metrics) = spawn_trainer(&reactor, vec![victim]);
        assert_eq!(trainer.retrain_now(), Err(TrainError::TrainerDown));
        drop(reactor.shutdown());
    }

    /// Satellite regression: abandoning a cycle over a dead shard must
    /// also drain (fail) the cycles queued behind it — before the fix,
    /// queued callers blocked until an unrelated future trigger.
    #[test]
    fn abandoned_cycle_drains_the_queue() {
        let reactor = Reactor::new(ReactorConfig {
            name: "trainer-starve".to_string(),
            ..ReactorConfig::default()
        });
        let (gate, _hg) = reactor.spawn(
            "gate",
            16,
            FakeShard {
                shard: 0,
                hold: true,
                held: None,
            },
        );
        let (victim, _hv) = reactor.spawn(
            "victim",
            16,
            FakeShard {
                shard: 1,
                hold: false,
                held: None,
            },
        );
        let (trainer, _metrics) = spawn_trainer(&reactor, vec![gate.clone(), victim.clone()]);

        // Cycle A: the victim replies immediately, the gate holds its
        // part, freezing the cycle mid-collection.
        let (tx_a, rx_a) = bounded(1);
        trainer
            .addr
            .send(TrainerMsg::TrainNow { reply: Some(tx_a) })
            .ok()
            .unwrap();
        // Give A's fan-out time to land in the gate before killing the
        // victim, then queue B and C behind the frozen cycle.
        std::thread::sleep(Duration::from_millis(50));
        kill_shard(&victim);
        let (tx_b, rx_b) = bounded(1);
        let (tx_c, rx_c) = bounded(1);
        trainer
            .addr
            .send(TrainerMsg::TrainNow { reply: Some(tx_b) })
            .ok()
            .unwrap();
        trainer
            .addr
            .send(TrainerMsg::TrainNow { reply: Some(tx_c) })
            .ok()
            .unwrap();
        // Release the gate: A completes (empty data ⇒ NotEnoughData),
        // then B starts, hits the dead victim, is abandoned — and must
        // pull C forward so it fails fast instead of stranding.
        gate.send(ShardMsg::TrimHot { keep: 0 }).ok().unwrap();

        let a = rx_a.recv_timeout(Duration::from_secs(10)).unwrap();
        assert_eq!(a, Err(TrainError::NotEnoughData));
        assert!(
            rx_b.recv_timeout(Duration::from_secs(10)).is_err(),
            "B's reply sender must be dropped (TrainerDown)"
        );
        assert!(
            rx_c.recv_timeout(Duration::from_secs(10)).is_err(),
            "C must not strand behind the abandoned B"
        );
        drop(reactor.shutdown());
    }
}
