//! Background retraining: snapshot the shards, train off to the side,
//! publish through the [`ModelSlot`].
//!
//! Serving never blocks on training: the trainer thread works on merged
//! *copies* of the shard databases, and the only synchronization with the
//! query engine is the epoch-pointer publish. Each cycle trains a fresh
//! engine from the same seeded initialization (plus the epoch, so cycles
//! differ) — retrain-from-scratch keeps every published model a pure
//! function of the telemetry window, which is what makes the hot-swap
//! soak test's "no torn model" claim checkable.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

use crossbeam::channel::{bounded, unbounded, Sender};
use geomancy_core::drl::{DrlConfig, DrlEngine};
use geomancy_replaydb::ReplayDb;

use crate::batch::ModelSlot;
use crate::metrics::ServeMetrics;
use crate::shard::ShardSet;

/// Why a retrain cycle produced no model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TrainError {
    /// The merged shard snapshot holds too few records to train on.
    NotEnoughData,
    /// The trainer thread has shut down.
    TrainerDown,
}

impl std::fmt::Display for TrainError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TrainError::NotEnoughData => f.write_str("not enough telemetry to retrain"),
            TrainError::TrainerDown => f.write_str("trainer has shut down"),
        }
    }
}

impl std::error::Error for TrainError {}

enum TrainerMsg {
    /// Snapshot, retrain, publish; reply with the new epoch.
    TrainNow {
        reply: Option<Sender<Result<u64, TrainError>>>,
    },
    Shutdown,
}

/// Handle to the background trainer thread.
#[derive(Debug)]
pub struct Trainer {
    tx: Sender<TrainerMsg>,
    handle: Option<JoinHandle<()>>,
    /// Whether an async (fire-and-forget) retrain request is already
    /// queued. [`Trainer::request_retrain`] only enqueues when it flips
    /// this false→true, so a burst of ingest-driven triggers coalesces to
    /// at most one queued cycle instead of piling up stale back-to-back
    /// cycles when a retrain takes longer than the trigger interval.
    async_queued: Arc<AtomicBool>,
}

/// Everything one retrain cycle needs, bundled for the thread.
struct TrainerState {
    drl: DrlConfig,
    snapshot: SnapshotFn,
    slot: Arc<ModelSlot>,
    metrics: Arc<ServeMetrics>,
}

type SnapshotFn = Box<dyn Fn() -> Vec<ReplayDb> + Send>;

impl Trainer {
    /// Spawns the trainer. `shards` is shared with the service; snapshots
    /// go through its FIFO queues, so a snapshot observes every batch
    /// ingested before the snapshot request.
    pub(crate) fn spawn(
        drl: DrlConfig,
        shards: &Arc<ShardSet>,
        slot: Arc<ModelSlot>,
        metrics: Arc<ServeMetrics>,
    ) -> Self {
        let shard_ref = Arc::clone(shards);
        let state = TrainerState {
            drl,
            snapshot: Box::new(move || shard_ref.snapshot_all()),
            slot,
            metrics,
        };
        let (tx, rx) = unbounded();
        let async_queued = Arc::new(AtomicBool::new(false));
        let queued_flag = Arc::clone(&async_queued);
        let handle = std::thread::Builder::new()
            .name("geomancy-trainer".into())
            .spawn(move || {
                while let Ok(msg) = rx.recv() {
                    match msg {
                        TrainerMsg::Shutdown => break,
                        TrainerMsg::TrainNow { reply } => {
                            // Clear the coalescing flag before training so
                            // a trigger arriving mid-cycle earns one
                            // follow-up cycle over the newer data.
                            if reply.is_none() {
                                queued_flag.store(false, Ordering::Release);
                            }
                            let outcome = train_once(&state);
                            if let Some(reply) = reply {
                                let _ = reply.send(outcome);
                            }
                        }
                    }
                }
            })
            .expect("failed to spawn trainer");
        Trainer {
            tx,
            handle: Some(handle),
            async_queued,
        }
    }

    /// Runs one retrain cycle and blocks until its model is published.
    ///
    /// # Errors
    ///
    /// [`TrainError::NotEnoughData`] with a too-small telemetry window,
    /// [`TrainError::TrainerDown`] after shutdown.
    pub fn retrain_now(&self) -> Result<u64, TrainError> {
        let (reply, rx) = bounded(1);
        self.tx
            .send(TrainerMsg::TrainNow { reply: Some(reply) })
            .map_err(|_| TrainError::TrainerDown)?;
        rx.recv().map_err(|_| TrainError::TrainerDown)?
    }

    /// Queues a retrain cycle without waiting for it. Requests coalesce:
    /// while one async cycle is already queued, further requests are
    /// no-ops (the queued cycle will train on the newer data anyway).
    pub fn request_retrain(&self) {
        if self
            .async_queued
            .compare_exchange(false, true, Ordering::AcqRel, Ordering::Relaxed)
            .is_ok()
        {
            let _ = self.tx.send(TrainerMsg::TrainNow { reply: None });
        }
    }

    /// Stops the trainer after queued cycles complete.
    pub fn shutdown(mut self) {
        let _ = self.tx.send(TrainerMsg::Shutdown);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

impl Drop for Trainer {
    fn drop(&mut self) {
        let _ = self.tx.send(TrainerMsg::Shutdown);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

/// One cycle: snapshot → merge → train a fresh engine → publish.
fn train_once(state: &TrainerState) -> Result<u64, TrainError> {
    use std::sync::atomic::Ordering;
    let snapshots = (state.snapshot)();
    let merged = ReplayDb::merged(snapshots.iter());
    let mut config = state.drl.clone();
    // Vary initialization per cycle so consecutive models are
    // distinguishable in the soak test while staying deterministic.
    config.seed = config.seed.wrapping_add(state.slot.published_epoch());
    let mut engine = DrlEngine::new(config);
    if engine.retrain(&merged).is_none() {
        return Err(TrainError::NotEnoughData);
    }
    state.metrics.retrains.fetch_add(1, Ordering::Relaxed);
    Ok(state.slot.publish(engine))
}
