//! Background retraining: snapshot the shards, train off to the side,
//! publish through the [`ModelSlot`].
//!
//! Serving never blocks on training: the trainer works on merged *copies*
//! of the shard databases, and the only synchronization with the query
//! engine is the epoch-pointer publish. Each cycle trains a fresh engine
//! from the same seeded initialization (plus the epoch, so cycles differ)
//! — retrain-from-scratch keeps every published model a pure function of
//! the telemetry window, which is what makes the hot-swap soak test's "no
//! torn model" claim checkable.
//!
//! ## Snapshot protocol
//!
//! The trainer is an actor on the service's reactor, so it cannot block
//! waiting for shard replies (that would wedge a pool worker). A cycle
//! instead fans out one `Snapshot` message per shard whose reply
//! continuation `send_now`s a [`TrainerMsg::Part`] back to the trainer's
//! own mailbox; when the last part lands, the trainer merges, trains, and
//! publishes inline. Snapshot requests ride each shard's FIFO mailbox, so
//! a cycle still observes every batch ingested before it was requested.
//! Cycles are serialized: requests arriving mid-cycle queue behind it.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use crossbeam::channel::{bounded, Sender};
use geomancy_core::drl::{DrlConfig, DrlEngine};
use geomancy_replaydb::ReplayDb;
use geomancy_runtime::{Actor, Addr, Ctx, Reactor};

use crate::batch::ModelSlot;
use crate::metrics::ServeMetrics;
use crate::shard::{ShardMsg, ShardSet};

/// Why a retrain cycle produced no model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TrainError {
    /// The merged shard snapshot holds too few records to train on.
    NotEnoughData,
    /// The trainer has shut down.
    TrainerDown,
}

impl std::fmt::Display for TrainError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TrainError::NotEnoughData => f.write_str("not enough telemetry to retrain"),
            TrainError::TrainerDown => f.write_str("trainer has shut down"),
        }
    }
}

impl std::error::Error for TrainError {}

pub(crate) enum TrainerMsg {
    /// Self-address bootstrap, delivered first (mailbox FIFO) so snapshot
    /// continuations can route parts home.
    Init(Addr<TrainerMsg>),
    /// Snapshot, retrain, publish; reply with the new epoch.
    TrainNow {
        reply: Option<Sender<Result<u64, TrainError>>>,
    },
    /// One shard's snapshot arriving for the in-flight cycle.
    Part { shard: usize, db: ReplayDb },
}

/// Handle to the trainer actor.
#[derive(Debug)]
pub struct Trainer {
    addr: Addr<TrainerMsg>,
    /// Whether an async (fire-and-forget) retrain request is already
    /// queued. [`Trainer::request_retrain`] only enqueues when it flips
    /// this false→true, so a burst of ingest-driven triggers coalesces to
    /// at most one queued cycle instead of piling up stale back-to-back
    /// cycles when a retrain takes longer than the trigger interval.
    async_queued: Arc<AtomicBool>,
}

impl Trainer {
    /// Spawns the trainer actor on `reactor`. Snapshots go through the
    /// shard mailbox FIFOs, so a cycle observes every batch ingested
    /// before it started.
    pub(crate) fn spawn_on(
        reactor: &Reactor,
        drl: DrlConfig,
        shards: &ShardSet,
        slot: Arc<ModelSlot>,
        metrics: Arc<ServeMetrics>,
    ) -> Self {
        let async_queued = Arc::new(AtomicBool::new(false));
        let n = shards.len();
        let (addr, _handle) = reactor.spawn(
            "trainer",
            16,
            TrainerActor {
                self_addr: None,
                shard_addrs: shards.addrs().to_vec(),
                drl,
                slot,
                metrics,
                async_queued: Arc::clone(&async_queued),
                collecting: None,
                queued: VecDeque::new(),
                shard_count: n,
            },
        );
        addr.send_now(TrainerMsg::Init(addr.clone()))
            .ok()
            .expect("trainer mailbox open at spawn");
        Trainer { addr, async_queued }
    }

    /// Runs one retrain cycle and blocks until its model is published.
    ///
    /// # Errors
    ///
    /// [`TrainError::NotEnoughData`] with a too-small telemetry window,
    /// [`TrainError::TrainerDown`] after shutdown.
    pub fn retrain_now(&self) -> Result<u64, TrainError> {
        let (reply, rx) = bounded(1);
        self.addr
            .send(TrainerMsg::TrainNow { reply: Some(reply) })
            .map_err(|_| TrainError::TrainerDown)?;
        rx.recv().map_err(|_| TrainError::TrainerDown)?
    }

    /// Queues a retrain cycle without waiting for it. Requests coalesce:
    /// while one async cycle is already queued, further requests are
    /// no-ops (the queued cycle will train on the newer data anyway).
    pub fn request_retrain(&self) {
        if self
            .async_queued
            .compare_exchange(false, true, Ordering::AcqRel, Ordering::Relaxed)
            .is_ok()
            && self
                .addr
                .try_send(TrainerMsg::TrainNow { reply: None })
                .is_err()
        {
            // Mailbox full or closing: give the next trigger its chance.
            self.async_queued.store(false, Ordering::Release);
        }
    }
}

/// An in-flight cycle's gathered state.
struct Collect {
    reply: Option<Sender<Result<u64, TrainError>>>,
    parts: Vec<Option<ReplayDb>>,
    got: usize,
}

struct TrainerActor {
    self_addr: Option<Addr<TrainerMsg>>,
    shard_addrs: Vec<Addr<ShardMsg>>,
    drl: DrlConfig,
    slot: Arc<ModelSlot>,
    metrics: Arc<ServeMetrics>,
    async_queued: Arc<AtomicBool>,
    collecting: Option<Collect>,
    /// Cycles requested while one is in flight (serialized FIFO).
    queued: VecDeque<Option<Sender<Result<u64, TrainError>>>>,
    shard_count: usize,
}

impl Actor for TrainerActor {
    type Msg = TrainerMsg;

    fn on_msg(&mut self, msg: TrainerMsg, _ctx: &mut Ctx<'_>) {
        match msg {
            TrainerMsg::Init(addr) => self.self_addr = Some(addr),
            TrainerMsg::TrainNow { reply } => {
                if self.collecting.is_some() {
                    self.queued.push_back(reply);
                } else {
                    self.start_cycle(reply);
                }
            }
            TrainerMsg::Part { shard, db } => {
                let Some(collect) = self.collecting.as_mut() else {
                    return; // stale part from an abandoned cycle
                };
                if collect.parts[shard].is_none() {
                    collect.parts[shard] = Some(db);
                    collect.got += 1;
                }
                if collect.got == self.shard_count {
                    self.finish_cycle();
                }
            }
        }
    }

    fn on_stop(&mut self, _ctx: &mut Ctx<'_>) {
        // A cycle caught mid-collection at shutdown cannot complete (its
        // remaining parts were purged with the mailboxes); dropping the
        // reply senders surfaces TrainerDown to any blocked caller.
        self.collecting = None;
        self.queued.clear();
    }
}

impl TrainerActor {
    /// Fans the snapshot request out to every shard; parts flow back as
    /// messages. `send_now` keeps the fan-out non-blocking and lets parts
    /// land even while the service is draining.
    fn start_cycle(&mut self, reply: Option<Sender<Result<u64, TrainError>>>) {
        // Clear the coalescing flag before the cycle trains so a trigger
        // arriving mid-cycle earns one follow-up cycle over newer data.
        if reply.is_none() {
            self.async_queued.store(false, Ordering::Release);
        }
        self.collecting = Some(Collect {
            reply,
            parts: vec![None; self.shard_count],
            got: 0,
        });
        let me = self
            .self_addr
            .clone()
            .expect("Init is delivered before any TrainNow");
        for addr in &self.shard_addrs {
            let home = me.clone();
            if addr
                .send_now(ShardMsg::Snapshot {
                    reply: Box::new(move |shard, db| {
                        let _ = home.send_now(TrainerMsg::Part { shard, db });
                    }),
                })
                .is_err()
            {
                // Shard dead (panicked): abandon the cycle; dropping the
                // reply sender reports TrainerDown to a blocked caller.
                self.collecting = None;
                return;
            }
        }
    }

    /// All parts in hand: merge → train a fresh engine → publish.
    fn finish_cycle(&mut self) {
        let collect = self.collecting.take().expect("cycle in flight");
        let merged = ReplayDb::merged(
            collect
                .parts
                .iter()
                .map(|p| p.as_ref().expect("all parts collected")),
        );
        let mut config = self.drl.clone();
        // Vary initialization per cycle so consecutive models are
        // distinguishable in the soak test while staying deterministic.
        config.seed = config.seed.wrapping_add(self.slot.published_epoch());
        let mut engine = DrlEngine::new(config);
        let outcome = if engine.retrain(&merged).is_none() {
            Err(TrainError::NotEnoughData)
        } else {
            self.metrics.retrains.fetch_add(1, Ordering::Relaxed);
            Ok(self.slot.publish(engine))
        };
        if let Some(reply) = collect.reply {
            let _ = reply.send(outcome);
        }
        if let Some(next) = self.queued.pop_front() {
            self.start_cycle(next);
        }
    }
}
