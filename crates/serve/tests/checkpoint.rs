//! Integration tests of the checkpointer actor: shard WALs seal into
//! segments, the cold store absorbs them exactly once, hot tails trim,
//! and — the reason the subsystem exists — WAL disk usage stays bounded
//! under sustained ingest instead of growing with history.

use std::path::PathBuf;

use geomancy_serve::{PlacementService, ServeConfig, StoreSettings};
use geomancy_sim::record::{AccessRecord, DeviceId, FileId};
use geomancy_sim::SharedSimClock;

fn rec(n: u64, fid: u64, dev: u32) -> AccessRecord {
    AccessRecord {
        access_number: n,
        fid: FileId(fid),
        fsid: DeviceId(dev),
        rb: 4096,
        wb: 0,
        ots: n,
        otms: 0,
        cts: n + 1,
        ctms: 0,
    }
}

fn temp_base(name: &str) -> PathBuf {
    let base = std::env::temp_dir()
        .join("geomancy_serve_checkpoint_test")
        .join(format!("{name}-{}", std::process::id()));
    std::fs::remove_dir_all(&base).ok();
    base
}

fn config(base: &std::path::Path, hot_tail: usize) -> ServeConfig {
    ServeConfig {
        shards: 2,
        wal_dir: Some(base.join("wal")),
        store: Some(StoreSettings {
            dir: base.join("store"),
            page_size: 4096,
            cache_pages: 8,
            checkpoint_every_micros: 0,
            hot_tail,
        }),
        ..ServeConfig::default()
    }
}

/// Bytes currently used by WAL files and sealed segments.
fn wal_dir_bytes(dir: &std::path::Path) -> u64 {
    std::fs::read_dir(dir)
        .map(|entries| {
            entries
                .flatten()
                .filter_map(|e| e.metadata().ok())
                .map(|m| m.len())
                .sum()
        })
        .unwrap_or(0)
}

/// The soak: sustained ingest with periodic checkpoints. Without the
/// checkpointer the WAL grows linearly with every round; with it, each
/// checkpoint drains the logs, so the high-water mark of WAL bytes after
/// a checkpoint stays flat no matter how many rounds run.
#[test]
fn wal_stays_bounded_under_sustained_ingest() {
    let base = temp_base("soak");
    let service = PlacementService::start(config(&base, 50));
    let wal_dir = base.join("wal");

    let mut n = 0u64;
    let mut post_checkpoint_bytes = Vec::new();
    for round in 0..10u64 {
        for _ in 0..200 {
            service
                .ingest(n, &[rec(n, n % 17, (n % 3) as u32)])
                .unwrap();
            n += 1;
        }
        let report = service.checkpoint_now().unwrap();
        assert!(
            report.records_absorbed > 0,
            "round {round} absorbed nothing"
        );
        post_checkpoint_bytes.push(wal_dir_bytes(&wal_dir));
    }

    // Steady state: the WAL footprint after a checkpoint does not grow
    // with rounds (every round drains what it wrote; empty re-created
    // logs are near zero bytes).
    let first = post_checkpoint_bytes[0];
    for (round, &bytes) in post_checkpoint_bytes.iter().enumerate() {
        assert!(
            bytes <= first.max(1024),
            "WAL grew with history: round {round} holds {bytes} bytes (round 0: {first})"
        );
    }

    let snap = service.metrics();
    assert_eq!(snap.checkpoints, 10);
    assert_eq!(snap.wal_pending_records, 0, "checkpoint lag must drain");
    assert!(snap.store_pages > 0);
    assert!(snap.store_cold_bytes > 0);
    assert!(snap.last_checkpoint_micros > 0);

    // Every ingested record lives in the cold store exactly once.
    {
        let store = service.store().expect("service runs with a store").read();
        assert_eq!(store.total_records(), n);
        let mut numbers: Vec<u64> = store
            .recent(n as usize + 10)
            .unwrap()
            .iter()
            .map(|r| r.access_number)
            .collect();
        numbers.sort_unstable();
        assert_eq!(numbers, (0..n).collect::<Vec<u64>>());
    }

    // Hot tails were trimmed to the bound after the final checkpoint.
    let dbs = service.shutdown();
    for db in &dbs {
        assert!(db.len() <= 50, "hot tail kept {} records", db.len());
    }
    std::fs::remove_dir_all(&base).ok();
}

/// A restart mid-stream: records checkpointed before the stop come back
/// from the cold store; records still in the active WALs come back via
/// shard recovery and the next checkpoint absorbs them — each exactly
/// once.
#[test]
fn restart_recovers_wal_tail_and_cold_history() {
    let base = temp_base("restart");
    {
        let service = PlacementService::start(config(&base, 20));
        for n in 0..300u64 {
            service.ingest(n, &[rec(n, n % 5, 0)]).unwrap();
        }
        service.checkpoint_now().unwrap();
        // These 100 stay in the active WALs — no checkpoint before stop.
        for n in 300..400u64 {
            service.ingest(n, &[rec(n, n % 5, 0)]).unwrap();
        }
        service.shutdown();
    }

    let service = PlacementService::start(config(&base, 20));
    // The un-checkpointed tail was recovered into the shards and counts
    // as checkpoint lag; the cold history is already in the store.
    let snap = service.metrics();
    assert_eq!(snap.wal_pending_records, 100);
    {
        let store = service.store().unwrap().read();
        assert_eq!(store.total_records(), 300);
    }

    let report = service.checkpoint_now().unwrap();
    assert_eq!(report.records_absorbed, 100);
    {
        let store = service.store().unwrap().read();
        assert_eq!(store.total_records(), 400);
        let mut numbers: Vec<u64> = store
            .recent(500)
            .unwrap()
            .iter()
            .map(|r| r.access_number)
            .collect();
        numbers.sort_unstable();
        assert_eq!(
            numbers,
            (0..400).collect::<Vec<u64>>(),
            "exactly-once across restart"
        );
    }
    assert_eq!(service.metrics().wal_pending_records, 0);
    service.shutdown();
    std::fs::remove_dir_all(&base).ok();
}

/// An empty cycle is a no-op: nothing sealed, nothing absorbed, no empty
/// segments or pages created.
#[test]
fn checkpoint_without_new_records_is_a_noop() {
    let base = temp_base("noop");
    let service = PlacementService::start(config(&base, 20));
    let report = service.checkpoint_now().unwrap();
    assert_eq!(report.records_absorbed, 0);
    assert_eq!(report.segments_absorbed, 0);
    assert_eq!(service.metrics().checkpoints, 0);

    service.ingest(1, &[rec(0, 0, 0)]).unwrap();
    assert_eq!(service.checkpoint_now().unwrap().records_absorbed, 1);
    // Drained: a second cycle finds nothing.
    assert_eq!(service.checkpoint_now().unwrap().records_absorbed, 0);
    assert_eq!(service.metrics().checkpoints, 1);
    service.shutdown();
    std::fs::remove_dir_all(&base).ok();
}

/// The cadence timer runs on reactor time: with a simulated clock,
/// publishing time past the cadence triggers a checkpoint without any
/// explicit call.
#[test]
fn cadence_checkpoints_fire_on_simulated_time() {
    let base = temp_base("cadence");
    let mut config = config(&base, 20);
    config.store.as_mut().unwrap().checkpoint_every_micros = 1_000_000;
    let clock = SharedSimClock::new();
    let service = PlacementService::start_with_clock(config, clock.clone());

    for n in 0..50u64 {
        service.ingest(n * 1000, &[rec(n, n % 3, 0)]).unwrap();
    }
    // Keep advancing simulated time past cadence periods until the timer
    // fires. (A single publish could race the checkpointer's startup: if
    // the timer arms *after* the publish, frozen time never crosses it.)
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(30);
    let mut sim_now = 5_000_000u64;
    while service.metrics().checkpoints == 0 {
        assert!(
            std::time::Instant::now() < deadline,
            "cadence checkpoint never fired"
        );
        clock.publish_micros(sim_now);
        sim_now += 1_000_000;
        std::thread::sleep(std::time::Duration::from_millis(10));
    }
    {
        let store = service.store().unwrap().read();
        assert_eq!(store.total_records(), 50);
    }
    service.shutdown();
    std::fs::remove_dir_all(&base).ok();
}
