//! Hot-swap soak: ingest, retrain, and query concurrently through several
//! model swaps, then check the three serving guarantees:
//!
//! - **≥ 3 swaps** actually reach the query engine (not just publishes);
//! - **zero lost ingest records** — every record sent is in a shard at
//!   shutdown;
//! - **no torn-model decision** — every decision carries an epoch that was
//!   fully published at the time it was served, and its prediction is
//!   finite (a half-swapped network would produce garbage or an epoch
//!   that never existed).

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use geomancy_core::drl::DrlConfig;
use geomancy_serve::{PlacementRequest, PlacementService, QueryError, ServeConfig};
use geomancy_sim::record::{AccessRecord, DeviceId, FileId};

fn rec(n: u64, fid: u64) -> AccessRecord {
    let dev = (n % 2) as u32;
    let dt_ms = if dev == 0 { 400 } else { 100 };
    let open_ms = n * 500;
    let close_ms = open_ms + dt_ms;
    AccessRecord {
        access_number: n,
        fid: FileId(fid),
        fsid: DeviceId(dev),
        rb: 1_000_000,
        wb: 0,
        ots: open_ms / 1000,
        otms: (open_ms % 1000) as u16,
        cts: close_ms / 1000,
        ctms: (close_ms % 1000) as u16,
    }
}

#[test]
fn soak_three_swaps_no_lost_records_no_torn_decisions() {
    const ROUNDS: u64 = 4;
    const RECORDS_PER_ROUND: u64 = 250;
    let service = Arc::new(PlacementService::start(ServeConfig {
        shards: 4,
        candidates: vec![DeviceId(0), DeviceId(1)],
        drl: DrlConfig {
            epochs: 10,
            smoothing_window: 4,
            ..DrlConfig::default()
        },
        ..ServeConfig::default()
    }));

    // Background query pressure across every swap boundary.
    let stop = Arc::new(AtomicBool::new(false));
    let bad_decisions = Arc::new(AtomicU64::new(0));
    let served = Arc::new(AtomicU64::new(0));
    let mut clients = Vec::new();
    for c in 0..3u64 {
        let service = Arc::clone(&service);
        let stop = Arc::clone(&stop);
        let bad = Arc::clone(&bad_decisions);
        let served = Arc::clone(&served);
        clients.push(std::thread::spawn(move || {
            let requests: Vec<PlacementRequest> = (0..16)
                .map(|i| PlacementRequest {
                    fid: FileId((c * 16 + i) % 8),
                    read_bytes: 1_000_000,
                    write_bytes: 0,
                })
                .collect();
            while !stop.load(Ordering::Relaxed) {
                match service.query_many(&requests) {
                    Err(QueryError::NotReady) | Err(QueryError::Overloaded) => {
                        std::thread::yield_now()
                    }
                    Err(QueryError::ServiceDown) => break,
                    Ok(decisions) => {
                        // published_epoch is read *after* the reply: the
                        // serving epoch can never exceed it.
                        let published = service.published_epoch();
                        for d in &decisions {
                            let torn = d.model_epoch == 0
                                || d.model_epoch > published
                                || !d.predicted_tp.is_finite();
                            if torn {
                                bad.fetch_add(1, Ordering::Relaxed);
                            }
                        }
                        served.fetch_add(decisions.len() as u64, Ordering::Relaxed);
                    }
                }
            }
        }));
    }

    let mut sent = 0u64;
    let mut next = 0u64;
    for round in 1..=ROUNDS {
        for _ in 0..RECORDS_PER_ROUND {
            service
                .ingest(next * 1_000_000, &[rec(next, next % 8)])
                .unwrap();
            sent += 1;
            next += 1;
        }
        let epoch = service.retrain_now().expect("enough telemetry");
        assert_eq!(epoch, round, "epochs advance one per retrain");
        // Force a batch boundary so the engine picks the new model up, and
        // verify the very next decision serves it.
        let d = service
            .query(PlacementRequest {
                fid: FileId(0),
                read_bytes: 1_000_000,
                write_bytes: 0,
            })
            .expect("model published");
        assert_eq!(d.model_epoch, epoch, "fresh model not picked up");
    }

    // Let the clients observe the final model too, then stop them.
    std::thread::sleep(std::time::Duration::from_millis(50));
    stop.store(true, Ordering::Relaxed);
    for c in clients {
        c.join().expect("query client panicked");
    }

    assert!(
        served.load(Ordering::Relaxed) > 0,
        "background clients never got a decision"
    );
    assert_eq!(
        bad_decisions.load(Ordering::Relaxed),
        0,
        "torn-model decisions observed"
    );

    let metrics = service.metrics();
    assert!(
        metrics.model_swaps >= 3,
        "only {} swaps reached the engine",
        metrics.model_swaps
    );
    assert_eq!(metrics.retrains, ROUNDS);
    assert_eq!(metrics.ingested_records, sent);
    assert_eq!(metrics.dropped_batches, 0);

    // Zero lost ingest records: every record sent is in exactly one shard.
    let service = Arc::try_unwrap(service).expect("clients released the service");
    let dbs = service.shutdown();
    let total: usize = dbs.iter().map(|db| db.len()).sum();
    assert_eq!(total as u64, sent, "records lost between ingest and shards");
}
