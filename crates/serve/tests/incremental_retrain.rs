//! Incremental retraining pipeline, end to end through the service:
//!
//! - delta snapshots move only records past the trainer's per-shard
//!   watermarks (proved by the `retrain_records` counter and the
//!   watermarks persisted in [`geomancy_serve::TrainedMeta`]);
//! - warm starts and full retrains are split out in the metrics, and
//!   the published metadata says which path produced each model;
//! - a retrain with no new data reports `NotEnoughData` and leaves the
//!   watermarks alone, so the records redeliver on the next cycle.

use geomancy_core::drl::DrlConfig;
use geomancy_serve::{PlacementService, RetrainMode, ServeConfig, TrainError, TrainerConfig};
use geomancy_sim::record::{AccessRecord, DeviceId, FileId};

fn rec(n: u64, fid: u64) -> AccessRecord {
    let dev = (n % 2) as u32;
    let dt_ms = if dev == 0 { 400 } else { 100 };
    let open_ms = n * 500;
    let close_ms = open_ms + dt_ms;
    AccessRecord {
        access_number: n,
        fid: FileId(fid),
        fsid: DeviceId(dev),
        rb: 1_000_000,
        wb: 0,
        ots: open_ms / 1000,
        otms: (open_ms % 1000) as u16,
        cts: close_ms / 1000,
        ctms: (close_ms % 1000) as u16,
    }
}

fn service(mode: RetrainMode) -> PlacementService {
    PlacementService::start(ServeConfig {
        shards: 4,
        candidates: vec![DeviceId(0), DeviceId(1)],
        drl: DrlConfig {
            epochs: 10,
            smoothing_window: 4,
            ..DrlConfig::default()
        },
        trainer: TrainerConfig {
            mode,
            ..TrainerConfig::default()
        },
        ..ServeConfig::default()
    })
}

fn ingest(service: &PlacementService, from: u64, count: u64) {
    for n in from..from + count {
        service.ingest(n * 1_000_000, &[rec(n, n % 8)]).unwrap();
    }
}

#[test]
fn second_cycle_warm_starts_on_the_delta_only() {
    let service = service(RetrainMode::Incremental);

    // Cycle 1: nothing trained yet, so the bootstrap cycle is full and
    // moves the whole history.
    ingest(&service, 0, 300);
    assert_eq!(service.retrain_now().unwrap(), 1);
    let m = service.metrics();
    assert_eq!(m.full_retrains, 1);
    assert_eq!(m.warm_starts, 0);
    assert_eq!(
        m.retrain_records, 300,
        "bootstrap snapshot moves everything"
    );
    let meta = service
        .trained_meta()
        .expect("published model has metadata");
    assert!(!meta.warm_start);
    assert_eq!(meta.watermarks.iter().sum::<u64>(), 300);
    assert!(meta.validation_mae.is_finite());
    assert!(!meta.spec.is_empty());

    // Cycle 2: only the 100 new records cross the wire.
    ingest(&service, 300, 100);
    assert_eq!(service.retrain_now().unwrap(), 2);
    let m = service.metrics();
    assert_eq!(m.warm_starts, 1);
    assert_eq!(m.full_retrains, 1);
    assert_eq!(
        m.retrain_records, 400,
        "delta snapshot must move only the 100 records past the watermark"
    );
    assert!(m.retrain_micros > 0);
    let meta = service.trained_meta().unwrap();
    assert!(meta.warm_start, "second cycle should warm-start");
    assert_eq!(meta.watermarks.iter().sum::<u64>(), 400);

    service.shutdown();
}

#[test]
fn full_mode_moves_the_whole_history_every_cycle() {
    let service = service(RetrainMode::Full);

    ingest(&service, 0, 300);
    assert_eq!(service.retrain_now().unwrap(), 1);
    ingest(&service, 300, 100);
    assert_eq!(service.retrain_now().unwrap(), 2);

    let m = service.metrics();
    assert_eq!(m.full_retrains, 2);
    assert_eq!(m.warm_starts, 0);
    assert_eq!(
        m.retrain_records,
        300 + 400,
        "full mode re-snapshots the whole history each cycle"
    );
    let meta = service.trained_meta().unwrap();
    assert!(!meta.warm_start);
    // Full cycles still advance the watermarks so a later mode switch
    // starts from the right place.
    assert_eq!(meta.watermarks.iter().sum::<u64>(), 400);

    service.shutdown();
}

#[test]
fn empty_delta_reports_not_enough_data_and_keeps_watermarks() {
    let service = service(RetrainMode::Incremental);

    ingest(&service, 0, 300);
    assert_eq!(service.retrain_now().unwrap(), 1);

    // No new records: the delta is empty, the cycle fails cleanly, and
    // the watermarks do not advance.
    assert_eq!(service.retrain_now(), Err(TrainError::NotEnoughData));
    let m = service.metrics();
    assert_eq!(m.retrains, 1, "failed cycle must not count as a retrain");
    let meta = service.trained_meta().unwrap();
    assert_eq!(meta.watermarks.iter().sum::<u64>(), 300);

    // The pipeline recovers: new data trains normally afterwards.
    ingest(&service, 300, 100);
    assert_eq!(service.retrain_now().unwrap(), 2);
    assert_eq!(
        service
            .trained_meta()
            .unwrap()
            .watermarks
            .iter()
            .sum::<u64>(),
        400
    );

    service.shutdown();
}

#[test]
fn auto_mode_bootstraps_full_then_warm_starts() {
    let service = service(RetrainMode::Auto);

    ingest(&service, 0, 300);
    assert_eq!(service.retrain_now().unwrap(), 1);
    ingest(&service, 300, 100);
    assert_eq!(service.retrain_now().unwrap(), 2);

    let m = service.metrics();
    // Auto may fall back to full if the warm step regresses, but the
    // two cycles are always accounted for in exactly one of the two
    // counters, and the first one is always full.
    assert_eq!(m.warm_starts + m.full_retrains, 2);
    assert!(m.full_retrains >= 1);
    assert_eq!(
        service
            .trained_meta()
            .unwrap()
            .watermarks
            .iter()
            .sum::<u64>(),
        400
    );

    service.shutdown();
}
