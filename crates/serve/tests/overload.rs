//! Overload soak: offer the service far more than it can hold and check
//! that it degrades *gracefully* —
//!
//! - every shed request is accounted: `queries_offered ==
//!   queries_admitted + queries_shed` in a coherent snapshot, and every
//!   admitted request produced exactly one decision;
//! - the pending-request watermark actually bounds in-flight work (up to
//!   the one-burst-per-client admission race);
//! - decision latency stays bounded (shedding keeps queues short, so p99
//!   cannot grow with offered load);
//! - the ingest side keeps its own invariant under the same pressure:
//!   `ingested + dropped == offered` records.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use geomancy_core::drl::DrlConfig;
use geomancy_serve::{
    AdmissionConfig, PlacementRequest, PlacementService, QueryError, ServeConfig,
};
use geomancy_sim::record::{AccessRecord, DeviceId, FileId};

fn rec(n: u64, fid: u64) -> AccessRecord {
    let dev = (n % 2) as u32;
    let dt_ms = if dev == 0 { 400 } else { 100 };
    let open_ms = n * 1000;
    let close_ms = open_ms + dt_ms;
    AccessRecord {
        access_number: n,
        fid: FileId(fid),
        fsid: DeviceId(dev),
        rb: 1_000_000,
        wb: 0,
        ots: open_ms / 1000,
        otms: (open_ms % 1000) as u16,
        cts: close_ms / 1000,
        ctms: (close_ms % 1000) as u16,
    }
}

/// Starts a small service with a published model and the given admission
/// config.
fn ready_service(admission: AdmissionConfig, batch_window_micros: u64) -> Arc<PlacementService> {
    let service = PlacementService::start(ServeConfig {
        shards: 2,
        queue_capacity: 4,
        batch_window_micros,
        max_batch: 32,
        candidates: vec![DeviceId(0), DeviceId(1)],
        drl: DrlConfig {
            epochs: 10,
            smoothing_window: 4,
            ..DrlConfig::default()
        },
        admission,
        ..ServeConfig::default()
    });
    for i in 0..300u64 {
        service.ingest(i * 1_000_000, &[rec(i, i % 4)]).unwrap();
    }
    service.retrain_now().expect("enough telemetry");
    Arc::new(service)
}

/// A zero watermark sheds everything, deterministically, with every shed
/// counted.
#[test]
fn zero_watermark_sheds_every_request() {
    let service = ready_service(
        AdmissionConfig {
            max_pending_requests: Some(0),
            latency_watermark_us: None,
            defer_micros: 0,
            ..AdmissionConfig::default()
        },
        0,
    );
    for _ in 0..50 {
        let err = service
            .query(PlacementRequest {
                fid: FileId(0),
                read_bytes: 1_000_000,
                write_bytes: 0,
            })
            .unwrap_err();
        assert_eq!(err, QueryError::Overloaded);
    }
    let snap = service.metrics();
    assert_eq!(snap.queries_offered, 50);
    assert_eq!(snap.queries_admitted, 0);
    assert_eq!(snap.queries_shed, 50);
    assert_eq!(snap.decisions, 0, "shed requests never reach the engine");
    Arc::try_unwrap(service).expect("sole owner").shutdown();
}

/// A single submission larger than a nonzero pending bound still gets
/// through while the service is quiet — the bound is a watermark, not a
/// per-submission size cap, so a retrying client can never livelock on a
/// batch it is allowed to send.
#[test]
fn oversized_submission_admitted_when_quiet() {
    let service = ready_service(
        AdmissionConfig {
            max_pending_requests: Some(4),
            latency_watermark_us: None,
            defer_micros: 0,
            ..AdmissionConfig::default()
        },
        0,
    );
    let requests: Vec<PlacementRequest> = (0..16)
        .map(|i| PlacementRequest {
            fid: FileId(i % 4),
            read_bytes: 1_000_000,
            write_bytes: 0,
        })
        .collect();
    let decisions = service
        .query_many(&requests)
        .expect("oversized batch admitted against an idle service");
    assert_eq!(decisions.len(), 16);
    let snap = service.metrics();
    assert_eq!(snap.queries_admitted, 16);
    assert_eq!(snap.queries_shed, 0);
    Arc::try_unwrap(service).expect("sole owner").shutdown();
}

/// Once the latency EWMA crosses its watermark, later requests shed —
/// latency feedback, not just queue depth.
#[test]
fn latency_watermark_sheds_after_slow_decisions() {
    // A 2 ms batch window guarantees every decision waits ≥ 2000 µs, so
    // the first served batch pushes the EWMA over the zero watermark.
    let service = ready_service(
        AdmissionConfig {
            max_pending_requests: None,
            latency_watermark_us: Some(0),
            defer_micros: 0,
            ..AdmissionConfig::default()
        },
        2_000,
    );
    let req = PlacementRequest {
        fid: FileId(0),
        read_bytes: 1_000_000,
        write_bytes: 0,
    };
    // EWMA is still zero: admitted.
    service.query(req).expect("first query admitted");
    // The reply updated the EWMA before it reached us: shed from now on.
    assert_eq!(service.query(req).unwrap_err(), QueryError::Overloaded);
    let snap = service.metrics();
    assert_eq!(snap.queries_offered, 2);
    assert_eq!(snap.queries_admitted, 1);
    assert_eq!(snap.queries_shed, 1);
    assert!(snap.latency_ewma_us >= 2_000, "EWMA tracks the window");
    Arc::try_unwrap(service).expect("sole owner").shutdown();
}

/// The full soak: concurrent clients offering bursts far above the
/// pending watermark, plus ingest pressure on tiny shard queues.
#[test]
fn overload_soak_sheds_are_fully_accounted_and_latency_bounded() {
    const CLIENTS: u64 = 8;
    const ITERS: u64 = 60;
    const BURST: u64 = 16;
    const WATERMARK: u64 = 48;
    let service = ready_service(
        AdmissionConfig {
            max_pending_requests: Some(WATERMARK),
            latency_watermark_us: None,
            defer_micros: 50,
            ..AdmissionConfig::default()
        },
        0,
    );

    // Ingest pressure on the non-blocking path while queries run.
    let ingest_offered = Arc::new(AtomicU64::new(0));
    let ingest_stop = Arc::new(AtomicU64::new(0));
    let pressure = {
        let service = Arc::clone(&service);
        let offered = Arc::clone(&ingest_offered);
        let stop = Arc::clone(&ingest_stop);
        std::thread::spawn(move || {
            let mut n = 1_000u64;
            while stop.load(Ordering::Relaxed) == 0 {
                let batch = [rec(n, n % 8), rec(n + 1, (n + 1) % 8)];
                offered.fetch_add(batch.len() as u64, Ordering::Relaxed);
                let _ = service.try_ingest(n * 1_000_000, &batch);
                n += 2;
            }
        })
    };

    let ok_requests = Arc::new(AtomicU64::new(0));
    let shed_requests = Arc::new(AtomicU64::new(0));
    let clients: Vec<_> = (0..CLIENTS)
        .map(|c| {
            let service = Arc::clone(&service);
            let ok = Arc::clone(&ok_requests);
            let shed = Arc::clone(&shed_requests);
            std::thread::spawn(move || {
                let requests: Vec<PlacementRequest> = (0..BURST)
                    .map(|i| PlacementRequest {
                        fid: FileId((c * BURST + i) % 8),
                        read_bytes: 1_000_000,
                        write_bytes: 0,
                    })
                    .collect();
                for _ in 0..ITERS {
                    match service.query_many(&requests) {
                        Ok(decisions) => {
                            assert_eq!(decisions.len(), BURST as usize);
                            ok.fetch_add(BURST, Ordering::Relaxed);
                        }
                        Err(QueryError::Overloaded) => {
                            shed.fetch_add(BURST, Ordering::Relaxed);
                        }
                        Err(e) => panic!("unexpected query error under load: {e:?}"),
                    }
                }
            })
        })
        .collect();
    for c in clients {
        c.join().expect("query client panicked");
    }
    ingest_stop.store(1, Ordering::Relaxed);
    pressure.join().expect("ingest pressure thread panicked");

    let snap = service.metrics();
    let offered = CLIENTS * ITERS * BURST;
    // Every offered request is accounted exactly once, coherently.
    assert_eq!(snap.queries_offered, offered);
    assert_eq!(snap.queries_admitted + snap.queries_shed, offered);
    assert_eq!(snap.queries_admitted, ok_requests.load(Ordering::Relaxed));
    assert_eq!(snap.queries_shed, shed_requests.load(Ordering::Relaxed));
    // Every admitted request produced exactly one decision; shed ones none.
    assert_eq!(snap.decisions, snap.queries_admitted);
    // The watermark held: peak in-flight is bounded by the watermark plus
    // the admission race (at most one already-checked burst per client).
    assert!(
        snap.pending_peak <= WATERMARK + CLIENTS * BURST,
        "pending_peak {} breaches watermark {} + race allowance {}",
        snap.pending_peak,
        WATERMARK,
        CLIENTS * BURST
    );
    assert_eq!(
        snap.pending_requests, 0,
        "quiesced service has no in-flight"
    );
    // Shedding kept queues short, so tail latency stays bounded no matter
    // how much was offered (2^19 µs ≈ 0.5 s is generous for 32-request
    // fused passes on a tiny network).
    assert!(
        snap.p99_latency_us() <= 1 << 19,
        "p99 {}µs not bounded under overload",
        snap.p99_latency_us()
    );
    // The ingest side held its own invariant under the same pressure.
    let ingest_total = 300 + ingest_offered.load(Ordering::Relaxed);
    assert_eq!(
        snap.ingested_records + snap.dropped_records,
        ingest_total,
        "shed ingest records must be fully accounted"
    );

    let dbs = Arc::try_unwrap(service).expect("sole owner").shutdown();
    let stored: usize = dbs.iter().map(|db| db.len()).sum();
    assert_eq!(
        stored as u64, snap.ingested_records,
        "every ingested record is in a shard"
    );
}

/// Per-shard pending bounds: a hard bound (0) on one shard sheds only the
/// submissions that target it — queries aimed at the other shard keep
/// flowing, so one hot shard cannot starve the rest of the service.
#[test]
fn per_shard_bound_sheds_hot_shard_without_starving_others() {
    use geomancy_serve::shard_of;
    // Files guaranteed to map to shard 0 ("hot") and shard 1 ("cool").
    let hot_fid = (0u64..).find(|&f| shard_of(FileId(f), 2) == 0).unwrap();
    let cool_fid = (0u64..).find(|&f| shard_of(FileId(f), 2) == 1).unwrap();
    let service = ready_service(
        AdmissionConfig {
            per_shard_pending: vec![0, 1_000],
            defer_micros: 0,
            ..AdmissionConfig::default()
        },
        0,
    );
    let hot = PlacementRequest {
        fid: FileId(hot_fid),
        read_bytes: 1_000_000,
        write_bytes: 0,
    };
    let cool = PlacementRequest {
        fid: FileId(cool_fid),
        read_bytes: 1_000_000,
        write_bytes: 0,
    };
    for _ in 0..20 {
        assert_eq!(service.query(hot).unwrap_err(), QueryError::Overloaded);
        service.query(cool).expect("cool shard stays admitted");
    }
    // A mixed submission touching the hot shard sheds as a unit.
    assert_eq!(
        service.query_many(&[hot, cool]).unwrap_err(),
        QueryError::Overloaded
    );
    let snap = service.metrics();
    assert_eq!(snap.queries_offered, 42);
    assert_eq!(snap.queries_admitted, 20);
    assert_eq!(snap.queries_shed, 22);
    assert_eq!(snap.shard_shed, vec![21, 0], "only the hot shard shed");
    assert_eq!(snap.pending_per_shard, vec![0, 0], "gauges drain to zero");
    assert_eq!(snap.decisions, 20);
    Arc::try_unwrap(service).expect("sole owner").shutdown();
}

/// The async query path runs the same admission controller and releases
/// its pending accounting when the completion fires — including for shed
/// submissions, which complete inline with `Overloaded`.
#[test]
fn async_queries_account_and_release_pending() {
    let service = ready_service(
        AdmissionConfig {
            max_pending_requests: Some(64),
            defer_micros: 0,
            ..AdmissionConfig::default()
        },
        0,
    );
    let (tx, rx) = std::sync::mpsc::channel();
    for i in 0..8u64 {
        let tx = tx.clone();
        let requests: Vec<PlacementRequest> = (0..4)
            .map(|j| PlacementRequest {
                fid: FileId((i * 4 + j) % 8),
                read_bytes: 1_000_000,
                write_bytes: 0,
            })
            .collect();
        service.query_many_async(requests, move |result| {
            tx.send(result).unwrap();
        });
    }
    drop(tx);
    let mut served = 0u64;
    for result in rx {
        let decisions = result.expect("model is published and under watermark");
        served += decisions.len() as u64;
    }
    assert_eq!(served, 32);
    let snap = service.metrics();
    assert_eq!(snap.queries_offered, 32);
    assert_eq!(snap.queries_admitted, 32);
    assert_eq!(snap.decisions, 32);
    assert_eq!(
        snap.pending_requests, 0,
        "async completions release pending"
    );
    Arc::try_unwrap(service).expect("sole owner").shutdown();
}
