//! Sharded-ingest invariants (the serving layer's correctness floor):
//!
//! 1. every record for a file lands on the same shard, across any number
//!    of ingest calls;
//! 2. per-shard arrival order is preserved (so a file's history replays
//!    in order);
//! 3. recovering the per-shard WALs reconstructs exactly the per-shard
//!    database contents, including after a crash that truncates a tail.

use std::sync::Arc;

use geomancy_replaydb::wal::{recover_shards, shard_path};
use geomancy_replaydb::ReplayDb;
use geomancy_serve::{shard_of, ServeMetrics, ShardSet};
use geomancy_sim::record::{AccessRecord, DeviceId, FileId};

fn rec(n: u64, fid: u64) -> AccessRecord {
    AccessRecord {
        access_number: n,
        fid: FileId(fid),
        fsid: DeviceId((n % 3) as u32),
        rb: 100 + n,
        wb: n % 7,
        ots: n,
        otms: 0,
        cts: n + 1,
        ctms: 0,
    }
}

fn temp_dir(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir()
        .join("geomancy_serve_invariants")
        .join(name);
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

const SHARDS: usize = 4;

/// Ingests `n` records over `files` distinct files in `batches`-record
/// calls; returns the records sent.
fn drive(set: &ShardSet, n: u64, files: u64) -> Vec<AccessRecord> {
    let mut sent = Vec::new();
    let mut batch = Vec::new();
    for i in 0..n {
        let r = rec(i, i % files);
        sent.push(r);
        batch.push(r);
        if batch.len() == 8 {
            set.ingest(i, &batch).unwrap();
            batch.clear();
        }
    }
    if !batch.is_empty() {
        set.ingest(n, &batch).unwrap();
    }
    sent
}

#[test]
fn all_records_for_a_file_share_a_shard() {
    let set = ShardSet::spawn(SHARDS, 64, None, Arc::new(ServeMetrics::new(SHARDS)));
    let sent = drive(&set, 400, 13);
    let dbs = set.shutdown();
    assert_eq!(dbs.iter().map(ReplayDb::len).sum::<usize>(), sent.len());
    for (i, db) in dbs.iter().enumerate() {
        for stored in db.records() {
            assert_eq!(
                shard_of(stored.record.fid, SHARDS),
                i,
                "{} stored on shard {i}",
                stored.record.fid
            );
        }
    }
    // The shard map is a pure function of the file id: re-deriving it from
    // the sent stream predicts exactly each shard's contents.
    for (i, db) in dbs.iter().enumerate() {
        let expected: Vec<u64> = sent
            .iter()
            .filter(|r| shard_of(r.fid, SHARDS) == i)
            .map(|r| r.access_number)
            .collect();
        let got: Vec<u64> = db.records().map(|s| s.record.access_number).collect();
        assert_eq!(got, expected, "shard {i} contents diverged");
    }
}

#[test]
fn per_shard_order_is_preserved() {
    let set = ShardSet::spawn(SHARDS, 64, None, Arc::new(ServeMetrics::new(SHARDS)));
    drive(&set, 500, 9);
    for db in set.shutdown() {
        // Arrival order == access_number order here, and a file's records
        // are a subsequence of its shard's log.
        let numbers: Vec<u64> = db.records().map(|s| s.record.access_number).collect();
        let mut sorted = numbers.clone();
        sorted.sort_unstable();
        assert_eq!(numbers, sorted, "shard log out of arrival order");
        let times: Vec<u64> = db.records().map(|s| s.timestamp_micros).collect();
        let mut t_sorted = times.clone();
        t_sorted.sort_unstable();
        assert_eq!(times, t_sorted, "shard timestamps not monotone");
    }
}

#[test]
fn wal_replay_reconstructs_per_shard_contents() {
    let dir = temp_dir("replay");
    let set = ShardSet::spawn(
        SHARDS,
        64,
        Some(dir.clone()),
        Arc::new(ServeMetrics::new(SHARDS)),
    );
    drive(&set, 300, 11);
    let live = set.shutdown();

    let recovered = recover_shards(&dir, SHARDS).unwrap();
    for (i, ((rdb, replayed), ldb)) in recovered.iter().zip(&live).enumerate() {
        assert_eq!(*replayed as usize, ldb.len(), "shard {i} replay count");
        let live_rows: Vec<_> = ldb.records().collect();
        let rec_rows: Vec<_> = rdb.records().collect();
        assert_eq!(
            live_rows, rec_rows,
            "shard {i} contents differ after replay"
        );
    }

    // A fresh shard set over the same WAL directory resumes from the
    // recovered state and keeps appending to the same logs.
    let resumed = ShardSet::spawn(
        SHARDS,
        64,
        Some(dir.clone()),
        Arc::new(ServeMetrics::new(SHARDS)),
    );
    resumed.ingest(1_000, &[rec(1_000, 0)]).unwrap();
    let after = resumed.shutdown();
    let before_total: usize = live.iter().map(ReplayDb::len).sum();
    let after_total: usize = after.iter().map(ReplayDb::len).sum();
    assert_eq!(after_total, before_total + 1);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn crash_truncated_wal_tail_recovers_prefix() {
    let dir = temp_dir("crash");
    let set = ShardSet::spawn(
        SHARDS,
        64,
        Some(dir.clone()),
        Arc::new(ServeMetrics::new(SHARDS)),
    );
    drive(&set, 200, 5);
    let live = set.shutdown();

    // Simulate a crash mid-append on shard 0: chop the last 25 bytes.
    let victim = (0..SHARDS)
        .find(|&i| live[i].len() > 1)
        .expect("some shard has data");
    let path = shard_path(&dir, victim);
    let contents = std::fs::read(&path).unwrap();
    std::fs::write(&path, &contents[..contents.len() - 25]).unwrap();

    let recovered = recover_shards(&dir, SHARDS).unwrap();
    for (i, ((rdb, _), ldb)) in recovered.iter().zip(&live).enumerate() {
        if i == victim {
            // The victim loses at most the records of its torn tail, and
            // what remains is an exact prefix of the live log.
            assert!(rdb.len() < ldb.len(), "truncation lost nothing?");
            let live_prefix: Vec<_> = ldb.records().take(rdb.len()).collect();
            let rec_rows: Vec<_> = rdb.records().collect();
            assert_eq!(rec_rows, live_prefix, "recovered tail is not a prefix");
        } else {
            assert_eq!(rdb.len(), ldb.len(), "untouched shard {i} changed");
        }
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn restart_after_torn_tail_survives_a_second_restart() {
    // The full crash cycle: torn tail → restart (spawn over the same WAL
    // dir) → ingest more → restart again. The second spawn must not see a
    // malformed line glued together from the torn tail and the first
    // post-restart append, and the post-restart record must be durable.
    let dir = temp_dir("crash_restart");
    let set = ShardSet::spawn(
        SHARDS,
        64,
        Some(dir.clone()),
        Arc::new(ServeMetrics::new(SHARDS)),
    );
    drive(&set, 200, 5);
    let live = set.shutdown();

    // Tear every shard's tail mid-line.
    for i in 0..SHARDS {
        let path = shard_path(&dir, i);
        let contents = std::fs::read(&path).unwrap();
        if contents.len() > 25 {
            std::fs::write(&path, &contents[..contents.len() - 25]).unwrap();
        }
    }

    // First restart: recovery truncates the torn tails, then appends.
    let resumed = ShardSet::spawn(
        SHARDS,
        64,
        Some(dir.clone()),
        Arc::new(ServeMetrics::new(SHARDS)),
    );
    for fid in 0..SHARDS as u64 {
        resumed.ingest(10_000, &[rec(10_000 + fid, fid)]).unwrap();
    }
    let after_first = resumed.shutdown();

    // Second restart: every WAL must replay cleanly (no mid-file
    // corruption) to exactly the state the first restart shut down with.
    let recovered = recover_shards(&dir, SHARDS).expect("WAL poisoned by post-crash appends");
    let recovered_total: usize = recovered.iter().map(|(db, _)| db.len()).sum();
    let after_first_total: usize = after_first.iter().map(ReplayDb::len).sum();
    assert_eq!(
        recovered_total, after_first_total,
        "post-restart records lost"
    );
    for (i, ((rdb, _), fdb)) in recovered.iter().zip(&after_first).enumerate() {
        let rec_rows: Vec<_> = rdb.records().collect();
        let first_rows: Vec<_> = fdb.records().collect();
        assert_eq!(rec_rows, first_rows, "shard {i} diverged after restart");
    }
    // Sanity: we actually lost the torn tails, nothing more.
    let live_total: usize = live.iter().map(ReplayDb::len).sum();
    assert!(recovered_total > live_total - 2 * SHARDS);
    std::fs::remove_dir_all(&dir).ok();
}
