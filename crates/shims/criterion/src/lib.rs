//! Offline shim for `criterion`: a wall-clock timing harness with the same
//! bench-definition API (`criterion_group!` / `criterion_main!` /
//! `bench_function` / `iter` / `iter_batched`), minus statistical analysis,
//! plots, and baselines. Each benchmark warms up briefly, then takes
//! `sample_size` samples and reports `[min mean max]` per-iteration time.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How per-iteration inputs produced by `iter_batched` setup are grouped.
/// This shim always uses one input per routine call, so the variants only
/// document intent.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small inputs: real criterion batches many per allocation.
    SmallInput,
    /// Large inputs: real criterion allocates one at a time.
    LargeInput,
    /// One input per iteration.
    PerIteration,
}

/// Target accumulated routine time per sample.
const SAMPLE_TARGET: Duration = Duration::from_millis(25);
/// Warmup budget before sampling starts.
const WARMUP_TARGET: Duration = Duration::from_millis(150);

/// The benchmark driver handed to `criterion_group!` targets.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Sets the number of samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Runs a single named benchmark.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(name, self.sample_size, f);
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.to_string(),
            sample_size: 20,
        }
    }
}

/// A group of benchmarks reported under a common `group/name` label.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of samples for benchmarks in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Runs a benchmark within the group.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, name);
        run_benchmark(&label, self.sample_size, f);
        self
    }

    /// Ends the group (reporting happens eagerly; this is for API parity).
    pub fn finish(self) {}
}

fn run_benchmark<F>(label: &str, sample_size: usize, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    let mut bencher = Bencher {
        sample_size,
        samples: Vec::new(),
    };
    f(&mut bencher);
    bencher.report(label);
}

/// Per-benchmark measurement state; `iter`/`iter_batched` fill `samples`
/// with mean per-iteration durations.
pub struct Bencher {
    sample_size: usize,
    samples: Vec<Duration>,
}

impl Bencher {
    /// Times `routine` directly; state persists across iterations.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        // Warmup: estimate per-iteration cost.
        let mut iters = 0u64;
        let warmup_start = Instant::now();
        while warmup_start.elapsed() < WARMUP_TARGET {
            black_box(routine());
            iters += 1;
        }
        let per_iter = warmup_start.elapsed() / iters.max(1) as u32;
        let iters_per_sample = iters_for(per_iter);
        self.samples.clear();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(routine());
            }
            self.samples.push(start.elapsed() / iters_per_sample as u32);
        }
    }

    /// Times `routine` on fresh inputs from `setup`; setup time is excluded
    /// from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        // Warmup: one run to estimate routine cost (setup excluded).
        let input = setup();
        let start = Instant::now();
        black_box(routine(input));
        let per_iter = start.elapsed();
        let iters_per_sample = iters_for(per_iter);
        self.samples.clear();
        for _ in 0..self.sample_size {
            let mut total = Duration::ZERO;
            for _ in 0..iters_per_sample {
                let input = setup();
                let start = Instant::now();
                black_box(routine(input));
                total += start.elapsed();
            }
            self.samples.push(total / iters_per_sample as u32);
        }
    }

    fn report(&self, label: &str) {
        if self.samples.is_empty() {
            println!("{label:<50} (no samples)");
            return;
        }
        let min = self.samples.iter().min().unwrap();
        let max = self.samples.iter().max().unwrap();
        let mean = self.samples.iter().sum::<Duration>() / self.samples.len() as u32;
        println!(
            "{label:<50} time: [{} {} {}]",
            format_duration(*min),
            format_duration(mean),
            format_duration(*max),
        );
    }
}

/// Iterations per sample so a sample lasts about `SAMPLE_TARGET`.
fn iters_for(per_iter: Duration) -> u64 {
    if per_iter.is_zero() {
        return 1000;
    }
    (SAMPLE_TARGET.as_nanos() / per_iter.as_nanos().max(1)).clamp(1, 1_000_000) as u64
}

fn format_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos} ns")
    } else if nanos < 1_000_000 {
        format!("{:.2} µs", nanos as f64 / 1e3)
    } else if nanos < 1_000_000_000 {
        format!("{:.2} ms", nanos as f64 / 1e6)
    } else {
        format!("{:.2} s", nanos as f64 / 1e9)
    }
}

/// Defines a benchmark group function, mirroring `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Defines `main` running the given groups, mirroring `criterion::criterion_main!`.
/// CLI arguments (cargo passes `--bench`) are ignored.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iter_collects_samples() {
        let mut c = Criterion::default();
        c.sample_size(3);
        let mut ran = false;
        c.bench_function("noop", |b| {
            b.iter(|| 1 + 1);
            ran = true;
        });
        assert!(ran);
    }

    #[test]
    fn iter_batched_gets_fresh_inputs() {
        let mut c = Criterion::default();
        c.sample_size(2);
        c.bench_function("consume", |b| {
            b.iter_batched(
                || vec![1, 2, 3],
                |v| {
                    // Consumes the input by value: requires a fresh one
                    // per call, which is the iter_batched contract.
                    drop(v);
                },
                BatchSize::SmallInput,
            );
        });
    }

    #[test]
    fn groups_report_and_finish() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(2);
        group.bench_function("x", |b| b.iter(|| black_box(42)));
        group.finish();
    }

    #[test]
    fn duration_formatting() {
        assert_eq!(format_duration(Duration::from_nanos(12)), "12 ns");
        assert_eq!(format_duration(Duration::from_micros(3)), "3.00 µs");
        assert_eq!(format_duration(Duration::from_millis(7)), "7.00 ms");
        assert_eq!(format_duration(Duration::from_secs(2)), "2.00 s");
    }
}
