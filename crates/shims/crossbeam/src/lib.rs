//! Offline shim for `crossbeam`: the `channel` module only, implemented as
//! an MPMC queue over `Mutex` + `Condvar` with crossbeam's disconnect
//! semantics (a `recv` on an empty channel whose senders are all gone
//! returns `Err`; a `send` after every receiver dropped returns the value).

pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::{Arc, Condvar, Mutex};
    use std::time::{Duration, Instant};

    struct State<T> {
        queue: VecDeque<T>,
        senders: usize,
        receivers: usize,
        capacity: Option<usize>,
    }

    struct Shared<T> {
        state: Mutex<State<T>>,
        /// Signalled when an item arrives or the last sender leaves.
        recv_ready: Condvar,
        /// Signalled when space frees up or the last receiver leaves.
        send_ready: Condvar,
    }

    /// The sending half of a channel. Cloning adds another producer.
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// The receiving half of a channel. Cloning adds another consumer.
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    impl<T> fmt::Debug for Sender<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Sender { .. }")
        }
    }

    impl<T> fmt::Debug for Receiver<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Receiver { .. }")
        }
    }

    /// Error returned by [`Sender::send`] when all receivers are gone;
    /// carries the unsent value back to the caller.
    #[derive(Debug, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "sending on a disconnected channel")
        }
    }

    /// Error returned by [`Sender::try_send`]: the channel was full or all
    /// receivers are gone; carries the unsent value back to the caller.
    #[derive(Debug, PartialEq, Eq)]
    pub enum TrySendError<T> {
        /// A bounded channel is at capacity.
        Full(T),
        /// Every receiver has been dropped.
        Disconnected(T),
    }

    impl<T> TrySendError<T> {
        /// The value that could not be sent.
        pub fn into_inner(self) -> T {
            match self {
                TrySendError::Full(v) | TrySendError::Disconnected(v) => v,
            }
        }
    }

    impl<T> fmt::Display for TrySendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                TrySendError::Full(_) => write!(f, "sending on a full channel"),
                TrySendError::Disconnected(_) => write!(f, "sending on a disconnected channel"),
            }
        }
    }

    /// Error returned by [`Receiver::recv`] when the channel is empty and
    /// all senders are gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    /// Error returned by [`Receiver::recv_timeout`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// The timeout elapsed with the channel still empty.
        Timeout,
        /// The channel is empty and every sender has been dropped.
        Disconnected,
    }

    impl fmt::Display for RecvTimeoutError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                RecvTimeoutError::Timeout => write!(f, "timed out waiting on an empty channel"),
                RecvTimeoutError::Disconnected => {
                    write!(f, "receiving on an empty and disconnected channel")
                }
            }
        }
    }

    impl std::error::Error for RecvTimeoutError {}

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "receiving on an empty and disconnected channel")
        }
    }

    impl std::error::Error for RecvError {}

    fn new_channel<T>(capacity: Option<usize>) -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            state: Mutex::new(State {
                queue: VecDeque::new(),
                senders: 1,
                receivers: 1,
                capacity,
            }),
            recv_ready: Condvar::new(),
            send_ready: Condvar::new(),
        });
        (
            Sender {
                shared: Arc::clone(&shared),
            },
            Receiver { shared },
        )
    }

    /// Creates an unbounded MPMC channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        new_channel(None)
    }

    /// Creates a bounded MPMC channel; `send` blocks while the queue holds
    /// `capacity` items. A capacity of 0 is treated as 1 (this shim has no
    /// rendezvous channels; the workspace only uses capacities >= 1).
    pub fn bounded<T>(capacity: usize) -> (Sender<T>, Receiver<T>) {
        new_channel(Some(capacity.max(1)))
    }

    impl<T> Sender<T> {
        /// Sends a value, blocking while a bounded channel is full. Fails
        /// (returning the value) once every receiver has been dropped.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut state = self.shared.state.lock().unwrap();
            loop {
                if state.receivers == 0 {
                    return Err(SendError(value));
                }
                let full = state.capacity.is_some_and(|cap| state.queue.len() >= cap);
                if !full {
                    state.queue.push_back(value);
                    drop(state);
                    self.shared.recv_ready.notify_one();
                    return Ok(());
                }
                state = self.shared.send_ready.wait(state).unwrap();
            }
        }

        /// Sends without blocking: fails with [`TrySendError::Full`] when a
        /// bounded channel is at capacity (the backpressure signal) and
        /// [`TrySendError::Disconnected`] once every receiver is gone.
        pub fn try_send(&self, value: T) -> Result<(), TrySendError<T>> {
            let mut state = self.shared.state.lock().unwrap();
            if state.receivers == 0 {
                return Err(TrySendError::Disconnected(value));
            }
            let full = state.capacity.is_some_and(|cap| state.queue.len() >= cap);
            if full {
                return Err(TrySendError::Full(value));
            }
            state.queue.push_back(value);
            drop(state);
            self.shared.recv_ready.notify_one();
            Ok(())
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.shared.state.lock().unwrap().senders += 1;
            Sender {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut state = self.shared.state.lock().unwrap();
            state.senders -= 1;
            if state.senders == 0 {
                drop(state);
                // Wake blocked receivers so they observe the disconnect.
                self.shared.recv_ready.notify_all();
            }
        }
    }

    impl<T> Receiver<T> {
        /// Receives a value, blocking until one arrives. Fails once the
        /// channel is empty and every sender has been dropped.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut state = self.shared.state.lock().unwrap();
            loop {
                if let Some(value) = state.queue.pop_front() {
                    drop(state);
                    self.shared.send_ready.notify_one();
                    return Ok(value);
                }
                if state.senders == 0 {
                    return Err(RecvError);
                }
                state = self.shared.recv_ready.wait(state).unwrap();
            }
        }

        /// Receives with a deadline: blocks until a value arrives, every
        /// sender is gone, or `timeout` elapses — the batching-window
        /// primitive of the serving layer.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let deadline = Instant::now() + timeout;
            let mut state = self.shared.state.lock().unwrap();
            loop {
                if let Some(value) = state.queue.pop_front() {
                    drop(state);
                    self.shared.send_ready.notify_one();
                    return Ok(value);
                }
                if state.senders == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let remaining = deadline.saturating_duration_since(Instant::now());
                if remaining.is_zero() {
                    return Err(RecvTimeoutError::Timeout);
                }
                let (next, result) = self
                    .shared
                    .recv_ready
                    .wait_timeout(state, remaining)
                    .unwrap();
                state = next;
                if result.timed_out() && state.queue.is_empty() {
                    return if state.senders == 0 {
                        Err(RecvTimeoutError::Disconnected)
                    } else {
                        Err(RecvTimeoutError::Timeout)
                    };
                }
            }
        }

        /// Receives without blocking; `None` when empty or disconnected.
        pub fn try_recv(&self) -> Option<T> {
            let mut state = self.shared.state.lock().unwrap();
            let value = state.queue.pop_front();
            if value.is_some() {
                drop(state);
                self.shared.send_ready.notify_one();
            }
            value
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.shared.state.lock().unwrap().receivers += 1;
            Receiver {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            let mut state = self.shared.state.lock().unwrap();
            state.receivers -= 1;
            if state.receivers == 0 {
                // Crossbeam discards undelivered messages once the channel
                // is receiver-disconnected. Destroying them matters beyond
                // memory: queued request messages may own *reply* senders,
                // and clients blocked on those replies only observe the
                // disconnect when the queued request is dropped. Drop the
                // messages outside the lock — their destructors may touch
                // other channels.
                let orphaned = std::mem::take(&mut state.queue);
                drop(state);
                drop(orphaned);
                // Wake blocked senders so they observe the disconnect.
                self.shared.send_ready.notify_all();
            }
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn send_recv_in_order() {
            let (tx, rx) = unbounded();
            tx.send(1).unwrap();
            tx.send(2).unwrap();
            assert_eq!(rx.recv(), Ok(1));
            assert_eq!(rx.recv(), Ok(2));
        }

        #[test]
        fn recv_fails_after_all_senders_drop() {
            let (tx, rx) = unbounded::<i32>();
            tx.send(7).unwrap();
            drop(tx);
            assert_eq!(rx.recv(), Ok(7));
            assert_eq!(rx.recv(), Err(RecvError));
        }

        #[test]
        fn send_fails_after_receiver_drops() {
            let (tx, rx) = unbounded::<i32>();
            drop(rx);
            assert_eq!(tx.send(3), Err(SendError(3)));
        }

        #[test]
        fn blocked_recv_wakes_on_sender_drop() {
            let (tx, rx) = unbounded::<i32>();
            let handle = std::thread::spawn(move || rx.recv());
            std::thread::sleep(std::time::Duration::from_millis(20));
            drop(tx);
            assert_eq!(handle.join().unwrap(), Err(RecvError));
        }

        #[test]
        fn bounded_send_blocks_until_recv() {
            let (tx, rx) = bounded::<i32>(1);
            tx.send(1).unwrap();
            let handle = std::thread::spawn(move || {
                tx.send(2).unwrap();
            });
            std::thread::sleep(std::time::Duration::from_millis(20));
            assert_eq!(rx.recv(), Ok(1));
            assert_eq!(rx.recv(), Ok(2));
            handle.join().unwrap();
        }

        #[test]
        fn try_send_reports_full_and_disconnected() {
            let (tx, rx) = bounded::<i32>(1);
            tx.try_send(1).unwrap();
            assert_eq!(tx.try_send(2), Err(TrySendError::Full(2)));
            assert_eq!(rx.recv(), Ok(1));
            tx.try_send(3).unwrap();
            drop(rx);
            assert_eq!(tx.try_send(4), Err(TrySendError::Disconnected(4)));
            assert_eq!(TrySendError::Full(5).into_inner(), 5);
        }

        #[test]
        fn recv_timeout_times_out_then_delivers() {
            let (tx, rx) = unbounded::<i32>();
            assert_eq!(
                rx.recv_timeout(Duration::from_millis(5)),
                Err(RecvTimeoutError::Timeout)
            );
            tx.send(9).unwrap();
            assert_eq!(rx.recv_timeout(Duration::from_millis(5)), Ok(9));
            drop(tx);
            assert_eq!(
                rx.recv_timeout(Duration::from_millis(5)),
                Err(RecvTimeoutError::Disconnected)
            );
        }

        #[test]
        fn receiver_disconnect_drops_queued_messages() {
            // A queued request owning a reply sender must be destroyed when
            // the last receiver goes away, so the reply channel disconnects
            // instead of leaving its client blocked forever.
            let (tx, rx) = unbounded::<(i32, Sender<i32>)>();
            let (reply_tx, reply_rx) = bounded::<i32>(1);
            tx.send((1, reply_tx)).unwrap();
            drop(rx); // server died without servicing the request
            assert_eq!(reply_rx.recv(), Err(RecvError));
        }

        #[test]
        fn worker_thread_request_reply_pattern() {
            // Mirrors the daemon: requests flow one way, replies come back
            // over a bounded(1) channel created per query.
            let (tx, rx) = unbounded::<(i32, Sender<i32>)>();
            let worker = std::thread::spawn(move || {
                while let Ok((n, reply)) = rx.recv() {
                    let _ = reply.send(n * 2);
                }
            });
            for i in 0..10 {
                let (reply, reply_rx) = bounded(1);
                tx.send((i, reply)).unwrap();
                assert_eq!(reply_rx.recv(), Ok(i * 2));
            }
            drop(tx);
            worker.join().unwrap();
        }
    }
}
