//! Offline shim for `parking_lot`: thin wrappers over `std::sync` locks
//! with parking_lot's panic-free, non-poisoning API.
//!
//! Poisoning is deliberately ignored (`unwrap_or_else(PoisonError::into_inner)`),
//! matching parking_lot semantics where a panicking holder does not poison
//! the lock for later users.

use std::sync::PoisonError;

/// A reader-writer lock with parking_lot's `read()` / `write()` API.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

/// Shared read guard, released on drop.
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
/// Exclusive write guard, released on drop.
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Creates a new unlocked lock.
    pub fn new(value: T) -> Self {
        RwLock {
            inner: std::sync::RwLock::new(value),
        }
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read lock, blocking until available.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquires an exclusive write lock, blocking until available.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(PoisonError::into_inner)
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

/// A mutual-exclusion lock with parking_lot's `lock()` API.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

/// Exclusive guard, released on drop.
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a new unlocked mutex.
    pub fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn rwlock_read_write() {
        let lock = RwLock::new(1);
        assert_eq!(*lock.read(), 1);
        *lock.write() += 1;
        assert_eq!(*lock.read(), 2);
    }

    #[test]
    fn rwlock_is_not_poisoned_by_panicking_writer() {
        let lock = Arc::new(RwLock::new(0));
        let l2 = Arc::clone(&lock);
        let _ = std::thread::spawn(move || {
            let _guard = l2.write();
            panic!("holder dies");
        })
        .join();
        // parking_lot semantics: still usable afterwards.
        assert_eq!(*lock.read(), 0);
    }

    #[test]
    fn mutex_lock() {
        let m = Mutex::new(vec![1]);
        m.lock().push(2);
        assert_eq!(*m.lock(), vec![1, 2]);
    }
}
