//! Collection strategies: `vec` and `btree_set` with proptest's
//! size-specification conventions (exact count, `a..b`, or `a..=b`).

use std::collections::BTreeSet;
use std::ops::{Range, RangeInclusive};

use rand::rngs::StdRng;
use rand::Rng;

use crate::strategy::Strategy;

/// A length specification: exact or drawn from a range.
#[derive(Debug, Clone)]
pub struct SizeRange {
    min: usize,
    /// Inclusive upper bound.
    max: usize,
}

impl SizeRange {
    fn sample(&self, rng: &mut StdRng) -> usize {
        if self.min == self.max {
            self.min
        } else {
            rng.gen_range(self.min..=self.max)
        }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { min: n, max: n }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range {r:?}");
        SizeRange {
            min: r.start,
            max: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        SizeRange {
            min: *r.start(),
            max: *r.end(),
        }
    }
}

/// Generates `Vec`s whose elements come from `element` and whose length is
/// drawn from `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// The strategy returned by [`vec`].
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn sample(&self, rng: &mut StdRng) -> Vec<S::Value> {
        let len = self.size.sample(rng);
        (0..len).map(|_| self.element.sample(rng)).collect()
    }
}

/// Generates `BTreeSet`s with a size drawn from `size`; duplicate draws are
/// retried, so the element strategy's domain must be larger than the
/// requested size.
pub fn btree_set<S>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
where
    S: Strategy,
    S::Value: Ord,
{
    BTreeSetStrategy {
        element,
        size: size.into(),
    }
}

/// The strategy returned by [`btree_set`].
pub struct BTreeSetStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S> Strategy for BTreeSetStrategy<S>
where
    S: Strategy,
    S::Value: Ord,
{
    type Value = BTreeSet<S::Value>;

    fn sample(&self, rng: &mut StdRng) -> BTreeSet<S::Value> {
        let target = self.size.sample(rng);
        let mut set = BTreeSet::new();
        let mut attempts = 0usize;
        while set.len() < target {
            set.insert(self.element.sample(rng));
            attempts += 1;
            assert!(
                attempts < target.max(1) * 1000,
                "btree_set strategy cannot reach {target} distinct elements"
            );
        }
        set
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn vec_respects_size_specs() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..100 {
            let v = vec(0.0..1.0f64, 3).sample(&mut rng);
            assert_eq!(v.len(), 3);
            let v = vec(0u32..10, 2..5).sample(&mut rng);
            assert!((2..5).contains(&v.len()));
            let v = vec(0u32..10, 1..=2).sample(&mut rng);
            assert!((1..=2).contains(&v.len()));
        }
    }

    #[test]
    fn btree_set_hits_requested_size() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..50 {
            let s = btree_set(0u64..1000, 5..8).sample(&mut rng);
            assert!((5..8).contains(&s.len()));
        }
    }

    #[test]
    fn vec_of_tuples_works() {
        let mut rng = StdRng::seed_from_u64(3);
        let v = vec((-1.0..1.0f64, -1.0..1.0f64), 4..6).sample(&mut rng);
        assert!(v.len() >= 4);
        assert!(v.iter().all(|(a, b)| a.abs() <= 1.0 && b.abs() <= 1.0));
    }
}
