//! Offline shim for `proptest`: deterministic random-sampling property
//! tests with the same macro surface (`proptest!`, `prop_assert*!`,
//! `prop_assume!`) and strategy combinators the workspace uses.
//!
//! Differences from real proptest: failing cases are NOT shrunk (the
//! failing seed and values are reported as-is), and regex string
//! strategies support only the subset `[class]{m,n}` / literals /
//! `? * +` repetition. Case count defaults to 64; override with
//! `PROPTEST_CASES`.

pub mod strategy;

/// Boolean strategies (`proptest::bool::ANY`).
pub mod bool {
    use rand::rngs::StdRng;
    use rand::Rng;

    use crate::strategy::Strategy;

    /// Generates `true` and `false` with equal probability.
    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    /// The fair-coin boolean strategy.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;

        fn sample(&self, rng: &mut StdRng) -> bool {
            rng.gen_bool(0.5)
        }
    }
}

pub mod collection;

pub mod string;

pub mod test_runner;

/// Everything a property test file needs: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::TestCaseError;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Declares property tests. Each function's arguments are drawn from the
/// given strategies before the body runs; the body re-runs for many cases.
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                $crate::test_runner::run(stringify!($name), |__proptest_rng| {
                    $(let $arg = $crate::strategy::Strategy::sample(&($strat), __proptest_rng);)+
                    $body
                    Ok(())
                });
            }
        )*
    };
}

/// Asserts within a property test; failure reports the case instead of
/// panicking immediately (no shrinking in this shim).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !$cond {
            return Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: {}", stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err($crate::test_runner::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Asserts equality within a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        if !(left == right) {
            return Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: `{}` == `{}`\n  left: {:?}\n right: {:?}",
                stringify!($left), stringify!($right), left, right
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        if !(left == right) {
            return Err($crate::test_runner::TestCaseError::fail(format!(
                "{}\n  left: {:?}\n right: {:?}",
                format!($($fmt)+), left, right
            )));
        }
    }};
}

/// Asserts inequality within a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        if left == right {
            return Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: `{}` != `{}`\n  both: {:?}",
                stringify!($left), stringify!($right), left
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        if left == right {
            return Err($crate::test_runner::TestCaseError::fail(format!(
                "{}\n  both: {:?}",
                format!($($fmt)+), left
            )));
        }
    }};
}

/// Discards the current case (retried with a new draw, not counted).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return Err($crate::test_runner::TestCaseError::Reject);
        }
    };
}
