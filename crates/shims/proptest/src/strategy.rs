//! The [`Strategy`] trait and primitive strategies: numeric ranges, tuples,
//! `Just`, and `prop_map`.

use rand::rngs::StdRng;
use rand::Rng;

/// A recipe for generating random values of one type. Unlike real proptest
/// there is no value tree / shrinking — `sample` draws a value directly.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut StdRng) -> Self::Value;

    /// Transforms generated values with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Builds a dependent strategy from each generated value — the shape
    /// combinator (`(dims).prop_flat_map(|dims| value_strategy(dims))`).
    fn prop_flat_map<O, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        O: Strategy,
        F: Fn(Self::Value) -> O,
    {
        FlatMap { inner: self, f }
    }

    /// Keeps only values satisfying `pred`; exhausting retries panics.
    fn prop_filter<F>(self, whence: &'static str, pred: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            whence,
            pred,
        }
    }
}

/// Strategies can be passed by reference.
impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn sample(&self, rng: &mut StdRng) -> Self::Value {
        (**self).sample(rng)
    }
}

/// Always generates a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

/// The strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn sample(&self, rng: &mut StdRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// The strategy returned by [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    O: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O::Value;

    fn sample(&self, rng: &mut StdRng) -> O::Value {
        (self.f)(self.inner.sample(rng)).sample(rng)
    }
}

/// The strategy returned by [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    whence: &'static str,
    pred: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;

    fn sample(&self, rng: &mut StdRng) -> S::Value {
        for _ in 0..1000 {
            let value = self.inner.sample(rng);
            if (self.pred)(&value) {
                return value;
            }
        }
        panic!("prop_filter '{}' rejected 1000 draws in a row", self.whence);
    }
}

macro_rules! range_strategies {
    ($($t:ty),+) => {
        $(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;

                fn sample(&self, rng: &mut StdRng) -> $t {
                    assert!(
                        self.start < self.end,
                        "empty range strategy {:?}", self
                    );
                    rng.gen_range(self.start..self.end)
                }
            }

            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;

                fn sample(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )+
    };
}

range_strategies!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! tuple_strategies {
    ($(($($s:ident $idx:tt),+);)+) => {
        $(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);

                fn sample(&self, rng: &mut StdRng) -> Self::Value {
                    ($(self.$idx.sample(rng),)+)
                }
            }
        )+
    };
}

tuple_strategies!(
    (A 0);
    (A 0, B 1);
    (A 0, B 1, C 2);
    (A 0, B 1, C 2, D 3);
    (A 0, B 1, C 2, D 3, E 4);
    (A 0, B 1, C 2, D 3, E 4, F 5);
);

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(42)
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = rng();
        for _ in 0..200 {
            let f = (-2.0..3.0f64).sample(&mut rng);
            assert!((-2.0..3.0).contains(&f));
            let u = (5u64..9).sample(&mut rng);
            assert!((5..9).contains(&u));
            let i = (-4i32..=4).sample(&mut rng);
            assert!((-4..=4).contains(&i));
        }
    }

    #[test]
    fn prop_map_and_tuples() {
        let mut rng = rng();
        let strat = (0u32..10, 0.0..1.0f64).prop_map(|(a, b)| a as f64 + b);
        for _ in 0..50 {
            let v = strat.sample(&mut rng);
            assert!((0.0..11.0).contains(&v));
        }
    }

    #[test]
    fn just_and_filter() {
        let mut rng = rng();
        assert_eq!(Just(7).sample(&mut rng), 7);
        let even = (0u32..100).prop_filter("even", |n| n % 2 == 0);
        for _ in 0..50 {
            assert_eq!(even.sample(&mut rng) % 2, 0);
        }
    }
}
