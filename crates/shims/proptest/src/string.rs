//! String strategies from regex-like patterns. In real proptest any `&str`
//! is compiled as a full regex; this shim supports the subset the
//! workspace's tests use: literal characters, character classes
//! (`[a-z0-9_]`, with ranges and singletons), and the repetitions `{m}`,
//! `{m,n}`, `?`, `*`, `+` (the unbounded ones capped at 8).

use rand::rngs::StdRng;
use rand::Rng;

use crate::strategy::Strategy;

/// Cap applied to `*` and `+` so generated strings stay small.
const UNBOUNDED_CAP: u32 = 8;

#[derive(Debug, Clone)]
enum Atom {
    /// A literal character.
    Literal(char),
    /// A character class: the set of allowed characters, expanded.
    Class(Vec<char>),
}

#[derive(Debug, Clone)]
struct Piece {
    atom: Atom,
    min: u32,
    max: u32,
}

/// A compiled pattern: a sequence of repeated atoms.
#[derive(Debug, Clone)]
pub struct StringPattern {
    pieces: Vec<Piece>,
}

/// Compiles the supported regex subset, panicking on anything else — a
/// test author's error, not a runtime condition.
fn compile(pattern: &str) -> StringPattern {
    let mut chars = pattern.chars().peekable();
    let mut pieces = Vec::new();
    while let Some(c) = chars.next() {
        let atom = match c {
            '[' => {
                let mut set = Vec::new();
                let mut prev: Option<char> = None;
                loop {
                    match chars.next() {
                        Some(']') => break,
                        Some('-') if prev.is_some() && chars.peek() != Some(&']') => {
                            let lo = prev.take().unwrap();
                            let hi = chars.next().unwrap();
                            assert!(lo <= hi, "bad class range {lo}-{hi} in {pattern:?}");
                            // `lo` was already pushed as a singleton; extend
                            // with the rest of the range.
                            for c in (lo..=hi).skip(1) {
                                set.push(c);
                            }
                        }
                        Some(c) => {
                            prev = Some(c);
                            set.push(c);
                        }
                        None => panic!("unterminated class in pattern {pattern:?}"),
                    }
                }
                assert!(!set.is_empty(), "empty class in pattern {pattern:?}");
                Atom::Class(set)
            }
            '\\' => Atom::Literal(chars.next().expect("dangling backslash")),
            '.' | '(' | ')' | '|' | '^' | '$' => {
                panic!("unsupported regex feature {c:?} in pattern {pattern:?}")
            }
            other => Atom::Literal(other),
        };
        let (min, max) = match chars.peek() {
            Some('{') => {
                chars.next();
                let mut spec = String::new();
                for c in chars.by_ref() {
                    if c == '}' {
                        break;
                    }
                    spec.push(c);
                }
                match spec.split_once(',') {
                    Some((lo, hi)) => {
                        let lo: u32 = lo.trim().parse().expect("bad {m,n} bound");
                        let hi: u32 = hi.trim().parse().expect("bad {m,n} bound");
                        assert!(lo <= hi, "bad repetition {{{spec}}} in {pattern:?}");
                        (lo, hi)
                    }
                    None => {
                        let n: u32 = spec.trim().parse().expect("bad {n} bound");
                        (n, n)
                    }
                }
            }
            Some('?') => {
                chars.next();
                (0, 1)
            }
            Some('*') => {
                chars.next();
                (0, UNBOUNDED_CAP)
            }
            Some('+') => {
                chars.next();
                (1, UNBOUNDED_CAP)
            }
            _ => (1, 1),
        };
        pieces.push(Piece { atom, min, max });
    }
    StringPattern { pieces }
}

impl StringPattern {
    fn sample(&self, rng: &mut StdRng) -> String {
        let mut out = String::new();
        for piece in &self.pieces {
            let count = if piece.min == piece.max {
                piece.min
            } else {
                rng.gen_range(piece.min..=piece.max)
            };
            for _ in 0..count {
                match &piece.atom {
                    Atom::Literal(c) => out.push(*c),
                    Atom::Class(set) => {
                        out.push(set[rng.gen_range(0..set.len())]);
                    }
                }
            }
        }
        out
    }
}

/// `&str` used directly as a strategy compiles as a pattern, mirroring
/// proptest's regex string strategies. Compilation happens per sample; the
/// patterns involved are tiny.
impl Strategy for &str {
    type Value = String;

    fn sample(&self, rng: &mut StdRng) -> String {
        compile(self).sample(rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn class_with_repetition() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..200 {
            let s = Strategy::sample(&"[a-z]{1,8}", &mut rng);
            assert!((1..=8).contains(&s.len()), "{s:?}");
            assert!(s.chars().all(|c| c.is_ascii_lowercase()), "{s:?}");
        }
    }

    #[test]
    fn literals_and_mixed_classes() {
        let mut rng = StdRng::seed_from_u64(8);
        let s = Strategy::sample(&"file_[0-9a-f]{4}", &mut rng);
        assert!(s.starts_with("file_"));
        assert_eq!(s.len(), 9);
        assert!(s[5..].chars().all(|c| c.is_ascii_hexdigit()));
    }

    #[test]
    fn optional_and_plus() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..100 {
            let s = Strategy::sample(&"x?y+", &mut rng);
            let ys = s.trim_start_matches('x');
            assert!(s.len() - ys.len() <= 1);
            assert!(!ys.is_empty() && ys.chars().all(|c| c == 'y'));
        }
    }

    #[test]
    fn coverage_of_class_members() {
        let mut rng = StdRng::seed_from_u64(10);
        let mut seen = std::collections::BTreeSet::new();
        for _ in 0..500 {
            let s = Strategy::sample(&"[ab]", &mut rng);
            seen.insert(s);
        }
        assert_eq!(seen.len(), 2, "both class members should appear");
    }
}
