//! The case-running loop behind the `proptest!` macro.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Why a single case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// The case's assumptions were not met; redraw without counting it.
    Reject,
    /// An assertion failed.
    Fail(String),
}

impl TestCaseError {
    /// Builds the failure variant (used by the `prop_assert*` macros).
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError::Fail(message.into())
    }
}

/// Default number of accepted cases per property (real proptest: 256).
const DEFAULT_CASES: usize = 64;

fn case_count() -> usize {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(DEFAULT_CASES)
}

/// FNV-1a, so each property gets a distinct but stable seed stream.
fn fnv1a(s: &str) -> u64 {
    let mut hash = 0xcbf29ce484222325u64;
    for b in s.bytes() {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x100000001b3);
    }
    hash
}

/// Runs one property until `PROPTEST_CASES` cases are accepted. Each case
/// gets a deterministic RNG seeded from the property name and case index,
/// so failures are reproducible run-to-run without a seed file.
pub fn run<F>(name: &str, mut body: F)
where
    F: FnMut(&mut StdRng) -> Result<(), TestCaseError>,
{
    let cases = case_count();
    let name_hash = fnv1a(name);
    let mut accepted = 0usize;
    let mut attempt = 0u64;
    while accepted < cases {
        attempt += 1;
        assert!(
            attempt <= (cases as u64) * 100,
            "property '{name}' rejected too many draws \
             ({accepted}/{cases} accepted after {attempt} attempts)"
        );
        let mut rng = StdRng::seed_from_u64(name_hash ^ attempt.wrapping_mul(0x9E3779B97F4A7C15));
        match body(&mut rng) {
            Ok(()) => accepted += 1,
            Err(TestCaseError::Reject) => continue,
            Err(TestCaseError::Fail(message)) => {
                panic!(
                    "property '{name}' failed at case {attempt} \
                     (seed {name_hash:#x} ^ case):\n{message}"
                )
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn passing_property_runs_all_cases() {
        let count = std::cell::Cell::new(0usize);
        run("always_true", |_rng| {
            count.set(count.get() + 1);
            Ok(())
        });
        assert_eq!(count.get(), case_count());
    }

    #[test]
    fn rejects_are_retried() {
        let total = std::cell::Cell::new(0usize);
        run("coin_flip", |rng| {
            total.set(total.get() + 1);
            if rng.gen_bool(0.5) {
                Err(TestCaseError::Reject)
            } else {
                Ok(())
            }
        });
        assert!(total.get() >= case_count());
    }

    #[test]
    #[should_panic(expected = "property 'always_fails' failed")]
    fn failures_panic_with_message() {
        run("always_fails", |_rng| Err(TestCaseError::fail("nope")));
    }

    #[test]
    fn cases_are_deterministic_across_runs() {
        let mut first = Vec::new();
        run("det", |rng| {
            first.push(rng.gen::<u64>());
            Ok(())
        });
        let mut second = Vec::new();
        run("det", |rng| {
            second.push(rng.gen::<u64>());
            Ok(())
        });
        assert_eq!(first, second);
    }
}
