//! Offline shim for the `rand` crate.
//!
//! The build environment has no registry access, so this crate vendors the
//! small slice of the `rand` 0.8 API the workspace actually uses: `StdRng`
//! seeded via [`SeedableRng::seed_from_u64`], and the [`Rng`] extension
//! methods `gen`, `gen_range`, and `gen_bool`. The generator is
//! xoshiro256++ seeded through SplitMix64 — fast, well distributed, and
//! deterministic across platforms. Streams differ from upstream `rand`
//! (which uses ChaCha12 for `StdRng`); nothing in the workspace depends on
//! the exact stream, only on determinism for a fixed seed.

use std::ops::{Range, RangeInclusive};

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// A generator that can be deterministically seeded.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// User-facing convenience methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value of a type with a standard distribution
    /// (uniform over the type's range; `[0, 1)` for floats).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Samples uniformly from a range. Panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        Self: Sized,
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`. Panics unless `0 <= p <= 1`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability {p} not in [0, 1]"
        );
        unit_f64(self.next_u64()) < p
    }
}

impl<R: RngCore> Rng for R {}

/// Types sampleable by [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample<R: RngCore>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for bool {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        unit_f64(rng.next_u64())
    }
}

impl Standard for f32 {
    fn sample<R: RngCore>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Maps 64 random bits to `[0, 1)` with 53 bits of precision.
fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_single<R: RngCore>(self, rng: &mut R) -> T;
}

/// Element types that [`SampleRange`] knows how to draw. The blanket
/// impls below must stay GENERIC over `T` (exactly one candidate per range
/// type) so type inference can unify a range's element type with the
/// surrounding expression, the way real rand's `UniformSampler` does —
/// per-concrete-type impls break inference of e.g. `x + rng.gen_range(a..b)`.
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform draw from `[lo, hi)`; callers guarantee `lo < hi`.
    fn sample_half_open<R: RngCore>(rng: &mut R, lo: Self, hi: Self) -> Self;

    /// Uniform draw from `[lo, hi]`; callers guarantee `lo <= hi`.
    fn sample_inclusive<R: RngCore>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_single<R: RngCore>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "cannot sample empty range");
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_single<R: RngCore>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "cannot sample empty range");
        T::sample_inclusive(rng, lo, hi)
    }
}

macro_rules! int_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore>(rng: &mut R, lo: Self, hi: Self) -> Self {
                let span = (hi as i128 - lo as i128) as u128;
                (lo as i128 + uniform_u128(rng, span) as i128) as $t
            }

            fn sample_inclusive<R: RngCore>(rng: &mut R, lo: Self, hi: Self) -> Self {
                let span = (hi as i128 - lo as i128) as u128 + 1;
                (lo as i128 + uniform_u128(rng, span) as i128) as $t
            }
        }
    )*};
}

int_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Unbiased integer in `[0, span)` (`span > 0`, or any u64 when span is
/// 2^64 expressed as u128) via rejection sampling.
fn uniform_u128<R: RngCore>(rng: &mut R, span: u128) -> u64 {
    debug_assert!(span > 0);
    if span > u64::MAX as u128 {
        return rng.next_u64();
    }
    let span = span as u64;
    // Zone is the largest multiple of span that fits in u64.
    let zone = u64::MAX - (u64::MAX - span + 1) % span;
    loop {
        let v = rng.next_u64();
        if v <= zone {
            return v % span;
        }
    }
}

macro_rules! float_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore>(rng: &mut R, lo: Self, hi: Self) -> Self {
                let u = unit_f64(rng.next_u64()) as $t;
                let v = lo + (hi - lo) * u;
                // Guard against rounding up to the excluded endpoint.
                if v >= hi { lo } else { v }
            }

            fn sample_inclusive<R: RngCore>(rng: &mut R, lo: Self, hi: Self) -> Self {
                let u = unit_f64(rng.next_u64()) as $t;
                lo + (hi - lo) * u
            }
        }
    )*};
}

float_sample_uniform!(f32, f64);

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // Expand the seed with SplitMix64, per the xoshiro authors'
            // recommendation; guarantees a non-zero state.
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(a.gen::<u64>(), b.gen::<u64>());
    }

    #[test]
    fn gen_range_int_in_bounds_and_covers() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen = [false; 6];
        for _ in 0..1000 {
            let v = rng.gen_range(0..6);
            assert!((0..6).contains(&v));
            seen[v as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_range_inclusive_hits_endpoints_region() {
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..1000 {
            let v = rng.gen_range(10..=20u64);
            assert!((10..=20).contains(&v));
        }
    }

    #[test]
    fn gen_range_float_in_bounds() {
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..1000 {
            let v = rng.gen_range(-2.5..7.5f64);
            assert!((-2.5..7.5).contains(&v));
        }
    }

    #[test]
    fn unit_float_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(6);
        for _ in 0..1000 {
            let v: f64 = rng.gen();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(7);
        assert!(!(0..100).map(|_| rng.gen_bool(0.0)).any(|b| b));
        assert!((0..100).map(|_| rng.gen_bool(1.0)).all(|b| b));
    }

    #[test]
    fn negative_int_ranges() {
        let mut rng = StdRng::seed_from_u64(8);
        for _ in 0..100 {
            let v = rng.gen_range(-5..5i64);
            assert!((-5..5).contains(&v));
        }
    }
}
