//! Offline shim for `rayon`: structured parallelism over a persistent
//! worker pool.
//!
//! Earlier versions of this shim spawned OS threads per `scope` / `join`
//! call (tens of microseconds each), which forced callers to gate parallel
//! paths behind large work-size thresholds. The pool removes that spawn
//! cost: one worker thread per hardware thread is started lazily on first
//! use and reused for the life of the process, so dispatching a task costs
//! a queue push plus a condvar wake (~1 µs).
//!
//! Deadlock freedom: a thread waiting for its scope's tasks to finish does
//! not just block — it *helps*, popping and executing queued jobs of *its
//! own scope only*. That is enough for progress: every queued job belongs
//! to some scope, and every scope's owner ends in [`scope`]'s wait, where
//! it drains its own jobs inline — so nested scopes on workers always make
//! progress even when every worker is inside a wait. Restricting help to
//! the waiter's own scope keeps a latency-critical caller (e.g. the query
//! engine waiting on a small predict batch) from being drafted into
//! executing an unrelated large training chunk inline, and bounds the
//! helper's inline recursion by the scope nesting depth rather than the
//! queue contents.

use std::collections::VecDeque;
use std::marker::PhantomData;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};

/// A queued unit of work. The closure is erased to `'static` when pushed;
/// the scope that spawned a job keeps its borrows alive until the job has
/// run (see the safety comment in [`Scope::spawn`]).
struct Job {
    /// Identity of the owning [`ScopeState`] (its allocation address),
    /// letting a waiter pick its own scope's jobs out of the queue. Only
    /// compared for equality, and the queued closure holds an `Arc` to the
    /// state, so the address stays valid while the job is queued.
    scope_tag: usize,
    run: Box<dyn FnOnce() + Send + 'static>,
}

struct Pool {
    queue: Mutex<VecDeque<Job>>,
    /// Signalled when a job is pushed *and* when any scope task completes
    /// (completion wakes helpers so they can re-check their scope's pending
    /// count — both events share one condvar to avoid lost wakeups).
    work_ready: Condvar,
    workers: usize,
}

impl Pool {
    fn push(&self, job: Job) {
        self.queue
            .lock()
            .expect("pool queue poisoned")
            .push_back(job);
        // notify_all, not notify_one: a single wakeup could land on a
        // scope waiter that cannot run this (foreign) job and would go
        // back to sleep, leaving the job stranded until the next notify.
        self.work_ready.notify_all();
    }

    /// Workers run *any* queued job; only scope waiters restrict
    /// themselves to their own scope (see [`wait_for_completion`]).
    fn worker_loop(&self) {
        let mut queue = self.queue.lock().expect("pool queue poisoned");
        loop {
            if let Some(job) = queue.pop_front() {
                drop(queue);
                (job.run)();
                queue = self.queue.lock().expect("pool queue poisoned");
            } else {
                queue = self.work_ready.wait(queue).expect("pool queue poisoned");
            }
        }
    }
}

/// The process-wide pool, started on first parallel call.
fn pool() -> &'static Pool {
    static POOL: OnceLock<&'static Pool> = OnceLock::new();
    POOL.get_or_init(|| {
        let workers = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        let pool: &'static Pool = Box::leak(Box::new(Pool {
            queue: Mutex::new(VecDeque::new()),
            work_ready: Condvar::new(),
            workers,
        }));
        for i in 0..workers {
            std::thread::Builder::new()
                .name(format!("rayon-shim-{i}"))
                .spawn(move || pool.worker_loop())
                .expect("failed to spawn pool worker");
        }
        pool
    })
}

/// Shared completion state of one `scope` call.
struct ScopeState {
    /// Tasks spawned but not yet finished.
    pending: AtomicUsize,
    /// First panic payload raised by a task, rethrown by `scope`.
    panic: Mutex<Option<Box<dyn std::any::Any + Send>>>,
}

impl ScopeState {
    /// Marks one task finished and wakes any helper blocked in
    /// [`wait_for_completion`]. The pool lock is taken briefly before the
    /// notify so a helper can never check `pending`, decide to sleep, and
    /// miss this wakeup (the lock serializes the two).
    fn complete_one(&self) {
        self.pending.fetch_sub(1, Ordering::Release);
        drop(pool().queue.lock().expect("pool queue poisoned"));
        pool().work_ready.notify_all();
    }
}

/// Blocks until every task of `state` finished, executing queued jobs *of
/// this scope only* while waiting — nested scopes on pool workers cannot
/// deadlock (each waiter can always drain its own scope's queued jobs),
/// and a waiter is never drafted into running an unrelated scope's work,
/// which would inflate its latency by an arbitrary foreign job's runtime.
fn wait_for_completion(state: &ScopeState) {
    let tag = state as *const ScopeState as usize;
    let p = pool();
    let mut queue = p.queue.lock().expect("pool queue poisoned");
    loop {
        if state.pending.load(Ordering::Acquire) == 0 {
            return;
        }
        if let Some(idx) = queue.iter().position(|j| j.scope_tag == tag) {
            let job = queue.remove(idx).expect("indexed job present");
            drop(queue);
            (job.run)();
            queue = p.queue.lock().expect("pool queue poisoned");
        } else {
            queue = p.work_ready.wait(queue).expect("pool queue poisoned");
        }
    }
}

/// A scope in which borrowed-data tasks can be spawned; all tasks complete
/// before [`scope`] returns.
pub struct Scope<'scope, 'env: 'scope> {
    state: Arc<ScopeState>,
    /// Invariant over `'scope` (mirrors rayon): tasks may borrow from the
    /// environment for exactly the scope's lifetime.
    _marker: PhantomData<&'scope mut &'env ()>,
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawns a task that may borrow from the enclosing scope.
    pub fn spawn<F>(&self, f: F)
    where
        F: FnOnce(&Scope<'scope, 'env>) + Send + 'scope,
    {
        self.state.pending.fetch_add(1, Ordering::Release);
        let scope_tag = Arc::as_ptr(&self.state) as usize;
        let state = Arc::clone(&self.state);
        let task: Box<dyn FnOnce() + Send + 'scope> = Box::new(move || {
            let nested = Scope {
                state: Arc::clone(&state),
                _marker: PhantomData,
            };
            let result = catch_unwind(AssertUnwindSafe(|| f(&nested)));
            if let Err(payload) = result {
                state
                    .panic
                    .lock()
                    .expect("scope panic slot poisoned")
                    .get_or_insert(payload);
            }
            state.complete_one();
        });
        // SAFETY: the closure borrows data alive for `'scope`. `scope()`
        // (the only constructor of a root `Scope`) does not return until
        // `pending` hits zero, i.e. until this job has fully executed, so
        // every borrow outlives the job. The transmute only erases the
        // lifetime parameter of the trait object; layout is identical.
        let run: Box<dyn FnOnce() + Send + 'static> = unsafe { std::mem::transmute(task) };
        pool().push(Job { scope_tag, run });
    }
}

/// Runs `f` with a [`Scope`]; blocks until every spawned task finishes.
/// Panics from tasks propagate to the caller.
pub fn scope<'env, F, R>(f: F) -> R
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    let state = Arc::new(ScopeState {
        pending: AtomicUsize::new(0),
        panic: Mutex::new(None),
    });
    let scope_handle = Scope {
        state: Arc::clone(&state),
        _marker: PhantomData,
    };
    let result = catch_unwind(AssertUnwindSafe(|| f(&scope_handle)));
    // Tasks may still be running and borrowing the environment: always wait
    // for all of them, even when `f` itself panicked.
    wait_for_completion(&state);
    if let Some(payload) = state
        .panic
        .lock()
        .expect("scope panic slot poisoned")
        .take()
    {
        resume_unwind(payload);
    }
    match result {
        Ok(value) => value,
        Err(payload) => resume_unwind(payload),
    }
}

/// Runs the two closures, potentially in parallel, returning both results.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    let mut ra = None;
    let rb;
    {
        let ra = &mut ra;
        rb = scope(|s| {
            s.spawn(move |_| *ra = Some(a()));
            b()
        });
    }
    (ra.expect("join task completed"), rb)
}

/// Number of worker threads in the persistent pool.
pub fn current_num_threads() -> usize {
    pool().workers
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn scope_runs_all_tasks_with_borrows() {
        let mut data = vec![0u64; 8];
        let chunk = 2;
        scope(|s| {
            for (i, slice) in data.chunks_mut(chunk).enumerate() {
                s.spawn(move |_| {
                    for (j, v) in slice.iter_mut().enumerate() {
                        *v = (i * chunk + j) as u64;
                    }
                });
            }
        });
        assert_eq!(data, (0..8).collect::<Vec<u64>>());
    }

    #[test]
    fn nested_spawn_works() {
        let counter = AtomicUsize::new(0);
        scope(|s| {
            s.spawn(|s| {
                counter.fetch_add(1, Ordering::SeqCst);
                s.spawn(|_| {
                    counter.fetch_add(1, Ordering::SeqCst);
                });
            });
        });
        assert_eq!(counter.load(Ordering::SeqCst), 2);
    }

    #[test]
    fn nested_scope_inside_worker_makes_progress() {
        // Saturate the pool with tasks that each open an inner scope; the
        // help-while-waiting protocol must drain them all.
        let counter = AtomicUsize::new(0);
        let outer = current_num_threads() * 4 + 2;
        scope(|s| {
            for _ in 0..outer {
                s.spawn(|_| {
                    scope(|inner| {
                        inner.spawn(|_| {
                            counter.fetch_add(1, Ordering::SeqCst);
                        });
                    });
                });
            }
        });
        assert_eq!(counter.load(Ordering::SeqCst), outer);
    }

    #[test]
    fn join_returns_both_results() {
        let (a, b) = join(|| 2 + 2, || "ok".len());
        assert_eq!((a, b), (4, 2));
    }

    #[test]
    fn task_panic_propagates() {
        let result = std::panic::catch_unwind(|| {
            scope(|s| {
                s.spawn(|_| panic!("task failure"));
            });
        });
        assert!(result.is_err());
        // The pool must remain usable after a panicking task.
        let (a, b) = join(|| 1, || 2);
        assert_eq!((a, b), (1, 2));
    }

    #[test]
    fn num_threads_is_positive() {
        assert!(current_num_threads() >= 1);
    }

    #[test]
    fn repeated_scopes_reuse_the_pool() {
        // Thousands of scopes complete quickly only if threads are reused.
        let counter = AtomicUsize::new(0);
        for _ in 0..2000 {
            scope(|s| {
                s.spawn(|_| {
                    counter.fetch_add(1, Ordering::SeqCst);
                });
            });
        }
        assert_eq!(counter.load(Ordering::SeqCst), 2000);
    }
}
