//! Offline shim for `rayon`: structured parallelism over `std::thread::scope`.
//!
//! Unlike real rayon there is no persistent worker pool — every `scope` /
//! `join` call spawns OS threads (tens of microseconds each). Callers must
//! therefore gate parallel paths behind a work-size threshold large enough
//! to amortize spawn cost; `geomancy-nn` only goes parallel for batches of
//! at least ~128 rows for exactly this reason.

/// A scope in which borrowed-data tasks can be spawned; all tasks complete
/// before [`scope`] returns.
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope std::thread::Scope<'scope, 'env>,
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawns a task that may borrow from the enclosing scope.
    pub fn spawn<F>(&self, f: F)
    where
        F: FnOnce(&Scope<'scope, 'env>) + Send + 'scope,
    {
        let inner = self.inner;
        inner.spawn(move || f(&Scope { inner }));
    }
}

/// Runs `f` with a [`Scope`]; blocks until every spawned task finishes.
/// Panics from tasks propagate to the caller (via `std::thread::scope`).
pub fn scope<'env, F, R>(f: F) -> R
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    std::thread::scope(|s| f(&Scope { inner: s }))
}

/// Runs the two closures, potentially in parallel, returning both results.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    std::thread::scope(|s| {
        let handle = s.spawn(a);
        let rb = b();
        (handle.join().expect("rayon::join task panicked"), rb)
    })
}

/// Available hardware parallelism (real rayon reports its pool size).
pub fn current_num_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn scope_runs_all_tasks_with_borrows() {
        let mut data = vec![0u64; 8];
        let chunk = 2;
        scope(|s| {
            for (i, slice) in data.chunks_mut(chunk).enumerate() {
                s.spawn(move |_| {
                    for (j, v) in slice.iter_mut().enumerate() {
                        *v = (i * chunk + j) as u64;
                    }
                });
            }
        });
        assert_eq!(data, (0..8).collect::<Vec<u64>>());
    }

    #[test]
    fn nested_spawn_works() {
        let counter = AtomicUsize::new(0);
        scope(|s| {
            s.spawn(|s| {
                counter.fetch_add(1, Ordering::SeqCst);
                s.spawn(|_| {
                    counter.fetch_add(1, Ordering::SeqCst);
                });
            });
        });
        assert_eq!(counter.load(Ordering::SeqCst), 2);
    }

    #[test]
    fn join_returns_both_results() {
        let (a, b) = join(|| 2 + 2, || "ok".len());
        assert_eq!((a, b), (4, 2));
    }

    #[test]
    fn num_threads_is_positive() {
        assert!(current_num_threads() >= 1);
    }
}
