//! The JSON data model shared by the `serde` and `serde_json` shims.

use std::fmt;

/// An arbitrary-precision-enough JSON number: i64, u64, or f64, mirroring
/// `serde_json::Number`.
#[derive(Debug, Clone, Copy)]
pub enum Number {
    /// A negative (or small positive) integer.
    I64(i64),
    /// A non-negative integer too large for i64, or any u64.
    U64(u64),
    /// A floating-point number.
    F64(f64),
}

impl Number {
    /// Wraps an i64; non-negative values normalize to the u64 variant so
    /// that `1` compares equal however it was produced.
    pub fn from_i64(n: i64) -> Self {
        if n >= 0 {
            Number::U64(n as u64)
        } else {
            Number::I64(n)
        }
    }

    /// Wraps a u64.
    pub fn from_u64(n: u64) -> Self {
        Number::U64(n)
    }

    /// Wraps an f64.
    pub fn from_f64(n: f64) -> Self {
        Number::F64(n)
    }

    /// The value as f64 (lossy for huge integers).
    pub fn as_f64(&self) -> f64 {
        match *self {
            Number::I64(n) => n as f64,
            Number::U64(n) => n as f64,
            Number::F64(n) => n,
        }
    }

    /// The value as u64, if it is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Number::U64(n) => Some(n),
            Number::I64(n) => u64::try_from(n).ok(),
            Number::F64(n) if n >= 0.0 && n.fract() == 0.0 && n <= u64::MAX as f64 => {
                Some(n as u64)
            }
            Number::F64(_) => None,
        }
    }

    /// The value as i64, if it is an integer in range.
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Number::I64(n) => Some(n),
            Number::U64(n) => i64::try_from(n).ok(),
            Number::F64(n) if n.fract() == 0.0 && n >= i64::MIN as f64 && n <= i64::MAX as f64 => {
                Some(n as i64)
            }
            Number::F64(_) => None,
        }
    }
}

impl PartialEq for Number {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (Number::F64(a), Number::F64(b)) => a == b,
            (Number::F64(_), _) | (_, Number::F64(_)) => false,
            (a, b) => match (a.as_i64(), b.as_i64(), a.as_u64(), b.as_u64()) {
                (Some(x), Some(y), _, _) => x == y,
                (_, _, Some(x), Some(y)) => x == y,
                _ => false,
            },
        }
    }
}

impl fmt::Display for Number {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Number::I64(n) => write!(f, "{n}"),
            Number::U64(n) => write!(f, "{n}"),
            Number::F64(n) => {
                if n.is_finite() {
                    // `{}` on f64 is Rust's shortest round-trip rendering,
                    // but integral floats print without a decimal point
                    // ("1"); that is still valid JSON and re-parses as an
                    // integer, which `as_f64` recovers.
                    write!(f, "{n}")
                } else {
                    // JSON has no non-finite literals; serialize as null
                    // (serde_json errors instead — the workspace never
                    // round-trips non-finite values).
                    write!(f, "null")
                }
            }
        }
    }
}

/// An insertion-ordered string-keyed map, mirroring `serde_json::Map`.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Map {
    entries: Vec<(String, Value)>,
}

impl Map {
    /// Creates an empty map.
    pub fn new() -> Self {
        Map::default()
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the map has no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Inserts a key/value pair, replacing (in place) any existing entry
    /// with the same key. Returns the previous value, if any.
    pub fn insert(&mut self, key: String, value: Value) -> Option<Value> {
        for (k, v) in &mut self.entries {
            if *k == key {
                return Some(std::mem::replace(v, value));
            }
        }
        self.entries.push((key, value));
        None
    }

    /// Looks up a key.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.entries.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// Whether the key is present.
    pub fn contains_key(&self, key: &str) -> bool {
        self.get(key).is_some()
    }

    /// Iterates entries in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (&String, &Value)> {
        self.entries.iter().map(|(k, v)| (k, v))
    }

    /// Iterates keys in insertion order.
    pub fn keys(&self) -> impl Iterator<Item = &String> {
        self.entries.iter().map(|(k, _)| k)
    }

    /// Iterates values in insertion order.
    pub fn values(&self) -> impl Iterator<Item = &Value> {
        self.entries.iter().map(|(_, v)| v)
    }
}

impl FromIterator<(String, Value)> for Map {
    fn from_iter<I: IntoIterator<Item = (String, Value)>>(iter: I) -> Self {
        let mut map = Map::new();
        for (k, v) in iter {
            map.insert(k, v);
        }
        map
    }
}

/// A JSON value, mirroring `serde_json::Value`.
#[derive(Debug, Clone, PartialEq, Default)]
pub enum Value {
    /// `null`.
    #[default]
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number.
    Number(Number),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object.
    Object(Map),
}

impl Value {
    /// Human-readable kind name, used in error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "boolean",
            Value::Number(_) => "number",
            Value::String(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }

    /// The value as f64, when it is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(n.as_f64()),
            _ => None,
        }
    }

    /// The value as u64, when it is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) => n.as_u64(),
            _ => None,
        }
    }

    /// The value as i64, when it is an in-range integer.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(n) => n.as_i64(),
            _ => None,
        }
    }

    /// The value as a string slice, when it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a bool, when it is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an array slice, when it is an array.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// The value as an object, when it is one.
    pub fn as_object(&self) -> Option<&Map> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    /// Object-member access: `value.get("key")`.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object().and_then(|m| m.get(key))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn number_normalizes_small_ints() {
        assert_eq!(Number::from_i64(5), Number::from_u64(5));
        assert_ne!(Number::from_i64(-5), Number::from_u64(5));
        assert_eq!(Number::from_i64(-5).as_i64(), Some(-5));
        assert_eq!(Number::from_u64(u64::MAX).as_i64(), None);
    }

    #[test]
    fn map_preserves_insertion_order_and_replaces() {
        let mut m = Map::new();
        m.insert("b".to_string(), Value::Null);
        m.insert("a".to_string(), Value::Bool(true));
        m.insert("b".to_string(), Value::Bool(false));
        let keys: Vec<_> = m.keys().cloned().collect();
        assert_eq!(keys, vec!["b", "a"]);
        assert_eq!(m.get("b"), Some(&Value::Bool(false)));
        assert_eq!(m.len(), 2);
    }

    #[test]
    fn value_accessors() {
        let v = Value::Number(Number::from_u64(3));
        assert_eq!(v.as_f64(), Some(3.0));
        assert_eq!(v.as_u64(), Some(3));
        assert_eq!(v.as_str(), None);
        assert_eq!(Value::String("x".into()).as_str(), Some("x"));
    }
}
