//! Offline shim for `serde`.
//!
//! The build environment has no registry access, so this crate provides the
//! serialization surface the workspace uses: the [`Serialize`] /
//! [`Deserialize`] traits and their derive macros. Unlike real serde (which
//! abstracts over serialization formats), this shim is specialized to the
//! one format the workspace uses — JSON — via the in-tree [`json::Value`]
//! data model. The companion `serde_json` shim supplies the text
//! encode/decode layer on top.

pub mod json;

pub use json::{Map, Number, Value};
pub use serde_derive::{Deserialize, Serialize};

use std::collections::{BTreeMap, HashMap, VecDeque};
use std::fmt;

/// Error produced when a [`Value`] cannot be interpreted as the requested
/// type.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeError(String);

impl DeError {
    /// Creates an error with the given message.
    pub fn new(msg: impl Into<String>) -> Self {
        DeError(msg.into())
    }

    /// Standard "expected X, found Y" constructor.
    pub fn expected(what: &str, found: &Value) -> Self {
        DeError(format!("expected {what}, found {}", found.kind()))
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for DeError {}

/// A type that can be converted into the JSON data model.
pub trait Serialize {
    /// Converts `self` to a [`Value`].
    fn to_value(&self) -> Value;
}

/// A type that can be reconstructed from the JSON data model.
pub trait Deserialize: Sized {
    /// Builds `Self` from a [`Value`].
    ///
    /// # Errors
    ///
    /// Returns a [`DeError`] when the value's shape does not match.
    fn from_value(value: &Value) -> Result<Self, DeError>;
}

// ---------------------------------------------------------------------------
// Serialize impls for std types
// ---------------------------------------------------------------------------

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

macro_rules! ser_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Number(Number::from_u64(*self as u64))
            }
        }
    )*};
}
ser_unsigned!(u8, u16, u32, u64, usize);

macro_rules! ser_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Number(Number::from_i64(*self as i64))
            }
        }
    )*};
}
ser_signed!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Number(Number::from_f64(*self))
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Number(Number::from_f64(*self as f64))
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            None => Value::Null,
            Some(v) => v.to_value(),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for VecDeque<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

macro_rules! ser_tuple {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$n.to_value()),+])
            }
        }
    )*};
}
ser_tuple! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
    (0 A, 1 B, 2 C, 3 D, 4 E)
}

/// JSON object keys must be strings; map keys are serialized and then
/// rendered as their string form (numbers keep their decimal rendering,
/// matching serde_json's integer-keyed-map behaviour).
fn key_to_string<K: Serialize>(key: &K) -> String {
    match key.to_value() {
        Value::String(s) => s,
        Value::Number(n) => n.to_string(),
        Value::Bool(b) => b.to_string(),
        other => panic!("unsupported map key type: {}", other.kind()),
    }
}

impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        let mut map = Map::new();
        for (k, v) in self {
            map.insert(key_to_string(k), v.to_value());
        }
        Value::Object(map)
    }
}

impl<K: Serialize, V: Serialize> Serialize for HashMap<K, V> {
    fn to_value(&self) -> Value {
        let mut map = Map::new();
        for (k, v) in self {
            map.insert(key_to_string(k), v.to_value());
        }
        Value::Object(map)
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

// ---------------------------------------------------------------------------
// Deserialize impls for std types
// ---------------------------------------------------------------------------

impl Deserialize for bool {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Bool(b) => Ok(*b),
            other => Err(DeError::expected("bool", other)),
        }
    }
}

macro_rules! de_unsigned {
    ($($t:ty),*) => {$(
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, DeError> {
                let n = value
                    .as_u64()
                    .ok_or_else(|| DeError::expected("unsigned integer", value))?;
                <$t>::try_from(n).map_err(|_| {
                    DeError::new(format!("{n} out of range for {}", stringify!($t)))
                })
            }
        }
    )*};
}
de_unsigned!(u8, u16, u32, u64, usize);

macro_rules! de_signed {
    ($($t:ty),*) => {$(
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, DeError> {
                let n = value
                    .as_i64()
                    .ok_or_else(|| DeError::expected("integer", value))?;
                <$t>::try_from(n).map_err(|_| {
                    DeError::new(format!("{n} out of range for {}", stringify!($t)))
                })
            }
        }
    )*};
}
de_signed!(i8, i16, i32, i64, isize);

impl Deserialize for f64 {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        value
            .as_f64()
            .ok_or_else(|| DeError::expected("number", value))
    }
}

impl Deserialize for f32 {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        f64::from_value(value).map(|v| v as f32)
    }
}

impl Deserialize for String {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::String(s) => Ok(s.clone()),
            other => Err(DeError::expected("string", other)),
        }
    }
}

impl Deserialize for char {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        let s = String::from_value(value)?;
        let mut chars = s.chars();
        match (chars.next(), chars.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(DeError::new("expected single-character string")),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            other => Err(DeError::expected("array", other)),
        }
    }
}

impl<T: Deserialize> Deserialize for VecDeque<T> {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        Vec::<T>::from_value(value).map(VecDeque::from)
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        T::from_value(value).map(Box::new)
    }
}

macro_rules! de_tuple {
    ($(($len:literal; $($n:tt $t:ident),+))*) => {$(
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(value: &Value) -> Result<Self, DeError> {
                match value {
                    Value::Array(items) if items.len() == $len => {
                        Ok(($($t::from_value(&items[$n])?,)+))
                    }
                    other => Err(DeError::expected(
                        concat!("array of length ", $len),
                        other,
                    )),
                }
            }
        }
    )*};
}
de_tuple! {
    (1; 0 A)
    (2; 0 A, 1 B)
    (3; 0 A, 1 B, 2 C)
    (4; 0 A, 1 B, 2 C, 3 D)
    (5; 0 A, 1 B, 2 C, 3 D, 4 E)
}

/// Parses a JSON object key back into a map key type: string keys
/// deserialize directly, numeric keys through their decimal rendering.
fn key_from_string<K: Deserialize>(key: &str) -> Result<K, DeError> {
    if let Ok(k) = K::from_value(&Value::String(key.to_string())) {
        return Ok(k);
    }
    if let Ok(n) = key.parse::<i64>() {
        if let Ok(k) = K::from_value(&Value::Number(Number::from_i64(n))) {
            return Ok(k);
        }
    }
    if let Ok(n) = key.parse::<u64>() {
        if let Ok(k) = K::from_value(&Value::Number(Number::from_u64(n))) {
            return Ok(k);
        }
    }
    Err(DeError::new(format!("cannot parse map key {key:?}")))
}

impl<K: Deserialize + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Object(map) => map
                .iter()
                .map(|(k, v)| Ok((key_from_string(k)?, V::from_value(v)?)))
                .collect(),
            other => Err(DeError::expected("object", other)),
        }
    }
}

impl<K: Deserialize + Eq + std::hash::Hash, V: Deserialize> Deserialize for HashMap<K, V> {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Object(map) => map
                .iter()
                .map(|(k, v)| Ok((key_from_string(k)?, V::from_value(v)?)))
                .collect(),
            other => Err(DeError::expected("object", other)),
        }
    }
}

impl Deserialize for Value {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        Ok(value.clone())
    }
}
