//! Derive macros for the offline `serde` shim.
//!
//! The registry is unreachable in this build environment, so `syn`/`quote`
//! are unavailable; instead the type definition is parsed with a small
//! hand-rolled walker over `proc_macro::TokenStream` and the impls are
//! emitted as source text. Supported shapes — which cover every derived
//! type in the workspace — are:
//!
//! - structs with named fields (honouring `#[serde(skip)]`),
//! - tuple structs (newtype passthrough for one field, arrays otherwise),
//! - unit structs,
//! - enums with unit, newtype/tuple, and struct variants
//!   (externally tagged, like serde's default).
//!
//! Generics and non-`skip` serde attributes are intentionally rejected.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derives `serde::Serialize` for a struct or enum.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let def = parse_type(input);
    gen_serialize(&def)
        .parse()
        .expect("generated Serialize impl parses")
}

/// Derives `serde::Deserialize` for a struct or enum.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let def = parse_type(input);
    gen_deserialize(&def)
        .parse()
        .expect("generated Deserialize impl parses")
}

// ---------------------------------------------------------------------------
// Parsed model
// ---------------------------------------------------------------------------

struct Field {
    name: String,
    skip: bool,
}

enum Body {
    Named(Vec<Field>),
    /// Tuple struct/variant; the value is the field count.
    Tuple(usize),
    Unit,
}

struct Variant {
    name: String,
    body: Body,
}

enum Kind {
    Struct(Body),
    Enum(Vec<Variant>),
}

struct TypeDef {
    name: String,
    kind: Kind,
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

fn parse_type(input: TokenStream) -> TypeDef {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;

    // Skip outer attributes and visibility.
    skip_attrs_and_vis(&tokens, &mut i);

    let keyword = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("expected `struct` or `enum`, found {other:?}"),
    };
    i += 1;
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("expected type name, found {other:?}"),
    };
    i += 1;
    if let Some(TokenTree::Punct(p)) = tokens.get(i) {
        if p.as_char() == '<' {
            panic!("serde shim derive does not support generic types ({name})");
        }
    }

    match keyword.as_str() {
        "struct" => {
            let body = match tokens.get(i) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    Body::Named(parse_named_fields(g.stream()))
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    Body::Tuple(count_tuple_fields(g.stream()))
                }
                Some(TokenTree::Punct(p)) if p.as_char() == ';' => Body::Unit,
                other => panic!("unsupported struct body for {name}: {other:?}"),
            };
            TypeDef {
                name,
                kind: Kind::Struct(body),
            }
        }
        "enum" => {
            let body = match tokens.get(i) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
                other => panic!("expected enum body for {name}, found {other:?}"),
            };
            TypeDef {
                name,
                kind: Kind::Enum(parse_variants(body)),
            }
        }
        other => panic!("cannot derive for `{other}` items"),
    }
}

/// Advances past any `#[...]` attributes and a `pub` / `pub(...)`
/// visibility prefix, returning whether a `#[serde(skip)]` was seen.
fn skip_attrs_and_vis(tokens: &[TokenTree], i: &mut usize) -> bool {
    let mut skip = false;
    loop {
        match tokens.get(*i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                if let Some(TokenTree::Group(g)) = tokens.get(*i + 1) {
                    if attr_is_serde_skip(g.stream()) {
                        skip = true;
                    }
                    *i += 2;
                } else {
                    panic!("malformed attribute");
                }
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *i += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(*i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        *i += 1; // pub(crate) etc.
                    }
                }
            }
            _ => return skip,
        }
    }
}

/// Whether an attribute body (the `[...]` content) is `serde(skip)`.
fn attr_is_serde_skip(stream: TokenStream) -> bool {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    match (tokens.first(), tokens.get(1)) {
        (Some(TokenTree::Ident(id)), Some(TokenTree::Group(args))) if id.to_string() == "serde" => {
            let mut saw_skip = false;
            for t in args.stream() {
                if let TokenTree::Ident(arg) = t {
                    match arg.to_string().as_str() {
                        "skip" => saw_skip = true,
                        other => panic!(
                            "unsupported serde attribute `{other}` (shim supports only `skip`)"
                        ),
                    }
                }
            }
            saw_skip
        }
        (Some(TokenTree::Ident(id)), _) if id.to_string() == "serde" => {
            panic!("malformed serde attribute")
        }
        _ => false,
    }
}

fn parse_named_fields(stream: TokenStream) -> Vec<Field> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        let skip = skip_attrs_and_vis(&tokens, &mut i);
        let name = match tokens.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            other => panic!("expected field name, found {other:?}"),
        };
        i += 1;
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            other => panic!("expected `:` after field `{name}`, found {other:?}"),
        }
        // Skip the type: consume until a comma at angle-bracket depth 0.
        let mut angle_depth = 0i32;
        while let Some(t) = tokens.get(i) {
            match t {
                TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                    i += 1;
                    break;
                }
                _ => {}
            }
            i += 1;
        }
        fields.push(Field { name, skip });
    }
    fields
}

/// Counts the fields of a tuple struct/variant body.
fn count_tuple_fields(stream: TokenStream) -> usize {
    let mut count = 0usize;
    let mut saw_token = false;
    let mut angle_depth = 0i32;
    for t in stream {
        match t {
            TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                count += 1;
                saw_token = false;
                continue;
            }
            _ => {}
        }
        saw_token = true;
    }
    if saw_token {
        count += 1;
    }
    count
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        let name = match tokens.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            other => panic!("expected variant name, found {other:?}"),
        };
        i += 1;
        let body = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                Body::Named(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                Body::Tuple(count_tuple_fields(g.stream()))
            }
            _ => Body::Unit,
        };
        // Consume the trailing comma, if any.
        if let Some(TokenTree::Punct(p)) = tokens.get(i) {
            if p.as_char() == ',' {
                i += 1;
            }
        }
        variants.push(Variant { name, body });
    }
    variants
}

// ---------------------------------------------------------------------------
// Codegen
// ---------------------------------------------------------------------------

/// Serialization of a named-field body into a `Value::Object`, with field
/// access through the given prefix (`&self.x` for structs, `x` for
/// destructured enum variants).
fn ser_named(fields: &[Field], access: impl Fn(&str) -> String) -> String {
    let mut out = String::from("{ let mut __map = ::serde::Map::new();\n");
    for f in fields.iter().filter(|f| !f.skip) {
        out.push_str(&format!(
            "__map.insert(\"{n}\".to_string(), ::serde::Serialize::to_value({a}));\n",
            n = f.name,
            a = access(&f.name)
        ));
    }
    out.push_str("::serde::Value::Object(__map) }");
    out
}

/// Construction of a named-field body from an object expression `__obj`.
fn de_named(type_path: &str, fields: &[Field]) -> String {
    let mut out = format!("{type_path} {{\n");
    for f in fields {
        if f.skip {
            out.push_str(&format!(
                "{}: ::core::default::Default::default(),\n",
                f.name
            ));
        } else {
            out.push_str(&format!(
                "{n}: ::serde::Deserialize::from_value(__obj.get(\"{n}\").ok_or_else(|| \
                 ::serde::DeError::new(\"missing field `{n}`\"))?)?,\n",
                n = f.name
            ));
        }
    }
    out.push('}');
    out
}

fn gen_serialize(def: &TypeDef) -> String {
    let name = &def.name;
    let body = match &def.kind {
        Kind::Struct(Body::Named(fields)) => ser_named(fields, |f| format!("&self.{f}")),
        Kind::Struct(Body::Tuple(1)) => "::serde::Serialize::to_value(&self.0)".to_string(),
        Kind::Struct(Body::Tuple(n)) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                .collect();
            format!("::serde::Value::Array(vec![{}])", items.join(", "))
        }
        Kind::Struct(Body::Unit) => "::serde::Value::Null".to_string(),
        Kind::Enum(variants) => {
            let mut arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.body {
                    Body::Unit => arms.push_str(&format!(
                        "{name}::{vn} => ::serde::Value::String(\"{vn}\".to_string()),\n"
                    )),
                    Body::Named(fields) => {
                        let pattern: Vec<&str> = fields.iter().map(|f| f.name.as_str()).collect();
                        let inner = ser_named(fields, |f| format!("{f}"));
                        arms.push_str(&format!(
                            "{name}::{vn} {{ {pat} }} => {{ let mut __outer = ::serde::Map::new(); \
                             __outer.insert(\"{vn}\".to_string(), {inner}); ::serde::Value::Object(__outer) }},\n",
                            pat = pattern.join(", ")
                        ));
                    }
                    Body::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                        let payload = if *n == 1 {
                            "::serde::Serialize::to_value(__f0)".to_string()
                        } else {
                            let items: Vec<String> = binds
                                .iter()
                                .map(|b| format!("::serde::Serialize::to_value({b})"))
                                .collect();
                            format!("::serde::Value::Array(vec![{}])", items.join(", "))
                        };
                        arms.push_str(&format!(
                            "{name}::{vn}({bind}) => {{ let mut __outer = ::serde::Map::new(); \
                             __outer.insert(\"{vn}\".to_string(), {payload}); ::serde::Value::Object(__outer) }},\n",
                            bind = binds.join(", ")
                        ));
                    }
                }
            }
            format!("match self {{\n{arms}}}")
        }
    };
    format!(
        "#[automatically_derived]\nimpl ::serde::Serialize for {name} {{\n\
         fn to_value(&self) -> ::serde::Value {{\n{body}\n}}\n}}\n"
    )
}

fn gen_deserialize(def: &TypeDef) -> String {
    let name = &def.name;
    let body = match &def.kind {
        Kind::Struct(Body::Named(fields)) => {
            let construct = de_named(name, fields);
            format!(
                "let __obj = __value.as_object().ok_or_else(|| \
                 ::serde::DeError::expected(\"object\", __value))?;\n\
                 ::core::result::Result::Ok({construct})"
            )
        }
        Kind::Struct(Body::Tuple(1)) => format!(
            "::core::result::Result::Ok({name}(::serde::Deserialize::from_value(__value)?))"
        ),
        Kind::Struct(Body::Tuple(n)) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Deserialize::from_value(&__items[{i}])?"))
                .collect();
            format!(
                "let __items = __value.as_array().ok_or_else(|| \
                 ::serde::DeError::expected(\"array\", __value))?;\n\
                 if __items.len() != {n} {{ return ::core::result::Result::Err(\
                 ::serde::DeError::new(\"wrong tuple length\")); }}\n\
                 ::core::result::Result::Ok({name}({args}))",
                args = items.join(", ")
            )
        }
        Kind::Struct(Body::Unit) => format!("::core::result::Result::Ok({name})"),
        Kind::Enum(variants) => {
            let mut unit_arms = String::new();
            let mut keyed_arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.body {
                    Body::Unit => unit_arms.push_str(&format!(
                        "\"{vn}\" => ::core::result::Result::Ok({name}::{vn}),\n"
                    )),
                    Body::Named(fields) => {
                        let construct = de_named(&format!("{name}::{vn}"), fields);
                        keyed_arms.push_str(&format!(
                            "\"{vn}\" => {{ let __obj = __payload.as_object().ok_or_else(|| \
                             ::serde::DeError::expected(\"object\", __payload))?; \
                             ::core::result::Result::Ok({construct}) }},\n"
                        ));
                    }
                    Body::Tuple(1) => keyed_arms.push_str(&format!(
                        "\"{vn}\" => ::core::result::Result::Ok({name}::{vn}(\
                         ::serde::Deserialize::from_value(__payload)?)),\n"
                    )),
                    Body::Tuple(n) => {
                        let items: Vec<String> = (0..*n)
                            .map(|i| format!("::serde::Deserialize::from_value(&__items[{i}])?"))
                            .collect();
                        keyed_arms.push_str(&format!(
                            "\"{vn}\" => {{ let __items = __payload.as_array().ok_or_else(|| \
                             ::serde::DeError::expected(\"array\", __payload))?; \
                             if __items.len() != {n} {{ return ::core::result::Result::Err(\
                             ::serde::DeError::new(\"wrong tuple length\")); }} \
                             ::core::result::Result::Ok({name}::{vn}({args})) }},\n",
                            args = items.join(", ")
                        ));
                    }
                }
            }
            format!(
                "match __value {{\n\
                 ::serde::Value::String(__s) => match __s.as_str() {{\n{unit_arms}\
                 __other => ::core::result::Result::Err(::serde::DeError::new(\
                 format!(\"unknown variant `{{__other}}` for {name}\"))),\n}},\n\
                 ::serde::Value::Object(__map) => {{\n\
                 let (__tag, __payload) = __map.iter().next().ok_or_else(|| \
                 ::serde::DeError::new(\"empty enum object\"))?;\n\
                 match __tag.as_str() {{\n{keyed_arms}\
                 __other => ::core::result::Result::Err(::serde::DeError::new(\
                 format!(\"unknown variant `{{__other}}` for {name}\"))),\n}}\n}},\n\
                 __other => ::core::result::Result::Err(::serde::DeError::expected(\
                 \"string or object\", __other)),\n}}"
            )
        }
    };
    format!(
        "#[automatically_derived]\nimpl ::serde::Deserialize for {name} {{\n\
         fn from_value(__value: &::serde::Value) -> \
         ::core::result::Result<Self, ::serde::DeError> {{\n{body}\n}}\n}}\n"
    )
}
