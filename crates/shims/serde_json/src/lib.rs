//! Offline shim for `serde_json`: JSON text encoding/decoding over the
//! `serde` shim's [`Value`] data model.
//!
//! Provides the workspace's used surface: [`to_string`],
//! [`to_string_pretty`], [`to_writer`], [`from_str`], [`Value`], [`Map`],
//! [`Number`], [`Error`], and the [`json!`] macro.

mod parse;

use std::fmt;
use std::io;

pub use serde::{Map, Number, Value};

/// A serialization or deserialization failure.
#[derive(Debug)]
pub struct Error {
    msg: String,
}

impl Error {
    fn new(msg: impl Into<String>) -> Self {
        Error { msg: msg.into() }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

impl From<serde::DeError> for Error {
    fn from(e: serde::DeError) -> Self {
        Error::new(e.to_string())
    }
}

/// Converts any serializable value into a [`Value`].
pub fn to_value<T: serde::Serialize>(value: &T) -> Value {
    value.to_value()
}

/// Reconstructs a typed value from a [`Value`].
///
/// # Errors
///
/// Returns an [`Error`] when the value's shape does not match `T`.
pub fn from_value<T: serde::Deserialize>(value: &Value) -> Result<T, Error> {
    T::from_value(value).map_err(Error::from)
}

/// Serializes to a compact JSON string.
///
/// # Errors
///
/// Infallible for the shim's data model; the `Result` mirrors serde_json.
pub fn to_string<T: serde::Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serializes to an indented JSON string (two spaces, like serde_json).
///
/// # Errors
///
/// Infallible for the shim's data model; the `Result` mirrors serde_json.
pub fn to_string_pretty<T: serde::Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some("  "), 0);
    Ok(out)
}

/// Serializes compact JSON into a writer.
///
/// # Errors
///
/// Returns an [`Error`] if the writer fails.
pub fn to_writer<W: io::Write, T: serde::Serialize>(mut writer: W, value: &T) -> Result<(), Error> {
    let s = to_string(value)?;
    writer
        .write_all(s.as_bytes())
        .map_err(|e| Error::new(format!("write failed: {e}")))
}

/// Parses a JSON string into a typed value.
///
/// # Errors
///
/// Returns an [`Error`] on malformed JSON or a shape mismatch.
pub fn from_str<T: serde::Deserialize>(s: &str) -> Result<T, Error> {
    let value = parse::parse(s).map_err(Error::new)?;
    T::from_value(&value).map_err(Error::from)
}

fn write_value(out: &mut String, value: &Value, indent: Option<&str>, depth: usize) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Number(n) => out.push_str(&n.to_string()),
        Value::String(s) => write_json_string(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Object(map) => {
            if map.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, v)) in map.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_json_string(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, v, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<&str>, depth: usize) {
    if let Some(pad) = indent {
        out.push('\n');
        for _ in 0..depth {
            out.push_str(pad);
        }
    }
}

fn write_json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Builds a [`Value`] from JSON-like syntax, mirroring `serde_json::json!`.
///
/// Object values, array elements, and bare expressions may be any
/// `Serialize` type. The implementation is the same token-munching
/// strategy serde_json uses, so arbitrary expressions (method chains,
/// closures, nested `json!`) work as values.
#[macro_export]
macro_rules! json {
    ($($json:tt)+) => { $crate::json_internal!($($json)+) };
}

/// Implementation detail of [`json!`].
#[doc(hidden)]
#[macro_export]
macro_rules! json_internal {
    // ---- array element munching: @array [built elems] rest... ----
    (@array [$($elems:expr,)*]) => { vec![$($elems,)*] };
    (@array [$($elems:expr),*]) => { vec![$($elems),*] };
    (@array [$($elems:expr,)*] null $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!(null)] $($rest)*)
    };
    (@array [$($elems:expr,)*] true $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!(true)] $($rest)*)
    };
    (@array [$($elems:expr,)*] false $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!(false)] $($rest)*)
    };
    (@array [$($elems:expr,)*] [$($array:tt)*] $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!([$($array)*])] $($rest)*)
    };
    (@array [$($elems:expr,)*] {$($map:tt)*} $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!({$($map)*})] $($rest)*)
    };
    (@array [$($elems:expr,)*] $next:expr, $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!($next),] $($rest)*)
    };
    (@array [$($elems:expr,)*] $last:expr) => {
        $crate::json_internal!(@array [$($elems,)* $crate::json_internal!($last)])
    };
    (@array [$($elems:expr),*] , $($rest:tt)*) => {
        $crate::json_internal!(@array [$($elems,)*] $($rest)*)
    };

    // ---- object entry munching: @object map (key tokens) (rest) (copy) ----
    (@object $object:ident () () ()) => {};
    (@object $object:ident [$($key:tt)+] ($value:expr) , $($rest:tt)*) => {
        let _ = $object.insert(($($key)+).into(), $value);
        $crate::json_internal!(@object $object () ($($rest)*) ($($rest)*));
    };
    (@object $object:ident [$($key:tt)+] ($value:expr)) => {
        let _ = $object.insert(($($key)+).into(), $value);
    };
    (@object $object:ident ($($key:tt)+) (: null $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $object [$($key)+] ($crate::json_internal!(null)) $($rest)*);
    };
    (@object $object:ident ($($key:tt)+) (: true $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $object [$($key)+] ($crate::json_internal!(true)) $($rest)*);
    };
    (@object $object:ident ($($key:tt)+) (: false $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $object [$($key)+] ($crate::json_internal!(false)) $($rest)*);
    };
    (@object $object:ident ($($key:tt)+) (: [$($array:tt)*] $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $object [$($key)+] ($crate::json_internal!([$($array)*])) $($rest)*);
    };
    (@object $object:ident ($($key:tt)+) (: {$($map:tt)*} $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $object [$($key)+] ($crate::json_internal!({$($map)*})) $($rest)*);
    };
    (@object $object:ident ($($key:tt)+) (: $value:expr , $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $object [$($key)+] ($crate::json_internal!($value)) , $($rest)*);
    };
    (@object $object:ident ($($key:tt)+) (: $value:expr) $copy:tt) => {
        $crate::json_internal!(@object $object [$($key)+] ($crate::json_internal!($value)));
    };
    (@object $object:ident ($($key:tt)*) ($tt:tt $($rest:tt)*) $copy:tt) => {
        $crate::json_internal!(@object $object ($($key)* $tt) ($($rest)*) ($($rest)*));
    };

    // ---- entry points ----
    (null) => { $crate::Value::Null };
    (true) => { $crate::Value::Bool(true) };
    (false) => { $crate::Value::Bool(false) };
    ([]) => { $crate::Value::Array(vec![]) };
    ([ $($tt:tt)+ ]) => { $crate::Value::Array($crate::json_internal!(@array [] $($tt)+)) };
    ({}) => { $crate::Value::Object($crate::Map::new()) };
    ({ $($tt:tt)+ }) => {{
        let mut map = $crate::Map::new();
        $crate::json_internal!(@object map () ($($tt)+) ($($tt)+));
        $crate::Value::Object(map)
    }};
    ($other:expr) => { $crate::to_value(&$other) };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_scalars() {
        assert_eq!(to_string(&3u64).unwrap(), "3");
        assert_eq!(to_string(&-4i64).unwrap(), "-4");
        assert_eq!(to_string(&1.5f64).unwrap(), "1.5");
        assert_eq!(to_string(&true).unwrap(), "true");
        assert_eq!(to_string(&"hi".to_string()).unwrap(), "\"hi\"");
        assert_eq!(from_str::<u64>("3").unwrap(), 3);
        assert_eq!(from_str::<f64>("1.5").unwrap(), 1.5);
        assert_eq!(from_str::<f64>("2").unwrap(), 2.0);
        assert_eq!(from_str::<String>("\"hi\"").unwrap(), "hi");
    }

    #[test]
    fn round_trip_nested() {
        let v: Vec<Vec<f64>> = vec![vec![1.0, 2.5], vec![]];
        let s = to_string(&v).unwrap();
        assert_eq!(from_str::<Vec<Vec<f64>>>(&s).unwrap(), v);
    }

    #[test]
    fn string_escapes_round_trip() {
        let s = "a\"b\\c\nd\te\u{1}f".to_string();
        let enc = to_string(&s).unwrap();
        assert_eq!(from_str::<String>(&enc).unwrap(), s);
    }

    #[test]
    fn option_round_trips() {
        assert_eq!(to_string(&Option::<u64>::None).unwrap(), "null");
        assert_eq!(from_str::<Option<u64>>("null").unwrap(), None);
        assert_eq!(from_str::<Option<u64>>("7").unwrap(), Some(7));
    }

    #[test]
    fn json_macro_shapes() {
        let v = json!({
            "a": 1,
            "b": [1.5, "x", null],
            "c": { "nested": true },
        });
        assert_eq!(v.get("a").and_then(Value::as_u64), Some(1));
        assert_eq!(v.get("b").and_then(Value::as_array).map(Vec::len), Some(3));
        assert_eq!(
            v.get("c")
                .and_then(|c| c.get("nested"))
                .and_then(Value::as_bool),
            Some(true)
        );
        let expr = 21u64 * 2;
        assert_eq!(json!(expr).as_u64(), Some(42));
    }

    #[test]
    fn pretty_output_is_indented_and_parses_back() {
        let v = json!({"k": [1, 2]});
        let pretty = to_string_pretty(&v).unwrap();
        assert!(pretty.contains("\n  \"k\""));
        assert_eq!(from_str::<Value>(&pretty).unwrap(), v);
    }

    #[test]
    fn malformed_input_errors() {
        assert!(from_str::<Value>("{\"a\": }").is_err());
        assert!(from_str::<Value>("[1, 2").is_err());
        assert!(from_str::<u64>("\"not a number\"").is_err());
        assert!(from_str::<Value>("tru").is_err());
        assert!(from_str::<Value>("1 trailing").is_err());
    }

    #[test]
    fn unicode_escapes_parse() {
        assert_eq!(from_str::<String>("\"\\u0041\\u00e9\"").unwrap(), "Aé");
        // Surrogate pair: 😀
        assert_eq!(from_str::<String>("\"\\ud83d\\ude00\"").unwrap(), "😀");
    }

    #[test]
    fn large_u64_round_trips_exactly() {
        let n = u64::MAX - 3;
        let s = to_string(&n).unwrap();
        assert_eq!(from_str::<u64>(&s).unwrap(), n);
    }
}
