//! Recursive-descent JSON text parser for the serde_json shim.

use serde::{Map, Number, Value};

/// Parses a complete JSON document; trailing non-whitespace is an error.
pub(crate) fn parse(s: &str) -> Result<Value, String> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing characters at offset {}", p.pos));
    }
    Ok(value)
}

/// Recursion guard: deeper nesting than this is rejected rather than
/// risking a stack overflow (matches serde_json's default of 128).
const MAX_DEPTH: usize = 128;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at offset {}", b as char, self.pos))
        }
    }

    fn literal(&mut self, lit: &str, value: Value) -> Result<Value, String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at offset {}", self.pos))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Value, String> {
        if depth > MAX_DEPTH {
            return Err("recursion limit exceeded".to_string());
        }
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(c) => Err(format!(
                "unexpected character '{}' at offset {}",
                c as char, self.pos
            )),
            None => Err("unexpected end of input".to_string()),
        }
    }

    fn array(&mut self, depth: usize) -> Result<Value, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(format!("expected ',' or ']' at offset {}", self.pos)),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Value, String> {
        self.expect(b'{')?;
        let mut map = Map::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(map));
                }
                _ => return Err(format!("expected ',' or '}}' at offset {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{0008}'),
                        Some(b'f') => out.push('\u{000C}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let c = self.unicode_escape()?;
                            out.push(c);
                            // unicode_escape leaves pos just past the final
                            // hex digit; skip the shared `pos += 1` below.
                            continue;
                        }
                        _ => return Err(format!("invalid escape at offset {}", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 character (input is &str, so the
                    // bytes are valid UTF-8).
                    let start = self.pos;
                    self.pos += 1;
                    while self.pos < self.bytes.len() && (self.bytes[self.pos] & 0xC0) == 0x80 {
                        self.pos += 1;
                    }
                    let chunk = std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|e| e.to_string())?;
                    out.push_str(chunk);
                }
            }
        }
    }

    /// Parses the four hex digits after `\u` (and, for surrogate pairs, the
    /// following `\uXXXX` low surrogate). On entry `pos` is at the first hex
    /// digit; on exit it is just past the last consumed digit.
    fn unicode_escape(&mut self) -> Result<char, String> {
        let hi = self.hex4()?;
        if (0xD800..0xDC00).contains(&hi) {
            // High surrogate: require a following \uXXXX low surrogate.
            if self.bytes[self.pos..].starts_with(b"\\u") {
                self.pos += 2;
                let lo = self.hex4()?;
                if (0xDC00..0xE000).contains(&lo) {
                    let c = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                    return char::from_u32(c).ok_or_else(|| "invalid surrogate pair".to_string());
                }
            }
            Err(format!("unpaired surrogate at offset {}", self.pos))
        } else if (0xDC00..0xE000).contains(&hi) {
            Err(format!("unexpected low surrogate at offset {}", self.pos))
        } else {
            char::from_u32(hi).ok_or_else(|| "invalid \\u escape".to_string())
        }
    }

    fn hex4(&mut self) -> Result<u32, String> {
        let mut n = 0u32;
        for _ in 0..4 {
            let d = match self.peek() {
                Some(c @ b'0'..=b'9') => (c - b'0') as u32,
                Some(c @ b'a'..=b'f') => (c - b'a' + 10) as u32,
                Some(c @ b'A'..=b'F') => (c - b'A' + 10) as u32,
                _ => return Err(format!("invalid hex digit at offset {}", self.pos)),
            };
            n = n * 16 + d;
            self.pos += 1;
        }
        Ok(n)
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let int_start = self.pos;
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.pos == int_start {
            return Err(format!("invalid number at offset {}", start));
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            let frac_start = self.pos;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
            if self.pos == frac_start {
                return Err(format!("invalid number at offset {}", start));
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            let exp_start = self.pos;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
            if self.pos == exp_start {
                return Err(format!("invalid number at offset {}", start));
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).map_err(|e| e.to_string())?;
        if !is_float {
            // Prefer exact integer representations; fall back to f64 for
            // out-of-range magnitudes.
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::Number(Number::from_u64(u)));
            }
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Number(Number::from_i64(i)));
            }
        }
        text.parse::<f64>()
            .map(|f| Value::Number(Number::from_f64(f)))
            .map_err(|e| format!("invalid number at offset {start}: {e}"))
    }
}
