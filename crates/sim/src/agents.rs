//! Monitoring and control agents (§V-A).
//!
//! "Each monitoring agent only measures the performance of one storage
//! device … individually communicating all collected metrics to Geomancy."
//! The agents here mirror that split: a [`MonitoringAgent`] buffers the
//! records of a single device and releases them in batches (the paper
//! groups accesses to lower transfer overhead); a [`ControlAgent`] executes
//! layout changes against the system with a per-round transfer budget so
//! migrations cannot monopolize the network.

use crate::cluster::{Layout, StorageSystem};
use crate::error::SimError;
use crate::record::{AccessRecord, DeviceId, MovementRecord};

/// Buffers the telemetry of one storage device.
#[derive(Debug, Clone)]
pub struct MonitoringAgent {
    device: DeviceId,
    buffer: Vec<AccessRecord>,
    batch_size: usize,
    total_observed: u64,
}

impl MonitoringAgent {
    /// Creates an agent for `device` that releases records in batches of
    /// `batch_size`.
    ///
    /// # Panics
    ///
    /// Panics if `batch_size` is zero.
    pub fn new(device: DeviceId, batch_size: usize) -> Self {
        assert!(batch_size > 0, "batch size must be non-zero");
        MonitoringAgent {
            device,
            buffer: Vec::new(),
            batch_size,
            total_observed: 0,
        }
    }

    /// Device this agent watches.
    pub fn device(&self) -> DeviceId {
        self.device
    }

    /// Lifetime number of records observed.
    pub fn total_observed(&self) -> u64 {
        self.total_observed
    }

    /// Offers a record; the agent keeps it only if it belongs to its device.
    /// Returns a full batch when one is ready.
    pub fn observe(&mut self, record: &AccessRecord) -> Option<Vec<AccessRecord>> {
        if record.fsid != self.device {
            return None;
        }
        self.buffer.push(*record);
        self.total_observed += 1;
        if self.buffer.len() >= self.batch_size {
            Some(std::mem::take(&mut self.buffer))
        } else {
            None
        }
    }

    /// Drains whatever is buffered, full batch or not.
    pub fn drain(&mut self) -> Vec<AccessRecord> {
        std::mem::take(&mut self.buffer)
    }

    /// Number of records currently buffered.
    pub fn pending(&self) -> usize {
        self.buffer.len()
    }
}

/// Executes layout updates with a per-round byte budget.
#[derive(Debug, Clone)]
pub struct ControlAgent {
    /// Maximum bytes the agent will move in one round (`None` = unlimited).
    transfer_budget: Option<u64>,
}

impl ControlAgent {
    /// Creates a control agent with an optional per-round transfer budget.
    ///
    /// "Geomancy limits how often and how much data can be transferred at
    /// once without creating a bottleneck in the network."
    pub fn new(transfer_budget: Option<u64>) -> Self {
        ControlAgent { transfer_budget }
    }

    /// The configured budget.
    pub fn transfer_budget(&self) -> Option<u64> {
        self.transfer_budget
    }

    /// Applies `layout` to `system`, skipping moves once the byte budget is
    /// spent. Returns performed movements and any per-file errors.
    pub fn apply(
        &self,
        system: &mut StorageSystem,
        layout: &Layout,
    ) -> (Vec<MovementRecord>, Vec<SimError>) {
        let mut moved = Vec::new();
        let mut errors = Vec::new();
        let mut spent: u64 = 0;
        for (&fid, &target) in layout {
            match system.location_of(fid) {
                Ok(current) if current == target => continue,
                Ok(_) => {
                    let size = system.files().get(&fid).map(|m| m.size).unwrap_or(0);
                    if let Some(budget) = self.transfer_budget {
                        if spent.saturating_add(size) > budget {
                            continue;
                        }
                    }
                    match system.move_file(fid, target) {
                        Ok(m) => {
                            spent += m.bytes;
                            moved.push(m);
                        }
                        Err(e) => errors.push(e),
                    }
                }
                Err(e) => errors.push(e),
            }
        }
        (moved, errors)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::FileMeta;
    use crate::device::DeviceSpec;
    use crate::record::FileId;
    use crate::traffic::Constant;

    fn record(fsid: u32, n: u64) -> AccessRecord {
        AccessRecord {
            access_number: n,
            fid: FileId(1),
            fsid: DeviceId(fsid),
            rb: 10,
            wb: 0,
            ots: 0,
            otms: 0,
            cts: 1,
            ctms: 0,
        }
    }

    #[test]
    fn agent_ignores_other_devices() {
        let mut agent = MonitoringAgent::new(DeviceId(0), 4);
        assert!(agent.observe(&record(1, 0)).is_none());
        assert_eq!(agent.pending(), 0);
        assert_eq!(agent.total_observed(), 0);
    }

    #[test]
    fn agent_batches_its_device() {
        let mut agent = MonitoringAgent::new(DeviceId(0), 3);
        assert!(agent.observe(&record(0, 0)).is_none());
        assert!(agent.observe(&record(0, 1)).is_none());
        let batch = agent.observe(&record(0, 2)).expect("batch should be full");
        assert_eq!(batch.len(), 3);
        assert_eq!(agent.pending(), 0);
        assert_eq!(agent.total_observed(), 3);
    }

    #[test]
    fn drain_returns_partial_batch() {
        let mut agent = MonitoringAgent::new(DeviceId(0), 10);
        let _ = agent.observe(&record(0, 0));
        let drained = agent.drain();
        assert_eq!(drained.len(), 1);
        assert_eq!(agent.pending(), 0);
    }

    fn two_device_system() -> StorageSystem {
        StorageSystem::builder()
            .device(
                DeviceSpec::new("a", 1e9, 1e9, 0.0, 1_000_000_000, 0.0, 0.0),
                Box::new(Constant(0.0)),
            )
            .device(
                DeviceSpec::new("b", 1e9, 1e9, 0.0, 1_000_000_000, 0.0, 0.0),
                Box::new(Constant(0.0)),
            )
            .build()
    }

    #[test]
    fn control_agent_applies_layout() {
        let mut sys = two_device_system();
        sys.add_file(
            FileId(1),
            FileMeta {
                size: 100,
                path: "f".into(),
            },
            DeviceId(0),
        )
        .unwrap();
        let mut layout = Layout::new();
        layout.insert(FileId(1), DeviceId(1));
        let agent = ControlAgent::new(None);
        let (moved, errors) = agent.apply(&mut sys, &layout);
        assert_eq!(moved.len(), 1);
        assert!(errors.is_empty());
        assert_eq!(sys.location_of(FileId(1)).unwrap(), DeviceId(1));
    }

    #[test]
    fn control_agent_respects_budget() {
        let mut sys = two_device_system();
        for i in 0..4 {
            sys.add_file(
                FileId(i),
                FileMeta {
                    size: 100,
                    path: format!("f{i}"),
                },
                DeviceId(0),
            )
            .unwrap();
        }
        let mut layout = Layout::new();
        for i in 0..4 {
            layout.insert(FileId(i), DeviceId(1));
        }
        // Budget of 250 bytes fits only two 100-byte files.
        let agent = ControlAgent::new(Some(250));
        let (moved, _) = agent.apply(&mut sys, &layout);
        assert_eq!(moved.len(), 2);
    }
}
