//! Preset model of PNNL's Bluesky node — the live system of the paper's
//! evaluation (§III).
//!
//! Six mounts with distinct personalities:
//!
//! | Mount   | Backing            | Character |
//! |---------|--------------------|-----------|
//! | people  | NFS over 10 GbE    | shared home; heaviest external traffic, long stalls |
//! | var     | RAID 1             | modest, moderately shared |
//! | tmp     | RAID 1             | modest, lightly shared |
//! | file0   | RAID 5             | fastest reads, large read/write imbalance, high variance |
//! | pic     | Lustre             | fast but heavily shared |
//! | USBtmp  | external USB HDD   | slowest, almost private, very stable |
//!
//! Bandwidth constants are chosen so the *averages observed under load*
//! land near the paper's Table IV (file0 ≈ 7.6 GB/s, pic ≈ 2.0, people ≈
//! 1.7, tmp ≈ 1.65, var ≈ 1.26, USBtmp ≈ 0.63 GB/s) while preserving the
//! ordering and the RAID-5 write penalty that trips up LRU (§VII).

use crate::cluster::{StorageSystem, StorageSystemBuilder};
use crate::device::DeviceSpec;
use crate::record::DeviceId;
use crate::traffic::{Bursty, Composite, Constant, Diurnal, TrafficModel};

const GB: f64 = 1e9;
const TB: u64 = 1_000_000_000_000;

/// Index of each Bluesky mount in the builder (and thus its [`DeviceId`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Mount {
    /// NFS home directory.
    People,
    /// RAID 1 temporary mount.
    Var,
    /// RAID 1 temporary mount.
    Tmp,
    /// RAID 5 mount — the fast one.
    File0,
    /// Lustre file system.
    Pic,
    /// Externally mounted USB HDD.
    UsbTmp,
}

impl Mount {
    /// All mounts in device-id order.
    pub const ALL: [Mount; 6] = [
        Mount::People,
        Mount::Var,
        Mount::Tmp,
        Mount::File0,
        Mount::Pic,
        Mount::UsbTmp,
    ];

    /// The mount's [`DeviceId`] in a system built by [`bluesky_system`].
    pub fn device_id(self) -> DeviceId {
        DeviceId(self as u32)
    }

    /// Mount name as used in the paper.
    pub fn name(self) -> &'static str {
        match self {
            Mount::People => "people",
            Mount::Var => "var",
            Mount::Tmp => "tmp",
            Mount::File0 => "file0",
            Mount::Pic => "pic",
            Mount::UsbTmp => "USBtmp",
        }
    }
}

impl std::fmt::Display for Mount {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

fn people_spec() -> (DeviceSpec, Box<dyn TrafficModel>) {
    (
        DeviceSpec::new("people", 3.2 * GB, 2.4 * GB, 0.002, 20 * TB, 2.5, 0.18),
        Box::new(Composite(vec![
            Box::new(Diurnal {
                base: 0.15,
                amplitude: 0.8,
                period_secs: 600.0,
                phase_secs: 0.0,
            }),
            // Heavy storms: other users running I/O-heavy jobs on the shared
            // home server.
            Box::new(Bursty {
                seed: 0xB1E5,
                window_secs: 45.0,
                burst_probability: 0.35,
                magnitude_min: 1.0,
                magnitude_max: 4.0,
            }),
            // Slow regime shifts: other users' multi-hour I/O campaigns.
            // These are what make *adaptive* placement pay off — a layout
            // tuned before a campaign starts is stale once it lands.
            Box::new(Bursty {
                seed: 0xB1E5_0002,
                window_secs: 1_800.0,
                burst_probability: 0.4,
                magnitude_min: 1.0,
                magnitude_max: 2.5,
            }),
        ])),
    )
}

fn var_spec() -> (DeviceSpec, Box<dyn TrafficModel>) {
    (
        DeviceSpec::new("var", 1.9 * GB, 1.5 * GB, 0.0008, 2 * TB, 2.0, 0.12),
        Box::new(Composite(vec![
            Box::new(Constant(0.1)),
            Box::new(Bursty {
                seed: 0x7A2,
                window_secs: 60.0,
                burst_probability: 0.2,
                magnitude_min: 0.3,
                magnitude_max: 1.2,
            }),
            Box::new(Bursty {
                seed: 0x7A2_0002,
                window_secs: 2_100.0,
                burst_probability: 0.3,
                magnitude_min: 0.8,
                magnitude_max: 2.0,
            }),
        ])),
    )
}

fn tmp_spec() -> (DeviceSpec, Box<dyn TrafficModel>) {
    (
        DeviceSpec::new("tmp", 2.4 * GB, 1.9 * GB, 0.0008, 2 * TB, 2.0, 0.12),
        Box::new(Composite(vec![
            Box::new(Constant(0.05)),
            Box::new(Bursty {
                seed: 0x73,
                window_secs: 70.0,
                burst_probability: 0.15,
                magnitude_min: 0.2,
                magnitude_max: 1.0,
            }),
            Box::new(Bursty {
                seed: 0x73_0002,
                window_secs: 1_500.0,
                burst_probability: 0.25,
                magnitude_min: 0.8,
                magnitude_max: 2.0,
            }),
        ])),
    )
}

fn file0_spec() -> (DeviceSpec, Box<dyn TrafficModel>) {
    (
        // RAID 5: stellar reads, writes pay the parity penalty — the
        // "large imbalance between read- and write-speeds" the paper says
        // defeats LRU.
        DeviceSpec::new("file0", 10.5 * GB, 2.2 * GB, 0.0004, 50 * TB, 5.0, 0.25),
        Box::new(Composite(vec![
            Box::new(Constant(0.02)),
            // Rare but violent bursts give file0 its huge variance
            // (Table IV: 7.61 ± 13.73 GB/s).
            Box::new(Bursty {
                seed: 0xF11E,
                window_secs: 120.0,
                burst_probability: 0.08,
                magnitude_min: 2.0,
                magnitude_max: 6.0,
            }),
        ])),
    )
}

fn pic_spec() -> (DeviceSpec, Box<dyn TrafficModel>) {
    (
        DeviceSpec::new("pic", 4.2 * GB, 3.4 * GB, 0.0015, 100 * TB, 3.0, 0.2),
        Box::new(Composite(vec![
            Box::new(Diurnal {
                base: 0.2,
                amplitude: 0.6,
                period_secs: 900.0,
                phase_secs: 300.0,
            }),
            Box::new(Bursty {
                seed: 0x91C,
                window_secs: 50.0,
                burst_probability: 0.3,
                magnitude_min: 0.8,
                magnitude_max: 3.0,
            }),
            Box::new(Bursty {
                seed: 0x91C_0002,
                window_secs: 2_400.0,
                burst_probability: 0.35,
                magnitude_min: 1.0,
                magnitude_max: 2.5,
            }),
        ])),
    )
}

fn usbtmp_spec() -> (DeviceSpec, Box<dyn TrafficModel>) {
    (
        DeviceSpec::new("USBtmp", 0.72 * GB, 0.55 * GB, 0.006, TB, 1.5, 0.06),
        Box::new(Constant(0.05)),
    )
}

/// Builds the six-mount Bluesky system with the given noise seed.
///
/// # Examples
///
/// ```
/// use geomancy_sim::bluesky::{bluesky_system, Mount};
///
/// let sys = bluesky_system(42);
/// assert_eq!(sys.devices().len(), 6);
/// assert_eq!(sys.device(Mount::File0.device_id()).unwrap().name(), "file0");
/// ```
pub fn bluesky_system(seed: u64) -> StorageSystem {
    bluesky_builder().seed(seed).build()
}

/// The Bluesky device set as a builder, for callers that want to tweak it.
pub fn bluesky_builder() -> StorageSystemBuilder {
    bluesky_builder_scaled(1.0)
}

/// [`bluesky_builder`] with every mount's capacity multiplied by
/// `capacity_factor` (relative sizes, bandwidths, and traffic untouched).
/// The serving layer's scale runs use this: a 100k–1M-file population
/// dwarfs the paper's 24-file suite, and what those runs measure is the
/// placement/telemetry pipeline at count scale, not capacity pressure.
///
/// # Panics
///
/// Panics if `capacity_factor` is not finite and ≥ 1.0.
pub fn bluesky_builder_scaled(capacity_factor: f64) -> StorageSystemBuilder {
    assert!(
        capacity_factor.is_finite() && capacity_factor >= 1.0,
        "capacity factor must be finite and >= 1.0, got {capacity_factor}"
    );
    let mut b = StorageSystem::builder();
    for mount in Mount::ALL {
        let (mut spec, traffic) = match mount {
            Mount::People => people_spec(),
            Mount::Var => var_spec(),
            Mount::Tmp => tmp_spec(),
            Mount::File0 => file0_spec(),
            Mount::Pic => pic_spec(),
            Mount::UsbTmp => usbtmp_spec(),
        };
        spec.capacity = (spec.capacity as f64 * capacity_factor).ceil() as u64;
        b = b.device(spec, traffic);
    }
    b
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::FileMeta;
    use crate::record::FileId;

    #[test]
    fn six_mounts_in_declared_order() {
        let sys = bluesky_system(0);
        let names: Vec<&str> = sys.devices().iter().map(|d| d.name()).collect();
        assert_eq!(names, ["people", "var", "tmp", "file0", "pic", "USBtmp"]);
    }

    #[test]
    fn mount_ids_match_positions() {
        let sys = bluesky_system(0);
        for mount in Mount::ALL {
            assert_eq!(sys.device(mount.device_id()).unwrap().name(), mount.name());
        }
    }

    #[test]
    fn file0_fastest_usbtmp_slowest_uncontended() {
        let sys = bluesky_system(0);
        let read_bw = |m: Mount| sys.device(m.device_id()).unwrap().spec().read_bandwidth;
        for m in Mount::ALL {
            if m != Mount::File0 {
                assert!(
                    read_bw(Mount::File0) > read_bw(m),
                    "file0 not fastest vs {m}"
                );
            }
            if m != Mount::UsbTmp {
                assert!(
                    read_bw(Mount::UsbTmp) < read_bw(m),
                    "USBtmp not slowest vs {m}"
                );
            }
        }
    }

    #[test]
    fn file0_has_raid5_write_penalty() {
        let sys = bluesky_system(0);
        let spec = sys.device(Mount::File0.device_id()).unwrap().spec().clone();
        assert!(
            spec.read_bandwidth / spec.write_bandwidth > 3.0,
            "expected read/write imbalance on RAID-5"
        );
    }

    #[test]
    fn throughput_ordering_under_light_use() {
        let mut sys = bluesky_system(3);
        // One small file per mount, read once each (light load so external
        // traffic dominates less).
        for (i, m) in Mount::ALL.iter().enumerate() {
            sys.add_file(
                FileId(i as u64),
                FileMeta {
                    size: 50_000_000,
                    path: format!("f{i}.root"),
                },
                m.device_id(),
            )
            .unwrap();
        }
        let mut tp = Vec::new();
        for (i, m) in Mount::ALL.iter().enumerate() {
            // Average several reads to dampen noise.
            let mean: f64 = (0..5)
                .map(|_| sys.read_file(FileId(i as u64), None).unwrap().throughput())
                .sum::<f64>()
                / 5.0;
            tp.push((*m, mean));
        }
        let file0 = tp.iter().find(|(m, _)| *m == Mount::File0).unwrap().1;
        let usb = tp.iter().find(|(m, _)| *m == Mount::UsbTmp).unwrap().1;
        for (m, v) in &tp {
            if *m != Mount::File0 {
                assert!(file0 > *v, "file0 {file0:.3e} not fastest vs {m} {v:.3e}");
            }
            if *m != Mount::UsbTmp {
                assert!(usb < *v, "USBtmp {usb:.3e} not slowest vs {m} {v:.3e}");
            }
        }
    }

    #[test]
    fn people_sees_heavier_external_traffic_than_usbtmp() {
        let mut sys = bluesky_system(1);
        let mut people_total = 0.0;
        let mut usb_total = 0.0;
        for _ in 0..500 {
            sys.idle(7.0);
            people_total += sys.external_load(Mount::People.device_id()).unwrap();
            usb_total += sys.external_load(Mount::UsbTmp.device_id()).unwrap();
        }
        assert!(
            people_total > usb_total * 3.0,
            "people {people_total} should dwarf USBtmp {usb_total}"
        );
    }
}
