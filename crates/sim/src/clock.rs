//! Simulated wall clock with millisecond resolution.

use serde::{Deserialize, Serialize};

/// A monotonically advancing simulated clock.
///
/// Time is tracked in integer microseconds so repeated small advances never
/// lose precision; accessors convert to the second/millisecond split the
/// paper's records use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub struct SimClock {
    micros: u64,
}

impl SimClock {
    /// Creates a clock at time zero.
    pub fn new() -> Self {
        SimClock { micros: 0 }
    }

    /// Creates a clock at an arbitrary starting epoch, in seconds.
    pub fn starting_at_secs(secs: u64) -> Self {
        SimClock {
            micros: secs * 1_000_000,
        }
    }

    /// Current time in seconds as a float.
    pub fn now_secs(&self) -> f64 {
        self.micros as f64 / 1e6
    }

    /// Current time in microseconds.
    pub fn now_micros(&self) -> u64 {
        self.micros
    }

    /// Current time split into `(seconds, millisecond remainder)` — the
    /// `(ts, tms)` encoding the paper's records use.
    pub fn now_secs_ms(&self) -> (u64, u16) {
        let ms_total = self.micros / 1000;
        ((ms_total / 1000), (ms_total % 1000) as u16)
    }

    /// Advances the clock by a (non-negative, finite) number of seconds.
    ///
    /// # Panics
    ///
    /// Panics if `secs` is negative, NaN, or infinite.
    pub fn advance_secs(&mut self, secs: f64) {
        assert!(
            secs.is_finite() && secs >= 0.0,
            "clock must advance forward"
        );
        self.micros += (secs * 1e6).round() as u64;
    }

    /// Advances the clock by whole microseconds.
    pub fn advance_micros(&mut self, micros: u64) {
        self.micros += micros;
    }
}

impl Default for SimClock {
    fn default() -> Self {
        SimClock::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_at_zero() {
        let c = SimClock::new();
        assert_eq!(c.now_micros(), 0);
        assert_eq!(c.now_secs_ms(), (0, 0));
    }

    #[test]
    fn advance_accumulates() {
        let mut c = SimClock::new();
        c.advance_secs(1.5);
        c.advance_secs(0.25);
        assert!((c.now_secs() - 1.75).abs() < 1e-9);
        assert_eq!(c.now_secs_ms(), (1, 750));
    }

    #[test]
    fn sub_millisecond_advances_do_not_vanish() {
        let mut c = SimClock::new();
        for _ in 0..1000 {
            c.advance_secs(0.0001); // 100 µs each
        }
        assert!((c.now_secs() - 0.1).abs() < 1e-9);
    }

    #[test]
    fn starting_epoch() {
        let c = SimClock::starting_at_secs(1_500_000_000);
        assert_eq!(c.now_secs_ms(), (1_500_000_000, 0));
    }

    #[test]
    #[should_panic(expected = "advance forward")]
    fn negative_advance_panics() {
        SimClock::new().advance_secs(-1.0);
    }
}
