//! Simulated wall clock with millisecond resolution, plus a shared
//! publishable view that plugs into the runtime's [`TimeSource`] so
//! reactor timers can run on simulated time.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use geomancy_runtime::TimeSource;
use serde::{Deserialize, Serialize};

/// A monotonically advancing simulated clock.
///
/// Time is tracked in integer microseconds so repeated small advances never
/// lose precision; accessors convert to the second/millisecond split the
/// paper's records use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub struct SimClock {
    micros: u64,
}

impl SimClock {
    /// Creates a clock at time zero.
    pub fn new() -> Self {
        SimClock { micros: 0 }
    }

    /// Creates a clock at an arbitrary starting epoch, in seconds.
    pub fn starting_at_secs(secs: u64) -> Self {
        SimClock {
            micros: secs * 1_000_000,
        }
    }

    /// Current time in seconds as a float.
    pub fn now_secs(&self) -> f64 {
        self.micros as f64 / 1e6
    }

    /// Current time in microseconds.
    pub fn now_micros(&self) -> u64 {
        self.micros
    }

    /// Current time split into `(seconds, millisecond remainder)` — the
    /// `(ts, tms)` encoding the paper's records use.
    pub fn now_secs_ms(&self) -> (u64, u16) {
        let ms_total = self.micros / 1000;
        ((ms_total / 1000), (ms_total % 1000) as u16)
    }

    /// Advances the clock by a (non-negative, finite) number of seconds.
    ///
    /// # Panics
    ///
    /// Panics if `secs` is negative, NaN, or infinite.
    pub fn advance_secs(&mut self, secs: f64) {
        assert!(
            secs.is_finite() && secs >= 0.0,
            "clock must advance forward"
        );
        self.micros += (secs * 1e6).round() as u64;
    }

    /// Advances the clock by whole microseconds.
    pub fn advance_micros(&mut self, micros: u64) {
        self.micros += micros;
    }
}

impl Default for SimClock {
    fn default() -> Self {
        SimClock::new()
    }
}

/// A monotonic clock shared across threads, advanced by publishing
/// [`SimClock`] readings (or raw microsecond high-water marks).
///
/// This is the bridge between simulated/telemetry time and the runtime
/// reactor: the serve layer publishes record timestamps into it as they
/// are ingested, a simulation publishes its `SimClock`, and any reactor
/// constructed with it as [`TimeSource`] fires timers deterministically
/// when the publisher advances — no wall time involved.
#[derive(Clone, Default)]
pub struct SharedSimClock {
    inner: Arc<SharedInner>,
}

#[derive(Default)]
struct SharedInner {
    micros: AtomicU64,
    wakers: Mutex<Vec<Arc<dyn Fn() + Send + Sync>>>,
}

impl std::fmt::Debug for SharedSimClock {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SharedSimClock")
            .field("micros", &self.now_micros())
            .finish()
    }
}

impl SharedSimClock {
    /// A shared clock at time zero.
    pub fn new() -> Self {
        SharedSimClock::default()
    }

    /// Current time in microseconds.
    pub fn now_micros(&self) -> u64 {
        self.inner.micros.load(Ordering::SeqCst)
    }

    /// Raises the clock to `micros` if that is later than the current
    /// reading; out-of-order publishes never move time backwards.
    pub fn publish_micros(&self, micros: u64) {
        let prev = self.inner.micros.fetch_max(micros, Ordering::SeqCst);
        if micros > prev {
            let wakers = self.inner.wakers.lock().unwrap();
            for w in wakers.iter() {
                w();
            }
        }
    }

    /// Publishes a [`SimClock`] reading.
    pub fn publish(&self, clock: &SimClock) {
        self.publish_micros(clock.now_micros());
    }
}

impl TimeSource for SharedSimClock {
    fn now_micros(&self) -> u64 {
        SharedSimClock::now_micros(self)
    }

    fn autonomous(&self) -> bool {
        false
    }

    fn register_waker(&self, waker: Arc<dyn Fn() + Send + Sync>) {
        self.inner.wakers.lock().unwrap().push(waker);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_at_zero() {
        let c = SimClock::new();
        assert_eq!(c.now_micros(), 0);
        assert_eq!(c.now_secs_ms(), (0, 0));
    }

    #[test]
    fn advance_accumulates() {
        let mut c = SimClock::new();
        c.advance_secs(1.5);
        c.advance_secs(0.25);
        assert!((c.now_secs() - 1.75).abs() < 1e-9);
        assert_eq!(c.now_secs_ms(), (1, 750));
    }

    #[test]
    fn sub_millisecond_advances_do_not_vanish() {
        let mut c = SimClock::new();
        for _ in 0..1000 {
            c.advance_secs(0.0001); // 100 µs each
        }
        assert!((c.now_secs() - 0.1).abs() < 1e-9);
    }

    #[test]
    fn starting_epoch() {
        let c = SimClock::starting_at_secs(1_500_000_000);
        assert_eq!(c.now_secs_ms(), (1_500_000_000, 0));
    }

    #[test]
    #[should_panic(expected = "advance forward")]
    fn negative_advance_panics() {
        SimClock::new().advance_secs(-1.0);
    }

    #[test]
    fn shared_clock_publishes_high_water_and_wakes() {
        let shared = SharedSimClock::new();
        let woken = Arc::new(AtomicU64::new(0));
        let woken2 = Arc::clone(&woken);
        TimeSource::register_waker(
            &shared,
            Arc::new(move || {
                woken2.fetch_add(1, Ordering::SeqCst);
            }),
        );
        assert!(!shared.autonomous());
        let mut sim = SimClock::starting_at_secs(10);
        shared.publish(&sim);
        assert_eq!(shared.now_micros(), 10_000_000);
        // Stale publishes neither rewind time nor wake anyone.
        shared.publish_micros(5);
        assert_eq!(shared.now_micros(), 10_000_000);
        assert_eq!(woken.load(Ordering::SeqCst), 1);
        sim.advance_secs(1.0);
        shared.publish(&sim);
        assert_eq!(shared.now_micros(), 11_000_000);
        assert_eq!(woken.load(Ordering::SeqCst), 2);
    }

    #[test]
    fn shared_clock_drives_runtime_timers() {
        use geomancy_runtime::{Actor, Ctx, Reactor, ReactorConfig};

        struct Pinger(std::sync::mpsc::Sender<u64>);
        impl Actor for Pinger {
            type Msg = ();
            fn on_start(&mut self, ctx: &mut Ctx<'_>) {
                ctx.set_timer(1_000_000, 9);
            }
            fn on_msg(&mut self, _m: (), _ctx: &mut Ctx<'_>) {}
            fn on_timer(&mut self, token: u64, _ctx: &mut Ctx<'_>) {
                let _ = self.0.send(token);
            }
        }

        let shared = SharedSimClock::new();
        let reactor = Reactor::new(ReactorConfig {
            workers: 1,
            time: Arc::new(shared.clone()),
            ..ReactorConfig::default()
        });
        let (tx, rx) = std::sync::mpsc::channel();
        let _actor = reactor.spawn("pinger", 4, Pinger(tx));
        // Nothing fires until simulated time crosses the deadline.
        assert!(rx
            .recv_timeout(std::time::Duration::from_millis(50))
            .is_err());
        shared.publish_micros(2_000_000);
        assert_eq!(
            rx.recv_timeout(std::time::Duration::from_secs(10)).ok(),
            Some(9)
        );
    }
}
