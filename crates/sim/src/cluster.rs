//! The storage system under optimization: devices, files, and placement.

use std::collections::BTreeMap;

use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

use crate::clock::SimClock;
use crate::device::{Device, DeviceSpec};
use crate::error::SimError;
use crate::record::{AccessRecord, DeviceId, FileId, MovementRecord};
use crate::traffic::TrafficModel;

/// Metadata of one file stored in the system.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FileMeta {
    /// File size in bytes.
    pub size: u64,
    /// Slash-separated logical path (encoded to a numeric feature by
    /// `geomancy-trace`).
    pub path: String,
}

/// A complete data layout: file → device.
pub type Layout = BTreeMap<FileId, DeviceId>;

/// A simulated distributed storage system (the Bluesky substrate).
///
/// The system owns a simulated clock; every access and migration advances
/// it. External per-device traffic is a pure function of that clock, so runs
/// are exactly reproducible for a given seed.
pub struct StorageSystem {
    devices: Vec<Device>,
    traffic: Vec<Box<dyn TrafficModel>>,
    files: BTreeMap<FileId, FileMeta>,
    placement: Layout,
    clock: SimClock,
    rng: StdRng,
    access_counter: u64,
    movements: Vec<MovementRecord>,
    /// Extra per-device load from concurrent activity the traffic models do
    /// not know about (e.g. a second workload running in parallel). Added to
    /// the external load on every access.
    ambient_load: BTreeMap<DeviceId, f64>,
}

impl std::fmt::Debug for StorageSystem {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StorageSystem")
            .field("devices", &self.devices.len())
            .field("files", &self.files.len())
            .field("clock_secs", &self.clock.now_secs())
            .field("accesses", &self.access_counter)
            .finish()
    }
}

/// Builder for [`StorageSystem`].
#[derive(Default)]
pub struct StorageSystemBuilder {
    devices: Vec<(DeviceSpec, Box<dyn TrafficModel>)>,
    seed: u64,
}

impl std::fmt::Debug for StorageSystemBuilder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StorageSystemBuilder")
            .field("devices", &self.devices.len())
            .field("seed", &self.seed)
            .finish()
    }
}

impl StorageSystemBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        StorageSystemBuilder {
            devices: Vec::new(),
            seed: 0,
        }
    }

    /// Adds a device with its external traffic model. Devices receive ids in
    /// insertion order, starting at 0.
    pub fn device(mut self, spec: DeviceSpec, traffic: Box<dyn TrafficModel>) -> Self {
        self.devices.push((spec, traffic));
        self
    }

    /// Sets the noise seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Builds the system.
    ///
    /// # Panics
    ///
    /// Panics if no devices were added.
    pub fn build(self) -> StorageSystem {
        assert!(
            !self.devices.is_empty(),
            "a storage system needs at least one device"
        );
        let mut devices = Vec::with_capacity(self.devices.len());
        let mut traffic = Vec::with_capacity(self.devices.len());
        for (i, (spec, model)) in self.devices.into_iter().enumerate() {
            devices.push(Device::new(DeviceId(i as u32), spec));
            traffic.push(model);
        }
        StorageSystem {
            devices,
            traffic,
            files: BTreeMap::new(),
            placement: BTreeMap::new(),
            clock: SimClock::new(),
            rng: StdRng::seed_from_u64(self.seed),
            access_counter: 0,
            movements: Vec::new(),
            ambient_load: BTreeMap::new(),
        }
    }
}

impl StorageSystem {
    /// Starts building a system.
    pub fn builder() -> StorageSystemBuilder {
        StorageSystemBuilder::new()
    }

    /// All devices, in id order.
    pub fn devices(&self) -> &[Device] {
        &self.devices
    }

    /// Ids of devices that are currently online.
    pub fn online_devices(&self) -> Vec<DeviceId> {
        self.devices
            .iter()
            .filter(|d| d.is_online())
            .map(|d| d.id())
            .collect()
    }

    /// Looks up a device.
    pub fn device(&self, id: DeviceId) -> Result<&Device, SimError> {
        self.devices
            .get(id.0 as usize)
            .ok_or(SimError::UnknownDevice(id))
    }

    /// Mutable device lookup (fault injection, manual accounting).
    pub fn device_mut(&mut self, id: DeviceId) -> Result<&mut Device, SimError> {
        self.devices
            .get_mut(id.0 as usize)
            .ok_or(SimError::UnknownDevice(id))
    }

    /// The simulated clock.
    pub fn clock(&self) -> SimClock {
        self.clock
    }

    /// Number of accesses served so far.
    pub fn access_count(&self) -> u64 {
        self.access_counter
    }

    /// All migrations performed so far.
    pub fn movements(&self) -> &[MovementRecord] {
        &self.movements
    }

    /// Registered files.
    pub fn files(&self) -> &BTreeMap<FileId, FileMeta> {
        &self.files
    }

    /// Current layout snapshot.
    pub fn layout(&self) -> Layout {
        self.placement.clone()
    }

    /// Device currently holding `fid`.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::UnknownFile`] for unregistered files.
    pub fn location_of(&self, fid: FileId) -> Result<DeviceId, SimError> {
        self.placement
            .get(&fid)
            .copied()
            .ok_or(SimError::UnknownFile(fid))
    }

    /// External (other-user) load on `device` at the current simulated time,
    /// including any ambient load set via [`StorageSystem::set_ambient_load`].
    ///
    /// # Errors
    ///
    /// Returns [`SimError::UnknownDevice`] for out-of-range ids.
    pub fn external_load(&self, device: DeviceId) -> Result<f64, SimError> {
        let model = self
            .traffic
            .get(device.0 as usize)
            .ok_or(SimError::UnknownDevice(device))?;
        let ambient = self.ambient_load.get(&device).copied().unwrap_or(0.0);
        Ok(model.load_at(self.clock.now_secs()) + ambient)
    }

    /// Sets the ambient (concurrent-stream) load on a device. Used to model
    /// workloads that overlap in real time even though the simulator
    /// serializes their accesses — each stream sees the other as contention.
    pub fn set_ambient_load(&mut self, device: DeviceId, load: f64) {
        if load <= 0.0 {
            self.ambient_load.remove(&device);
        } else {
            self.ambient_load.insert(device, load);
        }
    }

    /// Clears all ambient load.
    pub fn clear_ambient_load(&mut self) {
        self.ambient_load.clear();
    }

    /// Registers a new file on `device`.
    ///
    /// # Errors
    ///
    /// Fails on duplicate ids, unknown/offline devices, or lack of capacity.
    pub fn add_file(
        &mut self,
        fid: FileId,
        meta: FileMeta,
        device: DeviceId,
    ) -> Result<(), SimError> {
        if self.files.contains_key(&fid) {
            return Err(SimError::DuplicateFile(fid));
        }
        let size = meta.size;
        {
            let dev = self.device(device)?;
            if !dev.is_online() {
                return Err(SimError::DeviceOffline(device));
            }
            if !dev.has_capacity_for(size) {
                return Err(SimError::InsufficientCapacity {
                    device,
                    needed: size,
                });
            }
        }
        self.device_mut(device)?.place_bytes(size);
        self.files.insert(fid, meta);
        self.placement.insert(fid, device);
        Ok(())
    }

    /// Reads `bytes` from `fid` (the whole file when `None`), advancing the
    /// clock by the access's service time and returning the telemetry record
    /// a monitoring agent would emit.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::UnknownFile`] for unregistered files.
    pub fn read_file(&mut self, fid: FileId, bytes: Option<u64>) -> Result<AccessRecord, SimError> {
        self.access(fid, bytes, AccessKind::Read)
    }

    /// Writes `bytes` to `fid` (the whole file when `None`); see
    /// [`StorageSystem::read_file`].
    ///
    /// # Errors
    ///
    /// Returns [`SimError::UnknownFile`] for unregistered files.
    pub fn write_file(
        &mut self,
        fid: FileId,
        bytes: Option<u64>,
    ) -> Result<AccessRecord, SimError> {
        self.access(fid, bytes, AccessKind::Write)
    }

    fn access(
        &mut self,
        fid: FileId,
        bytes: Option<u64>,
        kind: AccessKind,
    ) -> Result<AccessRecord, SimError> {
        let meta = self.files.get(&fid).ok_or(SimError::UnknownFile(fid))?;
        let size = bytes.unwrap_or(meta.size).min(meta.size.max(1));
        let device_id = self.location_of(fid)?;
        let t = self.clock.now_secs();
        let load = self.external_load(device_id)?;
        let (ots, otms) = self.clock.now_secs_ms();
        let (rb, wb) = match kind {
            AccessKind::Read => (size, 0),
            AccessKind::Write => (0, size),
        };
        let service = {
            let dev = &mut self.devices[device_id.0 as usize];
            dev.serve(rb, wb, t, load, &mut self.rng)
        };
        self.clock.advance_secs(service);
        let (cts, ctms) = self.clock.now_secs_ms();
        let record = AccessRecord {
            access_number: self.access_counter,
            fid,
            fsid: device_id,
            rb,
            wb,
            ots,
            otms,
            cts,
            ctms,
        };
        self.access_counter += 1;
        Ok(record)
    }

    /// Moves `fid` to device `to`, charging the transfer to both the source
    /// (read) and destination (write) devices and advancing the clock.
    ///
    /// Moving a file to its current location is a no-op with zero cost.
    ///
    /// # Errors
    ///
    /// Fails on unknown files/devices, offline destinations, or lack of
    /// capacity.
    pub fn move_file(&mut self, fid: FileId, to: DeviceId) -> Result<MovementRecord, SimError> {
        let from = self.location_of(fid)?;
        let size = self.files.get(&fid).ok_or(SimError::UnknownFile(fid))?.size;
        if to == from {
            return Ok(MovementRecord {
                fid,
                from,
                to,
                bytes: 0,
                cost_secs: 0.0,
                at_access: self.access_counter,
            });
        }
        {
            let dest = self.device(to)?;
            if !dest.is_online() {
                return Err(SimError::DeviceOffline(to));
            }
            if !dest.has_capacity_for(size) {
                return Err(SimError::InsufficientCapacity {
                    device: to,
                    needed: size,
                });
            }
        }
        let t = self.clock.now_secs();
        let src_load = self.external_load(from)?;
        let dst_load = self.external_load(to)?;
        let read_secs = {
            let dev = &mut self.devices[from.0 as usize];
            dev.serve(size, 0, t, src_load, &mut self.rng)
        };
        let write_secs = {
            let dev = &mut self.devices[to.0 as usize];
            dev.serve(0, size, t, dst_load, &mut self.rng)
        };
        // Source read and destination write overlap in a pipeline; the
        // transfer takes as long as the slower side.
        let cost = read_secs.max(write_secs);
        self.clock.advance_secs(cost);
        self.devices[from.0 as usize].remove_bytes(size);
        self.devices[to.0 as usize].place_bytes(size);
        self.placement.insert(fid, to);
        let record = MovementRecord {
            fid,
            from,
            to,
            bytes: size,
            cost_secs: cost,
            at_access: self.access_counter,
        };
        self.movements.push(record);
        Ok(record)
    }

    /// Computes and charges the transfer of `bytes` from `from` to `to`
    /// (read on the source, write on the destination, pipelined), advancing
    /// the clock. Building block for chunked migrations.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::UnknownDevice`] for out-of-range device ids.
    pub fn transfer_cost(
        &mut self,
        from: DeviceId,
        to: DeviceId,
        bytes: u64,
    ) -> Result<f64, SimError> {
        let t = self.clock.now_secs();
        let src_load = self.external_load(from)?;
        let dst_load = self.external_load(to)?;
        let read_secs = {
            let dev = self
                .devices
                .get_mut(from.0 as usize)
                .ok_or(SimError::UnknownDevice(from))?;
            dev.serve(bytes, 0, t, src_load, &mut self.rng)
        };
        let write_secs = {
            let dev = self
                .devices
                .get_mut(to.0 as usize)
                .ok_or(SimError::UnknownDevice(to))?;
            dev.serve(0, bytes, t, dst_load, &mut self.rng)
        };
        let cost = read_secs.max(write_secs);
        self.clock.advance_secs(cost);
        Ok(cost)
    }

    /// Finalizes a migration whose destination bytes were already reserved
    /// (chunked migrations reserve up front): flips the placement and logs
    /// the movement without charging any further transfer.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::UnknownFile`] for unregistered files.
    pub fn finish_reserved_move(
        &mut self,
        fid: FileId,
        from: DeviceId,
        to: DeviceId,
        bytes: u64,
        cost_secs: f64,
    ) -> Result<MovementRecord, SimError> {
        if !self.files.contains_key(&fid) {
            return Err(SimError::UnknownFile(fid));
        }
        self.placement.insert(fid, to);
        let record = MovementRecord {
            fid,
            from,
            to,
            bytes,
            cost_secs,
            at_access: self.access_counter,
        };
        self.movements.push(record);
        Ok(record)
    }

    /// Applies a target layout, moving every file whose assignment changed.
    /// Returns the movements actually performed (files already in place are
    /// skipped). Files or devices that fail validation are skipped with
    /// their error collected.
    pub fn apply_layout(&mut self, layout: &Layout) -> (Vec<MovementRecord>, Vec<SimError>) {
        let mut moved = Vec::new();
        let mut errors = Vec::new();
        for (&fid, &target) in layout {
            match self.location_of(fid) {
                Ok(current) if current == target => {}
                Ok(_) => match self.move_file(fid, target) {
                    Ok(m) => moved.push(m),
                    Err(e) => errors.push(e),
                },
                Err(e) => errors.push(e),
            }
        }
        (moved, errors)
    }

    /// Advances the clock without any I/O (idle gap between workload runs).
    pub fn idle(&mut self, secs: f64) {
        self.clock.advance_secs(secs);
    }
}

#[derive(Debug, Clone, Copy)]
enum AccessKind {
    Read,
    Write,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traffic::Constant;

    fn small_system() -> StorageSystem {
        StorageSystem::builder()
            .device(
                DeviceSpec::new("fast", 1e9, 1e9, 0.001, 10_000_000_000, 0.0, 0.0),
                Box::new(Constant(0.0)),
            )
            .device(
                DeviceSpec::new("slow", 1e8, 1e8, 0.005, 10_000_000_000, 0.0, 0.0),
                Box::new(Constant(0.0)),
            )
            .seed(7)
            .build()
    }

    fn meta(size: u64) -> FileMeta {
        FileMeta {
            size,
            path: "exp/run/data.root".to_string(),
        }
    }

    #[test]
    fn add_and_locate_file() {
        let mut sys = small_system();
        sys.add_file(FileId(1), meta(1000), DeviceId(0)).unwrap();
        assert_eq!(sys.location_of(FileId(1)).unwrap(), DeviceId(0));
        assert_eq!(sys.device(DeviceId(0)).unwrap().used_bytes(), 1000);
    }

    #[test]
    fn duplicate_file_rejected() {
        let mut sys = small_system();
        sys.add_file(FileId(1), meta(10), DeviceId(0)).unwrap();
        assert_eq!(
            sys.add_file(FileId(1), meta(10), DeviceId(1)),
            Err(SimError::DuplicateFile(FileId(1)))
        );
    }

    #[test]
    fn read_advances_clock_and_counts() {
        let mut sys = small_system();
        sys.add_file(FileId(1), meta(1_000_000), DeviceId(0))
            .unwrap();
        let before = sys.clock().now_secs();
        let rec = sys.read_file(FileId(1), None).unwrap();
        assert!(sys.clock().now_secs() > before);
        assert_eq!(rec.rb, 1_000_000);
        assert_eq!(rec.wb, 0);
        assert_eq!(rec.fsid, DeviceId(0));
        assert_eq!(rec.access_number, 0);
        assert_eq!(sys.access_count(), 1);
        assert!(rec.throughput() > 0.0);
    }

    #[test]
    fn fast_device_yields_higher_throughput() {
        let mut sys = small_system();
        sys.add_file(FileId(1), meta(10_000_000), DeviceId(0))
            .unwrap();
        sys.add_file(FileId(2), meta(10_000_000), DeviceId(1))
            .unwrap();
        let fast = sys.read_file(FileId(1), None).unwrap().throughput();
        let slow = sys.read_file(FileId(2), None).unwrap().throughput();
        assert!(fast > slow * 2.0, "fast {fast} not >> slow {slow}");
    }

    #[test]
    fn move_file_relocates_and_charges_cost() {
        let mut sys = small_system();
        sys.add_file(FileId(1), meta(5_000_000), DeviceId(0))
            .unwrap();
        let before = sys.clock().now_secs();
        let mv = sys.move_file(FileId(1), DeviceId(1)).unwrap();
        assert_eq!(sys.location_of(FileId(1)).unwrap(), DeviceId(1));
        assert!(mv.cost_secs > 0.0);
        assert!(sys.clock().now_secs() > before);
        assert_eq!(sys.device(DeviceId(0)).unwrap().used_bytes(), 0);
        assert_eq!(sys.device(DeviceId(1)).unwrap().used_bytes(), 5_000_000);
        assert_eq!(sys.movements().len(), 1);
    }

    #[test]
    fn move_to_same_place_is_free() {
        let mut sys = small_system();
        sys.add_file(FileId(1), meta(5_000_000), DeviceId(0))
            .unwrap();
        let mv = sys.move_file(FileId(1), DeviceId(0)).unwrap();
        assert_eq!(mv.cost_secs, 0.0);
        assert_eq!(mv.bytes, 0);
        assert!(sys.movements().is_empty());
    }

    #[test]
    fn move_to_offline_device_fails() {
        let mut sys = small_system();
        sys.add_file(FileId(1), meta(10), DeviceId(0)).unwrap();
        sys.device_mut(DeviceId(1)).unwrap().set_online(false);
        assert_eq!(
            sys.move_file(FileId(1), DeviceId(1)),
            Err(SimError::DeviceOffline(DeviceId(1)))
        );
    }

    #[test]
    fn apply_layout_moves_only_changed_files() {
        let mut sys = small_system();
        sys.add_file(FileId(1), meta(100), DeviceId(0)).unwrap();
        sys.add_file(FileId(2), meta(100), DeviceId(1)).unwrap();
        let mut layout = Layout::new();
        layout.insert(FileId(1), DeviceId(1));
        layout.insert(FileId(2), DeviceId(1)); // already there
        let (moved, errors) = sys.apply_layout(&layout);
        assert_eq!(moved.len(), 1);
        assert!(errors.is_empty());
        assert_eq!(moved[0].fid, FileId(1));
    }

    #[test]
    fn capacity_enforced_on_move() {
        let mut sys = StorageSystem::builder()
            .device(
                DeviceSpec::new("big", 1e9, 1e9, 0.0, 1_000_000, 0.0, 0.0),
                Box::new(Constant(0.0)),
            )
            .device(
                DeviceSpec::new("tiny", 1e9, 1e9, 0.0, 10, 0.0, 0.0),
                Box::new(Constant(0.0)),
            )
            .build();
        sys.add_file(FileId(1), meta(1000), DeviceId(0)).unwrap();
        assert!(matches!(
            sys.move_file(FileId(1), DeviceId(1)),
            Err(SimError::InsufficientCapacity { .. })
        ));
    }

    #[test]
    fn unknown_ids_error() {
        let mut sys = small_system();
        assert_eq!(
            sys.read_file(FileId(99), None),
            Err(SimError::UnknownFile(FileId(99)))
        );
        assert!(sys.device(DeviceId(42)).is_err());
    }

    #[test]
    fn identical_seeds_reproduce_identical_runs() {
        let run = || {
            let mut sys = small_system();
            sys.add_file(FileId(1), meta(1_000_000), DeviceId(0))
                .unwrap();
            (0..10)
                .map(|_| sys.read_file(FileId(1), None).unwrap().throughput())
                .collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }
}
