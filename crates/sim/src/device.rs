//! Storage device performance model.
//!
//! Each device has uncontended read/write bandwidths, a per-access latency,
//! and two contention inputs: *external* load (other users, from a
//! [`TrafficModel`](crate::traffic::TrafficModel)) and *self* load (recent
//! utilization by the monitored workload itself). Effective bandwidth is
//!
//! ```text
//! eff = base / (1 + self_sensitivity·utilization + external_load) · noise
//! ```
//!
//! so cramming every file onto the fastest mount saturates it — the trade-off
//! Geomancy's model has to learn (§VII: "if we were to move all files onto
//! files0, its performance would suffer greatly").

use rand::rngs::StdRng;
use rand_distr_normal::sample_standard_normal;

use crate::record::DeviceId;

/// Static description of a storage device.
#[derive(Debug, Clone, PartialEq)]
pub struct DeviceSpec {
    /// Mount name, e.g. `"file0"`.
    pub name: String,
    /// Uncontended sequential read bandwidth, bytes/second.
    pub read_bandwidth: f64,
    /// Uncontended sequential write bandwidth, bytes/second.
    pub write_bandwidth: f64,
    /// Fixed per-access setup latency, seconds.
    pub latency_secs: f64,
    /// Capacity in bytes.
    pub capacity: u64,
    /// How sharply the device degrades under its own utilization
    /// (dimensionless multiplier on the utilization fraction).
    pub self_sensitivity: f64,
    /// Standard deviation of multiplicative log-normal bandwidth noise.
    pub noise_sigma: f64,
}

impl DeviceSpec {
    /// Convenience constructor with validation.
    ///
    /// # Panics
    ///
    /// Panics if any bandwidth, latency, or capacity is non-positive.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        name: impl Into<String>,
        read_bandwidth: f64,
        write_bandwidth: f64,
        latency_secs: f64,
        capacity: u64,
        self_sensitivity: f64,
        noise_sigma: f64,
    ) -> Self {
        assert!(
            read_bandwidth > 0.0 && write_bandwidth > 0.0,
            "bandwidths must be positive"
        );
        assert!(latency_secs >= 0.0, "latency must be non-negative");
        assert!(capacity > 0, "capacity must be positive");
        assert!(
            self_sensitivity >= 0.0 && noise_sigma >= 0.0,
            "sensitivities must be non-negative"
        );
        DeviceSpec {
            name: name.into(),
            read_bandwidth,
            write_bandwidth,
            latency_secs,
            capacity,
            self_sensitivity,
            noise_sigma,
        }
    }
}

/// Runtime state of a storage device.
#[derive(Debug, Clone)]
pub struct Device {
    id: DeviceId,
    spec: DeviceSpec,
    used_bytes: u64,
    online: bool,
    /// Exponentially decaying accumulator of busy seconds.
    busy_accum: f64,
    /// Simulated time of the last busy-accumulator update.
    busy_updated_at: f64,
    /// Decay time constant for the utilization tracker, seconds.
    utilization_tau: f64,
    /// Lifetime bytes served (reads + writes), for usage accounting.
    bytes_served: u64,
}

impl Device {
    /// Creates an online, empty device.
    pub fn new(id: DeviceId, spec: DeviceSpec) -> Self {
        Device {
            id,
            spec,
            used_bytes: 0,
            online: true,
            busy_accum: 0.0,
            busy_updated_at: 0.0,
            utilization_tau: 20.0,
            bytes_served: 0,
        }
    }

    /// Device identifier.
    pub fn id(&self) -> DeviceId {
        self.id
    }

    /// Static spec.
    pub fn spec(&self) -> &DeviceSpec {
        &self.spec
    }

    /// Mount name.
    pub fn name(&self) -> &str {
        &self.spec.name
    }

    /// Whether the device is currently reachable (Action Checker input).
    pub fn is_online(&self) -> bool {
        self.online
    }

    /// Marks the device online/offline (fault injection).
    pub fn set_online(&mut self, online: bool) {
        self.online = online;
    }

    /// Bytes currently stored.
    pub fn used_bytes(&self) -> u64 {
        self.used_bytes
    }

    /// Lifetime bytes served (for Table IV's usage column).
    pub fn bytes_served(&self) -> u64 {
        self.bytes_served
    }

    /// Whether `bytes` more would still fit.
    pub fn has_capacity_for(&self, bytes: u64) -> bool {
        self.used_bytes.saturating_add(bytes) <= self.spec.capacity
    }

    /// Accounts for a file placed on the device.
    ///
    /// # Panics
    ///
    /// Panics if the file does not fit.
    pub fn place_bytes(&mut self, bytes: u64) {
        assert!(
            self.has_capacity_for(bytes),
            "device {} over capacity",
            self.spec.name
        );
        self.used_bytes += bytes;
    }

    /// Accounts for a file removed from the device.
    pub fn remove_bytes(&mut self, bytes: u64) {
        self.used_bytes = self.used_bytes.saturating_sub(bytes);
    }

    /// Fraction of recent time the device was busy serving the monitored
    /// workload, decayed to simulated time `t_secs`. Always `>= 0`.
    pub fn utilization(&self, t_secs: f64) -> f64 {
        let dt = (t_secs - self.busy_updated_at).max(0.0);
        let decayed = self.busy_accum * (-dt / self.utilization_tau).exp();
        decayed / self.utilization_tau
    }

    /// Records `busy_secs` of service ending at time `t_secs`.
    pub fn record_busy(&mut self, t_secs: f64, busy_secs: f64) {
        let dt = (t_secs - self.busy_updated_at).max(0.0);
        self.busy_accum = self.busy_accum * (-dt / self.utilization_tau).exp() + busy_secs.max(0.0);
        self.busy_updated_at = t_secs;
    }

    /// Contention denominator at `t_secs` under `external_load`.
    fn contention(&self, t_secs: f64, external_load: f64) -> f64 {
        1.0 + self.spec.self_sensitivity * self.utilization(t_secs) + external_load.max(0.0)
    }

    /// Effective read bandwidth (no noise), bytes/second.
    pub fn effective_read_bandwidth(&self, t_secs: f64, external_load: f64) -> f64 {
        self.spec.read_bandwidth / self.contention(t_secs, external_load)
    }

    /// Effective write bandwidth (no noise), bytes/second.
    pub fn effective_write_bandwidth(&self, t_secs: f64, external_load: f64) -> f64 {
        self.spec.write_bandwidth / self.contention(t_secs, external_load)
    }

    /// Computes the service time of an access of `rb` read and `wb` written
    /// bytes starting at `t_secs` under `external_load`, applies bandwidth
    /// noise, and updates the utilization tracker and served-bytes counter.
    ///
    /// Returns the total seconds from open to close.
    pub fn serve(
        &mut self,
        rb: u64,
        wb: u64,
        t_secs: f64,
        external_load: f64,
        rng: &mut StdRng,
    ) -> f64 {
        let noise = if self.spec.noise_sigma > 0.0 {
            (self.spec.noise_sigma * sample_standard_normal(rng)).exp()
        } else {
            1.0
        };
        let read_bw = self.effective_read_bandwidth(t_secs, external_load) * noise;
        let write_bw = self.effective_write_bandwidth(t_secs, external_load) * noise;
        let transfer = rb as f64 / read_bw + wb as f64 / write_bw;
        let total = self.spec.latency_secs + transfer;
        self.record_busy(t_secs + total, total);
        self.bytes_served += rb + wb;
        total
    }
}

/// Minimal standard-normal sampler (Box–Muller) so the crate only needs the
/// `rand` core API. Lives in a private module to keep the namespace clean.
mod rand_distr_normal {
    use rand::rngs::StdRng;
    use rand::Rng;

    /// Draws one standard normal variate via Box–Muller.
    pub fn sample_standard_normal(rng: &mut StdRng) -> f64 {
        let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
        let u2: f64 = rng.gen_range(0.0..1.0);
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn spec() -> DeviceSpec {
        DeviceSpec::new("test", 1e9, 5e8, 0.001, 10_000_000_000, 2.0, 0.0)
    }

    fn rng() -> StdRng {
        StdRng::seed_from_u64(0)
    }

    #[test]
    fn uncontended_bandwidth_equals_base() {
        let d = Device::new(DeviceId(0), spec());
        assert!((d.effective_read_bandwidth(0.0, 0.0) - 1e9).abs() < 1e-3);
        assert!((d.effective_write_bandwidth(0.0, 0.0) - 5e8).abs() < 1e-3);
    }

    #[test]
    fn external_load_halves_bandwidth() {
        let d = Device::new(DeviceId(0), spec());
        assert!((d.effective_read_bandwidth(0.0, 1.0) - 5e8).abs() < 1e-3);
    }

    #[test]
    fn service_time_includes_latency_and_transfer() {
        let mut d = Device::new(DeviceId(0), spec());
        // 1e9 bytes read at 1e9 B/s = 1 s + 1 ms latency.
        let t = d.serve(1_000_000_000, 0, 0.0, 0.0, &mut rng());
        assert!((t - 1.001).abs() < 1e-9);
        assert_eq!(d.bytes_served(), 1_000_000_000);
    }

    #[test]
    fn utilization_rises_with_service_and_decays() {
        let mut d = Device::new(DeviceId(0), spec());
        let _ = d.serve(1_000_000_000, 0, 0.0, 0.0, &mut rng());
        let busy_now = d.utilization(1.001);
        assert!(busy_now > 0.0);
        let later = d.utilization(1.001 + 100.0);
        assert!(
            later < busy_now * 0.1,
            "utilization failed to decay: {later}"
        );
    }

    #[test]
    fn hammering_a_device_slows_it_down() {
        let mut d = Device::new(DeviceId(0), spec());
        let mut r = rng();
        let first = d.serve(100_000_000, 0, 0.0, 0.0, &mut r);
        let mut t = first;
        let mut last = first;
        for _ in 0..20 {
            last = d.serve(100_000_000, 0, t, 0.0, &mut r);
            t += last;
        }
        assert!(
            last > first * 1.2,
            "no self-contention: first {first}, last {last}"
        );
    }

    #[test]
    fn capacity_accounting() {
        let mut d = Device::new(DeviceId(0), spec());
        assert!(d.has_capacity_for(10_000_000_000));
        d.place_bytes(9_000_000_000);
        assert!(!d.has_capacity_for(2_000_000_000));
        d.remove_bytes(5_000_000_000);
        assert_eq!(d.used_bytes(), 4_000_000_000);
        assert!(d.has_capacity_for(2_000_000_000));
    }

    #[test]
    #[should_panic(expected = "over capacity")]
    fn overfilling_panics() {
        let mut d = Device::new(DeviceId(0), spec());
        d.place_bytes(20_000_000_000);
    }

    #[test]
    fn online_toggle() {
        let mut d = Device::new(DeviceId(0), spec());
        assert!(d.is_online());
        d.set_online(false);
        assert!(!d.is_online());
    }

    #[test]
    fn noise_perturbs_service_time() {
        let mut noisy_spec = spec();
        noisy_spec.noise_sigma = 0.2;
        let mut d1 = Device::new(DeviceId(0), noisy_spec.clone());
        let mut d2 = Device::new(DeviceId(0), noisy_spec);
        let mut r1 = StdRng::seed_from_u64(1);
        let mut r2 = StdRng::seed_from_u64(2);
        let t1 = d1.serve(1_000_000, 0, 0.0, 0.0, &mut r1);
        let t2 = d2.serve(1_000_000, 0, 0.0, 0.0, &mut r2);
        assert_ne!(t1, t2);
    }

    #[test]
    #[should_panic(expected = "bandwidths must be positive")]
    fn invalid_spec_panics() {
        let _ = DeviceSpec::new("bad", 0.0, 1.0, 0.0, 1, 0.0, 0.0);
    }
}
