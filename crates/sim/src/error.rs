//! Simulator error type.

use crate::record::{DeviceId, FileId};

/// Errors returned by [`StorageSystem`](crate::cluster::StorageSystem)
/// operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SimError {
    /// The file id is not registered in the system.
    UnknownFile(FileId),
    /// The device id is not part of the system.
    UnknownDevice(DeviceId),
    /// The target device is offline.
    DeviceOffline(DeviceId),
    /// The target device cannot hold the file.
    InsufficientCapacity {
        /// Device that was asked to hold the file.
        device: DeviceId,
        /// Bytes that did not fit.
        needed: u64,
    },
    /// A file with this id already exists.
    DuplicateFile(FileId),
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::UnknownFile(fid) => write!(f, "unknown file {fid}"),
            SimError::UnknownDevice(d) => write!(f, "unknown device {d}"),
            SimError::DeviceOffline(d) => write!(f, "device {d} is offline"),
            SimError::InsufficientCapacity { device, needed } => {
                write!(f, "device {device} cannot hold {needed} more bytes")
            }
            SimError::DuplicateFile(fid) => write!(f, "file {fid} already exists"),
        }
    }
}

impl std::error::Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_concise() {
        let e = SimError::UnknownFile(FileId(3));
        assert_eq!(e.to_string(), "unknown file file3");
        let e = SimError::InsufficientCapacity {
            device: DeviceId(1),
            needed: 10,
        };
        assert!(e.to_string().contains("cannot hold 10"));
    }

    #[test]
    fn error_trait_object() {
        let e: Box<dyn std::error::Error> = Box::new(SimError::UnknownDevice(DeviceId(9)));
        assert!(!e.to_string().is_empty());
    }
}
