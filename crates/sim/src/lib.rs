//! # geomancy-sim
//!
//! Discrete-time storage-system simulator standing in for the live Bluesky
//! node of the Geomancy paper (ISPASS 2020).
//!
//! The paper evaluates Geomancy against a real computation node with six
//! mounted storage devices shared with other users. This crate models that
//! substrate: devices with distinct bandwidth/latency personalities
//! ([`device`]), external traffic from other users ([`traffic`]), file
//! placement and migration with transfer overhead ([`cluster`]), and the
//! per-device monitoring/control agents of Geomancy's architecture
//! ([`agents`]). The [`bluesky`] module provides the calibrated six-mount
//! preset used by every experiment.
//!
//! # Examples
//!
//! ```
//! use geomancy_sim::bluesky::{bluesky_system, Mount};
//! use geomancy_sim::cluster::FileMeta;
//! use geomancy_sim::record::FileId;
//!
//! let mut sys = bluesky_system(7);
//! sys.add_file(
//!     FileId(0),
//!     FileMeta { size: 100_000_000, path: "mc/evt0.root".into() },
//!     Mount::File0.device_id(),
//! )?;
//! let record = sys.read_file(FileId(0), None)?;
//! assert!(record.throughput() > 0.0);
//! # Ok::<(), geomancy_sim::error::SimError>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod agents;
pub mod bluesky;
pub mod clock;
pub mod cluster;
pub mod device;
pub mod error;
pub mod migrate;
pub mod network;
pub mod population;
pub mod raid;
pub mod record;
pub mod traffic;

pub use agents::{ControlAgent, MonitoringAgent};
pub use clock::{SharedSimClock, SimClock};
pub use cluster::{FileMeta, Layout, StorageSystem, StorageSystemBuilder};
pub use device::{Device, DeviceSpec};
pub use error::SimError;
pub use migrate::{ChunkedMigration, MigrationState};
pub use network::{admit_moves, NetworkFabric};
pub use population::{FilePopulation, PopulationConfig, PopulationFile, ZipfSampler};
pub use raid::{RaidArray, RaidLevel};
pub use record::{AccessRecord, DeviceId, FileId, MovementRecord};
