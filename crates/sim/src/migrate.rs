//! Incremental (chunked) file migration — the paper's §VI future work
//! ("Currently Geomancy moves whole files in one movement; however, in the
//! future, we will incrementally move a file to address parallel accesses").
//!
//! A [`ChunkedMigration`] copies a file chunk by chunk; between chunks the
//! workload keeps reading the source copy, and the migration can be
//! abandoned at any point without losing the file. Only once every chunk
//! has landed does the placement flip to the destination.

use crate::cluster::StorageSystem;
use crate::error::SimError;
use crate::record::{DeviceId, FileId, MovementRecord};

/// State of an in-progress chunked migration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MigrationState {
    /// Chunks remain to be copied.
    InProgress,
    /// All chunks copied; placement flipped to the destination.
    Complete,
    /// Abandoned; the source copy remains authoritative.
    Aborted,
}

/// A file migration that proceeds one chunk at a time.
#[derive(Debug)]
pub struct ChunkedMigration {
    fid: FileId,
    to: DeviceId,
    chunk_bytes: u64,
    copied: u64,
    total: u64,
    cost_secs: f64,
    state: MigrationState,
}

impl ChunkedMigration {
    /// Plans a migration of `fid` to `to` in chunks of `chunk_bytes`.
    ///
    /// The destination is validated and the file's size reserved up front,
    /// so the copy cannot fail mid-way for capacity reasons.
    ///
    /// # Errors
    ///
    /// Fails on unknown files/devices, offline destinations, or lack of
    /// capacity at the destination.
    ///
    /// # Panics
    ///
    /// Panics if `chunk_bytes` is zero.
    pub fn start(
        system: &mut StorageSystem,
        fid: FileId,
        to: DeviceId,
        chunk_bytes: u64,
    ) -> Result<Self, SimError> {
        assert!(chunk_bytes > 0, "chunk size must be non-zero");
        let from = system.location_of(fid)?;
        let total = system
            .files()
            .get(&fid)
            .ok_or(SimError::UnknownFile(fid))?
            .size;
        if to == from {
            return Ok(ChunkedMigration {
                fid,
                to,
                chunk_bytes,
                copied: total,
                total,
                cost_secs: 0.0,
                state: MigrationState::Complete,
            });
        }
        {
            let dest = system.device(to)?;
            if !dest.is_online() {
                return Err(SimError::DeviceOffline(to));
            }
            if !dest.has_capacity_for(total) {
                return Err(SimError::InsufficientCapacity {
                    device: to,
                    needed: total,
                });
            }
        }
        // Reserve space at the destination for the in-flight copy.
        system.device_mut(to)?.place_bytes(total);
        Ok(ChunkedMigration {
            fid,
            to,
            chunk_bytes,
            copied: 0,
            total,
            cost_secs: 0.0,
            state: MigrationState::InProgress,
        })
    }

    /// File being migrated.
    pub fn fid(&self) -> FileId {
        self.fid
    }

    /// Bytes copied so far.
    pub fn copied(&self) -> u64 {
        self.copied
    }

    /// Total bytes to copy.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Fraction complete in `[0, 1]`.
    pub fn progress(&self) -> f64 {
        if self.total == 0 {
            1.0
        } else {
            self.copied as f64 / self.total as f64
        }
    }

    /// Current state.
    pub fn state(&self) -> MigrationState {
        self.state
    }

    /// Copies the next chunk, advancing the system clock by its transfer
    /// time. On the final chunk the placement flips to the destination and
    /// a [`MovementRecord`] is returned.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::UnknownFile`] if the file vanished mid-flight.
    ///
    /// # Panics
    ///
    /// Panics if called after the migration completed or aborted.
    pub fn step(&mut self, system: &mut StorageSystem) -> Result<Option<MovementRecord>, SimError> {
        assert_eq!(
            self.state,
            MigrationState::InProgress,
            "step called on a finished migration"
        );
        let from = system.location_of(self.fid)?;
        let chunk = self.chunk_bytes.min(self.total - self.copied);
        let cost = system.transfer_cost(from, self.to, chunk)?;
        self.cost_secs += cost;
        self.copied += chunk;
        if self.copied >= self.total {
            // Flip placement: release the source copy, keep the reserved
            // destination copy.
            system.device_mut(from)?.remove_bytes(self.total);
            let record =
                system.finish_reserved_move(self.fid, from, self.to, self.total, self.cost_secs)?;
            self.state = MigrationState::Complete;
            return Ok(Some(record));
        }
        Ok(None)
    }

    /// Abandons the migration, releasing the reserved destination space.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::UnknownDevice`] if the destination vanished.
    pub fn abort(&mut self, system: &mut StorageSystem) -> Result<(), SimError> {
        if self.state == MigrationState::InProgress {
            system.device_mut(self.to)?.remove_bytes(self.total);
            self.state = MigrationState::Aborted;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::FileMeta;
    use crate::device::DeviceSpec;
    use crate::traffic::Constant;

    fn system() -> StorageSystem {
        StorageSystem::builder()
            .device(
                DeviceSpec::new("a", 1e9, 1e9, 0.001, 10_000_000_000, 0.0, 0.0),
                Box::new(Constant(0.0)),
            )
            .device(
                DeviceSpec::new("b", 1e9, 1e9, 0.001, 10_000_000_000, 0.0, 0.0),
                Box::new(Constant(0.0)),
            )
            .build()
    }

    fn add_file(system: &mut StorageSystem, size: u64) {
        system
            .add_file(
                FileId(0),
                FileMeta {
                    size,
                    path: "m/file.root".into(),
                },
                DeviceId(0),
            )
            .unwrap();
    }

    #[test]
    fn chunked_move_completes_and_flips_placement() {
        let mut sys = system();
        add_file(&mut sys, 10_000_000);
        let mut migration =
            ChunkedMigration::start(&mut sys, FileId(0), DeviceId(1), 3_000_000).unwrap();
        let mut finished = None;
        let mut steps = 0;
        while migration.state() == MigrationState::InProgress {
            finished = migration.step(&mut sys).unwrap();
            steps += 1;
        }
        assert_eq!(steps, 4); // ceil(10 MB / 3 MB)
        let record = finished.expect("final step returns the record");
        assert_eq!(record.bytes, 10_000_000);
        assert!(record.cost_secs > 0.0);
        assert_eq!(sys.location_of(FileId(0)).unwrap(), DeviceId(1));
        assert_eq!(sys.device(DeviceId(0)).unwrap().used_bytes(), 0);
        assert_eq!(sys.device(DeviceId(1)).unwrap().used_bytes(), 10_000_000);
    }

    #[test]
    fn source_remains_readable_mid_migration() {
        let mut sys = system();
        add_file(&mut sys, 10_000_000);
        let mut migration =
            ChunkedMigration::start(&mut sys, FileId(0), DeviceId(1), 4_000_000).unwrap();
        let _ = migration.step(&mut sys).unwrap();
        assert_eq!(migration.state(), MigrationState::InProgress);
        // File still served from the source.
        let record = sys.read_file(FileId(0), None).unwrap();
        assert_eq!(record.fsid, DeviceId(0));
        assert!((0.0..1.0).contains(&migration.progress()));
    }

    #[test]
    fn abort_releases_reserved_space() {
        let mut sys = system();
        add_file(&mut sys, 10_000_000);
        let mut migration =
            ChunkedMigration::start(&mut sys, FileId(0), DeviceId(1), 4_000_000).unwrap();
        let _ = migration.step(&mut sys).unwrap();
        migration.abort(&mut sys).unwrap();
        assert_eq!(migration.state(), MigrationState::Aborted);
        assert_eq!(sys.location_of(FileId(0)).unwrap(), DeviceId(0));
        assert_eq!(sys.device(DeviceId(1)).unwrap().used_bytes(), 0);
    }

    #[test]
    fn capacity_is_reserved_up_front() {
        let mut sys = StorageSystem::builder()
            .device(
                DeviceSpec::new("a", 1e9, 1e9, 0.0, 10_000_000_000, 0.0, 0.0),
                Box::new(Constant(0.0)),
            )
            .device(
                DeviceSpec::new("tiny", 1e9, 1e9, 0.0, 5_000_000, 0.0, 0.0),
                Box::new(Constant(0.0)),
            )
            .build();
        add_file(&mut sys, 10_000_000);
        assert!(matches!(
            ChunkedMigration::start(&mut sys, FileId(0), DeviceId(1), 1_000_000),
            Err(SimError::InsufficientCapacity { .. })
        ));
    }

    #[test]
    fn moving_to_same_device_is_instantly_complete() {
        let mut sys = system();
        add_file(&mut sys, 1_000_000);
        let migration = ChunkedMigration::start(&mut sys, FileId(0), DeviceId(0), 1_000).unwrap();
        assert_eq!(migration.state(), MigrationState::Complete);
        assert_eq!(migration.progress(), 1.0);
    }
}
