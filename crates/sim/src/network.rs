//! Shared migration network.
//!
//! The paper is explicit that movement must not starve the network:
//! "Geomancy limits how often and how much data can be transferred at once
//! without creating a bottleneck in the network for other workloads which
//! is caused by the transfer cost outweighing the benefits." This module
//! models the shared link migrations ride on: a fixed-bandwidth fabric
//! that serializes concurrent transfers and reports when a planned batch
//! would exceed a utilization budget.

use serde::{Deserialize, Serialize};

/// A shared network link with finite bandwidth.
///
/// # Examples
///
/// ```
/// use geomancy_sim::network::NetworkFabric;
///
/// let mut link = NetworkFabric::ten_gbe(); // 1.25 GB/s
/// let (start, finish) = link.enqueue_transfer(0.0, 2_500_000_000);
/// assert_eq!(start, 0.0);
/// assert!((finish - 2.0).abs() < 1e-9);
/// // A second transfer queues behind the first.
/// assert!(!link.is_idle(1.0));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NetworkFabric {
    /// Link bandwidth in bytes/second.
    bandwidth: f64,
    /// Simulated time at which the link frees up.
    busy_until_secs: f64,
    /// Lifetime bytes carried.
    bytes_carried: u64,
}

impl NetworkFabric {
    /// Creates an idle fabric with the given bandwidth.
    ///
    /// # Panics
    ///
    /// Panics unless `bandwidth` is positive and finite.
    pub fn new(bandwidth: f64) -> Self {
        assert!(
            bandwidth.is_finite() && bandwidth > 0.0,
            "bandwidth must be positive"
        );
        NetworkFabric {
            bandwidth,
            busy_until_secs: 0.0,
            bytes_carried: 0,
        }
    }

    /// A 10 GbE link (the paper's NFS uplink): ≈ 1.25 GB/s.
    pub fn ten_gbe() -> Self {
        NetworkFabric::new(1.25e9)
    }

    /// Link bandwidth, bytes/second.
    pub fn bandwidth(&self) -> f64 {
        self.bandwidth
    }

    /// Lifetime bytes carried.
    pub fn bytes_carried(&self) -> u64 {
        self.bytes_carried
    }

    /// Whether the link is idle at `now_secs`.
    pub fn is_idle(&self, now_secs: f64) -> bool {
        self.busy_until_secs <= now_secs
    }

    /// Seconds until the link frees up, from `now_secs`.
    pub fn backlog_secs(&self, now_secs: f64) -> f64 {
        (self.busy_until_secs - now_secs).max(0.0)
    }

    /// Enqueues a transfer of `bytes` starting no earlier than `now_secs`;
    /// returns `(start, finish)` times. Transfers serialize behind any
    /// backlog.
    pub fn enqueue_transfer(&mut self, now_secs: f64, bytes: u64) -> (f64, f64) {
        let start = self.busy_until_secs.max(now_secs);
        let finish = start + bytes as f64 / self.bandwidth;
        self.busy_until_secs = finish;
        self.bytes_carried += bytes;
        (start, finish)
    }

    /// Whether carrying `bytes` more, starting at `now_secs`, would keep the
    /// link's total backlog within `max_backlog_secs` — the admission test a
    /// control agent runs before a migration round.
    pub fn admits(&self, now_secs: f64, bytes: u64, max_backlog_secs: f64) -> bool {
        self.backlog_secs(now_secs) + bytes as f64 / self.bandwidth <= max_backlog_secs
    }
}

/// Plans which of `moves` (as `(bytes)` sizes, in priority order) can ride
/// the fabric now without exceeding `max_backlog_secs`; returns the indexes
/// admitted. Greedy in order — matching the gain-ranked ordering the policy
/// produces.
pub fn admit_moves(
    fabric: &NetworkFabric,
    now_secs: f64,
    move_sizes: &[u64],
    max_backlog_secs: f64,
) -> Vec<usize> {
    let mut admitted = Vec::new();
    let mut shadow = *fabric;
    for (i, &bytes) in move_sizes.iter().enumerate() {
        if shadow.admits(now_secs, bytes, max_backlog_secs) {
            shadow.enqueue_transfer(now_secs, bytes);
            admitted.push(i);
        }
    }
    admitted
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idle_link_transfers_at_line_rate() {
        let mut fabric = NetworkFabric::new(1e9);
        let (start, finish) = fabric.enqueue_transfer(10.0, 2_000_000_000);
        assert_eq!(start, 10.0);
        assert!((finish - 12.0).abs() < 1e-9);
        assert_eq!(fabric.bytes_carried(), 2_000_000_000);
    }

    #[test]
    fn transfers_serialize_behind_backlog() {
        let mut fabric = NetworkFabric::new(1e9);
        let (_, first_finish) = fabric.enqueue_transfer(0.0, 1_000_000_000);
        let (second_start, second_finish) = fabric.enqueue_transfer(0.0, 1_000_000_000);
        assert_eq!(second_start, first_finish);
        assert!((second_finish - 2.0).abs() < 1e-9);
        assert!(!fabric.is_idle(1.5));
        assert!(fabric.is_idle(2.5));
    }

    #[test]
    fn backlog_decays_with_time() {
        let mut fabric = NetworkFabric::new(1e9);
        fabric.enqueue_transfer(0.0, 3_000_000_000);
        assert!((fabric.backlog_secs(0.0) - 3.0).abs() < 1e-9);
        assert!((fabric.backlog_secs(2.0) - 1.0).abs() < 1e-9);
        assert_eq!(fabric.backlog_secs(10.0), 0.0);
    }

    #[test]
    fn admission_respects_budget() {
        let fabric = NetworkFabric::new(1e9);
        assert!(fabric.admits(0.0, 900_000_000, 1.0));
        assert!(!fabric.admits(0.0, 1_100_000_000, 1.0));
    }

    #[test]
    fn admit_moves_is_greedy_in_order() {
        let fabric = NetworkFabric::new(1e9);
        // Budget 2 s = 2 GB. Sizes: 1.5 GB, 1 GB, 0.4 GB → admit #0, skip
        // #1 (would exceed), admit #2.
        let admitted = admit_moves(
            &fabric,
            0.0,
            &[1_500_000_000, 1_000_000_000, 400_000_000],
            2.0,
        );
        assert_eq!(admitted, vec![0, 2]);
    }

    #[test]
    fn ten_gbe_preset() {
        let fabric = NetworkFabric::ten_gbe();
        assert!((fabric.bandwidth() - 1.25e9).abs() < 1e-3);
    }

    #[test]
    #[should_panic(expected = "bandwidth must be positive")]
    fn zero_bandwidth_panics() {
        let _ = NetworkFabric::new(0.0);
    }
}
