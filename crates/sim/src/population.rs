//! Configurable file populations with zipfian access sampling.
//!
//! The paper's BELLE II suite is 24 ROOT files scanned sequentially; the
//! serving stack has to hold up when the working set is 100k–1M files and
//! access is skewed the way real archival telemetry is — a hot head of
//! files absorbing most of the traffic over a long cold tail. This module
//! generates such populations deterministically from a seed: file sizes
//! drawn log-uniform over a configurable range and a [`ZipfSampler`] that
//! turns uniform randoms into rank-skewed file picks via one CDF binary
//! search per access.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::record::{AccessRecord, DeviceId, FileId};

/// Shape of a generated file population.
#[derive(Debug, Clone, PartialEq)]
pub struct PopulationConfig {
    /// Number of files in the working set.
    pub file_count: usize,
    /// Zipf exponent `s` for the access distribution: 0 = uniform, 1 ≈
    /// classic web/storage skew, larger = hotter head.
    pub zipf_exponent: f64,
    /// Smallest file size generated, in bytes.
    pub min_bytes: u64,
    /// Largest file size generated, in bytes.
    pub max_bytes: u64,
}

impl Default for PopulationConfig {
    fn default() -> Self {
        PopulationConfig {
            file_count: 100_000,
            zipf_exponent: 1.0,
            // The BELLE II suite's span (583 KB – 1.1 GB).
            min_bytes: 583_000,
            max_bytes: 1_100_000_000,
        }
    }
}

/// One file of a generated population.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PopulationFile {
    /// File identifier (`0..file_count`).
    pub fid: FileId,
    /// Size in bytes.
    pub bytes: u64,
}

/// Samples ranks `0..n` with probability proportional to
/// `1 / (rank + 1)^s` — a precomputed CDF plus one binary search per
/// sample, so a million-file population costs the same per access as a
/// tiny one.
#[derive(Debug, Clone)]
pub struct ZipfSampler {
    cdf: Vec<f64>,
}

impl ZipfSampler {
    /// Builds the sampler for `n` ranks with exponent `s`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero or `s` is negative, NaN, or infinite.
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0, "sampler needs at least one rank");
        assert!(
            s.is_finite() && s >= 0.0,
            "zipf exponent must be finite and non-negative"
        );
        let mut cdf = Vec::with_capacity(n);
        let mut total = 0.0f64;
        for rank in 0..n {
            total += 1.0 / ((rank + 1) as f64).powf(s);
            cdf.push(total);
        }
        // Normalize so the last entry is exactly 1.0 and sampling can't
        // fall off the end from float rounding.
        for c in &mut cdf {
            *c /= total;
        }
        if let Some(last) = cdf.last_mut() {
            *last = 1.0;
        }
        ZipfSampler { cdf }
    }

    /// Number of ranks.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// Whether the sampler has no ranks (never true — construction
    /// requires at least one).
    pub fn is_empty(&self) -> bool {
        self.cdf.is_empty()
    }

    /// Draws one rank in `0..len()`.
    pub fn sample(&self, rng: &mut StdRng) -> usize {
        let u: f64 = rng.gen();
        self.cdf.partition_point(|&c| c < u).min(self.cdf.len() - 1)
    }
}

/// A deterministic file population plus its access sampler: the working
/// set the scale benchmarks and soak tests draw from.
#[derive(Debug, Clone)]
pub struct FilePopulation {
    files: Vec<PopulationFile>,
    sampler: ZipfSampler,
    rng: StdRng,
    accesses_drawn: u64,
}

impl FilePopulation {
    /// Generates the population. Same `seed` and config → the same files
    /// and the same access sequence, no matter where it runs.
    ///
    /// # Panics
    ///
    /// Panics if `file_count` is zero or the size range is inverted.
    pub fn generate(seed: u64, config: &PopulationConfig) -> Self {
        assert!(config.file_count > 0, "population needs at least one file");
        assert!(
            config.min_bytes <= config.max_bytes,
            "population size range is inverted"
        );
        let mut rng = StdRng::seed_from_u64(seed);
        let log_min = (config.min_bytes.max(1) as f64).ln();
        let log_max = (config.max_bytes.max(1) as f64).ln();
        let files = (0..config.file_count)
            .map(|i| {
                let u: f64 = rng.gen();
                let bytes = (log_min + u * (log_max - log_min)).exp() as u64;
                PopulationFile {
                    fid: FileId(i as u64),
                    bytes: bytes.clamp(config.min_bytes, config.max_bytes),
                }
            })
            .collect();
        FilePopulation {
            files,
            sampler: ZipfSampler::new(config.file_count, config.zipf_exponent),
            rng,
            accesses_drawn: 0,
        }
    }

    /// The working set, ordered by file id. Rank in the zipf distribution
    /// equals index: file 0 is the hottest.
    pub fn files(&self) -> &[PopulationFile] {
        &self.files
    }

    /// Number of files.
    pub fn len(&self) -> usize {
        self.files.len()
    }

    /// Whether the population is empty (never true — construction
    /// requires at least one file).
    pub fn is_empty(&self) -> bool {
        self.files.is_empty()
    }

    /// Accesses drawn so far.
    pub fn accesses_drawn(&self) -> u64 {
        self.accesses_drawn
    }

    /// Draws the next zipf-distributed access.
    pub fn next_access(&mut self) -> PopulationFile {
        self.accesses_drawn += 1;
        self.files[self.sampler.sample(&mut self.rng)]
    }

    /// Draws the next access as a full telemetry record: a whole-file
    /// read of the sampled file on `device`, opened at
    /// `timestamp_micros` and closed `duration_micros` later.
    pub fn next_record(
        &mut self,
        access_number: u64,
        device: DeviceId,
        timestamp_micros: u64,
        duration_micros: u64,
    ) -> AccessRecord {
        let file = self.next_access();
        let close_micros = timestamp_micros + duration_micros.max(1);
        AccessRecord {
            access_number,
            fid: file.fid,
            fsid: device,
            rb: file.bytes,
            wb: 0,
            ots: timestamp_micros / 1_000_000,
            otms: ((timestamp_micros / 1000) % 1000) as u16,
            cts: close_micros / 1_000_000,
            ctms: ((close_micros / 1000) % 1000) as u16,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_config(n: usize, s: f64) -> PopulationConfig {
        PopulationConfig {
            file_count: n,
            zipf_exponent: s,
            min_bytes: 1_000,
            max_bytes: 1_000_000,
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = FilePopulation::generate(7, &small_config(500, 1.0));
        let b = FilePopulation::generate(7, &small_config(500, 1.0));
        assert_eq!(a.files(), b.files());
        let mut a = a;
        let mut b = b;
        for _ in 0..100 {
            assert_eq!(a.next_access(), b.next_access());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = FilePopulation::generate(1, &small_config(500, 1.0));
        let mut b = FilePopulation::generate(2, &small_config(500, 1.0));
        let draws_a: Vec<u64> = (0..50).map(|_| a.next_access().fid.0).collect();
        let draws_b: Vec<u64> = (0..50).map(|_| b.next_access().fid.0).collect();
        assert_ne!(draws_a, draws_b);
    }

    #[test]
    fn zipf_skews_toward_low_ranks() {
        let sampler = ZipfSampler::new(10_000, 1.0);
        let mut rng = StdRng::seed_from_u64(3);
        let mut head = 0u64;
        let draws = 20_000;
        for _ in 0..draws {
            if sampler.sample(&mut rng) < 100 {
                head += 1;
            }
        }
        // Under zipf(1.0) the top 1 % of 10k ranks carries roughly half
        // the mass; uniform would give 1 %.
        assert!(
            head > draws / 4,
            "head too cold for zipf: {head}/{draws} draws in the top 100 ranks"
        );
    }

    #[test]
    fn zero_exponent_is_uniform() {
        let sampler = ZipfSampler::new(1000, 0.0);
        let mut rng = StdRng::seed_from_u64(4);
        let mut head = 0u64;
        let draws = 20_000;
        for _ in 0..draws {
            if sampler.sample(&mut rng) < 100 {
                head += 1;
            }
        }
        // The top 10 % of ranks should carry about 10 % of draws.
        let frac = head as f64 / draws as f64;
        assert!((0.05..0.2).contains(&frac), "not uniform: {frac}");
    }

    #[test]
    fn samples_cover_the_range_and_stay_in_bounds() {
        let sampler = ZipfSampler::new(50, 1.2);
        let mut rng = StdRng::seed_from_u64(5);
        let mut seen = [false; 50];
        for _ in 0..5_000 {
            let rank = sampler.sample(&mut rng);
            assert!(rank < 50);
            seen[rank] = true;
        }
        assert!(seen[0], "hottest rank never drawn");
        assert!(
            seen.iter().filter(|&&s| s).count() > 25,
            "sampler never reaches the tail"
        );
    }

    #[test]
    fn records_are_well_formed() {
        let mut pop = FilePopulation::generate(9, &small_config(100, 1.0));
        let r = pop.next_record(42, DeviceId(3), 1_500_000, 250_000);
        assert_eq!(r.access_number, 42);
        assert_eq!(r.fsid, DeviceId(3));
        assert!(r.fid.0 < 100);
        assert_eq!((r.ots, r.otms), (1, 500));
        assert_eq!((r.cts, r.ctms), (1, 750));
        assert!(r.rb >= 1_000 && r.rb <= 1_000_000);
        assert_eq!(pop.accesses_drawn(), 1);
    }

    #[test]
    fn scales_to_a_large_population() {
        let config = PopulationConfig {
            file_count: 200_000,
            ..PopulationConfig::default()
        };
        let mut pop = FilePopulation::generate(11, &config);
        assert_eq!(pop.len(), 200_000);
        let mut distinct = std::collections::BTreeSet::new();
        for _ in 0..10_000 {
            distinct.insert(pop.next_access().fid.0);
        }
        // Zipf(1.0) over 200k files: plenty of head heat, but the tail
        // still gets visits.
        assert!(
            distinct.len() > 1_000,
            "only {} distinct files",
            distinct.len()
        );
    }

    #[test]
    #[should_panic(expected = "at least one file")]
    fn zero_files_panics() {
        let _ = FilePopulation::generate(0, &small_config(0, 1.0));
    }
}
