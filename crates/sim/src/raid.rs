//! RAID geometry: derive array-level bandwidth from member-disk speeds.
//!
//! Three of Bluesky's six mounts are arrays (`var`/`tmp` RAID 1, `file0`
//! RAID 5). Their defining behaviour in the paper is the read/write
//! asymmetry — "placement policies like LRU have difficulty dealing with
//! nodes — such as the RAID-5 node — that have large imbalance between
//! read- and write-speeds" — which falls out of the geometry: RAID 5 reads
//! stripe across all members but writes pay the read-modify-write parity
//! penalty.

use crate::device::DeviceSpec;

/// RAID level of an array.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RaidLevel {
    /// Striping, no redundancy: reads and writes scale with all members.
    Raid0,
    /// Mirroring: reads scale with members, writes are limited to one
    /// member's speed (every member writes every block).
    Raid1,
    /// Block-striped parity: reads scale with `n - 1` members; small writes
    /// pay the read-modify-write penalty (4 I/Os per write).
    Raid5,
    /// Double parity: reads scale with `n - 2`; writes pay 6 I/Os.
    Raid6,
}

impl RaidLevel {
    /// Minimum member count for the level.
    pub fn min_members(self) -> usize {
        match self {
            RaidLevel::Raid0 => 1,
            RaidLevel::Raid1 => 2,
            RaidLevel::Raid5 => 3,
            RaidLevel::Raid6 => 4,
        }
    }

    /// Members' worth of capacity lost to redundancy.
    pub fn capacity_overhead(self, members: usize) -> usize {
        match self {
            RaidLevel::Raid0 => 0,
            RaidLevel::Raid1 => members - 1,
            RaidLevel::Raid5 => 1,
            RaidLevel::Raid6 => 2,
        }
    }
}

/// A RAID array built from identical member disks.
///
/// # Examples
///
/// ```
/// use geomancy_sim::raid::{RaidArray, RaidLevel};
///
/// // Six 200 MB/s disks in RAID 5: 1 GB/s reads, 250 MB/s writes —
/// // the 4x imbalance that defeats LRU in the paper.
/// let array = RaidArray::new(RaidLevel::Raid5, 6, 200e6, 4_000_000_000_000, 0.004);
/// assert_eq!(array.read_bandwidth(), 1000e6);
/// assert_eq!(array.write_bandwidth(), 250e6);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct RaidArray {
    /// RAID level.
    pub level: RaidLevel,
    /// Number of member disks.
    pub members: usize,
    /// Sequential bandwidth of one member, bytes/second.
    pub member_bandwidth: f64,
    /// Capacity of one member, bytes.
    pub member_capacity: u64,
    /// Seek/setup latency of one member, seconds.
    pub member_latency: f64,
}

impl RaidArray {
    /// Creates an array.
    ///
    /// # Panics
    ///
    /// Panics if `members` is below the level's minimum or parameters are
    /// non-positive.
    pub fn new(
        level: RaidLevel,
        members: usize,
        member_bandwidth: f64,
        member_capacity: u64,
        member_latency: f64,
    ) -> Self {
        assert!(
            members >= level.min_members(),
            "{level:?} needs at least {} members, got {members}",
            level.min_members()
        );
        assert!(member_bandwidth > 0.0, "member bandwidth must be positive");
        assert!(member_capacity > 0, "member capacity must be positive");
        assert!(member_latency >= 0.0, "member latency must be non-negative");
        RaidArray {
            level,
            members,
            member_bandwidth,
            member_capacity,
            member_latency,
        }
    }

    /// Array-level sequential read bandwidth.
    pub fn read_bandwidth(&self) -> f64 {
        let n = self.members as f64;
        match self.level {
            RaidLevel::Raid0 => n * self.member_bandwidth,
            // Mirrors can serve reads from every copy.
            RaidLevel::Raid1 => n * self.member_bandwidth,
            RaidLevel::Raid5 => (n - 1.0) * self.member_bandwidth,
            RaidLevel::Raid6 => (n - 2.0) * self.member_bandwidth,
        }
    }

    /// Array-level write bandwidth (the paper's RAID-5 pain point).
    pub fn write_bandwidth(&self) -> f64 {
        let n = self.members as f64;
        match self.level {
            RaidLevel::Raid0 => n * self.member_bandwidth,
            // Every mirror writes every block.
            RaidLevel::Raid1 => self.member_bandwidth,
            // Read-modify-write: 4 member I/Os per logical write, spread
            // over the stripe.
            RaidLevel::Raid5 => (n - 1.0) * self.member_bandwidth / 4.0,
            RaidLevel::Raid6 => (n - 2.0) * self.member_bandwidth / 6.0,
        }
    }

    /// Usable capacity after redundancy.
    pub fn usable_capacity(&self) -> u64 {
        let lost = self.level.capacity_overhead(self.members) as u64;
        (self.members as u64 - lost) * self.member_capacity
    }

    /// Converts the array into a [`DeviceSpec`] with the given contention
    /// personality.
    pub fn to_device_spec(
        &self,
        name: impl Into<String>,
        self_sensitivity: f64,
        noise_sigma: f64,
    ) -> DeviceSpec {
        DeviceSpec::new(
            name,
            self.read_bandwidth(),
            self.write_bandwidth(),
            self.member_latency,
            self.usable_capacity(),
            self_sensitivity,
            noise_sigma,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn disk() -> (f64, u64, f64) {
        (200e6, 4_000_000_000_000, 0.004) // 200 MB/s, 4 TB, 4 ms
    }

    #[test]
    fn raid0_scales_linearly_both_ways() {
        let (bw, cap, lat) = disk();
        let array = RaidArray::new(RaidLevel::Raid0, 4, bw, cap, lat);
        assert_eq!(array.read_bandwidth(), 4.0 * bw);
        assert_eq!(array.write_bandwidth(), 4.0 * bw);
        assert_eq!(array.usable_capacity(), 4 * cap);
    }

    #[test]
    fn raid1_reads_scale_writes_do_not() {
        let (bw, cap, lat) = disk();
        let array = RaidArray::new(RaidLevel::Raid1, 2, bw, cap, lat);
        assert_eq!(array.read_bandwidth(), 2.0 * bw);
        assert_eq!(array.write_bandwidth(), bw);
        assert_eq!(array.usable_capacity(), cap);
    }

    #[test]
    fn raid5_has_the_papers_read_write_imbalance() {
        let (bw, cap, lat) = disk();
        let array = RaidArray::new(RaidLevel::Raid5, 6, bw, cap, lat);
        assert_eq!(array.read_bandwidth(), 5.0 * bw);
        assert_eq!(array.write_bandwidth(), 5.0 * bw / 4.0);
        // Read/write ratio of 4 — "large imbalance between read- and
        // write-speeds".
        assert!((array.read_bandwidth() / array.write_bandwidth() - 4.0).abs() < 1e-9);
        assert_eq!(array.usable_capacity(), 5 * cap);
    }

    #[test]
    fn raid6_is_slower_to_write_than_raid5() {
        let (bw, cap, lat) = disk();
        let r5 = RaidArray::new(RaidLevel::Raid5, 6, bw, cap, lat);
        let r6 = RaidArray::new(RaidLevel::Raid6, 6, bw, cap, lat);
        assert!(r6.write_bandwidth() < r5.write_bandwidth());
        assert!(r6.read_bandwidth() < r5.read_bandwidth());
        assert!(r6.usable_capacity() < r5.usable_capacity());
    }

    #[test]
    fn device_spec_conversion_carries_geometry() {
        let (bw, cap, lat) = disk();
        let array = RaidArray::new(RaidLevel::Raid5, 6, bw, cap, lat);
        let spec = array.to_device_spec("file0", 5.0, 0.25);
        assert_eq!(spec.read_bandwidth, array.read_bandwidth());
        assert_eq!(spec.write_bandwidth, array.write_bandwidth());
        assert_eq!(spec.capacity, array.usable_capacity());
        assert_eq!(spec.name, "file0");
    }

    #[test]
    #[should_panic(expected = "needs at least 3 members")]
    fn raid5_requires_three_members() {
        let (bw, cap, lat) = disk();
        let _ = RaidArray::new(RaidLevel::Raid5, 2, bw, cap, lat);
    }
}
