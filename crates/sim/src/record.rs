//! Access records: the telemetry the monitoring agents emit.
//!
//! Each record carries exactly the six features the paper selects from the
//! EOS logs (§V-D) — bytes read/written, open/close timestamps split into
//! second and millisecond parts — plus the file and filesystem identifiers.

use serde::{Deserialize, Serialize};

/// Identifier of a storage device (the paper's `fsid`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct DeviceId(pub u32);

impl std::fmt::Display for DeviceId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "dev{}", self.0)
    }
}

/// Identifier of a file (the paper's `fid`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct FileId(pub u64);

impl std::fmt::Display for FileId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "file{}", self.0)
    }
}

impl FileId {
    /// A well-mixed 64-bit hash of the id (splitmix64 finalizer).
    ///
    /// Workload file ids are small sequential integers, so `id % shards`
    /// would stripe neighbouring files across shards in lockstep; the
    /// serving layer keys its shard map on this hash instead to spread any
    /// id distribution evenly. Deterministic across runs and platforms —
    /// WAL recovery must rebuild the same shard assignment.
    pub fn stable_hash(self) -> u64 {
        let mut z = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// One monitored file access, from open to close.
///
/// Throughput is *derived*, not stored, via [`AccessRecord::throughput`] —
/// exactly the `Tp_i` formula of §V-C.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AccessRecord {
    /// Monotone access sequence number ("we represent the progression of
    /// time using access number since the file access time window is not
    /// constant").
    pub access_number: u64,
    /// File accessed.
    pub fid: FileId,
    /// Device the file lived on during the access.
    pub fsid: DeviceId,
    /// Bytes read (`rb`).
    pub rb: u64,
    /// Bytes written (`wb`).
    pub wb: u64,
    /// Open timestamp, whole seconds (`ots`).
    pub ots: u64,
    /// Open timestamp, millisecond remainder (`otms`).
    pub otms: u16,
    /// Close timestamp, whole seconds (`cts`).
    pub cts: u64,
    /// Close timestamp, millisecond remainder (`ctms`).
    pub ctms: u16,
}

impl AccessRecord {
    /// The paper's throughput formula:
    ///
    /// ```text
    /// Tp = (rb + wb) / ((cts + ctms/1000) - (ots + otms/1000))
    /// ```
    ///
    /// in bytes per second. Returns `0.0` when the interval is non-positive
    /// (a degenerate record), so callers never divide by zero.
    pub fn throughput(&self) -> f64 {
        let open = self.ots as f64 + self.otms as f64 / 1000.0;
        let close = self.cts as f64 + self.ctms as f64 / 1000.0;
        let dt = close - open;
        if dt <= 0.0 {
            return 0.0;
        }
        (self.rb + self.wb) as f64 / dt
    }

    /// Duration of the access in seconds (close − open), clamped at zero.
    pub fn duration_secs(&self) -> f64 {
        let open = self.ots as f64 + self.otms as f64 / 1000.0;
        let close = self.cts as f64 + self.ctms as f64 / 1000.0;
        (close - open).max(0.0)
    }

    /// Total bytes moved by the access.
    pub fn bytes(&self) -> u64 {
        self.rb + self.wb
    }
}

/// A completed file migration, used for overhead accounting and the
/// "files moved" bars under Figure 5.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MovementRecord {
    /// File moved.
    pub fid: FileId,
    /// Source device.
    pub from: DeviceId,
    /// Destination device.
    pub to: DeviceId,
    /// File size in bytes.
    pub bytes: u64,
    /// Wall-clock (simulated) seconds the transfer took.
    pub cost_secs: f64,
    /// Access number at which the movement happened.
    pub at_access: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(rb: u64, wb: u64, open_ms: u64, close_ms: u64) -> AccessRecord {
        AccessRecord {
            access_number: 0,
            fid: FileId(1),
            fsid: DeviceId(0),
            rb,
            wb,
            ots: open_ms / 1000,
            otms: (open_ms % 1000) as u16,
            cts: close_ms / 1000,
            ctms: (close_ms % 1000) as u16,
        }
    }

    #[test]
    fn throughput_formula() {
        // 1000 bytes over 0.5 s = 2000 B/s.
        let r = record(600, 400, 1_000, 1_500);
        assert!((r.throughput() - 2000.0).abs() < 1e-9);
    }

    #[test]
    fn throughput_spans_second_boundary() {
        // 1 MB over 1.25 s.
        let r = record(1_000_000, 0, 900, 2_150);
        assert!((r.throughput() - 800_000.0).abs() < 1e-6);
    }

    #[test]
    fn zero_duration_gives_zero_throughput() {
        let r = record(100, 0, 1_000, 1_000);
        assert_eq!(r.throughput(), 0.0);
    }

    #[test]
    fn negative_duration_gives_zero_throughput() {
        let r = record(100, 0, 2_000, 1_000);
        assert_eq!(r.throughput(), 0.0);
        assert_eq!(r.duration_secs(), 0.0);
    }

    #[test]
    fn bytes_sums_reads_and_writes() {
        let r = record(10, 32, 0, 1);
        assert_eq!(r.bytes(), 42);
    }

    #[test]
    fn ids_display() {
        assert_eq!(DeviceId(3).to_string(), "dev3");
        assert_eq!(FileId(9).to_string(), "file9");
    }

    #[test]
    fn stable_hash_is_deterministic_and_mixes() {
        assert_eq!(FileId(7).stable_hash(), FileId(7).stable_hash());
        assert_ne!(FileId(7).stable_hash(), FileId(8).stable_hash());
        // Sequential ids must not stripe modulo a small shard count: over
        // 1024 consecutive ids, every one of 4 shards gets a fair share.
        let mut counts = [0usize; 4];
        for id in 0..1024u64 {
            counts[(FileId(id).stable_hash() % 4) as usize] += 1;
        }
        for &c in &counts {
            assert!((180..=330).contains(&c), "skewed shard counts {counts:?}");
        }
    }
}
