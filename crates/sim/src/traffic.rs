//! External traffic generators.
//!
//! The Bluesky mounts are shared: "the home NFS storage server can have long
//! latencies of several hours if other users run I/O heavy workloads". Each
//! device carries a traffic model describing the load other users place on
//! it over time. Load is a dimensionless contention factor: an effective
//! bandwidth of `base / (1 + load)`.
//!
//! All models are *pure functions of simulated time* (burst schedules are
//! derived by hashing the time window), so a run is exactly reproducible and
//! the load can be queried at any instant without stepping state.

use std::fmt::Debug;

/// A source of external load on one storage device.
pub trait TrafficModel: Send + Sync + Debug {
    /// Contention factor at `t_secs` of simulated time. Always `>= 0`;
    /// `0.0` means the device is otherwise idle.
    fn load_at(&self, t_secs: f64) -> f64;
}

/// Constant background load.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Constant(pub f64);

impl TrafficModel for Constant {
    fn load_at(&self, _t_secs: f64) -> f64 {
        self.0.max(0.0)
    }
}

/// Smooth diurnal swing: load oscillates between `base` and
/// `base + amplitude` with the given period.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Diurnal {
    /// Minimum load.
    pub base: f64,
    /// Peak-to-trough swing added on top of `base`.
    pub amplitude: f64,
    /// Oscillation period in seconds.
    pub period_secs: f64,
    /// Phase offset in seconds.
    pub phase_secs: f64,
}

impl TrafficModel for Diurnal {
    fn load_at(&self, t_secs: f64) -> f64 {
        let angle = (t_secs + self.phase_secs) / self.period_secs * std::f64::consts::TAU;
        (self.base + self.amplitude * 0.5 * (1.0 - angle.cos())).max(0.0)
    }
}

/// Randomly scheduled storms of heavy use (other users launching I/O-heavy
/// jobs). Time is cut into fixed windows; each window independently hosts a
/// burst with probability `burst_probability`, with a magnitude drawn from
/// `[magnitude_min, magnitude_max]`. Schedules depend only on `seed`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Bursty {
    /// Deterministic schedule seed.
    pub seed: u64,
    /// Window length in seconds.
    pub window_secs: f64,
    /// Probability a given window hosts a burst (0..1).
    pub burst_probability: f64,
    /// Smallest burst load.
    pub magnitude_min: f64,
    /// Largest burst load.
    pub magnitude_max: f64,
}

impl Bursty {
    fn window_hash(&self, window: u64) -> u64 {
        splitmix64(self.seed ^ window.wrapping_mul(0x9E3779B97F4A7C15))
    }
}

impl TrafficModel for Bursty {
    fn load_at(&self, t_secs: f64) -> f64 {
        if t_secs < 0.0 || self.window_secs <= 0.0 {
            return 0.0;
        }
        let window = (t_secs / self.window_secs) as u64;
        let h = self.window_hash(window);
        let u = (h >> 11) as f64 / (1u64 << 53) as f64;
        if u >= self.burst_probability {
            return 0.0;
        }
        let h2 = splitmix64(h);
        let v = (h2 >> 11) as f64 / (1u64 << 53) as f64;
        let magnitude = self.magnitude_min + v * (self.magnitude_max - self.magnitude_min);
        // Shape the burst: ramp up over the first quarter of the window and
        // down over the last quarter, so adjacent accesses see a trend the
        // model can learn rather than a square wave.
        let frac = (t_secs / self.window_secs).fract();
        let shape = if frac < 0.25 {
            frac / 0.25
        } else if frac > 0.75 {
            (1.0 - frac) / 0.25
        } else {
            1.0
        };
        (magnitude * shape).max(0.0)
    }
}

/// Sum of several traffic models (e.g. diurnal swell plus storms).
#[derive(Debug)]
pub struct Composite(pub Vec<Box<dyn TrafficModel>>);

impl TrafficModel for Composite {
    fn load_at(&self, t_secs: f64) -> f64 {
        self.0.iter().map(|m| m.load_at(t_secs)).sum()
    }
}

/// SplitMix64 — a tiny, high-quality hash for window scheduling.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E3779B97F4A7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_is_constant_and_clamped() {
        assert_eq!(Constant(0.5).load_at(0.0), 0.5);
        assert_eq!(Constant(0.5).load_at(1e6), 0.5);
        assert_eq!(Constant(-1.0).load_at(3.0), 0.0);
    }

    #[test]
    fn diurnal_oscillates_between_base_and_peak() {
        let d = Diurnal {
            base: 0.2,
            amplitude: 1.0,
            period_secs: 100.0,
            phase_secs: 0.0,
        };
        assert!((d.load_at(0.0) - 0.2).abs() < 1e-9); // trough at t=0
        assert!((d.load_at(50.0) - 1.2).abs() < 1e-9); // peak at half period
        for t in 0..200 {
            let l = d.load_at(t as f64);
            assert!((0.2..=1.2 + 1e-9).contains(&l));
        }
    }

    #[test]
    fn bursty_is_deterministic() {
        let b = Bursty {
            seed: 42,
            window_secs: 10.0,
            burst_probability: 0.5,
            magnitude_min: 1.0,
            magnitude_max: 3.0,
        };
        for t in [0.0, 5.0, 33.3, 100.0] {
            assert_eq!(b.load_at(t), b.load_at(t));
        }
    }

    #[test]
    fn bursty_produces_both_quiet_and_busy_windows() {
        let b = Bursty {
            seed: 7,
            window_secs: 10.0,
            burst_probability: 0.5,
            magnitude_min: 1.0,
            magnitude_max: 3.0,
        };
        // Sample mid-window (shape = 1) over many windows.
        let loads: Vec<f64> = (0..200).map(|w| b.load_at(w as f64 * 10.0 + 5.0)).collect();
        let busy = loads.iter().filter(|&&l| l > 0.0).count();
        assert!(busy > 40, "too few bursts: {busy}");
        assert!(busy < 160, "too many bursts: {busy}");
        for &l in &loads {
            assert!(l == 0.0 || (1.0..=3.0).contains(&l));
        }
    }

    #[test]
    fn bursty_zero_probability_is_always_quiet() {
        let b = Bursty {
            seed: 1,
            window_secs: 5.0,
            burst_probability: 0.0,
            magnitude_min: 1.0,
            magnitude_max: 2.0,
        };
        assert!((0..100).all(|t| b.load_at(t as f64) == 0.0));
    }

    #[test]
    fn bursty_negative_time_is_quiet() {
        let b = Bursty {
            seed: 1,
            window_secs: 5.0,
            burst_probability: 1.0,
            magnitude_min: 1.0,
            magnitude_max: 2.0,
        };
        assert_eq!(b.load_at(-10.0), 0.0);
    }

    #[test]
    fn composite_sums_components() {
        let c = Composite(vec![Box::new(Constant(0.3)), Box::new(Constant(0.7))]);
        assert!((c.load_at(12.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn different_seeds_give_different_schedules() {
        let mk = |seed| Bursty {
            seed,
            window_secs: 10.0,
            burst_probability: 0.5,
            magnitude_min: 1.0,
            magnitude_max: 3.0,
        };
        let a: Vec<f64> = (0..50)
            .map(|w| mk(1).load_at(w as f64 * 10.0 + 5.0))
            .collect();
        let b: Vec<f64> = (0..50)
            .map(|w| mk(2).load_at(w as f64 * 10.0 + 5.0))
            .collect();
        assert_ne!(a, b);
    }
}
