//! Property-based tests of the simulator's core invariants.

use geomancy_sim::clock::SimClock;
use geomancy_sim::cluster::{FileMeta, StorageSystem};
use geomancy_sim::device::{Device, DeviceSpec};
use geomancy_sim::record::{AccessRecord, DeviceId, FileId};
use geomancy_sim::traffic::{Bursty, Constant, Diurnal, TrafficModel};
use proptest::prelude::*;
use rand::SeedableRng;

proptest! {
    #[test]
    fn throughput_is_never_negative(
        rb in 0u64..10_000_000_000,
        wb in 0u64..10_000_000_000,
        ots in 0u64..1_000_000,
        otms in 0u16..1000,
        dsecs in 0u64..10_000,
        ctms in 0u16..1000,
    ) {
        let record = AccessRecord {
            access_number: 0,
            fid: FileId(1),
            fsid: DeviceId(0),
            rb,
            wb,
            ots,
            otms,
            cts: ots + dsecs,
            ctms,
        };
        let tp = record.throughput();
        prop_assert!(tp.is_finite());
        prop_assert!(tp >= 0.0);
    }

    #[test]
    fn clock_is_monotone(advances in proptest::collection::vec(0.0..100.0f64, 1..50)) {
        let mut clock = SimClock::new();
        let mut last = 0u64;
        for secs in advances {
            clock.advance_secs(secs);
            prop_assert!(clock.now_micros() >= last);
            last = clock.now_micros();
        }
    }

    #[test]
    fn clock_secs_ms_split_is_consistent(advances in proptest::collection::vec(0.001..50.0f64, 1..30)) {
        let mut clock = SimClock::new();
        for secs in advances {
            clock.advance_secs(secs);
            let (s, ms) = clock.now_secs_ms();
            prop_assert!(ms < 1000);
            let reconstructed = s as f64 + ms as f64 / 1000.0;
            prop_assert!((reconstructed - clock.now_secs()).abs() < 0.001 + 1e-9);
        }
    }

    #[test]
    fn service_time_positive_and_grows_with_bytes(
        small in 1_000u64..1_000_000,
        factor in 2u64..100,
        load in 0.0..5.0f64,
    ) {
        let spec = DeviceSpec::new("d", 1e9, 1e9, 0.001, u64::MAX / 2, 0.0, 0.0);
        let mut a = Device::new(DeviceId(0), spec.clone());
        let mut b = Device::new(DeviceId(0), spec);
        let mut rng_a = rand::rngs::StdRng::seed_from_u64(0);
        let mut rng_b = rand::rngs::StdRng::seed_from_u64(0);
        let t_small = a.serve(small, 0, 0.0, load, &mut rng_a);
        let t_big = b.serve(small * factor, 0, 0.0, load, &mut rng_b);
        prop_assert!(t_small > 0.0);
        prop_assert!(t_big > t_small);
    }

    #[test]
    fn more_external_load_never_speeds_up_a_device(
        load_a in 0.0..4.0f64,
        extra in 0.1..4.0f64,
    ) {
        let spec = DeviceSpec::new("d", 1e9, 8e8, 0.0, u64::MAX / 2, 1.0, 0.0);
        let d = Device::new(DeviceId(0), spec);
        let fast = d.effective_read_bandwidth(0.0, load_a);
        let slow = d.effective_read_bandwidth(0.0, load_a + extra);
        prop_assert!(slow < fast);
    }

    #[test]
    fn traffic_models_are_non_negative(t in 0.0..1e6f64, seed in 0u64..1000) {
        let models: Vec<Box<dyn TrafficModel>> = vec![
            Box::new(Constant(0.3)),
            Box::new(Diurnal { base: 0.1, amplitude: 1.0, period_secs: 600.0, phase_secs: 30.0 }),
            Box::new(Bursty {
                seed,
                window_secs: 60.0,
                burst_probability: 0.5,
                magnitude_min: 0.5,
                magnitude_max: 3.0,
            }),
        ];
        for m in &models {
            prop_assert!(m.load_at(t) >= 0.0);
        }
    }

    #[test]
    fn capacity_accounting_never_goes_negative(
        sizes in proptest::collection::vec(1u64..1_000_000, 1..20),
    ) {
        let mut system = StorageSystem::builder()
            .device(
                DeviceSpec::new("d", 1e9, 1e9, 0.0, u64::MAX / 2, 0.0, 0.0),
                Box::new(Constant(0.0)),
            )
            .build();
        let total: u64 = sizes.iter().sum();
        for (i, &size) in sizes.iter().enumerate() {
            system
                .add_file(
                    FileId(i as u64),
                    FileMeta { size, path: format!("f{i}") },
                    DeviceId(0),
                )
                .unwrap();
        }
        prop_assert_eq!(system.device(DeviceId(0)).unwrap().used_bytes(), total);
    }

    #[test]
    fn access_records_are_well_formed(
        size in 1_000u64..100_000_000,
        n_accesses in 1usize..20,
    ) {
        let mut system = StorageSystem::builder()
            .device(
                DeviceSpec::new("d", 1e9, 1e9, 0.001, u64::MAX / 2, 1.0, 0.1),
                Box::new(Constant(0.2)),
            )
            .seed(7)
            .build();
        system
            .add_file(FileId(0), FileMeta { size, path: "f".into() }, DeviceId(0))
            .unwrap();
        let mut last_access = None;
        for _ in 0..n_accesses {
            let r = system.read_file(FileId(0), None).unwrap();
            // Close is never before open.
            let open = r.ots as f64 + r.otms as f64 / 1000.0;
            let close = r.cts as f64 + r.ctms as f64 / 1000.0;
            prop_assert!(close >= open);
            prop_assert_eq!(r.rb, size);
            prop_assert!(r.otms < 1000 && r.ctms < 1000);
            // Access numbers strictly increase.
            if let Some(last) = last_access {
                prop_assert!(r.access_number > last);
            }
            last_access = Some(r.access_number);
        }
    }

    #[test]
    fn migration_conserves_bytes(
        size in 1_000u64..50_000_000,
        hops in proptest::collection::vec(0u32..3, 1..8),
    ) {
        let mut builder = StorageSystem::builder();
        for i in 0..3 {
            builder = builder.device(
                DeviceSpec::new(format!("d{i}"), 1e9, 1e9, 0.0, u64::MAX / 2, 0.0, 0.0),
                Box::new(Constant(0.0)),
            );
        }
        let mut system = builder.build();
        system
            .add_file(FileId(0), FileMeta { size, path: "f".into() }, DeviceId(0))
            .unwrap();
        for hop in hops {
            system.move_file(FileId(0), DeviceId(hop)).unwrap();
            let total: u64 = system.devices().iter().map(|d| d.used_bytes()).sum();
            prop_assert_eq!(total, size, "bytes leaked during migration");
            prop_assert_eq!(system.location_of(FileId(0)).unwrap(), DeviceId(hop));
        }
    }
}
