//! Timestamp indexes over pages: which pages hold which time ranges, per
//! device and per file.
//!
//! Each index entry is a [`PageSpan`] — a page reference plus the
//! key-specific time range and record count that page contributes. The
//! per-device and per-file maps are B-trees keyed by id; each key's span
//! list is appended in page order. Spans are *key-specific*: a page
//! containing records for many devices appears once per device, with
//! min/max timestamps of that device's records only, so a per-device
//! query skips pages whose other tenants dominate the page's global span.
//!
//! The index is persisted at checkpoint time as JSON-lines rows
//! ([`TimeIndex::save`]) so the store never scans every page on open; a
//! missing or out-of-date file (detected against the manifest) falls back
//! to a rebuild from the committed pages.

use std::collections::BTreeMap;
use std::fs::File;
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::path::Path;

use geomancy_replaydb::StoredRecord;
use geomancy_sim::record::{DeviceId, FileId};
use serde::{Deserialize, Serialize};

use crate::StoreError;

/// One page's contribution to an index key: the page id, the time range
/// of the key's records inside it, and how many there are.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PageSpan {
    /// Page number (byte offset = `page * page_size`).
    pub page: u32,
    /// Smallest ingest timestamp of the key's records in the page.
    pub min_ts: u64,
    /// Largest ingest timestamp of the key's records in the page.
    pub max_ts: u64,
    /// Number of the key's records in the page.
    pub count: u32,
}

/// Row kinds in the persisted index file.
const ROW_PAGE: u8 = 0;
const ROW_DEVICE: u8 = 1;
const ROW_FILE: u8 = 2;

/// One JSON line of the persisted index.
#[derive(Debug, Serialize, Deserialize)]
struct IndexRow {
    k: u8,
    key: u64,
    page: u32,
    min_ts: u64,
    max_ts: u64,
    count: u32,
}

/// In-memory index over every committed (and, between append and commit,
/// in-flight) page.
#[derive(Debug, Clone, Default)]
pub struct TimeIndex {
    /// Global span per page, in page order (`pages[i].page == i`).
    pages: Vec<PageSpan>,
    by_device: BTreeMap<DeviceId, Vec<PageSpan>>,
    by_file: BTreeMap<FileId, Vec<PageSpan>>,
    total_records: u64,
}

impl TimeIndex {
    /// An empty index.
    pub fn new() -> Self {
        TimeIndex::default()
    }

    /// Number of indexed pages.
    pub fn page_count(&self) -> usize {
        self.pages.len()
    }

    /// Total records across all indexed pages.
    pub fn total_records(&self) -> u64 {
        self.total_records
    }

    /// Global spans of every page, in page order.
    pub fn pages(&self) -> &[PageSpan] {
        &self.pages
    }

    /// Spans holding records of `device`, in page order.
    pub fn spans_for_device(&self, device: DeviceId) -> &[PageSpan] {
        self.by_device.get(&device).map_or(&[], |v| v.as_slice())
    }

    /// Spans holding records of `fid`, in page order.
    pub fn spans_for_file(&self, fid: FileId) -> &[PageSpan] {
        self.by_file.get(&fid).map_or(&[], |v| v.as_slice())
    }

    /// Devices with at least one indexed record.
    pub fn devices(&self) -> impl Iterator<Item = DeviceId> + '_ {
        self.by_device.keys().copied()
    }

    /// Files with at least one indexed record.
    pub fn files(&self) -> impl Iterator<Item = FileId> + '_ {
        self.by_file.keys().copied()
    }

    /// Indexes one freshly written page.
    ///
    /// # Panics
    ///
    /// Panics if `page` is not the next page number or `records` is empty
    /// (pages are appended in order and never empty).
    pub fn add_page(&mut self, page: u32, records: &[StoredRecord]) {
        assert_eq!(page as usize, self.pages.len(), "pages are append-only");
        assert!(!records.is_empty(), "pages are never empty");
        let min_ts = records.iter().map(|s| s.timestamp_micros).min().unwrap();
        let max_ts = records.iter().map(|s| s.timestamp_micros).max().unwrap();
        self.pages.push(PageSpan {
            page,
            min_ts,
            max_ts,
            count: records.len() as u32,
        });
        self.total_records += records.len() as u64;
        let mut per_device: BTreeMap<DeviceId, PageSpan> = BTreeMap::new();
        let mut per_file: BTreeMap<FileId, PageSpan> = BTreeMap::new();
        for s in records {
            let ts = s.timestamp_micros;
            per_device
                .entry(s.record.fsid)
                .and_modify(|span| {
                    span.min_ts = span.min_ts.min(ts);
                    span.max_ts = span.max_ts.max(ts);
                    span.count += 1;
                })
                .or_insert(PageSpan {
                    page,
                    min_ts: ts,
                    max_ts: ts,
                    count: 1,
                });
            per_file
                .entry(s.record.fid)
                .and_modify(|span| {
                    span.min_ts = span.min_ts.min(ts);
                    span.max_ts = span.max_ts.max(ts);
                    span.count += 1;
                })
                .or_insert(PageSpan {
                    page,
                    min_ts: ts,
                    max_ts: ts,
                    count: 1,
                });
        }
        for (dev, span) in per_device {
            self.by_device.entry(dev).or_default().push(span);
        }
        for (fid, span) in per_file {
            self.by_file.entry(fid).or_default().push(span);
        }
    }

    /// Writes the index as JSON-lines to `path` atomically: a temp file is
    /// written and fsynced, then renamed over `path` and the directory
    /// fsynced, so a crash leaves either the old index or the new one —
    /// never a torn mix.
    ///
    /// # Errors
    ///
    /// Returns an I/O or serialization error.
    pub fn save(&self, path: &Path) -> Result<(), StoreError> {
        let tmp = path.with_extension("tmp");
        {
            let file = File::create(&tmp)?;
            let mut w = BufWriter::new(file);
            for span in &self.pages {
                write_row(&mut w, ROW_PAGE, 0, span)?;
            }
            for (dev, spans) in &self.by_device {
                for span in spans {
                    write_row(&mut w, ROW_DEVICE, dev.0 as u64, span)?;
                }
            }
            for (fid, spans) in &self.by_file {
                for span in spans {
                    write_row(&mut w, ROW_FILE, fid.0, span)?;
                }
            }
            w.flush()?;
            w.get_ref().sync_data()?;
        }
        std::fs::rename(&tmp, path)?;
        if let Some(dir) = path.parent() {
            File::open(dir)?.sync_all()?;
        }
        Ok(())
    }

    /// Loads an index previously written by [`TimeIndex::save`].
    ///
    /// # Errors
    ///
    /// Returns an I/O error, or [`StoreError::Corrupt`] on a malformed
    /// row (the file is written atomically, so any damage is real
    /// corruption, not a crash artifact).
    pub fn load(path: &Path) -> Result<Self, StoreError> {
        let file = File::open(path)?;
        let reader = BufReader::new(file);
        let mut index = TimeIndex::new();
        for line in reader.lines() {
            let line = line?;
            if line.trim().is_empty() {
                continue;
            }
            let row: IndexRow = serde_json::from_str(&line)
                .map_err(|e| StoreError::Corrupt(format!("bad index row: {e}")))?;
            let span = PageSpan {
                page: row.page,
                min_ts: row.min_ts,
                max_ts: row.max_ts,
                count: row.count,
            };
            match row.k {
                ROW_PAGE => {
                    if row.page as usize != index.pages.len() {
                        return Err(StoreError::Corrupt(format!(
                            "page rows out of order at page {}",
                            row.page
                        )));
                    }
                    index.total_records += span.count as u64;
                    index.pages.push(span);
                }
                ROW_DEVICE => index
                    .by_device
                    .entry(DeviceId(row.key as u32))
                    .or_default()
                    .push(span),
                ROW_FILE => index.by_file.entry(FileId(row.key)).or_default().push(span),
                other => {
                    return Err(StoreError::Corrupt(format!(
                        "unknown index row kind {other}"
                    )));
                }
            }
        }
        Ok(index)
    }
}

fn write_row(w: &mut impl Write, k: u8, key: u64, span: &PageSpan) -> Result<(), StoreError> {
    let row = IndexRow {
        k,
        key,
        page: span.page,
        min_ts: span.min_ts,
        max_ts: span.max_ts,
        count: span.count,
    };
    let line = serde_json::to_string(&row).map_err(|e| StoreError::Corrupt(e.to_string()))?;
    w.write_all(line.as_bytes())?;
    w.write_all(b"\n")?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use geomancy_sim::record::AccessRecord;

    fn stored(ts: u64, fid: u64, dev: u32) -> StoredRecord {
        StoredRecord {
            timestamp_micros: ts,
            record: AccessRecord {
                access_number: ts,
                fid: FileId(fid),
                fsid: DeviceId(dev),
                rb: 1,
                wb: 0,
                ots: 0,
                otms: 0,
                cts: 1,
                ctms: 0,
            },
        }
    }

    fn sample() -> TimeIndex {
        let mut index = TimeIndex::new();
        index.add_page(0, &[stored(10, 1, 0), stored(11, 2, 1), stored(12, 1, 0)]);
        index.add_page(1, &[stored(13, 2, 1), stored(14, 3, 2)]);
        index
    }

    #[test]
    fn spans_are_key_specific() {
        let index = sample();
        assert_eq!(index.page_count(), 2);
        assert_eq!(index.total_records(), 5);
        let dev0 = index.spans_for_device(DeviceId(0));
        assert_eq!(dev0.len(), 1);
        assert_eq!(
            dev0[0],
            PageSpan {
                page: 0,
                min_ts: 10,
                max_ts: 12,
                count: 2
            }
        );
        let dev1 = index.spans_for_device(DeviceId(1));
        assert_eq!(dev1.len(), 2);
        assert_eq!(dev1[0].min_ts, 11);
        assert_eq!(dev1[0].max_ts, 11);
        let f1 = index.spans_for_file(FileId(1));
        assert_eq!(f1.len(), 1);
        assert_eq!(f1[0].count, 2);
        assert!(index.spans_for_device(DeviceId(9)).is_empty());
        assert_eq!(index.devices().count(), 3);
        assert_eq!(index.files().count(), 3);
    }

    #[test]
    fn save_load_round_trip() {
        let dir = std::env::temp_dir().join("geomancy_store_index_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("index.json");
        let index = sample();
        index.save(&path).unwrap();
        let back = TimeIndex::load(&path).unwrap();
        assert_eq!(back.page_count(), index.page_count());
        assert_eq!(back.total_records(), index.total_records());
        assert_eq!(back.pages(), index.pages());
        assert_eq!(
            back.spans_for_device(DeviceId(1)),
            index.spans_for_device(DeviceId(1))
        );
        assert_eq!(
            back.spans_for_file(FileId(2)),
            index.spans_for_file(FileId(2))
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn malformed_rows_are_corruption() {
        let dir = std::env::temp_dir().join("geomancy_store_index_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bad_index.json");
        std::fs::write(&path, "{nope\n").unwrap();
        assert!(matches!(
            TimeIndex::load(&path),
            Err(StoreError::Corrupt(_))
        ));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    #[should_panic(expected = "append-only")]
    fn out_of_order_page_panics() {
        let mut index = TimeIndex::new();
        index.add_page(1, &[stored(0, 0, 0)]);
    }
}
