//! # geomancy-store
//!
//! The paged on-disk half of the ReplayDB: the paper backs its replay
//! database with SQLite sized for real telemetry horizons; this crate
//! provides the equivalent storage layer for the reproduction — an
//! append-only file of fixed-size binary pages with per-device and
//! per-file timestamp indexes, read via positioned `pread` through a
//! small in-process page cache, and filled by checkpointing the serving
//! layer's WAL segments ([`PagedStore::absorb_segments`]).
//!
//! Three layers:
//!
//! * [`page`] — the on-disk page format (header + packed 64-byte
//!   records, checksummed).
//! * [`PagedStore`] — pages + [`index::TimeIndex`] + [`manifest`]: the
//!   crash-safe cold store with the ReplayDb query contract.
//! * [`TieredDb`] — a bounded in-memory hot tail in front of the cold
//!   store, the drop-in "ReplayDb that spills to disk".
//!
//! See `DESIGN.md` ("Storage layer") for the checkpoint ordering and the
//! crash-safety argument; the `crash` test module proves it by killing
//! the pipeline at every [`FaultPoint`] boundary.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod index;
pub mod manifest;
pub mod page;
pub mod store;
pub mod tiered;

pub use manifest::Manifest;
pub use store::{
    AbsorbReport, FaultPoint, PagedStore, RecoveryReport, SharedPagedStore, StoreConfig,
};
pub use tiered::TieredDb;

use geomancy_replaydb::PersistError;

/// Errors raised by the paged store.
#[derive(Debug)]
pub enum StoreError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// On-disk state failed validation (bad magic, checksum mismatch,
    /// impossible lengths).
    Corrupt(String),
    /// The store was opened with an incompatible configuration.
    Config(String),
    /// A WAL segment failed to replay during absorption.
    Wal(PersistError),
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "store i/o failed: {e}"),
            StoreError::Corrupt(msg) => write!(f, "store corrupt: {msg}"),
            StoreError::Config(msg) => write!(f, "store misconfigured: {msg}"),
            StoreError::Wal(e) => write!(f, "wal segment replay failed: {e}"),
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Io(e) => Some(e),
            StoreError::Wal(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for StoreError {
    fn from(e: std::io::Error) -> Self {
        StoreError::Io(e)
    }
}

impl From<PersistError> for StoreError {
    fn from(e: PersistError) -> Self {
        StoreError::Wal(e)
    }
}
