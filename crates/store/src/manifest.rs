//! The store manifest: the single atomic commit point of a checkpoint.
//!
//! A checkpoint writes pages, fsyncs them, writes the index, fsyncs it —
//! and then commits by renaming a fresh manifest into place. Until that
//! rename lands, recovery sees the *previous* manifest and rolls the
//! store back to it (truncating any uncommitted page tail); after it,
//! the absorbed WAL segments are recorded as consumed, so they are
//! deleted instead of replayed. One atomic rename therefore decides, for
//! every record in the checkpoint, whether it lives in the store or
//! still lives in its segment — never both, never neither.

use std::fs::File;
use std::path::Path;

use serde::{Deserialize, Serialize};

use crate::StoreError;

/// Manifest format version.
pub const MANIFEST_VERSION: u32 = 1;

/// Committed state of the store.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Manifest {
    /// Format version ([`MANIFEST_VERSION`]).
    pub version: u32,
    /// Page size this store was created with; a mismatch with the opening
    /// configuration is a hard error, not a reinterpretation.
    pub page_size: u64,
    /// Pages committed to `pages.bin` — anything beyond
    /// `committed_pages * page_size` is an uncommitted tail to truncate.
    pub committed_pages: u32,
    /// Records inside the committed pages.
    pub total_records: u64,
    /// Per-shard highest absorbed WAL-segment sequence number (0 = none).
    /// A surviving segment with `seq <= absorbed[shard]` has already been
    /// absorbed (the crash hit after commit, before deletion): delete it.
    /// One with `seq > absorbed[shard]` has not: replay it.
    pub absorbed: Vec<u64>,
}

impl Manifest {
    /// The empty-store manifest.
    pub fn empty(page_size: usize) -> Self {
        Manifest {
            version: MANIFEST_VERSION,
            page_size: page_size as u64,
            committed_pages: 0,
            total_records: 0,
            absorbed: Vec::new(),
        }
    }

    /// Loads the manifest at `path`; `Ok(None)` when the file does not
    /// exist (a fresh store).
    ///
    /// # Errors
    ///
    /// Returns an I/O error, or [`StoreError::Corrupt`] on malformed
    /// contents or a version this build does not understand.
    pub fn load(path: &Path) -> Result<Option<Self>, StoreError> {
        let json = match std::fs::read_to_string(path) {
            Ok(s) => s,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
            Err(e) => return Err(e.into()),
        };
        let manifest: Manifest = serde_json::from_str(&json)
            .map_err(|e| StoreError::Corrupt(format!("bad manifest: {e}")))?;
        if manifest.version != MANIFEST_VERSION {
            return Err(StoreError::Corrupt(format!(
                "manifest version {} unsupported",
                manifest.version
            )));
        }
        Ok(Some(manifest))
    }

    /// Commits this manifest to `path`: write a temp file, fsync it,
    /// rename it over `path`, fsync the directory. The rename is the
    /// atomic commit — a crash anywhere before it leaves the previous
    /// manifest intact.
    ///
    /// # Errors
    ///
    /// Returns an I/O or serialization error.
    pub fn commit(&self, path: &Path) -> Result<(), StoreError> {
        let tmp = path.with_extension("tmp");
        let json = serde_json::to_string(self).map_err(|e| StoreError::Corrupt(e.to_string()))?;
        {
            let mut file = File::create(&tmp)?;
            use std::io::Write;
            file.write_all(json.as_bytes())?;
            file.sync_all()?;
        }
        std::fs::rename(&tmp, path)?;
        if let Some(dir) = path.parent() {
            File::open(dir)?.sync_all()?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir() -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("geomancy_store_manifest_test");
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn missing_manifest_is_none() {
        let path = temp_dir().join("nope.manifest");
        std::fs::remove_file(&path).ok();
        assert_eq!(Manifest::load(&path).unwrap(), None);
    }

    #[test]
    fn commit_load_round_trip() {
        let path = temp_dir().join("roundtrip.manifest");
        let m = Manifest {
            version: MANIFEST_VERSION,
            page_size: 4096,
            committed_pages: 7,
            total_records: 421,
            absorbed: vec![3, 0, 5],
        };
        m.commit(&path).unwrap();
        assert_eq!(Manifest::load(&path).unwrap(), Some(m.clone()));
        // Re-commit overwrites atomically.
        let m2 = Manifest {
            committed_pages: 9,
            ..m
        };
        m2.commit(&path).unwrap();
        assert_eq!(Manifest::load(&path).unwrap(), Some(m2));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn garbage_and_future_versions_are_corruption() {
        let path = temp_dir().join("garbage.manifest");
        std::fs::write(&path, "not a manifest").unwrap();
        assert!(matches!(Manifest::load(&path), Err(StoreError::Corrupt(_))));
        let future = Manifest {
            version: MANIFEST_VERSION + 1,
            ..Manifest::empty(4096)
        };
        std::fs::write(&path, serde_json::to_string(&future).unwrap()).unwrap();
        assert!(matches!(Manifest::load(&path), Err(StoreError::Corrupt(_))));
        std::fs::remove_file(&path).ok();
    }
}
