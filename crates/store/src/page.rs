//! The on-disk page format: a fixed-size block of packed access records.
//!
//! Every page is exactly `page_size` bytes on disk (4–64 KiB, chosen at
//! store creation) so page `i` always lives at byte offset
//! `i * page_size` — positioned reads need no directory. A page is a
//! 32-byte header followed by `record_count` packed 64-byte records and
//! zero padding:
//!
//! ```text
//! offset  size  field
//! 0       4     magic "GPAG"
//! 4       1     format version (1)
//! 5       1     reserved (0)
//! 6       2     record_count (LE u16)
//! 8       8     min_ts: smallest ingest timestamp in the page (LE u64)
//! 16      8     max_ts: largest ingest timestamp in the page (LE u64)
//! 24      8     FNV-1a checksum of count/min/max + record bytes (LE u64)
//! 32      64×n  packed records
//! ...     —     zero padding to page_size
//! ```
//!
//! Records are packed little-endian, 64 bytes each: ingest timestamp,
//! then the [`AccessRecord`] fields in declaration order. Pages are
//! immutable once written — the store is append-only, and the final
//! partial page of a checkpoint is sealed as-is (internal fragmentation
//! is accepted in exchange for never rewriting a page in place).

use geomancy_replaydb::StoredRecord;
use geomancy_sim::record::{AccessRecord, DeviceId, FileId};

use crate::StoreError;

/// First bytes of every page.
pub const PAGE_MAGIC: [u8; 4] = *b"GPAG";
/// On-disk page format version.
pub const PAGE_VERSION: u8 = 1;
/// Bytes of page header before the packed records.
pub const HEADER_LEN: usize = 32;
/// Bytes per packed record (8-byte timestamp + 56 bytes of fields).
pub const RECORD_LEN: usize = 64;
/// Smallest allowed page size (4 KiB).
pub const MIN_PAGE_SIZE: usize = 4 * 1024;
/// Largest allowed page size (64 KiB).
pub const MAX_PAGE_SIZE: usize = 64 * 1024;

/// Records a page of `page_size` bytes can hold.
pub fn page_capacity(page_size: usize) -> usize {
    (page_size - HEADER_LEN) / RECORD_LEN
}

/// Validates a configured page size: within [4 KiB, 64 KiB].
///
/// # Errors
///
/// Returns [`StoreError::Config`] when out of range.
pub fn check_page_size(page_size: usize) -> Result<(), StoreError> {
    if !(MIN_PAGE_SIZE..=MAX_PAGE_SIZE).contains(&page_size) {
        return Err(StoreError::Config(format!(
            "page size {page_size} outside [{MIN_PAGE_SIZE}, {MAX_PAGE_SIZE}]"
        )));
    }
    Ok(())
}

fn put_u64(buf: &mut [u8], at: usize, v: u64) {
    buf[at..at + 8].copy_from_slice(&v.to_le_bytes());
}

fn put_u32(buf: &mut [u8], at: usize, v: u32) {
    buf[at..at + 4].copy_from_slice(&v.to_le_bytes());
}

fn put_u16(buf: &mut [u8], at: usize, v: u16) {
    buf[at..at + 2].copy_from_slice(&v.to_le_bytes());
}

fn get_u64(buf: &[u8], at: usize) -> u64 {
    u64::from_le_bytes(buf[at..at + 8].try_into().expect("8 bytes"))
}

fn get_u32(buf: &[u8], at: usize) -> u32 {
    u32::from_le_bytes(buf[at..at + 4].try_into().expect("4 bytes"))
}

fn get_u16(buf: &[u8], at: usize) -> u16 {
    u16::from_le_bytes(buf[at..at + 2].try_into().expect("2 bytes"))
}

/// FNV-1a over `bytes` — cheap, dependency-free corruption detection (the
/// threat model is torn writes and bit rot, not adversaries).
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn pack_record(buf: &mut [u8], at: usize, s: &StoredRecord) {
    put_u64(buf, at, s.timestamp_micros);
    put_u64(buf, at + 8, s.record.access_number);
    put_u64(buf, at + 16, s.record.fid.0);
    put_u32(buf, at + 24, s.record.fsid.0);
    put_u64(buf, at + 28, s.record.rb);
    put_u64(buf, at + 36, s.record.wb);
    put_u64(buf, at + 44, s.record.ots);
    put_u16(buf, at + 52, s.record.otms);
    put_u64(buf, at + 54, s.record.cts);
    put_u16(buf, at + 62, s.record.ctms);
}

fn unpack_record(buf: &[u8], at: usize) -> StoredRecord {
    StoredRecord {
        timestamp_micros: get_u64(buf, at),
        record: AccessRecord {
            access_number: get_u64(buf, at + 8),
            fid: FileId(get_u64(buf, at + 16)),
            fsid: DeviceId(get_u32(buf, at + 24)),
            rb: get_u64(buf, at + 28),
            wb: get_u64(buf, at + 36),
            ots: get_u64(buf, at + 44),
            otms: get_u16(buf, at + 52),
            cts: get_u64(buf, at + 54),
            ctms: get_u16(buf, at + 62),
        },
    }
}

/// Encodes `records` into one page of exactly `page_size` bytes.
///
/// # Panics
///
/// Panics if `records` is empty or exceeds [`page_capacity`] — the store
/// packs pages itself, so either is a logic error, not an input error.
pub fn encode_page(page_size: usize, records: &[StoredRecord]) -> Vec<u8> {
    assert!(!records.is_empty(), "a page holds at least one record");
    assert!(
        records.len() <= page_capacity(page_size),
        "page overflow: {} records > capacity {}",
        records.len(),
        page_capacity(page_size)
    );
    let mut buf = vec![0u8; page_size];
    buf[0..4].copy_from_slice(&PAGE_MAGIC);
    buf[4] = PAGE_VERSION;
    let count = records.len() as u16;
    put_u16(&mut buf, 6, count);
    let min_ts = records.iter().map(|s| s.timestamp_micros).min().unwrap();
    let max_ts = records.iter().map(|s| s.timestamp_micros).max().unwrap();
    put_u64(&mut buf, 8, min_ts);
    put_u64(&mut buf, 16, max_ts);
    for (i, s) in records.iter().enumerate() {
        pack_record(&mut buf, HEADER_LEN + i * RECORD_LEN, s);
    }
    let sum = fnv1a(&buf[6..HEADER_LEN - 8]) ^ fnv1a(&buf[HEADER_LEN..]);
    put_u64(&mut buf, 24, sum);
    buf
}

/// Decodes one page buffer back into its records, verifying magic,
/// version, bounds, and checksum.
///
/// # Errors
///
/// Returns [`StoreError::Corrupt`] naming what failed to verify.
pub fn decode_page(buf: &[u8]) -> Result<Vec<StoredRecord>, StoreError> {
    if buf.len() < HEADER_LEN {
        return Err(StoreError::Corrupt(format!(
            "page buffer of {} bytes is shorter than the header",
            buf.len()
        )));
    }
    if buf[0..4] != PAGE_MAGIC {
        return Err(StoreError::Corrupt("bad page magic".to_string()));
    }
    if buf[4] != PAGE_VERSION {
        return Err(StoreError::Corrupt(format!(
            "unsupported page version {}",
            buf[4]
        )));
    }
    let count = get_u16(buf, 6) as usize;
    if HEADER_LEN + count * RECORD_LEN > buf.len() {
        return Err(StoreError::Corrupt(format!(
            "page claims {count} records, more than fit in {} bytes",
            buf.len()
        )));
    }
    let sum = fnv1a(&buf[6..HEADER_LEN - 8]) ^ fnv1a(&buf[HEADER_LEN..]);
    if sum != get_u64(buf, 24) {
        return Err(StoreError::Corrupt("page checksum mismatch".to_string()));
    }
    let mut out = Vec::with_capacity(count);
    for i in 0..count {
        out.push(unpack_record(buf, HEADER_LEN + i * RECORD_LEN));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stored(n: u64) -> StoredRecord {
        StoredRecord {
            timestamp_micros: 1000 + n,
            record: AccessRecord {
                access_number: n,
                fid: FileId(n * 7),
                fsid: DeviceId((n % 5) as u32),
                rb: n * 100,
                wb: n,
                ots: n,
                otms: (n % 1000) as u16,
                cts: n + 1,
                ctms: ((n + 3) % 1000) as u16,
            },
        }
    }

    #[test]
    fn capacity_accounts_for_header() {
        assert_eq!(page_capacity(4096), (4096 - 32) / 64);
        assert_eq!(page_capacity(65536), (65536 - 32) / 64);
    }

    #[test]
    fn page_size_bounds() {
        assert!(check_page_size(4096).is_ok());
        assert!(check_page_size(65536).is_ok());
        assert!(check_page_size(2048).is_err());
        assert!(check_page_size(128 * 1024).is_err());
    }

    #[test]
    fn encode_decode_round_trip() {
        let records: Vec<StoredRecord> = (0..50).map(stored).collect();
        let buf = encode_page(4096, &records);
        assert_eq!(buf.len(), 4096);
        let back = decode_page(&buf).unwrap();
        assert_eq!(back, records);
    }

    #[test]
    fn header_carries_time_span() {
        let records: Vec<StoredRecord> = (0..10).map(stored).collect();
        let buf = encode_page(4096, &records);
        assert_eq!(get_u64(&buf, 8), 1000);
        assert_eq!(get_u64(&buf, 16), 1009);
    }

    #[test]
    fn full_page_round_trips() {
        let cap = page_capacity(4096);
        let records: Vec<StoredRecord> = (0..cap as u64).map(stored).collect();
        let back = decode_page(&encode_page(4096, &records)).unwrap();
        assert_eq!(back.len(), cap);
        assert_eq!(back, records);
    }

    #[test]
    #[should_panic(expected = "page overflow")]
    fn over_capacity_panics() {
        let cap = page_capacity(4096);
        let records: Vec<StoredRecord> = (0..=cap as u64).map(stored).collect();
        encode_page(4096, &records);
    }

    #[test]
    fn corruption_is_detected() {
        let records: Vec<StoredRecord> = (0..8).map(stored).collect();
        let mut buf = encode_page(4096, &records);
        // Flip one record byte: checksum must catch it.
        buf[HEADER_LEN + 5] ^= 0xff;
        assert!(matches!(decode_page(&buf), Err(StoreError::Corrupt(_))));
    }

    #[test]
    fn bad_magic_version_and_count_are_rejected() {
        let records = vec![stored(0)];
        let good = encode_page(4096, &records);
        let mut bad = good.clone();
        bad[0] = b'X';
        assert!(decode_page(&bad).is_err());
        let mut bad = good.clone();
        bad[4] = 9;
        assert!(decode_page(&bad).is_err());
        let mut bad = good.clone();
        // Claim more records than the buffer holds.
        put_u16(&mut bad, 6, 9999);
        assert!(decode_page(&bad).is_err());
        assert!(decode_page(&good[..16]).is_err());
    }
}
