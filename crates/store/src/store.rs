//! [`PagedStore`]: the cold half of the ReplayDB — packed pages on disk,
//! timestamp indexes in memory, positioned reads through a small cache.
//!
//! ## Layout
//!
//! A store directory holds three files:
//!
//! * `pages.bin` — fixed-size pages appended end-to-end (see
//!   [`crate::page`]). Page `i` lives at `i * page_size`, read via
//!   `pread` (no seek, no global file lock).
//! * `index.json` — the persisted [`TimeIndex`], rewritten atomically at
//!   each checkpoint so open never scans every page.
//! * `store.manifest` — the [`Manifest`]: the commit point. Pages and
//!   index beyond the manifest are an uncommitted tail, rolled back on
//!   open.
//!
//! ## Crash-safe checkpoint ordering
//!
//! [`PagedStore::absorb_segments`] drains sealed WAL segments in four
//! ordered steps — append pages, fsync pages + write index, commit
//! manifest (atomic rename), delete segments. A crash between any two
//! steps recovers exactly-once: before the manifest commit the new pages
//! are truncated away and the segments replay in full; after it the
//! segments are recorded as absorbed and are deleted, not replayed. The
//! [`FaultPoint`] hook lets tests kill the pipeline at each boundary and
//! prove that argument.
//!
//! ## Queries over overlapping pages
//!
//! Shards clamp time independently, so pages from different checkpoint
//! cycles may overlap in time. "The x most recent" therefore walks spans
//! in descending `max_ts` order and keeps reading while a span could
//! still contain a record newer than the x-th-newest seen so far — the
//! walk stops at the first span whose `max_ts` falls below that
//! threshold, which is correct because thresholds only rise.

use std::collections::BTreeMap;
use std::collections::HashMap;
use std::fs::{File, OpenOptions};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use geomancy_replaydb::wal as rwal;
use geomancy_replaydb::StoredRecord;
use geomancy_sim::record::{AccessRecord, DeviceId, FileId};
use parking_lot::{Mutex, RwLock};

use crate::index::{PageSpan, TimeIndex};
use crate::manifest::Manifest;
use crate::page::{check_page_size, decode_page, encode_page, page_capacity};
use crate::StoreError;

/// Page-file name inside a store directory.
pub const PAGES_FILE: &str = "pages.bin";
/// Index-file name inside a store directory.
pub const INDEX_FILE: &str = "index.json";
/// Manifest-file name inside a store directory.
pub const MANIFEST_FILE: &str = "store.manifest";

/// Store tuning knobs.
#[derive(Debug, Clone)]
pub struct StoreConfig {
    /// Fixed page size in bytes (4–64 KiB). Baked into the store at
    /// creation; reopening with a different size is an error.
    pub page_size: usize,
    /// Pages held decoded in the in-process cache.
    pub cache_pages: usize,
}

impl Default for StoreConfig {
    fn default() -> Self {
        StoreConfig {
            page_size: 16 * 1024,
            cache_pages: 64,
        }
    }
}

/// What [`PagedStore::open`] had to repair.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Bytes of uncommitted page tail truncated from `pages.bin` (a
    /// crash between page append and manifest commit).
    pub truncated_bytes: u64,
    /// Whether the index was rebuilt by scanning committed pages (index
    /// file missing, stale, or corrupt).
    pub index_rebuilt: bool,
}

/// Where [`PagedStore::absorb_segments`] is killed, for crash-injection
/// tests. Each point simulates a crash *after* the named step completed
/// and before the next began.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultPoint {
    /// Pages appended to `pages.bin`; index and manifest untouched.
    AfterPageWrite,
    /// Pages fsynced and index written; manifest not committed.
    AfterIndexWrite,
    /// Manifest committed; absorbed segments not yet deleted.
    AfterManifestCommit,
}

/// Summary of one [`PagedStore::absorb_segments`] run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct AbsorbReport {
    /// Segments replayed into pages this run.
    pub segments_absorbed: usize,
    /// Records appended to the store this run.
    pub records_absorbed: u64,
    /// Pages appended this run.
    pub pages_added: u32,
    /// Already-absorbed orphan segments deleted without replaying (crash
    /// between a previous run's manifest commit and its deletions).
    pub orphans_deleted: usize,
}

/// Decoded-page LRU cache keyed by page number. Pages are immutable once
/// written, so cached copies never go stale.
#[derive(Debug, Default)]
struct PageCache {
    entries: HashMap<u32, (Arc<Vec<StoredRecord>>, u64)>,
    tick: u64,
}

impl PageCache {
    fn get(&mut self, page: u32) -> Option<Arc<Vec<StoredRecord>>> {
        self.tick += 1;
        let tick = self.tick;
        self.entries.get_mut(&page).map(|(records, used)| {
            *used = tick;
            Arc::clone(records)
        })
    }

    fn insert(&mut self, page: u32, records: Arc<Vec<StoredRecord>>, capacity: usize) {
        if capacity == 0 {
            return;
        }
        self.tick += 1;
        if self.entries.len() >= capacity && !self.entries.contains_key(&page) {
            if let Some((&oldest, _)) = self.entries.iter().min_by_key(|(_, (_, used))| *used) {
                self.entries.remove(&oldest);
            }
        }
        self.entries.insert(page, (records, self.tick));
    }
}

/// The paged cold store. Writers need `&mut self`; queries take `&self`
/// (the page cache hides behind its own mutex), so a shared store behind
/// an `RwLock` serves concurrent readers.
#[derive(Debug)]
pub struct PagedStore {
    dir: PathBuf,
    config: StoreConfig,
    file: File,
    /// Pages written (committed + uncommitted tail).
    pages: u32,
    index: TimeIndex,
    manifest: Manifest,
    cache: Mutex<PageCache>,
    /// Positioned page reads that went to disk.
    pub preads: AtomicU64,
    /// Page reads served from the cache.
    pub cache_hits: AtomicU64,
}

/// A shared handle: many readers, one writer (the checkpointer).
pub type SharedPagedStore = Arc<RwLock<PagedStore>>;

impl PagedStore {
    /// Opens (creating if needed) the store in `dir`, rolling back any
    /// uncommitted tail and rebuilding the index if it is missing, stale,
    /// or corrupt. Returns the store and what recovery had to do.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::Config`] on a bad page size or a page-size
    /// mismatch with an existing store, [`StoreError::Corrupt`] when
    /// `pages.bin` is shorter than the manifest commits, or any I/O
    /// error.
    pub fn open(
        dir: impl AsRef<Path>,
        config: StoreConfig,
    ) -> Result<(Self, RecoveryReport), StoreError> {
        check_page_size(config.page_size)?;
        let dir = dir.as_ref().to_path_buf();
        std::fs::create_dir_all(&dir)?;
        let manifest_path = dir.join(MANIFEST_FILE);
        let manifest =
            Manifest::load(&manifest_path)?.unwrap_or_else(|| Manifest::empty(config.page_size));
        if manifest.page_size != config.page_size as u64 {
            return Err(StoreError::Config(format!(
                "store was created with {}-byte pages, asked to open with {}",
                manifest.page_size, config.page_size
            )));
        }
        let file = OpenOptions::new()
            .create(true)
            .truncate(false)
            .read(true)
            .write(true)
            .open(dir.join(PAGES_FILE))?;
        let committed_len = manifest.committed_pages as u64 * config.page_size as u64;
        let len = file.metadata()?.len();
        let mut report = RecoveryReport::default();
        if len > committed_len {
            // Uncommitted tail from a crash between page append and
            // manifest commit: those records still live in their WAL
            // segments, so dropping the tail loses nothing.
            file.set_len(committed_len)?;
            file.sync_all()?;
            report.truncated_bytes = len - committed_len;
        } else if len < committed_len {
            return Err(StoreError::Corrupt(format!(
                "pages.bin is {len} bytes but the manifest commits {committed_len}"
            )));
        }
        let index_path = dir.join(INDEX_FILE);
        let index = match TimeIndex::load(&index_path) {
            Ok(ix)
                if ix.page_count() == manifest.committed_pages as usize
                    && ix.total_records() == manifest.total_records =>
            {
                ix
            }
            Err(StoreError::Io(e))
                if e.kind() == std::io::ErrorKind::NotFound && manifest.committed_pages == 0 =>
            {
                TimeIndex::new()
            }
            // Missing-but-nonempty, stale (crash after an index write
            // whose manifest never committed), or corrupt: the index is
            // derived data — rebuild it from the committed pages.
            Ok(_) | Err(StoreError::Io(_)) | Err(StoreError::Corrupt(_)) => {
                report.index_rebuilt = true;
                Self::scan_index(&file, config.page_size, manifest.committed_pages)?
            }
            Err(e) => return Err(e),
        };
        let pages = manifest.committed_pages;
        Ok((
            PagedStore {
                dir,
                config,
                file,
                pages,
                index,
                manifest,
                cache: Mutex::new(PageCache::default()),
                preads: AtomicU64::new(0),
                cache_hits: AtomicU64::new(0),
            },
            report,
        ))
    }

    /// Rebuilds a [`TimeIndex`] by decoding every committed page.
    fn scan_index(file: &File, page_size: usize, pages: u32) -> Result<TimeIndex, StoreError> {
        let mut index = TimeIndex::new();
        let mut buf = vec![0u8; page_size];
        for page in 0..pages {
            read_exact_at(file, &mut buf, page as u64 * page_size as u64)?;
            let records = decode_page(&buf)?;
            index.add_page(page, &records);
        }
        Ok(index)
    }

    /// The store directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Wraps the store in the shared many-readers/one-writer handle.
    pub fn into_shared(self) -> SharedPagedStore {
        Arc::new(RwLock::new(self))
    }

    /// The configured page size in bytes.
    pub fn page_size(&self) -> usize {
        self.config.page_size
    }

    /// Pages written (committed plus any uncommitted tail).
    pub fn page_count(&self) -> u32 {
        self.pages
    }

    /// Bytes of page storage on disk.
    pub fn cold_bytes(&self) -> u64 {
        self.pages as u64 * self.config.page_size as u64
    }

    /// Records stored (committed plus any uncommitted tail).
    pub fn total_records(&self) -> u64 {
        self.index.total_records()
    }

    /// Largest ingest timestamp in the store, or `None` when empty.
    pub fn max_timestamp_micros(&self) -> Option<u64> {
        self.index.pages().iter().map(|s| s.max_ts).max()
    }

    /// Devices with at least one stored record.
    pub fn devices(&self) -> Vec<DeviceId> {
        self.index.devices().collect()
    }

    /// Appends `records` as new pages (full pages plus one sealed partial
    /// page). The pages are written and indexed but **not committed** —
    /// they become durable only at the next [`PagedStore::commit`] (or
    /// the commit inside [`PagedStore::absorb_segments`]); until then a
    /// reopen rolls them back. Returns the number of pages added.
    ///
    /// `records` must be sorted by `(timestamp_micros, access_number)` —
    /// the caller merges shard streams before appending.
    ///
    /// # Errors
    ///
    /// Returns an I/O error if a page write fails.
    pub fn append_records(&mut self, records: &[StoredRecord]) -> Result<u32, StoreError> {
        debug_assert!(
            records.windows(2).all(|w| {
                (w[0].timestamp_micros, w[0].record.access_number)
                    <= (w[1].timestamp_micros, w[1].record.access_number)
            }),
            "append_records requires (timestamp, access_number) order"
        );
        let capacity = page_capacity(self.config.page_size);
        let mut added = 0u32;
        for chunk in records.chunks(capacity) {
            let page = self.pages;
            let buf = encode_page(self.config.page_size, chunk);
            write_all_at(&self.file, &buf, page as u64 * self.config.page_size as u64)?;
            self.index.add_page(page, chunk);
            self.pages += 1;
            added += 1;
        }
        Ok(added)
    }

    /// Commits everything appended so far: fsync the pages, persist the
    /// index, then atomically commit the manifest (optionally updating
    /// the per-shard absorbed-segment floors). On return the appended
    /// records are durable.
    ///
    /// # Errors
    ///
    /// Returns an I/O error from any of the three steps; the store is
    /// safe to reopen regardless of where it failed (the manifest rename
    /// is the only commit point).
    pub fn commit(&mut self, absorbed: Option<Vec<u64>>) -> Result<(), StoreError> {
        self.file.sync_data()?;
        self.index.save(&self.dir.join(INDEX_FILE))?;
        self.commit_manifest(absorbed)
    }

    /// The manifest half of [`PagedStore::commit`], split out so the
    /// fault-injection hook can stop between index write and commit.
    fn commit_manifest(&mut self, absorbed: Option<Vec<u64>>) -> Result<(), StoreError> {
        let mut manifest = self.manifest.clone();
        manifest.committed_pages = self.pages;
        manifest.total_records = self.index.total_records();
        if let Some(absorbed) = absorbed {
            manifest.absorbed = absorbed;
        }
        manifest.commit(&self.dir.join(MANIFEST_FILE))?;
        self.manifest = manifest;
        Ok(())
    }

    /// Per-shard absorbed-segment floors from the manifest (empty until
    /// the first absorb).
    pub fn absorbed(&self) -> &[u64] {
        &self.manifest.absorbed
    }

    /// Drains sealed WAL segments from `wal_dir` into the store — the
    /// checkpointer's core, and the recovery path at open (one call with
    /// no fault absorbs whatever a crash left behind).
    ///
    /// For each of `shards` shards: segments with `seq` at or below the
    /// manifest's absorbed floor are deleted unreplayed (they committed
    /// in a previous run); the rest replay, merge into one
    /// `(timestamp, access_number)`-ordered stream, append as pages, and
    /// commit, after which the consumed segments are deleted.
    ///
    /// `fault` kills the pipeline at the named boundary (see
    /// [`FaultPoint`]) for crash-injection tests; production passes
    /// `None`.
    ///
    /// # Errors
    ///
    /// Returns an I/O error, or [`StoreError::Wal`] if a segment fails to
    /// replay (corruption before its tail).
    pub fn absorb_segments(
        &mut self,
        wal_dir: &Path,
        shards: usize,
        fault: Option<FaultPoint>,
    ) -> Result<AbsorbReport, StoreError> {
        let mut report = AbsorbReport::default();
        let mut absorbed = self.manifest.absorbed.clone();
        if absorbed.len() < shards {
            absorbed.resize(shards, 0);
        }
        let mut records: Vec<StoredRecord> = Vec::new();
        let mut consumed: Vec<PathBuf> = Vec::new();
        for (shard, floor) in absorbed.iter_mut().enumerate().take(shards) {
            for (seq, path) in rwal::list_segments(wal_dir, shard)? {
                if seq <= *floor {
                    // Absorbed by a committed checkpoint whose deletions a
                    // crash interrupted: replaying it would double-apply.
                    std::fs::remove_file(&path)?;
                    report.orphans_deleted += 1;
                    continue;
                }
                let (db, replayed) = rwal::recover(&path).map_err(StoreError::Wal)?;
                records.extend(db.records().copied());
                report.segments_absorbed += 1;
                report.records_absorbed += replayed;
                *floor = seq;
                consumed.push(path);
            }
        }
        if records.is_empty() {
            // Nothing to absorb; only commit if orphan floors moved (they
            // did not — floors only move when a segment replays), so this
            // is a pure no-op apart from orphan deletion.
            return Ok(report);
        }
        records.sort_by_key(|s| (s.timestamp_micros, s.record.access_number));
        report.pages_added = self.append_records(&records)?;
        if fault == Some(FaultPoint::AfterPageWrite) {
            return Ok(report);
        }
        self.file.sync_data()?;
        self.index.save(&self.dir.join(INDEX_FILE))?;
        if fault == Some(FaultPoint::AfterIndexWrite) {
            return Ok(report);
        }
        self.commit_manifest(Some(absorbed))?;
        if fault == Some(FaultPoint::AfterManifestCommit) {
            return Ok(report);
        }
        for path in consumed {
            std::fs::remove_file(path)?;
        }
        File::open(wal_dir)?.sync_all()?;
        Ok(report)
    }

    /// Reads one page through the cache.
    fn read_page(&self, page: u32) -> Result<Arc<Vec<StoredRecord>>, StoreError> {
        if let Some(hit) = self.cache.lock().get(page) {
            self.cache_hits.fetch_add(1, Ordering::Relaxed);
            return Ok(hit);
        }
        let mut buf = vec![0u8; self.config.page_size];
        read_exact_at(
            &self.file,
            &mut buf,
            page as u64 * self.config.page_size as u64,
        )?;
        self.preads.fetch_add(1, Ordering::Relaxed);
        let records = Arc::new(decode_page(&buf)?);
        self.cache
            .lock()
            .insert(page, Arc::clone(&records), self.config.cache_pages);
        Ok(records)
    }

    /// The threshold walk of the module docs: newest-first over `spans`,
    /// filtered by `keep`, stopping once no remaining span can beat the
    /// x-th-newest record found. Returns the newest `x`, oldest first.
    fn collect_recent(
        &self,
        spans: &[PageSpan],
        x: usize,
        keep: impl Fn(&StoredRecord) -> bool,
    ) -> Result<Vec<AccessRecord>, StoreError> {
        if x == 0 || spans.is_empty() {
            return Ok(Vec::new());
        }
        let mut order: Vec<PageSpan> = spans.to_vec();
        order.sort_by(|a, b| b.max_ts.cmp(&a.max_ts).then(b.page.cmp(&a.page)));
        let mut collected: Vec<StoredRecord> = Vec::new();
        let mut threshold: Option<u64> = None;
        for span in &order {
            if let Some(t) = threshold {
                if span.max_ts < t {
                    break;
                }
            }
            let page = self.read_page(span.page)?;
            collected.extend(page.iter().filter(|s| keep(s)).copied());
            if collected.len() >= x {
                collected.sort_by_key(|s| {
                    std::cmp::Reverse((s.timestamp_micros, s.record.access_number))
                });
                // Dropping past x is safe: a dropped record is older than
                // the current x-th newest, and the threshold only rises.
                collected.truncate(x);
                threshold = Some(collected[x - 1].timestamp_micros);
            }
        }
        collected.sort_by_key(|s| (s.timestamp_micros, s.record.access_number));
        let start = collected.len().saturating_sub(x);
        Ok(collected[start..].iter().map(|s| s.record).collect())
    }

    /// The `x` most recent records overall, oldest of them first.
    ///
    /// # Errors
    ///
    /// Returns an I/O or corruption error from page reads.
    pub fn recent(&self, x: usize) -> Result<Vec<AccessRecord>, StoreError> {
        self.collect_recent(self.index.pages(), x, |_| true)
    }

    /// The `x` most recent records for one device, oldest first.
    ///
    /// # Errors
    ///
    /// Returns an I/O or corruption error from page reads.
    pub fn recent_for_device(
        &self,
        device: DeviceId,
        x: usize,
    ) -> Result<Vec<AccessRecord>, StoreError> {
        self.collect_recent(self.index.spans_for_device(device), x, move |s| {
            s.record.fsid == device
        })
    }

    /// The `x` most recent records for one file, oldest first.
    ///
    /// # Errors
    ///
    /// Returns an I/O or corruption error from page reads.
    pub fn recent_for_file(&self, fid: FileId, x: usize) -> Result<Vec<AccessRecord>, StoreError> {
        self.collect_recent(self.index.spans_for_file(fid), x, move |s| {
            s.record.fid == fid
        })
    }

    /// The `x` most recent records for every device with any, keyed by
    /// device — the training-batch query.
    ///
    /// # Errors
    ///
    /// Returns an I/O or corruption error from page reads.
    pub fn recent_per_device(
        &self,
        x: usize,
    ) -> Result<BTreeMap<DeviceId, Vec<AccessRecord>>, StoreError> {
        let mut out = BTreeMap::new();
        for device in self.index.devices().collect::<Vec<_>>() {
            let records = self.recent_for_device(device, x)?;
            if !records.is_empty() {
                out.insert(device, records);
            }
        }
        Ok(out)
    }

    /// Records ingested in `[from_micros, to_micros)`, ordered by
    /// `(timestamp, access_number)`.
    ///
    /// # Errors
    ///
    /// Returns an I/O or corruption error from page reads.
    pub fn range(&self, from_micros: u64, to_micros: u64) -> Result<Vec<AccessRecord>, StoreError> {
        if from_micros >= to_micros {
            return Ok(Vec::new());
        }
        let mut hits: Vec<StoredRecord> = Vec::new();
        for span in self.index.pages() {
            if span.max_ts < from_micros || span.min_ts >= to_micros {
                continue;
            }
            let page = self.read_page(span.page)?;
            hits.extend(
                page.iter()
                    .filter(|s| (from_micros..to_micros).contains(&s.timestamp_micros))
                    .copied(),
            );
        }
        hits.sort_by_key(|s| (s.timestamp_micros, s.record.access_number));
        Ok(hits.into_iter().map(|s| s.record).collect())
    }

    /// Stored records ingested strictly after `after_micros`, ordered by
    /// `(timestamp, access_number)` — the cold half of the incremental-
    /// retraining delta query. Pages whose whole span is at or before the
    /// watermark are skipped without a read, so the cost scales with the
    /// delta, not the history.
    ///
    /// # Errors
    ///
    /// Returns an I/O or corruption error from page reads.
    pub fn records_since(&self, after_micros: u64) -> Result<Vec<StoredRecord>, StoreError> {
        let mut hits: Vec<StoredRecord> = Vec::new();
        for span in self.index.pages() {
            if span.max_ts <= after_micros {
                continue;
            }
            let page = self.read_page(span.page)?;
            hits.extend(
                page.iter()
                    .filter(|s| s.timestamp_micros > after_micros)
                    .copied(),
            );
        }
        hits.sort_by_key(|s| (s.timestamp_micros, s.record.access_number));
        Ok(hits)
    }

    /// Bounded cursor export for replica catch-up: matching records with
    /// `timestamp_micros > after_ts` (or `>= after_ts` when
    /// `include_ties`), ordered by `(timestamp, access_number)`, cut near
    /// `limit` records but always extended to a timestamp boundary — a
    /// chunk never splits a run of equal timestamps, so the next cursor
    /// (`last returned ts`) resumes without loss. `limit == 0` means
    /// unbounded. The second return is `true` when matching records newer
    /// than the returned chunk remain.
    ///
    /// Pages whose span cannot reach past the cursor are skipped without
    /// a read, and once `limit` candidates are in hand, spans that start
    /// past the running cutoff are skipped too — cost scales with the
    /// chunk plus page overlap, not the full history.
    ///
    /// # Errors
    ///
    /// Returns an I/O or corruption error from page reads.
    pub fn export_matching(
        &self,
        after_ts: u64,
        include_ties: bool,
        limit: usize,
        pred: impl Fn(&StoredRecord) -> bool,
    ) -> Result<(Vec<StoredRecord>, bool), StoreError> {
        let keep_ts = |ts: u64| {
            if include_ties {
                ts >= after_ts
            } else {
                ts > after_ts
            }
        };
        let mut spans: Vec<PageSpan> = self
            .index
            .pages()
            .iter()
            .filter(|s| keep_ts(s.max_ts))
            .copied()
            .collect();
        spans.sort_by_key(|s| (s.min_ts, s.page));
        let mut hits: Vec<StoredRecord> = Vec::new();
        let mut skipped_newer = false;
        for span in &spans {
            if limit != 0 && hits.len() >= limit {
                hits.sort_by_key(|s| (s.timestamp_micros, s.record.access_number));
                let cutoff = hits[limit - 1].timestamp_micros;
                if span.min_ts > cutoff {
                    // Every record in this span is strictly newer than the
                    // running cutoff, so it cannot shrink the chunk or tie
                    // with its boundary — the next round will read it.
                    skipped_newer = true;
                    continue;
                }
            }
            let page = self.read_page(span.page)?;
            hits.extend(
                page.iter()
                    .filter(|s| keep_ts(s.timestamp_micros) && pred(s))
                    .copied(),
            );
        }
        hits.sort_by_key(|s| (s.timestamp_micros, s.record.access_number));
        let mut more = skipped_newer;
        if limit != 0 && hits.len() > limit {
            let cutoff = hits[limit - 1].timestamp_micros;
            let end = hits.partition_point(|s| s.timestamp_micros <= cutoff);
            if end < hits.len() {
                hits.truncate(end);
                more = true;
            }
        }
        Ok((hits, more))
    }

    /// Largest `timestamp_micros` among records matching `pred`, or
    /// `None` when nothing matches — the catch-up cursor recomputed from
    /// store state alone. Walks spans in descending `max_ts` order and
    /// stops at the first span that cannot beat the best match, mirroring
    /// the [`PagedStore::recent`] threshold argument.
    ///
    /// # Errors
    ///
    /// Returns an I/O or corruption error from page reads.
    pub fn max_timestamp_matching(
        &self,
        pred: impl Fn(&StoredRecord) -> bool,
    ) -> Result<Option<u64>, StoreError> {
        let mut order: Vec<PageSpan> = self.index.pages().to_vec();
        order.sort_by(|a, b| b.max_ts.cmp(&a.max_ts).then(b.page.cmp(&a.page)));
        let mut best: Option<u64> = None;
        for span in &order {
            if let Some(b) = best {
                if span.max_ts <= b {
                    break;
                }
            }
            let page = self.read_page(span.page)?;
            if let Some(ts) = page
                .iter()
                .filter(|s| pred(s))
                .map(|s| s.timestamp_micros)
                .max()
            {
                best = Some(best.map_or(ts, |b| b.max(ts)));
            }
        }
        Ok(best)
    }

    /// Appends `records` (sorted internally) and commits them in the same
    /// crash-safe order as [`PagedStore::absorb_segments`]: append pages,
    /// fsync + write index, commit manifest (optionally updating the
    /// per-shard absorbed floors). The catch-up apply path on a follower.
    /// Returns the number of pages added.
    ///
    /// `fault` kills the pipeline at the named boundary for
    /// crash-injection tests; a kill before the manifest commit leaves an
    /// uncommitted tail that reopen rolls back, so a re-driven catch-up
    /// round re-sends the same chunk exactly once.
    ///
    /// # Errors
    ///
    /// Returns an I/O error from any step; the store is safe to reopen
    /// regardless of where it failed.
    pub fn import_records(
        &mut self,
        records: &[StoredRecord],
        absorbed: Option<Vec<u64>>,
        fault: Option<FaultPoint>,
    ) -> Result<u32, StoreError> {
        let mut sorted: Vec<StoredRecord> = records.to_vec();
        sorted.sort_by_key(|s| (s.timestamp_micros, s.record.access_number));
        let added = self.append_records(&sorted)?;
        if fault == Some(FaultPoint::AfterPageWrite) {
            return Ok(added);
        }
        self.file.sync_data()?;
        self.index.save(&self.dir.join(INDEX_FILE))?;
        if fault == Some(FaultPoint::AfterIndexWrite) {
            return Ok(added);
        }
        self.commit_manifest(absorbed)?;
        Ok(added)
    }
}

/// Positioned read: `pread` on unix, seek-and-read elsewhere.
fn read_exact_at(file: &File, buf: &mut [u8], offset: u64) -> Result<(), StoreError> {
    #[cfg(unix)]
    {
        use std::os::unix::fs::FileExt;
        file.read_exact_at(buf, offset)?;
    }
    #[cfg(not(unix))]
    {
        use std::io::{Read, Seek, SeekFrom};
        let mut f = file;
        f.seek(SeekFrom::Start(offset))?;
        f.read_exact(buf)?;
    }
    Ok(())
}

/// Positioned write: `pwrite` on unix, seek-and-write elsewhere.
fn write_all_at(file: &File, buf: &[u8], offset: u64) -> Result<(), StoreError> {
    #[cfg(unix)]
    {
        use std::os::unix::fs::FileExt;
        file.write_all_at(buf, offset)?;
    }
    #[cfg(not(unix))]
    {
        use std::io::{Seek, SeekFrom, Write};
        let mut f = file;
        f.seek(SeekFrom::Start(offset))?;
        f.write_all(buf)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stored(ts: u64, n: u64, fid: u64, dev: u32) -> StoredRecord {
        StoredRecord {
            timestamp_micros: ts,
            record: AccessRecord {
                access_number: n,
                fid: FileId(fid),
                fsid: DeviceId(dev),
                rb: 100,
                wb: 0,
                ots: ts,
                otms: 0,
                cts: ts + 1,
                ctms: 0,
            },
        }
    }

    fn temp_store(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("geomancy_store_test").join(name);
        std::fs::remove_dir_all(&dir).ok();
        dir
    }

    fn small_config() -> StoreConfig {
        StoreConfig {
            page_size: 4096,
            cache_pages: 4,
        }
    }

    #[test]
    fn append_commit_reopen_round_trip() {
        let dir = temp_store("roundtrip");
        let records: Vec<StoredRecord> = (0..300)
            .map(|n| stored(n, n, n % 7, (n % 3) as u32))
            .collect();
        {
            let (mut store, report) = PagedStore::open(&dir, small_config()).unwrap();
            assert_eq!(report, RecoveryReport::default());
            store.append_records(&records).unwrap();
            store.commit(None).unwrap();
            assert_eq!(store.total_records(), 300);
        }
        let (store, report) = PagedStore::open(&dir, small_config()).unwrap();
        assert_eq!(report, RecoveryReport::default());
        assert_eq!(store.total_records(), 300);
        assert_eq!(
            store.page_count() as usize,
            300usize.div_ceil(page_capacity(4096))
        );
        let recent = store.recent(5).unwrap();
        assert_eq!(recent.len(), 5);
        assert_eq!(recent[0].access_number, 295);
        assert_eq!(recent[4].access_number, 299);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn uncommitted_tail_rolls_back_on_open() {
        let dir = temp_store("rollback");
        let first: Vec<StoredRecord> = (0..100).map(|n| stored(n, n, 0, 0)).collect();
        let extra: Vec<StoredRecord> = (100..200).map(|n| stored(n, n, 0, 0)).collect();
        {
            let (mut store, _) = PagedStore::open(&dir, small_config()).unwrap();
            store.append_records(&first).unwrap();
            store.commit(None).unwrap();
            // Appended but never committed: must vanish on reopen.
            store.append_records(&extra).unwrap();
            assert_eq!(store.total_records(), 200);
        }
        let (store, report) = PagedStore::open(&dir, small_config()).unwrap();
        assert!(report.truncated_bytes > 0);
        assert_eq!(store.total_records(), 100);
        assert_eq!(store.recent(1).unwrap()[0].access_number, 99);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn missing_index_is_rebuilt_from_pages() {
        let dir = temp_store("reindex");
        let records: Vec<StoredRecord> = (0..150)
            .map(|n| stored(n, n, n % 5, (n % 2) as u32))
            .collect();
        {
            let (mut store, _) = PagedStore::open(&dir, small_config()).unwrap();
            store.append_records(&records).unwrap();
            store.commit(None).unwrap();
        }
        std::fs::remove_file(dir.join(INDEX_FILE)).unwrap();
        let (store, report) = PagedStore::open(&dir, small_config()).unwrap();
        assert!(report.index_rebuilt);
        assert_eq!(store.total_records(), 150);
        let dev0 = store.recent_for_device(DeviceId(0), 10).unwrap();
        assert_eq!(dev0.len(), 10);
        assert!(dev0.iter().all(|r| r.fsid == DeviceId(0)));
        // Corrupt index also rebuilds rather than failing open.
        std::fs::write(dir.join(INDEX_FILE), "garbage\n").unwrap();
        let (_, report) = PagedStore::open(&dir, small_config()).unwrap();
        assert!(report.index_rebuilt);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn page_size_mismatch_is_refused() {
        let dir = temp_store("pagesize");
        {
            let (mut store, _) = PagedStore::open(&dir, small_config()).unwrap();
            store.append_records(&[stored(0, 0, 0, 0)]).unwrap();
            store.commit(None).unwrap();
        }
        let other = StoreConfig {
            page_size: 8192,
            cache_pages: 4,
        };
        assert!(matches!(
            PagedStore::open(&dir, other),
            Err(StoreError::Config(_))
        ));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn queries_match_replaydb_semantics() {
        // The store must answer exactly like an in-memory ReplayDb over
        // the same records — the facade's contract.
        use geomancy_replaydb::ReplayDb;
        let dir = temp_store("contract");
        let mut db = ReplayDb::new();
        let mut records = Vec::new();
        for n in 0..500u64 {
            let s = stored(n / 3, n, n % 11, (n % 4) as u32);
            db.insert(s.timestamp_micros, s.record);
            records.push(s);
        }
        let (mut store, _) = PagedStore::open(&dir, small_config()).unwrap();
        store.append_records(&records).unwrap();
        store.commit(None).unwrap();
        for x in [1usize, 7, 100, 1000] {
            assert_eq!(store.recent(x).unwrap(), db.recent(x), "recent({x})");
            for d in 0..4u32 {
                assert_eq!(
                    store.recent_for_device(DeviceId(d), x).unwrap(),
                    db.recent_for_device(DeviceId(d), x),
                    "recent_for_device({d}, {x})"
                );
            }
            for f in 0..11u64 {
                assert_eq!(
                    store.recent_for_file(FileId(f), x).unwrap(),
                    db.recent_for_file(FileId(f), x),
                    "recent_for_file({f}, {x})"
                );
            }
            assert_eq!(
                store.recent_per_device(x).unwrap(),
                db.recent_per_device(x),
                "recent_per_device({x})"
            );
        }
        assert_eq!(store.range(50, 120).unwrap(), db.range(50, 120));
        assert_eq!(store.range(120, 50).unwrap(), db.range(120, 50));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn recent_is_correct_across_overlapping_appends() {
        // Two appends whose time ranges interleave (different shards
        // lagging differently): the threshold walk must still find the
        // true newest x.
        let dir = temp_store("overlap");
        let (mut store, _) = PagedStore::open(&dir, small_config()).unwrap();
        let a: Vec<StoredRecord> = (0..100).map(|n| stored(n * 2, n, 0, 0)).collect();
        store.append_records(&a).unwrap();
        // Second batch overlaps the first's range [0, 200).
        let b: Vec<StoredRecord> = (0..100)
            .map(|n| stored(n * 2 + 1, 1000 + n, 1, 1))
            .collect();
        store.append_records(&b).unwrap();
        store.commit(None).unwrap();
        let recent = store.recent(4).unwrap();
        let ts: Vec<u64> = recent.iter().map(|r| r.ots).collect();
        assert_eq!(ts, [196, 197, 198, 199]);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn cache_serves_repeat_reads() {
        let dir = temp_store("cache");
        let records: Vec<StoredRecord> = (0..200).map(|n| stored(n, n, 0, 0)).collect();
        let (mut store, _) = PagedStore::open(&dir, small_config()).unwrap();
        store.append_records(&records).unwrap();
        store.commit(None).unwrap();
        store.recent(10).unwrap();
        let preads_after_first = store.preads.load(Ordering::Relaxed);
        assert!(preads_after_first >= 1);
        store.recent(10).unwrap();
        assert_eq!(store.preads.load(Ordering::Relaxed), preads_after_first);
        assert!(store.cache_hits.load(Ordering::Relaxed) >= 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn export_matching_pages_through_ties_at_boundaries() {
        // Records with three-way timestamp ties across several pages: a
        // cursor walk with a small limit must visit every record exactly
        // once, never splitting a tie run across chunks.
        let dir = temp_store("export");
        let records: Vec<StoredRecord> = (0..300u64)
            .map(|n| stored(n / 3, n, n % 5, (n % 2) as u32))
            .collect();
        let (mut store, _) = PagedStore::open(&dir, small_config()).unwrap();
        store.append_records(&records).unwrap();
        store.commit(None).unwrap();

        let mut seen: Vec<u64> = Vec::new();
        let mut cursor = 0u64;
        let mut first = true;
        loop {
            let (chunk, more) = store
                .export_matching(cursor, first, 7, |s| s.record.fsid == DeviceId(0))
                .unwrap();
            first = false;
            for s in &chunk {
                assert_eq!(s.record.fsid, DeviceId(0));
                seen.push(s.record.access_number);
            }
            if let Some(last) = chunk.last() {
                // A chunk must close its tie run: nothing left at its
                // boundary timestamp.
                let (tie_check, _) = store
                    .export_matching(last.timestamp_micros, true, 0, |s| {
                        s.record.fsid == DeviceId(0)
                            && s.timestamp_micros == last.timestamp_micros
                    })
                    .unwrap();
                let boundary = chunk
                    .iter()
                    .filter(|s| s.timestamp_micros == last.timestamp_micros)
                    .count();
                assert_eq!(tie_check.len(), boundary, "tie run split at {cursor}");
                cursor = last.timestamp_micros;
            }
            if !more {
                break;
            }
            assert!(!chunk.is_empty(), "more=true must make progress");
        }
        let expect: Vec<u64> = (0..300u64).filter(|n| n % 2 == 0).collect();
        assert_eq!(seen, expect);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn max_timestamp_matching_finds_per_predicate_max() {
        let dir = temp_store("maxmatch");
        let (mut store, _) = PagedStore::open(&dir, small_config()).unwrap();
        assert_eq!(store.max_timestamp_matching(|_| true).unwrap(), None);
        let records: Vec<StoredRecord> = (0..200u64)
            .map(|n| stored(n, n, n % 3, (n % 2) as u32))
            .collect();
        store.append_records(&records).unwrap();
        store.commit(None).unwrap();
        assert_eq!(store.max_timestamp_matching(|_| true).unwrap(), Some(199));
        assert_eq!(
            store
                .max_timestamp_matching(|s| s.record.fsid == DeviceId(0))
                .unwrap(),
            Some(198)
        );
        assert_eq!(
            store
                .max_timestamp_matching(|s| s.record.fsid == DeviceId(1))
                .unwrap(),
            Some(199)
        );
        assert_eq!(
            store
                .max_timestamp_matching(|s| s.record.fid == FileId(99))
                .unwrap(),
            None
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn import_records_is_crash_safe_at_every_boundary() {
        // A fault before the manifest commit must roll the chunk back on
        // reopen; at or after it, the chunk and its floors are durable.
        let base: Vec<StoredRecord> = (0..50).map(|n| stored(n, n, 0, 0)).collect();
        let chunk: Vec<StoredRecord> = (50..120).map(|n| stored(n, n, 1, 1)).collect();
        for fault in [
            Some(FaultPoint::AfterPageWrite),
            Some(FaultPoint::AfterIndexWrite),
            Some(FaultPoint::AfterManifestCommit),
            None,
        ] {
            let dir = temp_store(&format!("import_{fault:?}"));
            {
                let (mut store, _) = PagedStore::open(&dir, small_config()).unwrap();
                store.import_records(&base, None, None).unwrap();
                store
                    .import_records(&chunk, Some(vec![7, 9]), fault)
                    .unwrap();
            }
            let (store, _) = PagedStore::open(&dir, small_config()).unwrap();
            let durable = !matches!(
                fault,
                Some(FaultPoint::AfterPageWrite) | Some(FaultPoint::AfterIndexWrite)
            );
            if durable {
                assert_eq!(store.total_records(), 120, "{fault:?}");
                assert_eq!(store.absorbed(), &[7, 9], "{fault:?}");
                assert_eq!(store.max_timestamp_micros(), Some(119));
            } else {
                assert_eq!(store.total_records(), 50, "{fault:?}");
                assert_eq!(store.absorbed(), &[] as &[u64], "{fault:?}");
                assert_eq!(store.max_timestamp_micros(), Some(49));
            }
            std::fs::remove_dir_all(&dir).ok();
        }
    }

    #[test]
    fn stats_report_pages_and_bytes() {
        let dir = temp_store("stats");
        let (mut store, _) = PagedStore::open(&dir, small_config()).unwrap();
        assert_eq!(store.page_count(), 0);
        assert_eq!(store.cold_bytes(), 0);
        assert_eq!(store.max_timestamp_micros(), None);
        let records: Vec<StoredRecord> = (0..100).map(|n| stored(n, n, 0, 0)).collect();
        store.append_records(&records).unwrap();
        store.commit(None).unwrap();
        assert!(store.page_count() >= 2);
        assert_eq!(store.cold_bytes(), store.page_count() as u64 * 4096);
        assert_eq!(store.max_timestamp_micros(), Some(99));
        assert_eq!(store.devices(), vec![DeviceId(0)]);
        std::fs::remove_dir_all(&dir).ok();
    }
}
