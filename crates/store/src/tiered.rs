//! [`TieredDb`]: the ReplayDB re-fronted as a bounded in-memory hot tail
//! over the cold paged store.
//!
//! Inserts land in the hot [`ReplayDb`]; [`TieredDb::checkpoint`] moves
//! everything but the newest `hot_tail` records into the
//! [`PagedStore`] and commits. Records therefore live in exactly one
//! tier (hot until checkpointed, cold after), and every hot record is
//! newer than every cold record, so queries stitch the tiers with a
//! simple prefix: answer from the hot tail, and when it cannot supply
//! `x` records, top up from the cold store. The query contract —
//! `recent`, `recent_for_device`, `recent_for_file`,
//! `recent_per_device`, `range` — matches [`ReplayDb`] exactly, which
//! the test suite checks against a reference in-memory database.

use std::collections::BTreeMap;
use std::path::Path;

use geomancy_replaydb::{ReplayDb, StoredRecord};
use geomancy_sim::record::{AccessRecord, DeviceId, FileId};

use crate::store::{PagedStore, RecoveryReport, StoreConfig};
use crate::StoreError;

/// A hot in-memory tail over a cold paged store.
#[derive(Debug)]
pub struct TieredDb {
    hot: ReplayDb,
    cold: PagedStore,
    hot_tail: usize,
}

impl TieredDb {
    /// Opens (creating if needed) the cold store in `dir` and starts with
    /// an empty hot tail bounded at `hot_tail` records.
    ///
    /// # Errors
    ///
    /// See [`PagedStore::open`].
    ///
    /// # Panics
    ///
    /// Panics if `hot_tail` is zero — a tier that can never hold a record
    /// would force every query to disk and every insert to checkpoint.
    pub fn open(
        dir: impl AsRef<Path>,
        config: StoreConfig,
        hot_tail: usize,
    ) -> Result<(Self, RecoveryReport), StoreError> {
        assert!(hot_tail > 0, "hot tail must hold at least one record");
        let (cold, report) = PagedStore::open(dir, config)?;
        Ok((
            TieredDb {
                hot: ReplayDb::new(),
                cold,
                hot_tail,
            },
            report,
        ))
    }

    /// Records across both tiers.
    pub fn len(&self) -> u64 {
        self.hot.len() as u64 + self.cold.total_records()
    }

    /// Whether both tiers are empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Records currently in the hot tail.
    pub fn hot_len(&self) -> usize {
        self.hot.len()
    }

    /// The cold store (for stats and direct cold queries).
    pub fn cold(&self) -> &PagedStore {
        &self.cold
    }

    /// Appends one record (to the hot tail).
    ///
    /// # Panics
    ///
    /// Panics if `timestamp_micros` is older than the newest stored
    /// record — same time-ordered contract as [`ReplayDb::insert`].
    pub fn insert(&mut self, timestamp_micros: u64, record: AccessRecord) {
        if let Some(cold_max) = self.cold.max_timestamp_micros() {
            assert!(
                timestamp_micros >= cold_max,
                "records must be inserted in time order"
            );
        }
        self.hot.insert(timestamp_micros, record);
    }

    /// Appends a batch sharing one timestamp.
    pub fn insert_batch(&mut self, timestamp_micros: u64, records: &[AccessRecord]) {
        for &r in records {
            self.insert(timestamp_micros, r);
        }
    }

    /// Moves everything but the newest `hot_tail` records into the cold
    /// store and commits it durably. Returns the number of records made
    /// cold. A hot tail at or under the bound is a no-op.
    ///
    /// # Errors
    ///
    /// Returns an I/O error from the store; the hot tail is only trimmed
    /// after the cold commit succeeds, so a failed checkpoint loses
    /// nothing.
    pub fn checkpoint(&mut self) -> Result<u64, StoreError> {
        if self.hot.len() <= self.hot_tail {
            return Ok(0);
        }
        let overflow = self.hot.len() - self.hot_tail;
        let cold_bound: Vec<StoredRecord> = self.hot.records().take(overflow).copied().collect();
        self.cold.append_records(&cold_bound)?;
        self.cold.commit(None)?;
        self.hot.compact(self.hot_tail);
        Ok(overflow as u64)
    }

    /// The `x` most recent records overall, oldest of them first.
    ///
    /// # Errors
    ///
    /// Returns an I/O or corruption error from cold page reads.
    pub fn recent(&self, x: usize) -> Result<Vec<AccessRecord>, StoreError> {
        let hot = self.hot.recent(x);
        self.stitch(hot, x, |need| self.cold.recent(need))
    }

    /// The `x` most recent records for one device, oldest first.
    ///
    /// # Errors
    ///
    /// Returns an I/O or corruption error from cold page reads.
    pub fn recent_for_device(
        &self,
        device: DeviceId,
        x: usize,
    ) -> Result<Vec<AccessRecord>, StoreError> {
        let hot = self.hot.recent_for_device(device, x);
        self.stitch(hot, x, |need| self.cold.recent_for_device(device, need))
    }

    /// The `x` most recent records for one file, oldest first.
    ///
    /// # Errors
    ///
    /// Returns an I/O or corruption error from cold page reads.
    pub fn recent_for_file(&self, fid: FileId, x: usize) -> Result<Vec<AccessRecord>, StoreError> {
        let hot = self.hot.recent_for_file(fid, x);
        self.stitch(hot, x, |need| self.cold.recent_for_file(fid, need))
    }

    /// The `x` most recent records for every device with any, keyed by
    /// device — the training-batch query, spanning both tiers.
    ///
    /// # Errors
    ///
    /// Returns an I/O or corruption error from cold page reads.
    pub fn recent_per_device(
        &self,
        x: usize,
    ) -> Result<BTreeMap<DeviceId, Vec<AccessRecord>>, StoreError> {
        let mut devices: Vec<DeviceId> = self.hot.devices_seen();
        for d in self.cold.devices() {
            if !devices.contains(&d) {
                devices.push(d);
            }
        }
        let mut out = BTreeMap::new();
        for device in devices {
            let records = self.recent_for_device(device, x)?;
            if !records.is_empty() {
                out.insert(device, records);
            }
        }
        Ok(out)
    }

    /// Records ingested in `[from_micros, to_micros)`, oldest first.
    ///
    /// # Errors
    ///
    /// Returns an I/O or corruption error from cold page reads.
    pub fn range(&self, from_micros: u64, to_micros: u64) -> Result<Vec<AccessRecord>, StoreError> {
        let mut out = self.cold.range(from_micros, to_micros)?;
        out.extend(self.hot.range(from_micros, to_micros));
        Ok(out)
    }

    /// Stored records ingested strictly after `after_micros`, oldest
    /// first — the tiered delta query behind incremental retraining. The
    /// cold timestamp index skips untouched pages, and the hot tail is a
    /// binary search, so the cost scales with the delta rather than the
    /// history. Every hot record is newer than every cold record, so the
    /// stitch is a plain concatenation.
    ///
    /// # Errors
    ///
    /// Returns an I/O or corruption error from cold page reads.
    pub fn records_since(&self, after_micros: u64) -> Result<Vec<StoredRecord>, StoreError> {
        let mut out = self.cold.records_since(after_micros)?;
        out.extend(self.hot.records_since(after_micros));
        Ok(out)
    }

    /// Completes a hot-tier answer from the cold tier: every hot record
    /// is newer than every cold record, so the cold top-up is a strict
    /// prefix.
    fn stitch(
        &self,
        hot: Vec<AccessRecord>,
        x: usize,
        cold: impl FnOnce(usize) -> Result<Vec<AccessRecord>, StoreError>,
    ) -> Result<Vec<AccessRecord>, StoreError> {
        if hot.len() >= x {
            return Ok(hot);
        }
        let mut out = cold(x - hot.len())?;
        out.extend(hot);
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(n: u64, fid: u64, dev: u32) -> AccessRecord {
        AccessRecord {
            access_number: n,
            fid: FileId(fid),
            fsid: DeviceId(dev),
            rb: 100,
            wb: 0,
            ots: n,
            otms: 0,
            cts: n + 1,
            ctms: 0,
        }
    }

    fn temp_dir(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("geomancy_tiered_test").join(name);
        std::fs::remove_dir_all(&dir).ok();
        dir
    }

    fn config() -> StoreConfig {
        StoreConfig {
            page_size: 4096,
            cache_pages: 8,
        }
    }

    /// The facade must be indistinguishable from a plain ReplayDb fed the
    /// same stream, across checkpoints that push history to disk.
    #[test]
    fn matches_replaydb_across_checkpoints() {
        let dir = temp_dir("contract");
        let (mut tiered, _) = TieredDb::open(&dir, config(), 50).unwrap();
        let mut reference = ReplayDb::new();
        for n in 0..1000u64 {
            let r = rec(n, n % 13, (n % 5) as u32);
            tiered.insert(n, r);
            reference.insert(n, r);
            if n % 300 == 299 {
                tiered.checkpoint().unwrap();
            }
        }
        assert_eq!(tiered.len(), 1000);
        assert!(tiered.hot_len() <= 50 + 300);
        assert!(tiered.cold().total_records() >= 600);
        for x in [1usize, 10, 75, 400, 5000] {
            assert_eq!(
                tiered.recent(x).unwrap(),
                reference.recent(x),
                "recent({x})"
            );
            for d in 0..5u32 {
                assert_eq!(
                    tiered.recent_for_device(DeviceId(d), x).unwrap(),
                    reference.recent_for_device(DeviceId(d), x),
                    "device {d} x {x}"
                );
            }
            for f in [0u64, 7, 12] {
                assert_eq!(
                    tiered.recent_for_file(FileId(f), x).unwrap(),
                    reference.recent_for_file(FileId(f), x),
                    "file {f} x {x}"
                );
            }
            assert_eq!(
                tiered.recent_per_device(x).unwrap(),
                reference.recent_per_device(x),
                "per-device x {x}"
            );
        }
        assert_eq!(tiered.range(100, 900).unwrap(), reference.range(100, 900));
        for watermark in [0u64, 250, 599, 999, 2000] {
            assert_eq!(
                tiered.records_since(watermark).unwrap(),
                reference.records_since(watermark),
                "records_since({watermark})"
            );
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    /// The delta query must stitch cold pages and the hot tail and skip
    /// everything at or before the watermark.
    #[test]
    fn records_since_spans_both_tiers() {
        let dir = temp_dir("since");
        let (mut tiered, _) = TieredDb::open(&dir, config(), 20).unwrap();
        for n in 0..200u64 {
            tiered.insert(n, rec(n, 0, 0));
        }
        tiered.checkpoint().unwrap();
        assert_eq!(tiered.hot_len(), 20);
        // Watermark inside cold history: delta crosses the tier boundary.
        let delta = tiered.records_since(150).unwrap();
        assert_eq!(delta.len(), 49);
        assert_eq!(delta[0].record.access_number, 151);
        assert_eq!(delta.last().unwrap().record.access_number, 199);
        // Watermark at the newest record: empty delta.
        assert!(tiered.records_since(199).unwrap().is_empty());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn checkpoint_trims_hot_and_is_idempotent() {
        let dir = temp_dir("trim");
        let (mut tiered, _) = TieredDb::open(&dir, config(), 10).unwrap();
        for n in 0..100u64 {
            tiered.insert(n, rec(n, 0, 0));
        }
        assert_eq!(tiered.checkpoint().unwrap(), 90);
        assert_eq!(tiered.hot_len(), 10);
        assert_eq!(tiered.cold().total_records(), 90);
        assert_eq!(tiered.checkpoint().unwrap(), 0);
        assert_eq!(tiered.len(), 100);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn reopen_serves_cold_history() {
        let dir = temp_dir("reopen");
        {
            let (mut tiered, _) = TieredDb::open(&dir, config(), 10).unwrap();
            for n in 0..80u64 {
                tiered.insert(n, rec(n, n % 3, (n % 2) as u32));
            }
            tiered.checkpoint().unwrap();
        }
        let (mut tiered, _) = TieredDb::open(&dir, config(), 10).unwrap();
        // The unchecked hot tail (the newest 10) died with the process —
        // in the service those records live in the shard WAL tail; here
        // only the cold 70 survive.
        assert_eq!(tiered.len(), 70);
        let recent = tiered.recent(5).unwrap();
        assert_eq!(recent.last().unwrap().access_number, 69);
        // New inserts must respect cold time order.
        tiered.insert(200, rec(200, 0, 0));
        assert_eq!(tiered.len(), 71);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    #[should_panic(expected = "time order")]
    fn inserts_older_than_cold_history_panic() {
        let dir = temp_dir("order");
        let (mut tiered, _) = TieredDb::open(&dir, config(), 1).unwrap();
        tiered.insert(100, rec(0, 0, 0));
        tiered.insert(101, rec(1, 0, 0));
        tiered.checkpoint().unwrap();
        tiered.insert(5, rec(2, 0, 0));
    }
}
