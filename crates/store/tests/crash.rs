//! Crash-injection tests for the checkpoint pipeline.
//!
//! [`PagedStore::absorb_segments`] drains sealed WAL segments in four
//! ordered steps: append pages, fsync + write index, commit manifest,
//! delete segments. These tests kill the pipeline at every
//! [`FaultPoint`] boundary, "crash" by dropping the store, reopen, and
//! prove the invariant the ordering exists to guarantee: **every sealed
//! record is recovered exactly once** — never lost (a pre-commit crash
//! replays the segments), never double-applied (a post-commit crash
//! deletes the already-absorbed orphans instead of replaying them).
//! Directed tests pin each boundary; a property test drives random
//! multi-round interleavings of seals, faults, and recoveries.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

use geomancy_replaydb::{list_segments, segment_path, shard_path, WalWriter};
use geomancy_sim::record::{AccessRecord, DeviceId, FileId};
use geomancy_store::{FaultPoint, PagedStore, StoreConfig};
use proptest::prelude::*;

/// Unique per-test temp dirs: parallel tests and repeated proptest cases
/// must never share a store directory.
static DIR_SEQ: AtomicU64 = AtomicU64::new(0);

fn temp_dirs(name: &str) -> (PathBuf, PathBuf) {
    let unique = DIR_SEQ.fetch_add(1, Ordering::Relaxed);
    let base = std::env::temp_dir()
        .join("geomancy_store_crash_test")
        .join(format!("{name}-{}-{unique}", std::process::id()));
    std::fs::remove_dir_all(&base).ok();
    let store = base.join("store");
    let wal = base.join("wal");
    std::fs::create_dir_all(&store).unwrap();
    std::fs::create_dir_all(&wal).unwrap();
    (store, wal)
}

fn cleanup(store_dir: &Path) {
    if let Some(base) = store_dir.parent() {
        std::fs::remove_dir_all(base).ok();
    }
}

fn config() -> StoreConfig {
    StoreConfig {
        page_size: 4096,
        cache_pages: 4,
    }
}

fn record(n: u64) -> AccessRecord {
    AccessRecord {
        access_number: n,
        fid: FileId(n % 7),
        fsid: DeviceId((n % 3) as u32),
        rb: 64,
        wb: 0,
        ots: n,
        otms: 0,
        cts: n + 1,
        ctms: 0,
    }
}

/// Appends `count` records (globally numbered from `*next_n`) to shard
/// `shard`'s WAL and seals it as segment `seq` — the shard actor's side
/// of a checkpoint. Returns the access numbers sealed.
fn seal_segment(
    wal_dir: &Path,
    shard: usize,
    seq: u64,
    next_n: &mut u64,
    count: usize,
) -> Vec<u64> {
    let mut wal = WalWriter::open(shard_path(wal_dir, shard)).unwrap();
    let mut sealed = Vec::with_capacity(count);
    for _ in 0..count {
        let n = *next_n;
        *next_n += 1;
        wal.append(n, record(n)).unwrap();
        sealed.push(n);
    }
    wal.seal_to(segment_path(wal_dir, shard, seq)).unwrap();
    sealed
}

/// Every access number in the store, sorted — compared against the
/// sealed set, this catches both a lost record and a double-applied one.
fn stored_access_numbers(store: &PagedStore) -> Vec<u64> {
    let total = store.total_records() as usize;
    let mut ns: Vec<u64> = store
        .recent(total + 10)
        .unwrap()
        .iter()
        .map(|r| r.access_number)
        .collect();
    ns.sort_unstable();
    ns
}

/// Seals 30 records on each of two shards, kills the absorb at `fault`,
/// reopens, recovers, and asserts exactly-once.
fn crash_at(name: &str, fault: FaultPoint) {
    const SHARDS: usize = 2;
    let (store_dir, wal_dir) = temp_dirs(name);
    let mut n = 0u64;
    let mut sealed = Vec::new();
    for shard in 0..SHARDS {
        sealed.extend(seal_segment(&wal_dir, shard, 1, &mut n, 30));
    }

    {
        let (mut store, _) = PagedStore::open(&store_dir, config()).unwrap();
        store
            .absorb_segments(&wal_dir, SHARDS, Some(fault))
            .unwrap();
        // Crash: the store drops here with the pipeline half-done.
    }

    let (mut store, report) = PagedStore::open(&store_dir, config()).unwrap();
    match fault {
        // Nothing committed: the appended tail must roll back and the
        // records must still live in their segments.
        FaultPoint::AfterPageWrite | FaultPoint::AfterIndexWrite => {
            assert!(
                report.truncated_bytes > 0,
                "uncommitted tail must roll back"
            );
            assert_eq!(store.total_records(), 0);
        }
        // Committed: the records are durable, only deletions are pending.
        FaultPoint::AfterManifestCommit => {
            assert_eq!(report.truncated_bytes, 0);
            assert_eq!(store.total_records(), 60);
        }
    }
    if fault == FaultPoint::AfterIndexWrite {
        // The index on disk describes pages the manifest never committed:
        // open must detect the mismatch and rebuild from committed pages.
        assert!(report.index_rebuilt);
    }

    let recovery = store.absorb_segments(&wal_dir, SHARDS, None).unwrap();
    match fault {
        FaultPoint::AfterManifestCommit => {
            assert_eq!(
                recovery.orphans_deleted, SHARDS,
                "absorbed segments are deleted, not replayed"
            );
            assert_eq!(recovery.records_absorbed, 0);
        }
        _ => {
            assert_eq!(recovery.segments_absorbed, SHARDS);
            assert_eq!(recovery.records_absorbed, 60);
        }
    }

    sealed.sort_unstable();
    assert_eq!(
        stored_access_numbers(&store),
        sealed,
        "exactly-once violated"
    );
    for shard in 0..SHARDS {
        assert!(
            list_segments(&wal_dir, shard).unwrap().is_empty(),
            "recovery must drain the WAL dir"
        );
    }
    cleanup(&store_dir);
}

#[test]
fn crash_after_page_write_replays_segments() {
    crash_at("page-write", FaultPoint::AfterPageWrite);
}

#[test]
fn crash_after_index_write_rolls_back_and_rebuilds() {
    crash_at("index-write", FaultPoint::AfterIndexWrite);
}

#[test]
fn crash_after_manifest_commit_never_double_applies() {
    crash_at("manifest-commit", FaultPoint::AfterManifestCommit);
}

/// A crash between seal and absorb — the checkpointer died before ever
/// touching the store. The segments simply replay at the next absorb.
#[test]
fn crash_before_absorb_loses_nothing() {
    let (store_dir, wal_dir) = temp_dirs("pre-absorb");
    let mut n = 0u64;
    let mut sealed = Vec::new();
    for shard in 0..3 {
        sealed.extend(seal_segment(&wal_dir, shard, 1, &mut n, 10));
    }
    let (mut store, _) = PagedStore::open(&store_dir, config()).unwrap();
    let report = store.absorb_segments(&wal_dir, 3, None).unwrap();
    assert_eq!(report.segments_absorbed, 3);
    sealed.sort_unstable();
    assert_eq!(stored_access_numbers(&store), sealed);
    cleanup(&store_dir);
}

/// The recovery absorb itself crashes — a second fault on top of the
/// first. Exactly-once must still hold once a recovery finally lands.
#[test]
fn crash_during_recovery_still_converges() {
    let (store_dir, wal_dir) = temp_dirs("double-fault");
    let mut n = 0u64;
    let mut sealed = Vec::new();
    sealed.extend(seal_segment(&wal_dir, 0, 1, &mut n, 25));

    // First crash: index written, manifest not.
    {
        let (mut store, _) = PagedStore::open(&store_dir, config()).unwrap();
        store
            .absorb_segments(&wal_dir, 1, Some(FaultPoint::AfterIndexWrite))
            .unwrap();
    }
    // More records arrive while the service is "down", sealed at restart.
    sealed.extend(seal_segment(&wal_dir, 0, 2, &mut n, 15));
    // Second crash: recovery absorbs both segments but dies right after
    // the page write.
    {
        let (mut store, _) = PagedStore::open(&store_dir, config()).unwrap();
        store
            .absorb_segments(&wal_dir, 1, Some(FaultPoint::AfterPageWrite))
            .unwrap();
    }
    // Third time lucky.
    let (mut store, report) = PagedStore::open(&store_dir, config()).unwrap();
    assert!(report.truncated_bytes > 0);
    store.absorb_segments(&wal_dir, 1, None).unwrap();
    sealed.sort_unstable();
    assert_eq!(stored_access_numbers(&store), sealed);
    cleanup(&store_dir);
}

proptest! {
    /// Random multi-round interleavings: each round seals fresh records
    /// on every shard and runs an absorb that is killed at a random
    /// boundary (or not at all), crashing and reopening between rounds.
    /// After a final clean recovery, the store must hold every record
    /// ever sealed — each exactly once — and the WAL dir must be empty.
    #[test]
    fn sealed_records_survive_any_fault_interleaving(
        shards in 1usize..4,
        rounds in proptest::collection::vec((1usize..12, 0u8..4), 1..6),
    ) {
        let (store_dir, wal_dir) = temp_dirs("interleave");
        let mut n = 0u64;
        let mut seq = vec![0u64; shards];
        let mut sealed: Vec<u64> = Vec::new();
        for &(count, fault_code) in &rounds {
            for (shard, s) in seq.iter_mut().enumerate() {
                *s += 1;
                sealed.extend(seal_segment(&wal_dir, shard, *s, &mut n, count));
            }
            let fault = match fault_code {
                0 => None,
                1 => Some(FaultPoint::AfterPageWrite),
                2 => Some(FaultPoint::AfterIndexWrite),
                _ => Some(FaultPoint::AfterManifestCommit),
            };
            // Each round is its own process lifetime: open, absorb (and
            // maybe die mid-pipeline), drop.
            let (mut store, _) = PagedStore::open(&store_dir, config()).unwrap();
            store.absorb_segments(&wal_dir, shards, fault).unwrap();
        }
        // Final restart and clean recovery.
        let (mut store, _) = PagedStore::open(&store_dir, config()).unwrap();
        store.absorb_segments(&wal_dir, shards, None).unwrap();
        sealed.sort_unstable();
        prop_assert_eq!(stored_access_numbers(&store), sealed);
        for shard in 0..shards {
            prop_assert!(list_segments(&wal_dir, shard).unwrap().is_empty());
        }
        cleanup(&store_dir);
    }
}
