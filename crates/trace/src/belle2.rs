//! The BELLE II Monte-Carlo workload generator (§IV).
//!
//! The paper's driving workload "utilizes 24 ROOT files of size from 583 KB
//! to 1.1 GB", acts "as a suite of many applications reading and writing
//! many files individually", and in its "read-heavy simulations, each file
//! is accessed 10–20 times in succession" in a looping sequential scan.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use geomancy_sim::population::ZipfSampler;
use geomancy_sim::record::FileId;

/// Smallest ROOT file in the suite (583 KB).
pub const MIN_FILE_BYTES: u64 = 583_000;
/// Largest ROOT file in the suite (1.1 GB).
pub const MAX_FILE_BYTES: u64 = 1_100_000_000;
/// Number of ROOT files the workload uses.
pub const DEFAULT_FILE_COUNT: usize = 24;

/// A file in the workload's working set.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WorkloadFile {
    /// File identifier.
    pub fid: FileId,
    /// Size in bytes.
    pub size: u64,
    /// Logical path (ROOT files under a Monte-Carlo campaign directory).
    pub path: String,
}

/// One I/O operation of the workload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WorkloadOp {
    /// Target file.
    pub fid: FileId,
    /// `true` for a write (the occasional summary/ntuple update), `false`
    /// for the dominant reads.
    pub write: bool,
    /// Bytes accessed; `None` means the whole file.
    pub bytes: Option<u64>,
}

/// Generator for BELLE II-style runs.
#[derive(Debug, Clone)]
pub struct Belle2Workload {
    files: Vec<WorkloadFile>,
    rng: StdRng,
    /// Fraction of accesses that are writes (read-heavy default: 5 %).
    write_fraction: f64,
    runs_generated: u64,
    /// Cached zipf sampler for [`Self::zipf_run`], keyed by its exponent.
    zipf: Option<(f64, ZipfSampler)>,
}

impl Belle2Workload {
    /// Creates the standard 24-file workload.
    pub fn new(seed: u64) -> Self {
        Self::with_params(seed, DEFAULT_FILE_COUNT, 0)
    }

    /// Creates a workload with `file_count` files whose ids start at
    /// `fid_offset` — experiment 3 runs "a duplicate workload … accessing a
    /// different set of data", which is this constructor with a disjoint
    /// offset.
    ///
    /// # Panics
    ///
    /// Panics if `file_count` is zero.
    pub fn with_params(seed: u64, file_count: usize, fid_offset: u64) -> Self {
        assert!(file_count > 0, "workload needs at least one file");
        let mut rng = StdRng::seed_from_u64(seed);
        let mut files = Vec::with_capacity(file_count);
        for i in 0..file_count {
            // Log-uniform sizes: Monte-Carlo outputs cluster small with a
            // few large event files, spanning the paper's 583 KB – 1.1 GB.
            let log_min = (MIN_FILE_BYTES as f64).ln();
            let log_max = (MAX_FILE_BYTES as f64).ln();
            let u: f64 = rng.gen();
            let size = (log_min + u * (log_max - log_min)).exp() as u64;
            let fid = FileId(fid_offset + i as u64);
            files.push(WorkloadFile {
                fid,
                size: size.clamp(MIN_FILE_BYTES, MAX_FILE_BYTES),
                path: format!("belle2/mc{}/evtgen-{:02}.root", fid_offset, i),
            });
        }
        Belle2Workload {
            files,
            rng,
            write_fraction: 0.05,
            runs_generated: 0,
            zipf: None,
        }
    }

    /// Overrides the write fraction (default 5 %).
    ///
    /// # Panics
    ///
    /// Panics if `fraction` is outside `[0, 1]`.
    pub fn with_write_fraction(mut self, fraction: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&fraction),
            "fraction must be in [0, 1]"
        );
        self.write_fraction = fraction;
        self
    }

    /// The working set.
    pub fn files(&self) -> &[WorkloadFile] {
        &self.files
    }

    /// Number of runs generated so far.
    pub fn runs_generated(&self) -> u64 {
        self.runs_generated
    }

    /// Generates one run of the workload: a looping sequential scan where
    /// each file is read 10–20 times in succession, with the configured
    /// sprinkle of writes.
    pub fn next_run(&mut self) -> Vec<WorkloadOp> {
        let mut ops = Vec::new();
        for file in &self.files {
            let repeats = self.rng.gen_range(10..=20);
            for _ in 0..repeats {
                let write = self.rng.gen_bool(self.write_fraction);
                ops.push(WorkloadOp {
                    fid: file.fid,
                    write,
                    bytes: None,
                });
            }
        }
        self.runs_generated += 1;
        ops
    }

    /// Generates one zipf-sampled run: `ops` accesses drawn rank-skewed
    /// over the working set (file index = rank, so file 0 is hottest),
    /// with the configured write sprinkle. This is the access mix for
    /// populations far too large to scan sequentially — 100k–1M files
    /// where real traffic concentrates on a hot head.
    ///
    /// # Panics
    ///
    /// Panics if `exponent` is negative, NaN, or infinite.
    pub fn zipf_run(&mut self, ops: usize, exponent: f64) -> Vec<WorkloadOp> {
        let stale = match &self.zipf {
            Some((s, sampler)) => *s != exponent || sampler.len() != self.files.len(),
            None => true,
        };
        if stale {
            self.zipf = Some((exponent, ZipfSampler::new(self.files.len(), exponent)));
        }
        let (_, sampler) = self.zipf.as_ref().expect("sampler built above");
        let mut out = Vec::with_capacity(ops);
        for _ in 0..ops {
            let idx = sampler.sample(&mut self.rng);
            let write = self.rng.gen_bool(self.write_fraction);
            out.push(WorkloadOp {
                fid: self.files[idx].fid,
                write,
                bytes: None,
            });
        }
        self.runs_generated += 1;
        out
    }

    /// Generates a short run touching each file `repeats` times — used by
    /// tests and warm-up phases that need deterministic sizes.
    pub fn fixed_run(&mut self, repeats: usize) -> Vec<WorkloadOp> {
        let mut ops = Vec::new();
        for file in &self.files {
            for _ in 0..repeats {
                ops.push(WorkloadOp {
                    fid: file.fid,
                    write: false,
                    bytes: None,
                });
            }
        }
        self.runs_generated += 1;
        ops
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_has_24_files_in_size_range() {
        let w = Belle2Workload::new(1);
        assert_eq!(w.files().len(), 24);
        for f in w.files() {
            assert!(
                (MIN_FILE_BYTES..=MAX_FILE_BYTES).contains(&f.size),
                "size {} out of range",
                f.size
            );
        }
    }

    #[test]
    fn sizes_span_a_wide_range() {
        let w = Belle2Workload::new(2);
        let min = w.files().iter().map(|f| f.size).min().unwrap();
        let max = w.files().iter().map(|f| f.size).max().unwrap();
        assert!(max > min * 20, "sizes too uniform: {min}..{max}");
    }

    #[test]
    fn run_visits_each_file_10_to_20_times_in_succession() {
        let mut w = Belle2Workload::new(3);
        let run = w.next_run();
        // Count consecutive-run lengths per file.
        let mut idx = 0;
        let mut seen = Vec::new();
        while idx < run.len() {
            let fid = run[idx].fid;
            let mut count = 0;
            while idx < run.len() && run[idx].fid == fid {
                count += 1;
                idx += 1;
            }
            seen.push((fid, count));
        }
        assert_eq!(seen.len(), 24, "each file appears as one contiguous streak");
        for (fid, count) in seen {
            assert!((10..=20).contains(&count), "{fid} repeated {count} times");
        }
    }

    #[test]
    fn workload_is_read_heavy() {
        let mut w = Belle2Workload::new(4);
        let run = w.next_run();
        let writes = run.iter().filter(|op| op.write).count();
        assert!(
            (writes as f64) < run.len() as f64 * 0.15,
            "too many writes: {writes}/{}",
            run.len()
        );
    }

    #[test]
    fn offset_gives_disjoint_file_ids() {
        let a = Belle2Workload::new(1);
        let b = Belle2Workload::with_params(1, 24, 100);
        let ids_a: Vec<u64> = a.files().iter().map(|f| f.fid.0).collect();
        let ids_b: Vec<u64> = b.files().iter().map(|f| f.fid.0).collect();
        assert!(ids_a.iter().all(|i| !ids_b.contains(i)));
    }

    #[test]
    fn same_seed_reproduces_runs() {
        let mut a = Belle2Workload::new(9);
        let mut b = Belle2Workload::new(9);
        assert_eq!(a.next_run(), b.next_run());
        assert_eq!(a.next_run(), b.next_run());
    }

    #[test]
    fn fixed_run_is_exact() {
        let mut w = Belle2Workload::with_params(0, 3, 0);
        let run = w.fixed_run(2);
        assert_eq!(run.len(), 6);
        assert!(run.iter().all(|op| !op.write));
        assert_eq!(w.runs_generated(), 1);
    }

    #[test]
    #[should_panic(expected = "at least one file")]
    fn zero_files_panics() {
        let _ = Belle2Workload::with_params(0, 0, 0);
    }

    #[test]
    fn zipf_run_is_skewed_deterministic_and_exact_length() {
        let mut a = Belle2Workload::with_params(5, 1_000, 0);
        let mut b = Belle2Workload::with_params(5, 1_000, 0);
        let run_a = a.zipf_run(5_000, 1.0);
        assert_eq!(run_a, b.zipf_run(5_000, 1.0));
        assert_eq!(run_a.len(), 5_000);
        assert_eq!(a.runs_generated(), 1);
        // Low-rank files absorb most traffic under zipf(1.0).
        let head = run_a.iter().filter(|op| op.fid.0 < 10).count();
        assert!(
            head > run_a.len() / 5,
            "head too cold: {head}/{} ops in the top 10 of 1000 files",
            run_a.len()
        );
        // The tail is still visited.
        let distinct: std::collections::BTreeSet<u64> = run_a.iter().map(|op| op.fid.0).collect();
        assert!(
            distinct.len() > 100,
            "only {} distinct files",
            distinct.len()
        );
    }
}
