//! Multi-client workloads — the paper's closing future work: "we will be
//! able to get a better idea on how our workload scales when the system
//! and the number of clients increases."
//!
//! A [`ClientFleet`] runs `n` BELLE II-style clients, each with a private
//! file population, interleaving their operations round-robin the way
//! concurrent jobs interleave on a shared system.

use crate::belle2::{Belle2Workload, WorkloadFile, WorkloadOp};

/// An operation tagged with the client that issued it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClientOp {
    /// Issuing client (0-based).
    pub client: usize,
    /// The operation.
    pub op: WorkloadOp,
}

/// A fleet of concurrent workload clients.
#[derive(Debug, Clone)]
pub struct ClientFleet {
    clients: Vec<Belle2Workload>,
}

impl ClientFleet {
    /// Creates `clients` workloads of `files_per_client` files each, with
    /// disjoint file-id ranges (client `i` owns ids starting at
    /// `i * 10_000`).
    ///
    /// # Panics
    ///
    /// Panics if `clients` or `files_per_client` is zero.
    pub fn new(seed: u64, clients: usize, files_per_client: usize) -> Self {
        assert!(clients > 0, "a fleet needs at least one client");
        let clients = (0..clients)
            .map(|i| {
                Belle2Workload::with_params(
                    seed.wrapping_add(i as u64),
                    files_per_client,
                    i as u64 * 10_000,
                )
            })
            .collect();
        ClientFleet { clients }
    }

    /// Number of clients.
    pub fn len(&self) -> usize {
        self.clients.len()
    }

    /// Whether the fleet is empty (never true by construction).
    pub fn is_empty(&self) -> bool {
        self.clients.is_empty()
    }

    /// Every client's file population, in client order.
    pub fn files(&self) -> Vec<&[WorkloadFile]> {
        self.clients.iter().map(|c| c.files()).collect()
    }

    /// Generates one interleaved round: each client produces one run and
    /// the operations are merged round-robin (client 0's op, client 1's op,
    /// …), modeling concurrent execution on a shared system.
    pub fn next_round(&mut self) -> Vec<ClientOp> {
        let runs: Vec<Vec<WorkloadOp>> = self.clients.iter_mut().map(|c| c.next_run()).collect();
        let longest = runs.iter().map(|r| r.len()).max().unwrap_or(0);
        let mut merged = Vec::with_capacity(runs.iter().map(|r| r.len()).sum());
        for i in 0..longest {
            for (client, run) in runs.iter().enumerate() {
                if let Some(&op) = run.get(i) {
                    merged.push(ClientOp { client, op });
                }
            }
        }
        merged
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    #[test]
    fn fleet_has_disjoint_file_ids() {
        let fleet = ClientFleet::new(1, 4, 6);
        let mut seen = BTreeSet::new();
        for files in fleet.files() {
            for f in files {
                assert!(seen.insert(f.fid), "{} duplicated across clients", f.fid);
            }
        }
        assert_eq!(seen.len(), 24);
    }

    #[test]
    fn round_interleaves_clients() {
        let mut fleet = ClientFleet::new(2, 3, 4);
        let round = fleet.next_round();
        // The first three ops come from three distinct clients.
        let first_three: BTreeSet<usize> = round[..3].iter().map(|o| o.client).collect();
        assert_eq!(first_three.len(), 3);
        // Every client contributed.
        let all: BTreeSet<usize> = round.iter().map(|o| o.client).collect();
        assert_eq!(all.len(), 3);
    }

    #[test]
    fn round_preserves_per_client_op_order() {
        let mut fleet = ClientFleet::new(3, 2, 5);
        let mut reference = ClientFleet::new(3, 2, 5);
        let round = fleet.next_round();
        for client in 0..2 {
            let from_round: Vec<_> = round
                .iter()
                .filter(|o| o.client == client)
                .map(|o| o.op)
                .collect();
            let direct = reference.clients[client].next_run();
            assert_eq!(from_round, direct);
        }
    }

    #[test]
    fn fleet_is_deterministic() {
        let mut a = ClientFleet::new(9, 3, 4);
        let mut b = ClientFleet::new(9, 3, 4);
        assert_eq!(a.next_round(), b.next_round());
    }

    #[test]
    #[should_panic(expected = "at least one client")]
    fn empty_fleet_panics() {
        let _ = ClientFleet::new(0, 0, 4);
    }
}
