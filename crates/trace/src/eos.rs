//! Synthetic CERN EOS access-log generator (§IV, §V-D).
//!
//! The paper mined the EOS file-transfer logs — 32 values per file
//! interaction — to discover which features correlate with throughput
//! (Figure 4). The real logs are not public, so this module generates a
//! synthetic trace whose *correlation structure* matches the figure:
//!
//! - `rb`, `wb` (bytes moved) — moderately positive,
//! - `ots`/`cts` (timestamps) — mildly positive (traffic drifts up),
//! - `otms`/`ctms` — weakly positive,
//! - `rt`, `wt` (read/write time) — strongly negative,
//! - `fid`, security/identity fields — near zero,
//! - `fsid` — mildly positive (faster pools get higher ids).
//!
//! The planted couplings are documented inline; everything is deterministic
//! for a given seed.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::stats::pearson;

/// One synthetic EOS log entry: 32 values describing a file interaction from
/// open to close, mirroring the schema of the EOS file-access reports.
#[derive(Debug, Clone, PartialEq)]
pub struct EosRecord {
    /// EOS file id.
    pub fid: u64,
    /// Filesystem (pool member) id.
    pub fsid: u32,
    /// Open timestamp, seconds.
    pub ots: u64,
    /// Open timestamp, millisecond part.
    pub otms: u16,
    /// Close timestamp, seconds.
    pub cts: u64,
    /// Close timestamp, millisecond part.
    pub ctms: u16,
    /// Bytes read.
    pub rb: u64,
    /// Bytes written.
    pub wb: u64,
    /// Cumulative read time, milliseconds.
    pub rt: f64,
    /// Cumulative write time, milliseconds.
    pub wt: f64,
    /// Number of read calls.
    pub nrc: u32,
    /// Number of write calls.
    pub nwc: u32,
    /// File size at open.
    pub osize: u64,
    /// File size at close.
    pub csize: u64,
    /// Forward seeks.
    pub sfwd: u32,
    /// Backward seeks.
    pub sbwd: u32,
    /// Large (>128 kB) forward seeks.
    pub sxlfwd: u32,
    /// Large backward seeks.
    pub sxlbwd: u32,
    /// Bytes traversed by forward seeks.
    pub nfwds: u64,
    /// Bytes traversed by backward seeks.
    pub nbwds: u64,
    /// Vector-read operations.
    pub rv_ops: u32,
    /// Bytes moved by vector reads.
    pub rvb: u64,
    /// Requesting user id.
    pub ruid: u32,
    /// Requesting group id.
    pub rgid: u32,
    /// Trace/session id.
    pub td: u64,
    /// Client host id.
    pub host: u32,
    /// Layout id.
    pub lid: u32,
    /// Encoded file path.
    pub path_id: u64,
    /// Application identifier (`secapp`).
    pub sec_app: u32,
    /// Client group (`secgrps`).
    pub sec_grps: u32,
    /// Client role (`secrole`).
    pub sec_role: u32,
    /// Transport protocol id.
    pub prot: u32,
}

impl EosRecord {
    /// Names of all 32 fields, in [`EosRecord::to_row`] order.
    pub const FIELD_NAMES: [&'static str; 32] = [
        "fid", "fsid", "ots", "otms", "cts", "ctms", "rb", "wb", "rt", "wt", "nrc", "nwc", "osize",
        "csize", "sfwd", "sbwd", "sxlfwd", "sxlbwd", "nfwds", "nbwds", "rv_ops", "rvb", "ruid",
        "rgid", "td", "host", "lid", "path_id", "sec_app", "sec_grps", "sec_role", "prot",
    ];

    /// All 32 values as a numeric row (categorical ids cast to `f64`).
    pub fn to_row(&self) -> [f64; 32] {
        [
            self.fid as f64,
            self.fsid as f64,
            self.ots as f64,
            self.otms as f64,
            self.cts as f64,
            self.ctms as f64,
            self.rb as f64,
            self.wb as f64,
            self.rt,
            self.wt,
            self.nrc as f64,
            self.nwc as f64,
            self.osize as f64,
            self.csize as f64,
            self.sfwd as f64,
            self.sbwd as f64,
            self.sxlfwd as f64,
            self.sxlbwd as f64,
            self.nfwds as f64,
            self.nbwds as f64,
            self.rv_ops as f64,
            self.rvb as f64,
            self.ruid as f64,
            self.rgid as f64,
            self.td as f64,
            self.host as f64,
            self.lid as f64,
            self.path_id as f64,
            self.sec_app as f64,
            self.sec_grps as f64,
            self.sec_role as f64,
            self.prot as f64,
        ]
    }

    /// Observed throughput of the interaction, bytes/second (the Figure 4
    /// correlation target).
    pub fn throughput(&self) -> f64 {
        let open = self.ots as f64 + self.otms as f64 / 1000.0;
        let close = self.cts as f64 + self.ctms as f64 / 1000.0;
        let dt = close - open;
        if dt <= 0.0 {
            0.0
        } else {
            (self.rb + self.wb) as f64 / dt
        }
    }
}

/// Deterministic generator of EOS-style traces.
#[derive(Debug, Clone)]
pub struct EosTraceGenerator {
    rng: StdRng,
    /// Number of filesystem pool members; ids are ordered slow → fast.
    pub pool_size: u32,
    /// Trace duration in seconds over which demand drifts upward.
    pub duration_secs: f64,
    clock: f64,
    next_td: u64,
}

impl EosTraceGenerator {
    /// Creates a generator with an EOS-like pool of 16 filesystems.
    pub fn new(seed: u64) -> Self {
        EosTraceGenerator {
            rng: StdRng::seed_from_u64(seed),
            pool_size: 16,
            duration_secs: 86_400.0,
            clock: 0.0,
            next_td: 1,
        }
    }

    /// Generates `n` records in timestamp order.
    pub fn generate(&mut self, n: usize) -> Vec<EosRecord> {
        (0..n).map(|_| self.next_record()).collect()
    }

    fn next_record(&mut self) -> EosRecord {
        let rng = &mut self.rng;
        // Inter-arrival: accesses land every few seconds.
        self.clock += rng.gen_range(0.2..6.0);
        let t = self.clock;

        // Pool member: higher fsid = faster disk pool (planting the mild
        // positive fsid correlation the paper observes for location).
        let fsid = rng.gen_range(0..self.pool_size);
        let base_speed = 40e6 + 25e6 * fsid as f64; // 40 MB/s .. ~440 MB/s

        // Demand drift: throughput improves slowly over the trace (the
        // analysis pool warms its caches), planting the mild positive
        // ots/cts correlation at any trace length.
        let drift = 1.0 + 0.25 * (t / 3_600.0);
        let noise = (0.35 * box_muller(rng)).exp();
        let tp = base_speed * drift * noise;

        // Interaction length: slower transfers hold files open longer
        // (d ∝ tp^-0.5), which simultaneously plants the positive bytes
        // correlation (w = tp·d ∝ tp^0.5) and the strongly negative rt/wt —
        // time *spent* inside reads is time the pool was slow.
        let d0 = 10f64.powf(rng.gen_range(-0.5..1.5)); // 0.3 s .. 30 s
        let duration =
            (d0 * (tp / 1e8).powf(-0.5)).clamp(0.005, 3_600.0) + rng.gen_range(0.002..0.010);
        let w = tp * duration;
        let read_heavy = rng.gen_bool(0.8);
        let (rb, wb) = if read_heavy {
            (w, w * rng.gen_range(0.0..0.05))
        } else {
            (w * rng.gen_range(0.1..0.4), w)
        };

        let rt = if rb > 0.0 {
            rb / tp * 1000.0 * rng.gen_range(0.85..1.0)
        } else {
            0.0
        };
        let wt = if wb > 0.0 {
            wb / tp * 1000.0 * rng.gen_range(0.85..1.0)
        } else {
            0.0
        };
        let rb_u = rb as u64;
        let wb_u = wb as u64;

        let ots = t as u64;
        let otms = ((t.fract()) * 1000.0) as u16;
        let close = t + duration;
        let cts = close as u64;
        let ctms = ((close.fract()) * 1000.0) as u16;

        let nrc = (rb / 131_072.0).ceil() as u32;
        let nwc = (wb / 131_072.0).ceil() as u32;
        let sfwd = rng.gen_range(0..(1 + (duration as u32).min(50)));
        let sbwd = rng.gen_range(0..(1 + sfwd / 2 + 1));

        EosRecord {
            fid: rng.gen_range(1..5_000_000),
            fsid,
            ots,
            otms,
            cts,
            ctms,
            rb: rb_u,
            wb: wb_u,
            rt,
            wt,
            nrc,
            nwc,
            osize: rb_u + rng.gen_range(0..1_000_000),
            csize: rb_u + wb_u,
            sfwd,
            sbwd,
            sxlfwd: sfwd / 3,
            sxlbwd: sbwd / 3,
            nfwds: sfwd as u64 * 262_144,
            nbwds: sbwd as u64 * 262_144,
            rv_ops: rng.gen_range(0..8),
            rvb: rng.gen_range(0..2_000_000),
            ruid: rng.gen_range(1000..1200),
            rgid: rng.gen_range(100..120),
            td: {
                self.next_td += 1;
                self.next_td
            },
            host: rng.gen_range(0..400),
            lid: rng.gen_range(0..6),
            path_id: rng.gen_range(1..1_000_000),
            sec_app: rng.gen_range(0..12),
            sec_grps: rng.gen_range(0..8),
            sec_role: rng.gen_range(0..4),
            prot: rng.gen_range(0..3),
        }
    }
}

/// Pearson correlation of every EOS field against throughput — the data
/// behind Figure 4. Returns `(field name, correlation)` in schema order.
///
/// # Panics
///
/// Panics if `records` is empty.
pub fn correlation_table(records: &[EosRecord]) -> Vec<(&'static str, f64)> {
    assert!(!records.is_empty(), "correlation of an empty trace");
    let tp: Vec<f64> = records.iter().map(|r| r.throughput()).collect();
    let rows: Vec<[f64; 32]> = records.iter().map(|r| r.to_row()).collect();
    EosRecord::FIELD_NAMES
        .iter()
        .enumerate()
        .map(|(col, &name)| {
            let xs: Vec<f64> = rows.iter().map(|row| row[col]).collect();
            (name, pearson(&xs, &tp))
        })
        .collect()
}

fn box_muller(rng: &mut StdRng) -> f64 {
    let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table(seed: u64, n: usize) -> Vec<(&'static str, f64)> {
        let mut gen = EosTraceGenerator::new(seed);
        correlation_table(&gen.generate(n))
    }

    fn corr_of(table: &[(&str, f64)], name: &str) -> f64 {
        table.iter().find(|(n, _)| *n == name).unwrap().1
    }

    #[test]
    fn record_has_32_fields() {
        assert_eq!(EosRecord::FIELD_NAMES.len(), 32);
        let mut gen = EosTraceGenerator::new(0);
        let rec = &gen.generate(1)[0];
        assert_eq!(rec.to_row().len(), 32);
    }

    #[test]
    fn throughput_positive_and_finite() {
        let mut gen = EosTraceGenerator::new(1);
        for rec in gen.generate(500) {
            let tp = rec.throughput();
            assert!(tp.is_finite() && tp > 0.0, "bad throughput {tp}");
        }
    }

    #[test]
    fn timestamps_are_ordered() {
        let mut gen = EosTraceGenerator::new(2);
        let recs = gen.generate(100);
        for r in &recs {
            let open = r.ots as f64 + r.otms as f64 / 1000.0;
            let close = r.cts as f64 + r.ctms as f64 / 1000.0;
            assert!(close >= open);
        }
        for w in recs.windows(2) {
            assert!(w[1].ots >= w[0].ots, "trace not time-ordered");
        }
    }

    #[test]
    fn bytes_positively_correlated_with_throughput() {
        let t = table(3, 8000);
        assert!(corr_of(&t, "rb") > 0.15, "rb corr {}", corr_of(&t, "rb"));
        assert!(corr_of(&t, "wb") > 0.05, "wb corr {}", corr_of(&t, "wb"));
    }

    #[test]
    fn service_times_strongly_negative() {
        let t = table(4, 8000);
        // rt/wt are time *spent*, so more time = less throughput.
        assert!(corr_of(&t, "rt") < corr_of(&t, "rb"));
        assert!(corr_of(&t, "rt") < -0.05, "rt corr {}", corr_of(&t, "rt"));
    }

    #[test]
    fn timestamps_mildly_positive() {
        let t = table(5, 8000);
        assert!(corr_of(&t, "ots") > 0.03, "ots corr {}", corr_of(&t, "ots"));
        assert!(corr_of(&t, "cts") > 0.03, "cts corr {}", corr_of(&t, "cts"));
    }

    #[test]
    fn identity_fields_near_zero() {
        let t = table(6, 8000);
        for name in ["fid", "ruid", "rgid", "sec_role", "prot"] {
            assert!(
                corr_of(&t, name).abs() < 0.08,
                "{name} corr {} should be ~0",
                corr_of(&t, name)
            );
        }
    }

    #[test]
    fn fsid_mildly_positive() {
        let t = table(7, 8000);
        assert!(
            corr_of(&t, "fsid") > 0.1,
            "fsid corr {}",
            corr_of(&t, "fsid")
        );
    }

    #[test]
    fn generator_is_deterministic() {
        let mut a = EosTraceGenerator::new(42);
        let mut b = EosTraceGenerator::new(42);
        assert_eq!(a.generate(50), b.generate(50));
    }
}
