//! Feature extraction: the six training features of §V-D, the path→numeric
//! encoding of §V-E, and min-max normalization.

use std::collections::HashMap;

use geomancy_sim::record::AccessRecord;
use serde::{Deserialize, Serialize};

/// Names of the six features selected from the EOS analysis, in the order
/// every feature vector uses.
pub const FEATURE_NAMES: [&str; 6] = ["rb", "wb", "ots", "otms", "cts", "ctms"];

/// Number of selected features (the paper's `Z` for the BELLE II experiment).
pub const Z: usize = FEATURE_NAMES.len();

/// Extracts the six raw feature values from an access record.
pub fn raw_features(record: &AccessRecord) -> [f64; Z] {
    [
        record.rb as f64,
        record.wb as f64,
        record.ots as f64,
        record.otms as f64,
        record.cts as f64,
        record.ctms as f64,
    ]
}

/// Encodes file paths to numbers, assigning "a unique numerical index to
/// each level of the path" and combining the indexes, so files in nearby
/// directories get nearby ids (§V-E's locality argument for rejecting
/// hashes).
///
/// # Examples
///
/// ```
/// use geomancy_trace::features::PathEncoder;
///
/// let mut enc = PathEncoder::new();
/// let a = enc.encode("foo/bar/bat.root");
/// let b = enc.encode("foo/bar/qux.root");
/// let c = enc.encode("zap/bar/bat.root");
/// // Same directory → ids differ only in the last level.
/// assert!((a - b).abs() < (a - c).abs());
/// // Re-encoding is stable.
/// assert_eq!(enc.encode("foo/bar/bat.root"), a);
/// ```
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct PathEncoder {
    levels: Vec<HashMap<String, u64>>,
}

/// Radix allotted to each path level (1000 names per level before collision
/// with the next level's digit range).
const LEVEL_RADIX: u64 = 1000;

impl PathEncoder {
    /// Creates an empty encoder.
    pub fn new() -> Self {
        PathEncoder { levels: Vec::new() }
    }

    /// Encodes a slash-separated path, assigning fresh per-level indexes to
    /// unseen components. Deterministic given insertion order.
    pub fn encode(&mut self, path: &str) -> f64 {
        let mut id: u64 = 0;
        for (depth, component) in path.split('/').filter(|c| !c.is_empty()).enumerate() {
            if self.levels.len() <= depth {
                self.levels.push(HashMap::new());
            }
            let table = &mut self.levels[depth];
            let next = table.len() as u64 + 1;
            let index = *table.entry(component.to_string()).or_insert(next);
            id = id * LEVEL_RADIX + index.min(LEVEL_RADIX - 1);
        }
        id as f64
    }

    /// Number of distinct components seen at each depth.
    pub fn level_sizes(&self) -> Vec<usize> {
        self.levels.iter().map(|l| l.len()).collect()
    }
}

/// Per-column min-max normalizer mapping values into `[0, 1]` ("the
/// numerical data is normalized by the Interface Daemon to decimal values
/// between zero and one").
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MinMaxNormalizer {
    mins: Vec<f64>,
    maxs: Vec<f64>,
}

impl MinMaxNormalizer {
    /// Fits column bounds over an iterator of rows.
    ///
    /// # Panics
    ///
    /// Panics if rows are empty or ragged.
    pub fn fit<'a>(rows: impl IntoIterator<Item = &'a [f64]>) -> Self {
        let mut mins: Vec<f64> = Vec::new();
        let mut maxs: Vec<f64> = Vec::new();
        let mut any = false;
        for row in rows {
            if !any {
                mins = row.to_vec();
                maxs = row.to_vec();
                any = true;
                continue;
            }
            assert_eq!(row.len(), mins.len(), "ragged rows in normalizer fit");
            for (i, &v) in row.iter().enumerate() {
                mins[i] = mins[i].min(v);
                maxs[i] = maxs[i].max(v);
            }
        }
        assert!(any, "cannot fit a normalizer on zero rows");
        MinMaxNormalizer { mins, maxs }
    }

    /// Number of columns the normalizer was fitted on.
    pub fn width(&self) -> usize {
        self.mins.len()
    }

    /// Normalizes one row in place.
    ///
    /// Columns that were constant during fitting map to `0.0`. Values outside
    /// the fitted range extrapolate linearly (they are *not* clamped, so the
    /// model can still see out-of-distribution magnitudes).
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the fitted width.
    pub fn normalize(&self, row: &mut [f64]) {
        assert_eq!(row.len(), self.width(), "row width mismatch");
        for (i, v) in row.iter_mut().enumerate() {
            let range = self.maxs[i] - self.mins[i];
            *v = if range <= 0.0 {
                0.0
            } else {
                (*v - self.mins[i]) / range
            };
        }
    }

    /// Normalizes a single column value by index.
    ///
    /// # Panics
    ///
    /// Panics if `col` is out of range.
    pub fn normalize_value(&self, col: usize, value: f64) -> f64 {
        assert!(col < self.width(), "column out of range");
        let range = self.maxs[col] - self.mins[col];
        if range <= 0.0 {
            0.0
        } else {
            (value - self.mins[col]) / range
        }
    }

    /// Inverse mapping for a single column (used to read predictions back in
    /// physical units).
    ///
    /// # Panics
    ///
    /// Panics if `col` is out of range.
    pub fn denormalize_value(&self, col: usize, value: f64) -> f64 {
        assert!(col < self.width(), "column out of range");
        let range = self.maxs[col] - self.mins[col];
        self.mins[col] + value * range
    }
}

/// Fits a normalizer over a target scalar series (single column).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScalarNormalizer {
    min: f64,
    max: f64,
}

impl ScalarNormalizer {
    /// Fits bounds over a series.
    ///
    /// # Panics
    ///
    /// Panics if the series is empty.
    pub fn fit(values: &[f64]) -> Self {
        assert!(!values.is_empty(), "cannot fit on an empty series");
        let mut min = f64::INFINITY;
        let mut max = f64::NEG_INFINITY;
        for &v in values {
            min = min.min(v);
            max = max.max(v);
        }
        ScalarNormalizer { min, max }
    }

    /// Fits a scale-only normalizer: divides by the series maximum, keeping
    /// zero at zero. For non-negative targets like throughput this preserves
    /// *relative* errors across the normalize/denormalize round trip, so
    /// error percentages match those computed on physical units.
    ///
    /// # Panics
    ///
    /// Panics if the series is empty.
    pub fn fit_scale_only(values: &[f64]) -> Self {
        assert!(!values.is_empty(), "cannot fit on an empty series");
        let max = values.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        ScalarNormalizer { min: 0.0, max }
    }

    /// Maps into `[0, 1]` (constant series map to `0.0`).
    pub fn normalize(&self, v: f64) -> f64 {
        let range = self.max - self.min;
        if range <= 0.0 {
            0.0
        } else {
            (v - self.min) / range
        }
    }

    /// Inverse of [`ScalarNormalizer::normalize`].
    pub fn denormalize(&self, v: f64) -> f64 {
        self.min + v * (self.max - self.min)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use geomancy_sim::record::{DeviceId, FileId};

    #[test]
    fn raw_features_order_matches_names() {
        let rec = AccessRecord {
            access_number: 0,
            fid: FileId(9),
            fsid: DeviceId(2),
            rb: 10,
            wb: 20,
            ots: 30,
            otms: 40,
            cts: 50,
            ctms: 60,
        };
        assert_eq!(raw_features(&rec), [10.0, 20.0, 30.0, 40.0, 50.0, 60.0]);
        assert_eq!(FEATURE_NAMES.len(), Z);
    }

    #[test]
    fn path_encoder_example_from_paper() {
        // foo→1, bar→2? No: indexes are per-level, so foo/bar/bat → 1,1,1 →
        // 001001001 in base 1000 digits.
        let mut enc = PathEncoder::new();
        let id = enc.encode("foo/bar/bat.root");
        assert_eq!(id, (1000 + 1) as f64 * 1000.0 + 1.0);
    }

    #[test]
    fn path_encoder_locality() {
        let mut enc = PathEncoder::new();
        let a = enc.encode("exp/run1/a.root");
        let b = enc.encode("exp/run1/b.root");
        let c = enc.encode("other/run9/a.root");
        assert!((a - b).abs() < (a - c).abs());
    }

    #[test]
    fn path_encoder_is_stable() {
        let mut enc = PathEncoder::new();
        let first = enc.encode("x/y/z");
        let _ = enc.encode("x/q/z");
        assert_eq!(enc.encode("x/y/z"), first);
        assert_eq!(enc.level_sizes(), vec![1, 2, 1]);
    }

    #[test]
    fn path_encoder_ignores_leading_slash_and_empty_segments() {
        let mut enc = PathEncoder::new();
        assert_eq!(enc.encode("/a//b"), enc.encode("a/b"));
    }

    #[test]
    fn minmax_normalizes_to_unit_interval() {
        let rows: Vec<Vec<f64>> = vec![vec![0.0, 10.0], vec![5.0, 20.0], vec![10.0, 30.0]];
        let norm = MinMaxNormalizer::fit(rows.iter().map(|r| r.as_slice()));
        let mut row = vec![5.0, 10.0];
        norm.normalize(&mut row);
        assert_eq!(row, vec![0.5, 0.0]);
    }

    #[test]
    fn minmax_constant_column_maps_to_zero() {
        let rows: Vec<Vec<f64>> = vec![vec![7.0], vec![7.0]];
        let norm = MinMaxNormalizer::fit(rows.iter().map(|r| r.as_slice()));
        let mut row = vec![7.0];
        norm.normalize(&mut row);
        assert_eq!(row, vec![0.0]);
    }

    #[test]
    fn minmax_round_trip() {
        let rows: Vec<Vec<f64>> = vec![vec![1.0], vec![3.0]];
        let norm = MinMaxNormalizer::fit(rows.iter().map(|r| r.as_slice()));
        let n = norm.normalize_value(0, 2.5);
        assert!((norm.denormalize_value(0, n) - 2.5).abs() < 1e-12);
    }

    #[test]
    fn scalar_normalizer_round_trip() {
        let s = ScalarNormalizer::fit(&[2.0, 4.0, 10.0]);
        assert_eq!(s.normalize(2.0), 0.0);
        assert_eq!(s.normalize(10.0), 1.0);
        assert!((s.denormalize(s.normalize(6.0)) - 6.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "empty series")]
    fn scalar_fit_empty_panics() {
        let _ = ScalarNormalizer::fit(&[]);
    }
}
